//! Collection strategies (`prop::collection`).

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::Strategy;

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// `Vec` strategy: lengths uniform in `size`, elements from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.is_empty() {
            self.size.start
        } else {
            rng.gen_range(self.size.clone())
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
