//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the subset of proptest's surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, `name in
//!   strategy` bindings, and `name: Type` (→ [`any`]) bindings;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * range strategies over the primitive integer and float types,
//!   [`any`] for primitives, and `prop::collection::vec`;
//! * [`ProptestConfig::with_cases`], with a `PROPTEST_CASES` environment
//!   override so CI can pin the case count.
//!
//! Semantics differ from real proptest in two deliberate ways: inputs are
//! drawn from a generator seeded by the test's name (so runs are
//! deterministic without a persistence file — `proptest-regressions/`
//! files are honored as documentation of past failures, not replayed),
//! and failing cases are reported with their case index and seed but not
//! shrunk.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Mirrors `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Runner configuration (the `cases` knob only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` environment
    /// override (used by CI to pin runtime).
    ///
    /// Deliberate deviation from real proptest: there the env var only
    /// feeds `Config::default()`, so an explicit `with_cases` wins. Here
    /// the env var wins *unconditionally*, because CI pins the whole
    /// suite's effort with one knob (`.github/workflows/ci.yml` sets
    /// `PROPTEST_CASES=32`). A test that must not be truncated should
    /// say so in a comment — and this note is the reminder to revisit
    /// those tests if the real crate is ever restored.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("PROPTEST_CASES must be a u32, got `{v}`")),
            Err(_) => self.cases,
        }
    }
}

/// A generator of test inputs of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*}
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_prims {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
    )*}
}

arbitrary_prims!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The whole-domain strategy for `T` (what a bare `name: T` binding in
/// [`proptest!`] expands to).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Deterministic per-test generator: FNV-1a of the test's module path and
/// name, so every test gets an independent, reproducible stream.
pub fn rng_for_test(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Expands a block of property tests.
///
/// Supported grammar (the subset real proptest accepts that this
/// workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     /// docs
///     #[test]
///     fn name(x in 0usize..10, seed: u64) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let cases = config.resolved_cases();
            let test_path = concat!(module_path!(), "::", stringify!($name));
            let mut __proptest_rng = $crate::rng_for_test(test_path);
            for __proptest_case in 0..cases {
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| {
                        $crate::__proptest_bind!(__proptest_rng, $($params)*);
                        $body
                    }),
                );
                if let ::std::result::Result::Err(cause) = outcome {
                    eprintln!(
                        "proptest {test_path}: case {}/{cases} failed \
                         (deterministic stream; re-run reproduces it)",
                        __proptest_case + 1,
                    );
                    ::std::panic::resume_unwind(cause);
                }
            }
        }
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident) => {};
    ($rng:ident,) => {};
    ($rng:ident, $var:ident in $strat:expr) => {
        let $var = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident, $var:ident in $strat:expr, $($rest:tt)*) => {
        let $var = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $var:ident : $ty:ty) => {
        let $var = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident, $var:ident : $ty:ty, $($rest:tt)*) => {
        let $var = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    // Real proptest also accepts pattern bindings like `(a, b) in strat`;
    // this stand-in does not. Fail loudly instead of recursing.
    ($rng:ident, $($unsupported:tt)+) => {
        compile_error!(
            "vendored proptest supports only `name in strategy` and `name: Type` bindings"
        );
    };
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts two expressions are unequal for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_any(n in 1usize..50, x in 0.5f64..2.0, seed: u64) {
            prop_assert!((1..50).contains(&n));
            prop_assert!((0.5..2.0).contains(&x));
            let _ = seed;
        }

        #[test]
        fn vec_strategy(v in prop::collection::vec(0.1f64..200.0, 0..12)) {
            prop_assert!(v.len() < 12);
            prop_assert!(v.iter().all(|x| (0.1..200.0).contains(x)));
        }
    }

    #[test]
    fn streams_are_deterministic() {
        use rand::RngCore;
        let mut a = crate::rng_for_test("x");
        let mut b = crate::rng_for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
