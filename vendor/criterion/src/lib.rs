//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the macro/struct surface the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion`],
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], and [`black_box`] — backed by a simple
//! median-of-samples wall-clock harness instead of criterion's full
//! statistical machinery. Results print as `group/id: median time over
//! N samples`.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle. One per `criterion_group!`-generated runner.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 30,
        }
    }
}

/// A parameterized benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name with a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: fmt::Display,
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: fmt::Display,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        self.run(&id.to_string(), &mut |b| f(b, input));
        self
    }

    /// Ends the group (accepted for API compatibility; drop does the work).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        println!(
            "{}/{id}: median {} over {} samples",
            self.name,
            format_seconds(median),
            samples.len()
        );
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine` (a handful of iterations per
    /// sample; criterion's adaptive iteration counts are overkill here).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        const ITERS: u64 = 3;
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += ITERS;
    }
}

/// Bundles benchmark functions into one runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` from one or more `criterion_group!` runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut calls = 0u64;
        group.bench_function("noop", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(calls > 0);
    }
}
