//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64. It does NOT
//! produce the same streams as the real `rand::rngs::StdRng` (ChaCha12) —
//! which is fine: the real crate documents `StdRng` streams as
//! non-portable across versions, and nothing in this workspace depends on
//! a specific stream, only on determinism in the seed.

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, SampleRange, Standard};

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (mirrors `rand_core`'s default implementation).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea & Flood 2014).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, out) in z.to_le_bytes().iter().zip(chunk.iter_mut()) {
                *out = *b;
            }
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution
    /// (`f64` in `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Distribution, Rng, RngCore, SeedableRng};
}
