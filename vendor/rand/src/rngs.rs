//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++
/// (Blackman & Vigna 2019). Not stream-compatible with the real
/// `rand::rngs::StdRng`; see the crate docs.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // xoshiro requires a nonzero state.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn zero_seed_is_valid() {
        let mut r = StdRng::from_seed([0u8; 32]);
        assert_ne!(r.next_u64(), r.next_u64());
    }
}
