//! The `Standard` distribution and uniform range sampling.

use std::ops::{Range, RangeInclusive};

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution: uniform over the whole integer domain,
/// `[0, 1)` for floats, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that supports uniform sampling of `T`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Widen before subtracting: the span of a signed or narrow
                // range can overflow its own type (e.g. -100i8..100).
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*}
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Sample the unit in $t itself (casting a f64 unit down to
                // f32 can round up to 1.0), and retry the ~2^-24 rounding
                // cases where start + unit·span still lands on `end`.
                loop {
                    let unit: $t = Standard.sample(rng);
                    let v = self.start + unit * (self.end - self.start);
                    if v < self.end {
                        return v;
                    }
                }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*}
}

float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(2usize..=6);
            assert!((2..=6).contains(&y));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range(0.5f64..50.0);
            assert!((0.5..50.0).contains(&x));
            let y = r.gen_range(1.0f64..=1e6);
            assert!((1.0..=1e6).contains(&y));
        }
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut r = StdRng::seed_from_u64(3);
        assert_eq!(r.gen_range(5usize..=5), 5);
    }

    #[test]
    fn signed_and_narrow_ranges_do_not_overflow() {
        // The span of -100i8..100 (200) overflows i8; sampling must widen
        // before subtracting.
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = r.gen_range(-100i8..100);
            assert!((-100..100).contains(&x));
            let y = r.gen_range(i64::MIN..=i64::MAX);
            let _ = y;
            let z = r.gen_range(-1e9f64..1e9);
            assert!((-1e9..1e9).contains(&z));
        }
    }
}
