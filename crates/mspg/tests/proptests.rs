//! Property-based tests for the M-SPG model.

use mspg::gen::{random_workflow, GenConfig};
use mspg::linearize::{is_topological_induced, topo_min_volume, topo_random};
use mspg::normalize::normalize;
use mspg::recognize::recognize;
use mspg::{decompose, Mspg, TaskId};
use proptest::prelude::*;

fn cfg(n_tasks: usize, max_branch: usize, seed: u64) -> GenConfig {
    GenConfig {
        n_tasks,
        max_branch,
        weight_range: (0.5, 50.0),
        size_range: (1.0, 1e6),
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated workflows always validate and the expression covers every
    /// task exactly once.
    #[test]
    fn generated_workflows_are_valid(n in 1usize..120, b in 2usize..6, seed: u64) {
        let w = random_workflow(&cfg(n, b, seed));
        prop_assert!(w.validate().is_ok());
        prop_assert_eq!(w.n_tasks(), n);
    }

    /// The recognizer accepts every generated workflow and recovers a
    /// structure with the same task set.
    #[test]
    fn recognizer_accepts_generated(n in 1usize..80, seed: u64) {
        let w = random_workflow(&cfg(n, 4, seed));
        let e = recognize(&w.dag).expect("generated workflow must be an M-SPG");
        let mut got = e.tasks();
        got.sort_unstable();
        let want: Vec<TaskId> = w.dag.task_ids().collect();
        prop_assert_eq!(got, want);
        prop_assert!(e.is_normalized());
    }

    /// Decomposition partitions the task set and recursing reaches every
    /// task exactly once.
    #[test]
    fn decompose_partitions(n in 1usize..100, seed: u64) {
        fn walk(e: &Mspg, out: &mut Vec<TaskId>) {
            let d = decompose(e);
            out.extend_from_slice(&d.chain);
            for p in &d.parallel {
                walk(p, out);
            }
            if let Some(r) = &d.rest {
                walk(r, out);
            }
        }
        let w = random_workflow(&cfg(n, 5, seed));
        let mut reached = Vec::new();
        walk(&w.root, &mut reached);
        reached.sort_unstable();
        let want: Vec<TaskId> = w.dag.task_ids().collect();
        prop_assert_eq!(reached, want);
    }

    /// Every linearizer emits a valid topological order of the full task
    /// set.
    #[test]
    fn linearizers_are_topological(n in 1usize..100, seed: u64, lseed: u64) {
        let w = random_workflow(&cfg(n, 4, seed));
        let tasks = w.structural_order();
        let r = topo_random(&w.dag, &tasks, lseed);
        prop_assert!(is_topological_induced(&w.dag, &r));
        prop_assert_eq!(r.len(), n);
        let m = topo_min_volume(&w.dag, &tasks);
        prop_assert!(is_topological_induced(&w.dag, &m));
        prop_assert_eq!(m.len(), n);
        prop_assert!(w.dag.is_topological(&tasks));
    }

    /// normalize() is idempotent and preserves the task multiset.
    #[test]
    fn normalize_idempotent(n in 1usize..60, seed: u64) {
        let w = random_workflow(&cfg(n, 4, seed));
        let once = normalize(w.root.clone());
        let twice = normalize(once.clone());
        prop_assert_eq!(&once, &twice);
        let mut a = w.root.tasks();
        let mut b = once.tasks();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// The critical path is at most the total weight and at least the max
    /// single task weight.
    #[test]
    fn critical_path_bounds(n in 1usize..100, seed: u64) {
        let w = random_workflow(&cfg(n, 4, seed));
        let cp = w.dag.critical_path();
        let total = w.dag.total_weight();
        let maxw = w
            .dag
            .task_ids()
            .map(|t| w.dag.weight(t))
            .fold(0.0f64, f64::max);
        prop_assert!(cp <= total + 1e-9);
        prop_assert!(cp >= maxw - 1e-9);
    }

    /// CCR scales linearly with file-size scaling.
    #[test]
    fn ccr_scaling(n in 1usize..60, seed: u64, factor in 0.01f64..100.0) {
        let w = random_workflow(&cfg(n, 4, seed));
        let bw = 1e6;
        let before = w.ccr(bw);
        let mut w2 = w.clone();
        w2.dag.scale_file_sizes(factor);
        let after = w2.ccr(bw);
        prop_assert!((after - before * factor).abs() <= 1e-9 * before.max(after).max(1.0));
    }
}
