//! Seeded random M-SPG workflow generation (testing and fuzzing substrate).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dag::Dag;
use crate::expr::Mspg;
use crate::workflow::Workflow;

/// Configuration for [`random_workflow`].
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Exact number of atomic tasks to generate.
    pub n_tasks: usize,
    /// Maximum number of children of any composition node (≥ 2).
    pub max_branch: usize,
    /// Uniform range for task weights (seconds).
    pub weight_range: (f64, f64),
    /// Uniform range for primary-output file sizes (bytes).
    pub size_range: (f64, f64),
    /// RNG seed; identical configs generate identical workflows.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            n_tasks: 50,
            max_branch: 5,
            weight_range: (1.0, 100.0),
            size_range: (1e6, 1e8),
            seed: 0,
        }
    }
}

/// Generates a random normalized M-SPG workflow with exactly
/// `cfg.n_tasks` tasks, wired and validated.
pub fn random_workflow(cfg: &GenConfig) -> Workflow {
    assert!(cfg.n_tasks > 0, "need at least one task");
    assert!(cfg.max_branch >= 2, "max_branch must be >= 2");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut dag = Dag::new();
    let _ = dag.add_kind("rand");
    let root = build(&mut dag, &mut rng, cfg, cfg.n_tasks, true);
    let w = Workflow::new(dag, root);
    debug_assert!(w.validate().is_ok());
    w
}

fn build(dag: &mut Dag, rng: &mut StdRng, cfg: &GenConfig, budget: usize, root: bool) -> Mspg {
    if budget == 1 {
        return Mspg::Task(new_task(dag, rng, cfg));
    }
    // Split the budget into k parts of at least one task each.
    let k = rng.gen_range(2..=cfg.max_branch.min(budget));
    let parts = split_budget(rng, budget, k);
    let children: Vec<Mspg> = parts
        .into_iter()
        .map(|b| build(dag, rng, cfg, b, false))
        .collect();
    // Root leans serial so the workflow has global structure; inner nodes
    // pick uniformly. The smart constructors keep everything normalized.
    let serial = if root { true } else { rng.gen_bool(0.5) };
    if serial {
        Mspg::series(children).expect("non-empty")
    } else {
        Mspg::parallel(children).expect("non-empty")
    }
}

fn new_task(dag: &mut Dag, rng: &mut StdRng, cfg: &GenConfig) -> crate::task::TaskId {
    let i = dag.n_tasks();
    let w = rng.gen_range(cfg.weight_range.0..=cfg.weight_range.1);
    let s = rng.gen_range(cfg.size_range.0..=cfg.size_range.1);
    dag.add_task_with_output(&format!("r{i}"), crate::task::KindId(0), w, s)
}

/// Splits `budget` into `k` positive parts, uniformly-ish.
fn split_budget(rng: &mut StdRng, budget: usize, k: usize) -> Vec<usize> {
    debug_assert!(k <= budget);
    let mut parts = vec![1usize; k];
    for _ in 0..budget - k {
        parts[rng.gen_range(0..k)] += 1;
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_task_count() {
        for n in [1, 2, 7, 50, 333] {
            let w = random_workflow(&GenConfig {
                n_tasks: n,
                seed: 1,
                ..Default::default()
            });
            assert_eq!(w.n_tasks(), n);
        }
    }

    #[test]
    fn generated_workflows_validate() {
        for seed in 0..10 {
            let w = random_workflow(&GenConfig {
                n_tasks: 64,
                seed,
                ..Default::default()
            });
            w.validate().unwrap();
        }
    }

    #[test]
    fn seed_determinism() {
        let a = random_workflow(&GenConfig {
            n_tasks: 30,
            seed: 9,
            ..Default::default()
        });
        let b = random_workflow(&GenConfig {
            n_tasks: 30,
            seed: 9,
            ..Default::default()
        });
        assert_eq!(a.root, b.root);
        assert_eq!(a.dag.n_edges(), b.dag.n_edges());
        for t in a.dag.task_ids() {
            assert_eq!(a.dag.weight(t), b.dag.weight(t));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_workflow(&GenConfig {
            n_tasks: 30,
            seed: 1,
            ..Default::default()
        });
        let b = random_workflow(&GenConfig {
            n_tasks: 30,
            seed: 2,
            ..Default::default()
        });
        assert!(
            a.root != b.root
                || a.dag.weight(crate::task::TaskId(0)) != b.dag.weight(crate::task::TaskId(0))
        );
    }

    #[test]
    fn normalized_structure() {
        for seed in 0..10 {
            let w = random_workflow(&GenConfig {
                n_tasks: 40,
                seed,
                ..Default::default()
            });
            assert!(w.root.is_normalized());
        }
    }

    #[test]
    fn structural_order_is_topological() {
        let w = random_workflow(&GenConfig {
            n_tasks: 100,
            seed: 3,
            ..Default::default()
        });
        assert!(w.dag.is_topological(&w.structural_order()));
    }
}
