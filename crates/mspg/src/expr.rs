//! The recursive M-SPG structure.

use crate::dag::Dag;
use crate::task::TaskId;

/// A Minimal Series-Parallel Graph expression over atomic tasks.
///
/// Following Valdes, Tarjan & Lawler (and §II-A of the paper), an M-SPG is
/// either an atomic task, a serial composition `G1 ⊳ … ⊳ Gn` (dependencies
/// from all sinks of `Gi` to all sources of `Gi+1`, *without* merging), or a
/// parallel composition `G1 ∥ … ∥ Gn` (disjoint union).
///
/// Expressions are kept in **normal form** (see [`crate::normalize`]):
/// `Series`/`Parallel` nodes have at least two children and never directly
/// nest a node of the same variant. The smart constructors [`Mspg::series`]
/// and [`Mspg::parallel`] enforce this. An *empty* M-SPG is represented by
/// `Option<Mspg>` at API boundaries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mspg {
    /// An atomic task.
    Task(TaskId),
    /// Serial composition `children[0] ⊳ children[1] ⊳ …`.
    Series(Vec<Mspg>),
    /// Parallel composition `children[0] ∥ children[1] ∥ …`.
    Parallel(Vec<Mspg>),
}

impl Mspg {
    /// Serial composition smart constructor: flattens nested `Series` and
    /// collapses singletons. Returns `None` for an empty part list.
    pub fn series(parts: impl IntoIterator<Item = Mspg>) -> Option<Mspg> {
        crate::normalize::series(parts)
    }

    /// Parallel composition smart constructor: flattens nested `Parallel`
    /// and collapses singletons. Returns `None` for an empty part list.
    pub fn parallel(parts: impl IntoIterator<Item = Mspg>) -> Option<Mspg> {
        crate::normalize::parallel(parts)
    }

    /// A chain `g1 ⊳ g2 ⊳ … ⊳ gk` of atomic tasks.
    pub fn chain(tasks: impl IntoIterator<Item = TaskId>) -> Option<Mspg> {
        Mspg::series(tasks.into_iter().map(Mspg::Task))
    }

    /// Number of atomic tasks in the expression.
    pub fn n_tasks(&self) -> usize {
        match self {
            Mspg::Task(_) => 1,
            Mspg::Series(cs) | Mspg::Parallel(cs) => cs.iter().map(Mspg::n_tasks).sum(),
        }
    }

    /// Appends all atomic tasks, in structural (depth-first) order.
    pub fn collect_tasks(&self, out: &mut Vec<TaskId>) {
        match self {
            Mspg::Task(t) => out.push(*t),
            Mspg::Series(cs) | Mspg::Parallel(cs) => {
                for c in cs {
                    c.collect_tasks(out);
                }
            }
        }
    }

    /// All atomic tasks, in structural (depth-first) order.
    pub fn tasks(&self) -> Vec<TaskId> {
        let mut v = Vec::with_capacity(self.n_tasks());
        self.collect_tasks(&mut v);
        v
    }

    /// Source tasks: tasks with no predecessor *within* this expression.
    pub fn source_tasks(&self) -> Vec<TaskId> {
        match self {
            Mspg::Task(t) => vec![*t],
            Mspg::Series(cs) => cs[0].source_tasks(),
            Mspg::Parallel(cs) => cs.iter().flat_map(Mspg::source_tasks).collect(),
        }
    }

    /// Sink tasks: tasks with no successor *within* this expression.
    pub fn sink_tasks(&self) -> Vec<TaskId> {
        match self {
            Mspg::Task(t) => vec![*t],
            Mspg::Series(cs) => cs[cs.len() - 1].sink_tasks(),
            Mspg::Parallel(cs) => cs.iter().flat_map(Mspg::sink_tasks).collect(),
        }
    }

    /// Sum of the weights of the expression's tasks (the `weight(Gi)` used
    /// by `PropMap`; stable-storage traffic is deliberately ignored here,
    /// matching §II-C).
    pub fn weight(&self, dag: &Dag) -> f64 {
        match self {
            Mspg::Task(t) => dag.weight(*t),
            Mspg::Series(cs) | Mspg::Parallel(cs) => cs.iter().map(|c| c.weight(dag)).sum(),
        }
    }

    /// Checks the normal-form invariants (used by tests and `debug_assert`).
    pub fn is_normalized(&self) -> bool {
        match self {
            Mspg::Task(_) => true,
            Mspg::Series(cs) => {
                cs.len() >= 2
                    && cs.iter().all(|c| !matches!(c, Mspg::Series(_)))
                    && cs.iter().all(Mspg::is_normalized)
            }
            Mspg::Parallel(cs) => {
                cs.len() >= 2
                    && cs.iter().all(|c| !matches!(c, Mspg::Parallel(_)))
                    && cs.iter().all(Mspg::is_normalized)
            }
        }
    }

    /// Maximum depth of the expression tree (a `Task` has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Mspg::Task(_) => 1,
            Mspg::Series(cs) | Mspg::Parallel(cs) => {
                1 + cs.iter().map(Mspg::depth).max().unwrap_or(0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> Mspg {
        Mspg::Task(TaskId(i))
    }

    #[test]
    fn chain_is_series_of_tasks() {
        let c = Mspg::chain([TaskId(0), TaskId(1), TaskId(2)]).unwrap();
        assert_eq!(c, Mspg::Series(vec![t(0), t(1), t(2)]));
        assert!(c.is_normalized());
        assert_eq!(c.n_tasks(), 3);
    }

    #[test]
    fn singleton_chain_collapses() {
        assert_eq!(Mspg::chain([TaskId(5)]), Some(t(5)));
        assert_eq!(Mspg::chain([]), None);
    }

    #[test]
    fn sources_and_sinks_fork_join() {
        // (0 ⊳ (1 ∥ 2) ⊳ 3)
        let e = Mspg::series([t(0), Mspg::parallel([t(1), t(2)]).unwrap(), t(3)]).unwrap();
        assert_eq!(e.source_tasks(), vec![TaskId(0)]);
        assert_eq!(e.sink_tasks(), vec![TaskId(3)]);
        assert!(e.is_normalized());
        assert_eq!(e.depth(), 3);
    }

    #[test]
    fn parallel_sources_concatenate() {
        let e = Mspg::parallel([Mspg::chain([TaskId(0), TaskId(1)]).unwrap(), t(2)]).unwrap();
        assert_eq!(e.source_tasks(), vec![TaskId(0), TaskId(2)]);
        assert_eq!(e.sink_tasks(), vec![TaskId(1), TaskId(2)]);
    }

    #[test]
    fn weight_sums_tasks() {
        let mut g = Dag::new();
        let k = g.add_kind("t");
        let a = g.add_task("a", k, 1.5);
        let b = g.add_task("b", k, 2.5);
        let e = Mspg::parallel([Mspg::Task(a), Mspg::Task(b)]).unwrap();
        assert_eq!(e.weight(&g), 4.0);
    }

    #[test]
    fn structural_task_order_is_depth_first() {
        let e = Mspg::series([Mspg::parallel([t(3), t(1)]).unwrap(), t(0)]).unwrap();
        assert_eq!(e.tasks(), vec![TaskId(3), TaskId(1), TaskId(0)]);
    }
}
