//! Data files exchanged along workflow dependence edges.

use std::fmt;

/// Identifier of a data file: a dense index into [`crate::Dag`] storage.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FileId(pub u32);

impl FileId {
    /// The file's index into dense per-file arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// A data file: a named blob of `size` bytes.
///
/// Files are first-class (rather than plain edge weights) because a task may
/// produce *one* file consumed by several successors; a checkpoint then
/// saves that file only once (§VI-A of the paper). The time to read or
/// write a file is `size / bandwidth` for the platform's stable-storage
/// bandwidth.
#[derive(Clone, Debug)]
pub struct DataFile {
    /// Human-readable name, unique within a workflow.
    pub name: String,
    /// Size in bytes. Must be finite and `>= 0`.
    pub size: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_id_roundtrip() {
        let f = FileId(3);
        assert_eq!(f.index(), 3);
        assert_eq!(f.to_string(), "F3");
    }
}
