//! The task/file/edge DAG underlying a workflow.

use crate::file::{DataFile, FileId};
use crate::task::{KindId, Task, TaskId};

/// A directed acyclic graph of tasks whose dependence edges carry data
/// files.
///
/// Storage is dense: tasks, files and kinds are `Vec`-indexed by their ids.
/// Each edge `(u, v, f)` states that task `v` reads file `f` produced by
/// task `u`. A file has at most one producer; files without a producer are
/// *workflow inputs* read from stable storage by their consumers.
///
/// The graph is built incrementally with [`Dag::add_task`],
/// [`Dag::add_file`], [`Dag::add_input_file`] and [`Dag::add_edge`];
/// [`Dag::validate`] checks global invariants (acyclicity, producer
/// consistency, finite non-negative weights and sizes).
#[derive(Clone, Debug, Default)]
pub struct Dag {
    tasks: Vec<Task>,
    files: Vec<DataFile>,
    kinds: Vec<String>,
    /// Per task: outgoing edges `(consumer, file)`.
    succ: Vec<Vec<(TaskId, FileId)>>,
    /// Per task: incoming edges `(producer, file)`.
    pred: Vec<Vec<(TaskId, FileId)>>,
    /// Per task: workflow-input files (no producer) read by this task.
    inputs: Vec<Vec<FileId>>,
    /// Per task: files produced by this task.
    outputs: Vec<Vec<FileId>>,
    /// Per file: producing task, or `None` for a workflow input.
    producer: Vec<Option<TaskId>>,
    /// Per file: consuming tasks (deduplicated, in insertion order).
    consumers: Vec<Vec<TaskId>>,
    /// Per task: primary output file used when wiring serial compositions.
    primary_out: Vec<Option<FileId>>,
    n_edges: usize,
}

/// Error returned by [`Dag::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagError {
    /// The graph contains a directed cycle.
    Cyclic,
    /// A task weight is negative, NaN or infinite.
    BadWeight(TaskId),
    /// A file size is negative, NaN or infinite.
    BadSize(FileId),
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::Cyclic => write!(f, "graph contains a directed cycle"),
            DagError::BadWeight(t) => write!(f, "task {t} has a non-finite or negative weight"),
            DagError::BadSize(x) => write!(f, "file {x} has a non-finite or negative size"),
        }
    }
}

impl std::error::Error for DagError {}

impl Dag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty DAG with storage reserved for `n_tasks` tasks and
    /// `n_files` files — one allocation per dense arena up front instead
    /// of doubling growth while a large generated workflow streams in.
    pub fn with_capacity(n_tasks: usize, n_files: usize) -> Self {
        let mut dag = Self::default();
        dag.reserve(n_tasks, n_files);
        dag
    }

    /// Reserves storage for `n_tasks` additional tasks and `n_files`
    /// additional files across every per-task / per-file arena.
    pub fn reserve(&mut self, n_tasks: usize, n_files: usize) {
        self.tasks.reserve(n_tasks);
        self.succ.reserve(n_tasks);
        self.pred.reserve(n_tasks);
        self.inputs.reserve(n_tasks);
        self.outputs.reserve(n_tasks);
        self.primary_out.reserve(n_tasks);
        self.files.reserve(n_files);
        self.producer.reserve(n_files);
        self.consumers.reserve(n_files);
    }

    /// Interns a task kind, returning its id. Re-interning an existing name
    /// returns the previous id.
    pub fn add_kind(&mut self, name: &str) -> KindId {
        if let Some(i) = self.kinds.iter().position(|k| k == name) {
            return KindId(i as u16);
        }
        assert!(self.kinds.len() < u16::MAX as usize, "too many task kinds");
        self.kinds.push(name.to_owned());
        KindId((self.kinds.len() - 1) as u16)
    }

    /// Adds a task and returns its id.
    pub fn add_task(&mut self, name: impl Into<String>, kind: KindId, weight: f64) -> TaskId {
        assert!(self.tasks.len() < u32::MAX as usize, "too many tasks");
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(Task {
            name: name.into(),
            kind,
            weight,
        });
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        self.inputs.push(Vec::new());
        self.outputs.push(Vec::new());
        self.primary_out.push(None);
        id
    }

    /// Adds a file produced by `producer` (or a workflow input if `None`)
    /// and returns its id.
    pub fn add_file(
        &mut self,
        name: impl Into<String>,
        size: f64,
        producer: Option<TaskId>,
    ) -> FileId {
        assert!(self.files.len() < u32::MAX as usize, "too many files");
        let id = FileId(self.files.len() as u32);
        self.files.push(DataFile {
            name: name.into(),
            size,
        });
        self.producer.push(producer);
        self.consumers.push(Vec::new());
        if let Some(t) = producer {
            self.outputs[t.index()].push(id);
        }
        id
    }

    /// Convenience: adds a task together with its primary output file.
    ///
    /// The primary output is the file sent to successors when the task is a
    /// sink of a serial composition (see [`crate::Workflow::wire`]).
    pub fn add_task_with_output(
        &mut self,
        name: &str,
        kind: KindId,
        weight: f64,
        out_size: f64,
    ) -> TaskId {
        let t = self.add_task(name, kind, weight);
        let f = self.add_file(format!("{name}.out"), out_size, Some(t));
        self.primary_out[t.index()] = Some(f);
        t
    }

    /// Declares `file` (which must have a producer `u`) as an input of `v`,
    /// adding the dependence edge `u → v`.
    ///
    /// # Panics
    /// Panics if the file has no producer, or if `u == v`.
    pub fn add_edge(&mut self, v: TaskId, file: FileId) {
        let u = self.producer[file.index()].expect("add_edge: file has no producer");
        assert_ne!(u, v, "add_edge: self-loop");
        self.succ[u.index()].push((v, file));
        self.pred[v.index()].push((u, file));
        if !self.consumers[file.index()].contains(&v) {
            self.consumers[file.index()].push(v);
        }
        self.n_edges += 1;
    }

    /// Declares `file` (which must have no producer) as a workflow-input
    /// file read from stable storage by `t`.
    ///
    /// # Panics
    /// Panics if the file has a producer.
    pub fn add_input_file(&mut self, t: TaskId, file: FileId) {
        assert!(
            self.producer[file.index()].is_none(),
            "add_input_file: file has a producer; use add_edge"
        );
        self.inputs[t.index()].push(file);
        if !self.consumers[file.index()].contains(&t) {
            self.consumers[file.index()].push(t);
        }
    }

    /// Declares `file` (produced by some task) as read by `t` **without**
    /// adding a dependence edge: the read is implied by the remaining
    /// structure (a transitively reduced edge — see [`crate::reduce`]).
    ///
    /// # Panics
    /// Panics if the file has no producer (use [`Dag::add_input_file`]).
    pub fn add_transitive_read(&mut self, t: TaskId, file: FileId) {
        let u = self.producer[file.index()].expect("add_transitive_read: workflow input");
        assert_ne!(u, t, "add_transitive_read: self-read");
        if !self.inputs[t.index()].contains(&file) {
            self.inputs[t.index()].push(file);
        }
        if !self.consumers[file.index()].contains(&t) {
            self.consumers[file.index()].push(t);
        }
    }

    /// Sets the primary output file of `t` (must be produced by `t`).
    pub fn set_primary_output(&mut self, t: TaskId, file: FileId) {
        assert_eq!(
            self.producer[file.index()],
            Some(t),
            "file not produced by task"
        );
        self.primary_out[t.index()] = Some(file);
    }

    /// Primary output file of `t`, if set.
    #[inline]
    pub fn primary_output(&self, t: TaskId) -> Option<FileId> {
        self.primary_out[t.index()]
    }

    /// Number of tasks.
    #[inline]
    pub fn n_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of files.
    #[inline]
    pub fn n_files(&self) -> usize {
        self.files.len()
    }

    /// Number of dependence edges (counting multiplicity by file).
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// All task ids, in index order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len() as u32).map(TaskId)
    }

    /// All file ids, in index order.
    pub fn file_ids(&self) -> impl Iterator<Item = FileId> + '_ {
        (0..self.files.len() as u32).map(FileId)
    }

    /// The task with id `t`.
    #[inline]
    pub fn task(&self, t: TaskId) -> &Task {
        &self.tasks[t.index()]
    }

    /// The file with id `f`.
    #[inline]
    pub fn file(&self, f: FileId) -> &DataFile {
        &self.files[f.index()]
    }

    /// The interned name of a task kind.
    #[inline]
    pub fn kind_name(&self, k: KindId) -> &str {
        &self.kinds[k.index()]
    }

    /// Number of interned task kinds.
    #[inline]
    pub fn n_kinds(&self) -> usize {
        self.kinds.len()
    }

    /// The failure-free execution time of `t` (the paper's `wᵢ`).
    #[inline]
    pub fn weight(&self, t: TaskId) -> f64 {
        self.tasks[t.index()].weight
    }

    /// Replaces the failure-free execution time of `t` (a workflow
    /// *edit* — re-profiled task runtimes are the common case for a
    /// long-lived planning session).
    pub fn set_weight(&mut self, t: TaskId, weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "task weight must be finite and non-negative"
        );
        self.tasks[t.index()].weight = weight;
    }

    /// Outgoing edges of `t` as `(consumer, file)` pairs.
    #[inline]
    pub fn succs(&self, t: TaskId) -> &[(TaskId, FileId)] {
        &self.succ[t.index()]
    }

    /// Incoming edges of `t` as `(producer, file)` pairs.
    #[inline]
    pub fn preds(&self, t: TaskId) -> &[(TaskId, FileId)] {
        &self.pred[t.index()]
    }

    /// Workflow-input files read by `t` (files with no producer).
    #[inline]
    pub fn input_files(&self, t: TaskId) -> &[FileId] {
        &self.inputs[t.index()]
    }

    /// Files produced by `t`.
    #[inline]
    pub fn output_files(&self, t: TaskId) -> &[FileId] {
        &self.outputs[t.index()]
    }

    /// Producer of `f`, or `None` for a workflow input.
    #[inline]
    pub fn producer(&self, f: FileId) -> Option<TaskId> {
        self.producer[f.index()]
    }

    /// Distinct consumers of `f`, in first-use order.
    #[inline]
    pub fn consumers(&self, f: FileId) -> &[TaskId] {
        &self.consumers[f.index()]
    }

    /// Sum of all task weights (the paper's `∑ wᵢ`).
    pub fn total_weight(&self) -> f64 {
        self.tasks.iter().map(|t| t.weight).sum()
    }

    /// Mean task weight `w̄`, used by the `pfail ↔ λ` conversion.
    pub fn mean_weight(&self) -> f64 {
        if self.tasks.is_empty() {
            0.0
        } else {
            self.total_weight() / self.tasks.len() as f64
        }
    }

    /// Total bytes across all files (each file counted once, matching the
    /// CCR definition: "input, output, and intermediate files").
    pub fn total_data_volume(&self) -> f64 {
        self.files.iter().map(|f| f.size).sum()
    }

    /// Multiplies every file size by `factor` (used to sweep the CCR).
    pub fn scale_file_sizes(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "bad scale factor");
        for f in &mut self.files {
            f.size *= factor;
        }
    }

    /// Tasks with no incoming edge (workflow-input files do not count).
    pub fn sources(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|t| self.pred[t.index()].is_empty())
            .collect()
    }

    /// Tasks with no outgoing edge.
    pub fn sinks(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|t| self.succ[t.index()].is_empty())
            .collect()
    }

    /// In-degree of `t` counting *distinct* predecessor tasks.
    pub fn distinct_pred_count(&self, t: TaskId) -> usize {
        let mut seen: Vec<TaskId> = Vec::with_capacity(self.pred[t.index()].len());
        for &(u, _) in &self.pred[t.index()] {
            if !seen.contains(&u) {
                seen.push(u);
            }
        }
        seen.len()
    }

    /// A deterministic topological order (Kahn's algorithm, smallest task id
    /// first). Returns `None` if the graph has a cycle.
    pub fn topo_order(&self) -> Option<Vec<TaskId>> {
        let n = self.n_tasks();
        let mut indeg = vec![0usize; n];
        for t in 0..n {
            for &(v, _) in &self.succ[t] {
                indeg[v.index()] += 1;
            }
        }
        // A binary heap keyed on Reverse(id) would be O(E log V); a sorted
        // ready list is fine at our scales and keeps the order canonical.
        let mut ready: Vec<u32> = (0..n as u32).filter(|&t| indeg[t as usize] == 0).collect();
        ready.sort_unstable_by(|a, b| b.cmp(a)); // pop smallest from the back
        let mut order = Vec::with_capacity(n);
        while let Some(t) = ready.pop() {
            order.push(TaskId(t));
            for &(v, _) in &self.succ[t as usize] {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    // Insert keeping the descending sort.
                    let pos = ready.binary_search_by(|x| v.0.cmp(x)).unwrap_or_else(|e| e);
                    ready.insert(pos, v.0);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Checks that `order` is a permutation of all tasks consistent with the
    /// dependence edges.
    pub fn is_topological(&self, order: &[TaskId]) -> bool {
        if order.len() != self.n_tasks() {
            return false;
        }
        let mut pos = vec![usize::MAX; self.n_tasks()];
        for (i, &t) in order.iter().enumerate() {
            if pos[t.index()] != usize::MAX {
                return false; // duplicate
            }
            pos[t.index()] = i;
        }
        for t in self.task_ids() {
            for &(v, _) in self.succs(t) {
                if pos[t.index()] >= pos[v.index()] {
                    return false;
                }
            }
        }
        true
    }

    /// Length (in seconds of task weight) of the longest weighted path,
    /// ignoring all I/O: the failure-free lower bound on any execution.
    pub fn critical_path(&self) -> f64 {
        let order = self.topo_order().expect("critical_path: cyclic graph");
        let mut finish = vec![0.0f64; self.n_tasks()];
        let mut best = 0.0f64;
        for &t in &order {
            let start = self
                .preds(t)
                .iter()
                .map(|&(u, _)| finish[u.index()])
                .fold(0.0f64, f64::max);
            finish[t.index()] = start + self.weight(t);
            best = best.max(finish[t.index()]);
        }
        best
    }

    /// Validates global invariants: acyclicity, finite non-negative weights
    /// and file sizes.
    pub fn validate(&self) -> Result<(), DagError> {
        for t in self.task_ids() {
            let w = self.weight(t);
            if !w.is_finite() || w < 0.0 {
                return Err(DagError::BadWeight(t));
            }
        }
        for f in self.file_ids() {
            let s = self.file(f).size;
            if !s.is_finite() || s < 0.0 {
                return Err(DagError::BadSize(f));
            }
        }
        if self.topo_order().is_none() {
            return Err(DagError::Cyclic);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the diamond `a → {b, c} → d` with one file per producer.
    fn diamond() -> (Dag, [TaskId; 4]) {
        let mut g = Dag::new();
        let k = g.add_kind("t");
        let a = g.add_task_with_output("a", k, 1.0, 10.0);
        let b = g.add_task_with_output("b", k, 2.0, 20.0);
        let c = g.add_task_with_output("c", k, 3.0, 30.0);
        let d = g.add_task_with_output("d", k, 4.0, 40.0);
        let fa = g.primary_output(a).unwrap();
        let fb = g.primary_output(b).unwrap();
        let fc = g.primary_output(c).unwrap();
        g.add_edge(b, fa);
        g.add_edge(c, fa);
        g.add_edge(d, fb);
        g.add_edge(d, fc);
        (g, [a, b, c, d])
    }

    #[test]
    fn diamond_shape() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.n_tasks(), 4);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![d]);
        assert_eq!(g.succs(a).len(), 2);
        assert_eq!(g.preds(d).len(), 2);
        assert_eq!(g.consumers(g.primary_output(a).unwrap()), &[b, c]);
    }

    #[test]
    fn weights_and_volumes() {
        let (g, _) = diamond();
        assert_eq!(g.total_weight(), 10.0);
        assert_eq!(g.mean_weight(), 2.5);
        assert_eq!(g.total_data_volume(), 100.0);
    }

    #[test]
    fn scale_file_sizes_scales_volume() {
        let (mut g, _) = diamond();
        g.scale_file_sizes(0.5);
        assert_eq!(g.total_data_volume(), 50.0);
    }

    #[test]
    fn topo_order_is_valid_and_deterministic() {
        let (g, [a, b, c, d]) = diamond();
        let o = g.topo_order().unwrap();
        assert!(g.is_topological(&o));
        assert_eq!(o, vec![a, b, c, d]); // smallest-id-first tie-break
    }

    #[test]
    fn critical_path_diamond() {
        let (g, _) = diamond();
        // a (1) → c (3) → d (4) = 8.
        assert_eq!(g.critical_path(), 8.0);
    }

    #[test]
    fn is_topological_rejects_bad_orders() {
        let (g, [a, b, c, d]) = diamond();
        assert!(!g.is_topological(&[b, a, c, d]));
        assert!(!g.is_topological(&[a, b, c]));
        assert!(!g.is_topological(&[a, a, b, d]));
    }

    #[test]
    fn same_file_two_consumers_counted_once_in_volume() {
        let (g, [a, ..]) = diamond();
        // `a.out` feeds both b and c but exists once.
        let fa = g.primary_output(a).unwrap();
        assert_eq!(g.consumers(fa).len(), 2);
        assert_eq!(g.total_data_volume(), 100.0);
    }

    #[test]
    fn validate_detects_cycle() {
        let mut g = Dag::new();
        let k = g.add_kind("t");
        let a = g.add_task_with_output("a", k, 1.0, 1.0);
        let b = g.add_task_with_output("b", k, 1.0, 1.0);
        let fa = g.primary_output(a).unwrap();
        let fb = g.primary_output(b).unwrap();
        g.add_edge(b, fa);
        g.add_edge(a, fb);
        assert_eq!(g.validate(), Err(DagError::Cyclic));
    }

    #[test]
    fn validate_detects_bad_weight() {
        let mut g = Dag::new();
        let k = g.add_kind("t");
        let a = g.add_task("a", k, f64::NAN);
        assert_eq!(g.validate(), Err(DagError::BadWeight(a)));
    }

    #[test]
    fn workflow_input_files() {
        let mut g = Dag::new();
        let k = g.add_kind("t");
        let a = g.add_task_with_output("a", k, 1.0, 1.0);
        let fin = g.add_file("in.dat", 5.0, None);
        g.add_input_file(a, fin);
        assert_eq!(g.input_files(a), &[fin]);
        assert_eq!(g.producer(fin), None);
        assert_eq!(g.consumers(fin), &[a]);
        assert!(g.validate().is_ok());
    }
}
