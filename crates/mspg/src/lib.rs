//! # mspg — Minimal Series-Parallel Graph workflow model
//!
//! This crate implements the workflow-graph substrate of
//! *Checkpointing Workflows for Fail-Stop Errors* (Han, Canon, Casanova,
//! Robert, Vivien — IEEE CLUSTER 2017):
//!
//! * a task/file/edge DAG ([`Dag`]) where every dependence edge carries the
//!   *file* transferred between producer and consumer (a file produced once
//!   may feed many consumers, and checkpoint costs deduplicate by file);
//! * the recursive **M-SPG** structure ([`Mspg`]): atomic tasks, serial
//!   composition `G1 ⊳ G2` (all sinks of `G1` connected to all sources of
//!   `G2`, without merging) and parallel composition `G1 ∥ G2` (disjoint
//!   union);
//! * the `C ⊳ (G1 ∥ … ∥ Gn) ⊳ Gn+1` decomposition used by the paper's
//!   `Allocate` scheduler ([`decompose`]);
//! * linearizations of sub-M-SPGs onto a single processor
//!   ([`linearize`]): structural, seeded-random topological, and a
//!   volume-minimizing heuristic (the sum-cut-inspired refinement from the
//!   paper's future-work section);
//! * recognition of arbitrary DAGs as M-SPGs ([`recognize`]), used to check
//!   that generated workflows are in the class the algorithms require;
//! * the dummy-edge patch applied to incomplete-bipartite Ligo instances
//!   ([`patch`], §VI-A footnote of the paper).

pub mod dag;
pub mod decompose;
pub mod dot;
pub mod expr;
pub mod file;
pub mod gen;
pub mod linearize;
pub mod normalize;
pub mod patch;
pub mod recognize;
pub mod reduce;
pub mod task;
pub mod workflow;

pub use dag::Dag;
pub use decompose::{decompose, Decomposition};
pub use expr::Mspg;
pub use file::{DataFile, FileId};
pub use gen::{random_workflow, GenConfig};
pub use recognize::{recognize, NotMspg};
pub use reduce::{recognize_gspg, transitive_reduction};
pub use task::{KindId, Task, TaskId};
pub use workflow::Workflow;
