//! The `C ⊳ (G1 ∥ … ∥ Gn) ⊳ Gn+1` decomposition (Algorithm 1, line 3).
//!
//! `Allocate` repeatedly decomposes an M-SPG into a *head chain* `C` (the
//! longest possible chain of atomic tasks, as required by the paper to avoid
//! infinite recursion), a parallel composition `G1 ∥ … ∥ Gn`, and a
//! remainder `Gn+1`.

use crate::expr::Mspg;
use crate::task::TaskId;

/// Result of decomposing a normalized M-SPG as `C ⊳ (G1 ∥ … ∥ Gn) ⊳ Gn+1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decomposition {
    /// The head chain `C` (possibly empty).
    pub chain: Vec<TaskId>,
    /// The parallel components `G1, …, Gn` (possibly empty).
    pub parallel: Vec<Mspg>,
    /// The remainder `Gn+1` (possibly empty).
    pub rest: Option<Mspg>,
}

impl Decomposition {
    /// True when every component is empty (decomposition of the empty
    /// graph).
    pub fn is_empty(&self) -> bool {
        self.chain.is_empty() && self.parallel.is_empty() && self.rest.is_none()
    }
}

/// Decomposes a normalized M-SPG expression.
///
/// Guarantees, for a normalized input:
/// * `chain` is the **longest** atomic-task prefix (maximal `C`);
/// * every element of `parallel` is strictly smaller than the input;
/// * at least one of `chain`/`parallel` is non-empty, so recursion on
///   (`parallel` components, then `rest`) terminates.
///
/// # Panics
/// Panics (in debug builds) if the expression is not in normal form.
pub fn decompose(expr: &Mspg) -> Decomposition {
    debug_assert!(
        expr.is_normalized(),
        "decompose requires a normalized M-SPG"
    );
    match expr {
        Mspg::Task(t) => Decomposition {
            chain: vec![*t],
            parallel: Vec::new(),
            rest: None,
        },
        Mspg::Parallel(cs) => Decomposition {
            chain: Vec::new(),
            parallel: cs.clone(),
            rest: None,
        },
        Mspg::Series(cs) => {
            // Longest atomic prefix: in normal form the children are Task or
            // Parallel, so the chain is the maximal Task prefix.
            let mut chain = Vec::new();
            let mut i = 0;
            while i < cs.len() {
                if let Mspg::Task(t) = cs[i] {
                    chain.push(t);
                    i += 1;
                } else {
                    break;
                }
            }
            let (parallel, rest) = if i == cs.len() {
                (Vec::new(), None)
            } else {
                let parallel = match &cs[i] {
                    Mspg::Parallel(ps) => ps.clone(),
                    // A single non-parallel component: treat it as the sole
                    // parallel part (n = 1), exactly the paper's
                    // "some of these graphs possibly empty".
                    other => vec![other.clone()],
                };
                let rest = Mspg::series(cs[i + 1..].iter().cloned());
                (parallel, rest)
            };
            Decomposition {
                chain,
                parallel,
                rest,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> Mspg {
        Mspg::Task(TaskId(i))
    }

    fn id(i: u32) -> TaskId {
        TaskId(i)
    }

    #[test]
    fn atomic_task_is_a_chain() {
        let d = decompose(&t(3));
        assert_eq!(d.chain, vec![id(3)]);
        assert!(d.parallel.is_empty());
        assert!(d.rest.is_none());
    }

    #[test]
    fn pure_chain() {
        let e = Mspg::chain([id(0), id(1), id(2)]).unwrap();
        let d = decompose(&e);
        assert_eq!(d.chain, vec![id(0), id(1), id(2)]);
        assert!(d.parallel.is_empty());
        assert!(d.rest.is_none());
    }

    #[test]
    fn pure_parallel() {
        let e = Mspg::parallel([t(0), t(1), t(2)]).unwrap();
        let d = decompose(&e);
        assert!(d.chain.is_empty());
        assert_eq!(d.parallel.len(), 3);
        assert!(d.rest.is_none());
    }

    #[test]
    fn fork_join() {
        // (0 ⊳ 1) ⊳ (2 ∥ 3) ⊳ 4
        let e = Mspg::series([t(0), t(1), Mspg::parallel([t(2), t(3)]).unwrap(), t(4)]).unwrap();
        let d = decompose(&e);
        assert_eq!(d.chain, vec![id(0), id(1)]);
        assert_eq!(d.parallel, vec![t(2), t(3)]);
        assert_eq!(d.rest, Some(t(4)));
    }

    #[test]
    fn chain_is_maximal() {
        // All-atomic series: the whole thing is the chain.
        let e = Mspg::chain([id(0), id(1), id(2), id(3)]).unwrap();
        let d = decompose(&e);
        assert_eq!(d.chain.len(), 4);
    }

    #[test]
    fn rest_preserves_structure() {
        // 0 ⊳ (1 ∥ 2) ⊳ (3 ∥ 4) ⊳ 5
        let e = Mspg::series([
            t(0),
            Mspg::parallel([t(1), t(2)]).unwrap(),
            Mspg::parallel([t(3), t(4)]).unwrap(),
            t(5),
        ])
        .unwrap();
        let d = decompose(&e);
        assert_eq!(d.chain, vec![id(0)]);
        assert_eq!(d.parallel.len(), 2);
        let rest = d.rest.unwrap();
        let d2 = decompose(&rest);
        assert!(d2.chain.is_empty());
        assert_eq!(d2.parallel.len(), 2);
        assert_eq!(d2.rest, Some(t(5)));
    }

    #[test]
    fn decomposition_partitions_tasks() {
        let e = Mspg::series([
            t(9),
            Mspg::parallel([Mspg::chain([id(1), id(2)]).unwrap(), t(3)]).unwrap(),
            t(4),
        ])
        .unwrap();
        let d = decompose(&e);
        let mut all: Vec<TaskId> = d.chain.clone();
        for p in &d.parallel {
            all.extend(p.tasks());
        }
        if let Some(r) = &d.rest {
            all.extend(r.tasks());
        }
        all.sort_unstable();
        let mut expect = e.tasks();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    fn progress_guarantee() {
        // Recursing through decompose must terminate on any normalized expr.
        fn count(expr: &Mspg) -> usize {
            let d = decompose(expr);
            let mut n = d.chain.len();
            for p in &d.parallel {
                n += count(p);
            }
            if let Some(r) = &d.rest {
                n += count(r);
            }
            n
        }
        let e = Mspg::series([
            Mspg::parallel([
                Mspg::series([t(0), Mspg::parallel([t(1), t(2)]).unwrap()]).unwrap(),
                t(3),
            ])
            .unwrap(),
            t(4),
        ])
        .unwrap();
        assert_eq!(count(&e), e.n_tasks());
    }
}
