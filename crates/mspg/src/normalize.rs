//! Normal-form smart constructors for [`Mspg`] expressions.
//!
//! Normal form guarantees that the `C ⊳ (G1 ∥ … ∥ Gn) ⊳ Gn+1`
//! decomposition of [`crate::decompose`] always makes progress (the paper
//! notes that some decompositions lead to infinite recursion; normal form
//! rules those out): `Series` children are never `Series`, `Parallel`
//! children are never `Parallel`, and compositions have at least two
//! children.

use crate::expr::Mspg;

/// Serial composition: flattens nested `Series`, drops nothing, collapses
/// singletons. Returns `None` when `parts` is empty.
pub fn series(parts: impl IntoIterator<Item = Mspg>) -> Option<Mspg> {
    let mut out: Vec<Mspg> = Vec::new();
    for p in parts {
        match p {
            Mspg::Series(cs) => out.extend(cs),
            other => out.push(other),
        }
    }
    match out.len() {
        0 => None,
        1 => Some(out.pop().unwrap()),
        _ => Some(Mspg::Series(out)),
    }
}

/// Parallel composition: flattens nested `Parallel`, collapses singletons.
/// Returns `None` when `parts` is empty.
pub fn parallel(parts: impl IntoIterator<Item = Mspg>) -> Option<Mspg> {
    let mut out: Vec<Mspg> = Vec::new();
    for p in parts {
        match p {
            Mspg::Parallel(cs) => out.extend(cs),
            other => out.push(other),
        }
    }
    match out.len() {
        0 => None,
        1 => Some(out.pop().unwrap()),
        _ => Some(Mspg::Parallel(out)),
    }
}

/// Recursively rewrites an arbitrary expression into normal form.
///
/// The smart constructors only normalize the top level; this walks the whole
/// tree (useful after manual construction or deserialization).
pub fn normalize(e: Mspg) -> Mspg {
    match e {
        Mspg::Task(t) => Mspg::Task(t),
        Mspg::Series(cs) => series(cs.into_iter().map(normalize)).expect("series of >=1 parts"),
        Mspg::Parallel(cs) => {
            parallel(cs.into_iter().map(normalize)).expect("parallel of >=1 parts")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;

    fn t(i: u32) -> Mspg {
        Mspg::Task(TaskId(i))
    }

    #[test]
    fn series_flattens() {
        let inner = Mspg::Series(vec![t(0), t(1)]);
        let e = series([inner, t(2)]).unwrap();
        assert_eq!(e, Mspg::Series(vec![t(0), t(1), t(2)]));
    }

    #[test]
    fn parallel_flattens() {
        let inner = Mspg::Parallel(vec![t(0), t(1)]);
        let e = parallel([inner, t(2)]).unwrap();
        assert_eq!(e, Mspg::Parallel(vec![t(0), t(1), t(2)]));
    }

    #[test]
    fn singletons_collapse() {
        assert_eq!(series([t(9)]), Some(t(9)));
        assert_eq!(parallel([t(9)]), Some(t(9)));
    }

    #[test]
    fn empties_are_none() {
        assert_eq!(series([]), None);
        assert_eq!(parallel([]), None);
    }

    #[test]
    fn series_of_parallel_is_untouched() {
        let p = Mspg::Parallel(vec![t(0), t(1)]);
        let e = series([p.clone(), t(2)]).unwrap();
        assert_eq!(e, Mspg::Series(vec![p, t(2)]));
        assert!(e.is_normalized());
    }

    #[test]
    fn normalize_deep_tree() {
        // Series(Series(a, Parallel(Parallel(b, c), d)), e)
        let messy = Mspg::Series(vec![
            Mspg::Series(vec![
                t(0),
                Mspg::Parallel(vec![Mspg::Parallel(vec![t(1), t(2)]), t(3)]),
            ]),
            t(4),
        ]);
        let n = normalize(messy);
        assert!(n.is_normalized());
        assert_eq!(
            n,
            Mspg::Series(vec![t(0), Mspg::Parallel(vec![t(1), t(2), t(3)]), t(4),])
        );
    }

    #[test]
    fn normalize_is_idempotent() {
        let e = Mspg::Series(vec![
            Mspg::Series(vec![t(0), t(1)]),
            Mspg::Parallel(vec![t(2), Mspg::Parallel(vec![t(3), t(4)])]),
        ]);
        let once = normalize(e);
        let twice = normalize(once.clone());
        assert_eq!(once, twice);
    }
}
