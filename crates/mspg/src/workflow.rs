//! A workflow = a [`Dag`] together with its M-SPG structure.

use crate::dag::Dag;
use crate::expr::Mspg;
use crate::task::TaskId;

/// A complete workflow: task/file storage plus the recursive M-SPG
/// expression describing its structure.
///
/// The canonical construction is: create tasks (with primary output files)
/// in the [`Dag`], build the [`Mspg`] expression over them, then call
/// [`Workflow::wire`] to derive the dependence edges that serial
/// compositions imply. Generators in the `pegasus` crate follow this
/// pattern.
#[derive(Clone, Debug)]
pub struct Workflow {
    /// Task, file and edge storage.
    pub dag: Dag,
    /// The M-SPG structure (normal form).
    pub root: Mspg,
}

/// Error returned by [`Workflow::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkflowError {
    /// The underlying DAG is invalid.
    Dag(crate::dag::DagError),
    /// The expression is not in normal form.
    NotNormalized,
    /// A task appears zero or multiple times in the expression.
    BadTaskCover,
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::Dag(e) => write!(f, "invalid DAG: {e}"),
            WorkflowError::NotNormalized => write!(f, "expression is not in normal form"),
            WorkflowError::BadTaskCover => {
                write!(f, "expression does not cover each task exactly once")
            }
        }
    }
}

impl std::error::Error for WorkflowError {}

impl Workflow {
    /// Creates a workflow and wires the edges implied by the expression.
    pub fn new(dag: Dag, root: Mspg) -> Self {
        let mut w = Workflow { dag, root };
        w.wire();
        w
    }

    /// Creates a workflow whose edges are already present in the DAG (used
    /// by [`crate::recognize`] round-trips and deserialization).
    pub fn from_wired(dag: Dag, root: Mspg) -> Self {
        Workflow { dag, root }
    }

    /// Derives the dependence edges of every serial composition: for each
    /// consecutive pair in a `Series`, each sink task `s` of the left part
    /// sends its *primary output file* to every source task of the right
    /// part.
    ///
    /// Idempotence is not attempted: call exactly once on an edge-free DAG.
    ///
    /// # Panics
    /// Panics if a serial-composition sink has no primary output file.
    pub fn wire(&mut self) {
        // Take the expression out of `self` while mutating the DAG (the
        // borrow checker forbids holding both); a million-node Series
        // must not be cloned per wiring.
        let root = std::mem::replace(&mut self.root, Mspg::Series(Vec::new()));
        Self::wire_expr(&mut self.dag, &root);
        self.root = root;
    }

    fn wire_expr(dag: &mut Dag, expr: &Mspg) {
        match expr {
            Mspg::Task(_) => {}
            Mspg::Parallel(cs) => {
                for c in cs {
                    Self::wire_expr(dag, c);
                }
            }
            Mspg::Series(cs) => {
                for c in cs {
                    Self::wire_expr(dag, c);
                }
                for pair in cs.windows(2) {
                    // Task ⊳ Task pairs (the bulk of a long chain) skip
                    // the sink/source Vec collection entirely.
                    if let (&Mspg::Task(s), &Mspg::Task(t)) = (&pair[0], &pair[1]) {
                        let f = dag
                            .primary_output(s)
                            .expect("serial-composition sink lacks a primary output file");
                        dag.add_edge(t, f);
                        continue;
                    }
                    let sinks = pair[0].sink_tasks();
                    let sources = pair[1].source_tasks();
                    for &s in &sinks {
                        let f = dag
                            .primary_output(s)
                            .expect("serial-composition sink lacks a primary output file");
                        for &t in &sources {
                            dag.add_edge(t, f);
                        }
                    }
                }
            }
        }
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.dag.n_tasks()
    }

    /// Communication-to-Computation Ratio for stable-storage bandwidth `bw`
    /// (bytes/s): total file store time over total failure-free compute
    /// time (§VI-A).
    pub fn ccr(&self, bw: f64) -> f64 {
        (self.dag.total_data_volume() / bw) / self.dag.total_weight()
    }

    /// Validates DAG invariants, expression normal form, and that the
    /// expression covers each task exactly once.
    pub fn validate(&self) -> Result<(), WorkflowError> {
        self.dag.validate().map_err(WorkflowError::Dag)?;
        if !self.root.is_normalized() {
            return Err(WorkflowError::NotNormalized);
        }
        let mut seen = vec![false; self.dag.n_tasks()];
        let mut tasks = Vec::with_capacity(self.dag.n_tasks());
        self.root.collect_tasks(&mut tasks);
        if tasks.len() != self.dag.n_tasks() {
            return Err(WorkflowError::BadTaskCover);
        }
        for t in tasks {
            if seen[t.index()] {
                return Err(WorkflowError::BadTaskCover);
            }
            seen[t.index()] = true;
        }
        Ok(())
    }

    /// Structural linearization of the whole workflow (a valid topological
    /// order; see [`crate::linearize`] for alternatives).
    pub fn structural_order(&self) -> Vec<TaskId> {
        self.root.tasks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fork-join: a ⊳ (b ∥ c) ⊳ d, with explicit primary outputs.
    fn fork_join() -> Workflow {
        let mut dag = Dag::new();
        let k = dag.add_kind("t");
        let a = dag.add_task_with_output("a", k, 1.0, 100.0);
        let b = dag.add_task_with_output("b", k, 2.0, 200.0);
        let c = dag.add_task_with_output("c", k, 3.0, 300.0);
        let d = dag.add_task_with_output("d", k, 4.0, 400.0);
        let root = Mspg::series([
            Mspg::Task(a),
            Mspg::parallel([Mspg::Task(b), Mspg::Task(c)]).unwrap(),
            Mspg::Task(d),
        ])
        .unwrap();
        Workflow::new(dag, root)
    }

    #[test]
    fn wire_creates_fork_join_edges() {
        let w = fork_join();
        assert_eq!(w.dag.n_edges(), 4); // a→b, a→c, b→d, c→d
        let a = TaskId(0);
        let d = TaskId(3);
        assert_eq!(w.dag.succs(a).len(), 2);
        assert_eq!(w.dag.preds(d).len(), 2);
        // a's single output file feeds both b and c.
        let fa = w.dag.primary_output(a).unwrap();
        assert_eq!(w.dag.consumers(fa).len(), 2);
        assert!(w.validate().is_ok());
    }

    #[test]
    fn bipartite_wiring() {
        // (a ∥ b) ⊳ (c ∥ d): complete bipartite, 4 edges, 2 files.
        let mut dag = Dag::new();
        let k = dag.add_kind("t");
        let a = dag.add_task_with_output("a", k, 1.0, 1.0);
        let b = dag.add_task_with_output("b", k, 1.0, 1.0);
        let c = dag.add_task_with_output("c", k, 1.0, 1.0);
        let d = dag.add_task_with_output("d", k, 1.0, 1.0);
        let root = Mspg::series([
            Mspg::parallel([Mspg::Task(a), Mspg::Task(b)]).unwrap(),
            Mspg::parallel([Mspg::Task(c), Mspg::Task(d)]).unwrap(),
        ])
        .unwrap();
        let w = Workflow::new(dag, root);
        assert_eq!(w.dag.n_edges(), 4);
        assert_eq!(w.dag.preds(c).len(), 2);
        assert_eq!(w.dag.preds(d).len(), 2);
        assert!(w.validate().is_ok());
    }

    #[test]
    fn ccr_definition() {
        let w = fork_join();
        // volume = 1000 bytes, weight = 10 s; bw = 100 B/s → CCR = 1.
        assert!((w.ccr(100.0) - 1.0).abs() < 1e-12);
        assert!((w.ccr(1000.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn structural_order_is_topological() {
        let w = fork_join();
        let order = w.structural_order();
        assert!(w.dag.is_topological(&order));
    }

    #[test]
    fn validate_rejects_duplicate_cover() {
        let mut dag = Dag::new();
        let k = dag.add_kind("t");
        let a = dag.add_task_with_output("a", k, 1.0, 1.0);
        let _b = dag.add_task_with_output("b", k, 1.0, 1.0);
        let root = Mspg::parallel([Mspg::Task(a), Mspg::Task(a)]).unwrap();
        let w = Workflow::from_wired(dag, root);
        assert_eq!(w.validate(), Err(WorkflowError::BadTaskCover));
    }

    #[test]
    fn validate_rejects_missing_cover() {
        let mut dag = Dag::new();
        let k = dag.add_kind("t");
        let a = dag.add_task_with_output("a", k, 1.0, 1.0);
        let _b = dag.add_task_with_output("b", k, 1.0, 1.0);
        let w = Workflow::from_wired(dag, Mspg::Task(a));
        assert_eq!(w.validate(), Err(WorkflowError::BadTaskCover));
    }
}
