//! Graphviz (DOT) export for debugging and documentation.

use crate::dag::Dag;
use crate::task::TaskId;

/// Renders the DAG in Graphviz DOT syntax.
///
/// `checkpointed`, if given, must be indexed by task id; checkpointed tasks
/// are drawn shaded, mirroring the paper's figures.
pub fn to_dot(dag: &Dag, checkpointed: Option<&[bool]>) -> String {
    let mut out = String::with_capacity(64 * dag.n_tasks());
    out.push_str("digraph workflow {\n  rankdir=TB;\n  node [shape=box];\n");
    for t in dag.task_ids() {
        let task = dag.task(t);
        let shaded = checkpointed
            .map(|c| c.get(t.index()).copied().unwrap_or(false))
            .unwrap_or(false);
        let style = if shaded {
            ", style=filled, fillcolor=gray80"
        } else {
            ""
        };
        out.push_str(&format!(
            "  {} [label=\"{}\\nw={:.2}\"{}];\n",
            t.0, task.name, task.weight, style
        ));
    }
    for t in dag.task_ids() {
        for &(v, f) in dag.succs(t) {
            out.push_str(&format!(
                "  {} -> {} [label=\"{} ({:.0}B)\"];\n",
                t.0,
                v.0,
                dag.file(f).name,
                dag.file(f).size
            ));
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a per-processor schedule as a DOT cluster diagram (one cluster
/// per processor, tasks in execution order).
pub fn schedule_to_dot(dag: &Dag, per_proc: &[Vec<TaskId>]) -> String {
    let mut out = String::new();
    out.push_str("digraph schedule {\n  rankdir=LR;\n  node [shape=box];\n");
    for (p, tasks) in per_proc.iter().enumerate() {
        out.push_str(&format!("  subgraph cluster_{p} {{\n    label=\"P{p}\";\n"));
        for &t in tasks {
            out.push_str(&format!("    {} [label=\"{}\"];\n", t.0, dag.task(t).name));
        }
        // Serialization edges.
        for w in tasks.windows(2) {
            out.push_str(&format!("    {} -> {} [style=dashed];\n", w[0].0, w[1].0));
        }
        out.push_str("  }\n");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dag {
        let mut g = Dag::new();
        let k = g.add_kind("t");
        let a = g.add_task_with_output("alpha", k, 1.0, 10.0);
        let _b = g.add_task_with_output("beta", k, 2.0, 20.0);
        let fa = g.primary_output(a).unwrap();
        g.add_edge(TaskId(1), fa);
        g
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let g = tiny();
        let s = to_dot(&g, None);
        assert!(s.starts_with("digraph workflow {"));
        assert!(s.contains("alpha"));
        assert!(s.contains("beta"));
        assert!(s.contains("0 -> 1"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn checkpointed_tasks_are_shaded() {
        let g = tiny();
        let s = to_dot(&g, Some(&[true, false]));
        assert!(s.contains("fillcolor=gray80"));
    }

    #[test]
    fn schedule_dot_has_clusters() {
        let g = tiny();
        let s = schedule_to_dot(&g, &[vec![TaskId(0), TaskId(1)]]);
        assert!(s.contains("cluster_0"));
        assert!(s.contains("style=dashed"));
    }
}
