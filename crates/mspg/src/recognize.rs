//! Recognition of arbitrary DAGs as M-SPGs.
//!
//! Given a [`Dag`], [`recognize`] either recovers a normalized [`Mspg`]
//! expression whose wiring reproduces exactly the DAG's (deduplicated)
//! dependence relation, or reports why the DAG is outside the class.
//!
//! The algorithm peels *serial cuts*: a partition `(A, B)` of a connected
//! task set is a serial cut iff every crossing edge goes from a sink of `A`
//! to a source of `B` and the crossing relation is the **complete**
//! bipartite product `sinks(A) × sources(B)` (the definition of `⊳`). In
//! any series composition every element of `A` is an ancestor of every
//! element of `B`, so every topological order enumerates `A` entirely
//! before `B`; it therefore suffices to scan prefix positions of one fixed
//! topological order, maintaining incremental sink/source/crossing
//! counters. Smallest cuts are peeled first (the head is then
//! serial-irreducible), disconnected sets become parallel compositions, and
//! singletons are atomic tasks.

use crate::dag::Dag;
use crate::expr::Mspg;
use crate::task::TaskId;

/// Error: the DAG is not an M-SPG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NotMspg {
    /// The connected task set that is neither atomic, nor serially
    /// splittable, nor disconnected.
    pub witness: Vec<TaskId>,
}

impl std::fmt::Display for NotMspg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "not an M-SPG: {} connected tasks admit no serial cut (first: {})",
            self.witness.len(),
            self.witness
                .first()
                .map(|t| t.to_string())
                .unwrap_or_default()
        )
    }
}

impl std::error::Error for NotMspg {}

/// Attempts to recover the M-SPG structure of the whole DAG.
///
/// On success the returned expression is normalized, covers every task
/// exactly once, and `Workflow::new(dag', expr)` on an edge-free copy of the
/// task/file storage would re-create the same (deduplicated) dependence
/// relation up to the choice of transported files.
pub fn recognize(dag: &Dag) -> Result<Mspg, NotMspg> {
    assert!(dag.n_tasks() > 0, "recognize: empty DAG");
    let all: Vec<TaskId> = dag.task_ids().collect();
    recognize_set(dag, &all)
}

/// Recognizes the sub-DAG induced by `tasks`.
pub fn recognize_set(dag: &Dag, tasks: &[TaskId]) -> Result<Mspg, NotMspg> {
    assert!(!tasks.is_empty());
    if tasks.len() == 1 {
        return Ok(Mspg::Task(tasks[0]));
    }
    // Split into weakly connected components first.
    let comps = weak_components(dag, tasks);
    if comps.len() > 1 {
        let parts: Result<Vec<Mspg>, NotMspg> =
            comps.iter().map(|c| recognize_set(dag, c)).collect();
        return Ok(Mspg::parallel(parts?).expect(">=2 components"));
    }
    // Connected: peel serial cuts left to right.
    let order = induced_topo(dag, tasks);
    let mut parts: Vec<Mspg> = Vec::new();
    let mut rest: &[TaskId] = &order;
    while rest.len() > 1 {
        match smallest_serial_cut(dag, rest) {
            Some(k) => {
                parts.push(recognize_head(dag, &rest[..k])?);
                rest = &rest[k..];
            }
            None => {
                if parts.is_empty() {
                    // Connected, >1 task, no serial cut anywhere.
                    return Err(NotMspg {
                        witness: rest.to_vec(),
                    });
                }
                parts.push(recognize_set(dag, rest)?);
                rest = &[];
                break;
            }
        }
    }
    if rest.len() == 1 {
        parts.push(Mspg::Task(rest[0]));
    }
    Ok(Mspg::series(parts).expect("non-empty series"))
}

/// Recognizes a serial-irreducible head (atomic or parallel; recursing into
/// `recognize_set` handles both, including nested structure inside the
/// parallel branches).
fn recognize_head(dag: &Dag, tasks: &[TaskId]) -> Result<Mspg, NotMspg> {
    recognize_set(dag, tasks)
}

/// Weakly connected components of the induced sub-DAG, each sorted by id,
/// components ordered by smallest member.
fn weak_components(dag: &Dag, tasks: &[TaskId]) -> Vec<Vec<TaskId>> {
    let n = dag.n_tasks();
    let mut member = vec![false; n];
    for &t in tasks {
        member[t.index()] = true;
    }
    let mut comp = vec![usize::MAX; n];
    let mut comps: Vec<Vec<TaskId>> = Vec::new();
    let mut stack = Vec::new();
    let mut sorted = tasks.to_vec();
    sorted.sort_unstable();
    for &start in &sorted {
        if comp[start.index()] != usize::MAX {
            continue;
        }
        let cid = comps.len();
        comps.push(Vec::new());
        stack.push(start);
        comp[start.index()] = cid;
        while let Some(t) = stack.pop() {
            comps[cid].push(t);
            for &(v, _) in dag.succs(t) {
                if member[v.index()] && comp[v.index()] == usize::MAX {
                    comp[v.index()] = cid;
                    stack.push(v);
                }
            }
            for &(u, _) in dag.preds(t) {
                if member[u.index()] && comp[u.index()] == usize::MAX {
                    comp[u.index()] = cid;
                    stack.push(u);
                }
            }
        }
        comps[cid].sort_unstable();
    }
    comps
}

/// Deterministic topological order of the induced sub-DAG (smallest id
/// first among ready tasks).
fn induced_topo(dag: &Dag, tasks: &[TaskId]) -> Vec<TaskId> {
    let n = dag.n_tasks();
    let mut member = vec![false; n];
    for &t in tasks {
        member[t.index()] = true;
    }
    let mut indeg = vec![0usize; n];
    for &t in tasks {
        for u in distinct_preds_in(dag, t, &member) {
            let _ = u;
            indeg[t.index()] += 1;
        }
    }
    let mut ready: Vec<TaskId> = tasks
        .iter()
        .copied()
        .filter(|t| indeg[t.index()] == 0)
        .collect();
    ready.sort_unstable_by(|a, b| b.cmp(a));
    let mut order = Vec::with_capacity(tasks.len());
    while let Some(t) = ready.pop() {
        order.push(t);
        for v in distinct_succs_in(dag, t, &member) {
            indeg[v.index()] -= 1;
            if indeg[v.index()] == 0 {
                let pos = ready.binary_search_by(|x| v.cmp(x)).unwrap_or_else(|e| e);
                ready.insert(pos, v);
            }
        }
    }
    assert_eq!(order.len(), tasks.len(), "induced subgraph has a cycle");
    order
}

fn distinct_succs_in(dag: &Dag, t: TaskId, member: &[bool]) -> Vec<TaskId> {
    let mut out: Vec<TaskId> = Vec::new();
    for &(v, _) in dag.succs(t) {
        if member[v.index()] && !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

fn distinct_preds_in(dag: &Dag, t: TaskId, member: &[bool]) -> Vec<TaskId> {
    let mut out: Vec<TaskId> = Vec::new();
    for &(u, _) in dag.preds(t) {
        if member[u.index()] && !out.contains(&u) {
            out.push(u);
        }
    }
    out
}

/// Finds the smallest `k` (0 < k < n) such that `(order[..k], order[k..])`
/// is a serial cut of the induced sub-DAG, or `None`.
fn smallest_serial_cut(dag: &Dag, order: &[TaskId]) -> Option<usize> {
    let n_all = dag.n_tasks();
    let n = order.len();
    let mut member = vec![false; n_all];
    for &t in order {
        member[t.index()] = true;
    }
    // Per-task distinct degree within the set.
    let mut dsucc = vec![0usize; n_all];
    let mut dpred = vec![0usize; n_all];
    for &t in order {
        dsucc[t.index()] = distinct_succs_in(dag, t, &member).len();
        dpred[t.index()] = distinct_preds_in(dag, t, &member).len();
    }
    let mut in_a = vec![false; n_all];
    let mut succ_in_b = vec![0usize; n_all]; // for tasks in A
    let mut pred_in_a = vec![0usize; n_all]; // for tasks in B
    let mut sinks = 0usize; // |sinks(A)|
    let mut sources = order.iter().filter(|t| dpred[t.index()] == 0).count(); // |sources(B)|, A empty initially
    let mut open_pairs = 0usize;

    for k in 1..n {
        let v = order[k - 1];
        // Move v from B to A.
        debug_assert_eq!(
            pred_in_a[v.index()],
            dpred[v.index()],
            "topo order violated"
        );
        sources -= 1; // v was a source of B (all its preds already in A)
        open_pairs -= dpred[v.index()];
        open_pairs += dsucc[v.index()];
        in_a[v.index()] = true;
        succ_in_b[v.index()] = dsucc[v.index()];
        sinks += 1; // all of v's succs are still in B
        for u in distinct_preds_in(dag, v, &member) {
            if succ_in_b[u.index()] == dsucc[u.index()] {
                sinks -= 1; // u stops being a sink of A
            }
            succ_in_b[u.index()] -= 1;
        }
        for w in distinct_succs_in(dag, v, &member) {
            pred_in_a[w.index()] += 1;
            if pred_in_a[w.index()] == dpred[w.index()] {
                sources += 1; // w became a source of B
            }
        }
        // Quick counter test, then exact verification.
        if open_pairs == sinks * sources
            && open_pairs > 0
            && verify_cut(
                dag,
                &order[..k],
                &member,
                &in_a,
                &succ_in_b,
                &dsucc,
                &pred_in_a,
                &dpred,
                sources,
                open_pairs,
            )
        {
            return Some(k);
        }
    }
    None
}

/// Exact check that the crossing relation equals `sinks(A) × sources(B)`.
#[allow(clippy::too_many_arguments)]
fn verify_cut(
    dag: &Dag,
    a: &[TaskId],
    member: &[bool],
    in_a: &[bool],
    succ_in_b: &[usize],
    dsucc: &[usize],
    pred_in_a: &[usize],
    dpred: &[usize],
    sources: usize,
    open_pairs: usize,
) -> bool {
    let is_source_of_b = |v: TaskId| {
        member[v.index()] && !in_a[v.index()] && pred_in_a[v.index()] == dpred[v.index()]
    };
    let mut crossing_from_sinks = 0usize;
    for &u in a {
        let is_sink = succ_in_b[u.index()] == dsucc[u.index()];
        if !is_sink {
            continue;
        }
        let targets = distinct_succs_in(dag, u, member);
        // A sink's crossing targets must be exactly the sources of B.
        if targets.len() != sources {
            return false;
        }
        if !targets.into_iter().all(is_source_of_b) {
            return false;
        }
        crossing_from_sinks += sources;
    }
    // No crossing edges may originate from non-sinks.
    crossing_from_sinks == open_pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::Workflow;

    fn dag_with(n: usize, edges: &[(u32, u32)]) -> Dag {
        let mut g = Dag::new();
        let k = g.add_kind("t");
        for i in 0..n {
            g.add_task_with_output(&format!("t{i}"), k, 1.0, 1.0);
        }
        for &(u, v) in edges {
            let f = g.primary_output(TaskId(u)).unwrap();
            g.add_edge(TaskId(v), f);
        }
        g
    }

    #[test]
    fn single_task() {
        let g = dag_with(1, &[]);
        assert_eq!(recognize(&g).unwrap(), Mspg::Task(TaskId(0)));
    }

    #[test]
    fn chain() {
        let g = dag_with(3, &[(0, 1), (1, 2)]);
        let e = recognize(&g).unwrap();
        assert_eq!(e, Mspg::chain([TaskId(0), TaskId(1), TaskId(2)]).unwrap());
    }

    #[test]
    fn independent_tasks_are_parallel() {
        let g = dag_with(3, &[]);
        let e = recognize(&g).unwrap();
        assert!(matches!(e, Mspg::Parallel(ref cs) if cs.len() == 3));
    }

    #[test]
    fn fork_join_diamond() {
        let g = dag_with(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let e = recognize(&g).unwrap();
        let expect = Mspg::series([
            Mspg::Task(TaskId(0)),
            Mspg::parallel([Mspg::Task(TaskId(1)), Mspg::Task(TaskId(2))]).unwrap(),
            Mspg::Task(TaskId(3)),
        ])
        .unwrap();
        assert_eq!(e, expect);
    }

    #[test]
    fn complete_bipartite_is_mspg() {
        // (0 ∥ 1) ⊳ (2 ∥ 3): the Figure 1(c) pattern.
        let g = dag_with(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]);
        let e = recognize(&g).unwrap();
        let expect = Mspg::series([
            Mspg::parallel([Mspg::Task(TaskId(0)), Mspg::Task(TaskId(1))]).unwrap(),
            Mspg::parallel([Mspg::Task(TaskId(2)), Mspg::Task(TaskId(3))]).unwrap(),
        ])
        .unwrap();
        assert_eq!(e, expect);
    }

    #[test]
    fn incomplete_bipartite_is_not_mspg() {
        // Missing edge 1→2: the Ligo artifact of §VI-A.
        let g = dag_with(4, &[(0, 2), (0, 3), (1, 3)]);
        assert!(recognize(&g).is_err());
    }

    #[test]
    fn n_graph_is_not_mspg() {
        // The classical non-SP "N": 0→2, 0→3, 1→3.
        let g = dag_with(4, &[(0, 2), (0, 3), (1, 3)]);
        assert!(recognize(&g).is_err());
    }

    #[test]
    fn recognize_roundtrips_random_workflows() {
        for seed in 0..20 {
            let w = crate::gen::random_workflow(&crate::gen::GenConfig {
                n_tasks: 40,
                max_branch: 4,
                weight_range: (1.0, 10.0),
                size_range: (1.0, 10.0),
                seed,
            });
            let e = recognize(&w.dag).unwrap_or_else(|err| panic!("seed {seed}: {err}"));
            // The recovered structure must cover all tasks exactly once…
            let mut got = e.tasks();
            got.sort_unstable();
            let mut want: Vec<TaskId> = w.dag.task_ids().collect();
            want.sort_unstable();
            assert_eq!(got, want);
            // …and re-wiring it must reproduce the same dependence relation.
            let mut rebuilt = Dag::new();
            let k = rebuilt.add_kind("t");
            for t in w.dag.task_ids() {
                rebuilt.add_task_with_output(&w.dag.task(t).name, k, w.dag.weight(t), 1.0);
            }
            let w2 = Workflow::new(rebuilt, e);
            for t in w.dag.task_ids() {
                let mut s1: Vec<TaskId> = w.dag.succs(t).iter().map(|&(v, _)| v).collect();
                let mut s2: Vec<TaskId> = w2.dag.succs(t).iter().map(|&(v, _)| v).collect();
                s1.sort_unstable();
                s1.dedup();
                s2.sort_unstable();
                s2.dedup();
                assert_eq!(s1, s2, "seed {seed}, task {t}");
            }
        }
    }

    #[test]
    fn nested_structure() {
        // 0 ⊳ ((1 ⊳ 2) ∥ 3) ⊳ 4
        let g = dag_with(5, &[(0, 1), (0, 3), (1, 2), (2, 4), (3, 4)]);
        let e = recognize(&g).unwrap();
        assert!(e.is_normalized());
        assert_eq!(e.n_tasks(), 5);
        let d = crate::decompose::decompose(&e);
        assert_eq!(d.chain, vec![TaskId(0)]);
        assert_eq!(d.parallel.len(), 2);
    }

    #[test]
    fn multi_edges_dedup_in_recognition() {
        // Two files both going 0 → 1 still form a chain.
        let mut g = dag_with(2, &[(0, 1)]);
        let extra = g.add_file("extra", 2.0, Some(TaskId(0)));
        g.add_edge(TaskId(1), extra);
        let e = recognize(&g).unwrap();
        assert_eq!(e, Mspg::chain([TaskId(0), TaskId(1)]).unwrap());
    }
}
