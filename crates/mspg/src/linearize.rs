//! Linearizations of task sets onto a single processor.
//!
//! `OnOneProcessor` (Algorithm 1, lines 38–41) performs "a random
//! topological sort" of a sub-M-SPG's tasks. This module provides that,
//! plus a deterministic structural order and the volume-minimizing greedy
//! order suggested as future work in §VIII (related to the NP-complete
//! *sum cut* problem).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dag::Dag;
use crate::task::TaskId;

/// Which linearization `OnOneProcessor` uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Linearizer {
    /// Depth-first structural order of the expression (deterministic).
    Structural,
    /// Uniform random topological order (Kahn with random ready pick),
    /// seeded — the paper's default.
    RandomTopo,
    /// Greedy live-volume-minimizing topological order (sum-cut heuristic,
    /// §VIII future work; evaluated by ablation E6).
    MinVolume,
}

/// Computes, for the sub-DAG induced by `tasks`, the in-degree of every
/// member counting only internal edges (deduplicated by predecessor task).
fn internal_indegrees(dag: &Dag, tasks: &[TaskId], member: &[bool]) -> Vec<usize> {
    let mut indeg = vec![0usize; dag.n_tasks()];
    for &t in tasks {
        let mut seen: Vec<TaskId> = Vec::new();
        for &(u, _) in dag.preds(t) {
            if member[u.index()] && !seen.contains(&u) {
                seen.push(u);
                indeg[t.index()] += 1;
            }
        }
    }
    indeg
}

/// Membership bitmap over the full DAG for `tasks`.
fn membership(dag: &Dag, tasks: &[TaskId]) -> Vec<bool> {
    let mut member = vec![false; dag.n_tasks()];
    for &t in tasks {
        member[t.index()] = true;
    }
    member
}

/// Seeded uniform-random topological order of the sub-DAG induced by
/// `tasks` (Kahn's algorithm choosing uniformly among ready tasks).
pub fn topo_random(dag: &Dag, tasks: &[TaskId], seed: u64) -> Vec<TaskId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let member = membership(dag, tasks);
    let mut indeg = internal_indegrees(dag, tasks, &member);
    let mut ready: Vec<TaskId> = tasks
        .iter()
        .copied()
        .filter(|t| indeg[t.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(tasks.len());
    while !ready.is_empty() {
        let i = rng.gen_range(0..ready.len());
        let t = ready.swap_remove(i);
        order.push(t);
        release(dag, t, &member, &mut indeg, &mut ready);
    }
    assert_eq!(
        order.len(),
        tasks.len(),
        "topo_random: cyclic induced subgraph"
    );
    order
}

/// Greedy topological order minimizing, at each step, the increase in live
/// data volume (bytes produced and still needed minus bytes fully
/// consumed). Ties break on smaller task id, keeping the order
/// deterministic.
pub fn topo_min_volume(dag: &Dag, tasks: &[TaskId]) -> Vec<TaskId> {
    let member = membership(dag, tasks);
    let mut indeg = internal_indegrees(dag, tasks, &member);
    let mut done = vec![false; dag.n_tasks()];
    // Remaining internal consumers per file.
    let mut remaining: Vec<usize> = vec![0; dag.n_files()];
    for &t in tasks {
        let mut seen: Vec<crate::file::FileId> = Vec::new();
        for &(u, f) in dag.preds(t) {
            if member[u.index()] && !seen.contains(&f) {
                seen.push(f);
                remaining[f.index()] += 1;
            }
        }
    }
    let mut ready: Vec<TaskId> = tasks
        .iter()
        .copied()
        .filter(|t| indeg[t.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(tasks.len());
    while !ready.is_empty() {
        let mut best = 0usize;
        let mut best_delta = f64::INFINITY;
        for (i, &t) in ready.iter().enumerate() {
            let delta = volume_delta(dag, t, &member, &remaining);
            if delta < best_delta || (delta == best_delta && t < ready[best]) {
                best = i;
                best_delta = delta;
            }
        }
        let t = ready.swap_remove(best);
        order.push(t);
        done[t.index()] = true;
        // Consume inputs.
        let mut seen: Vec<crate::file::FileId> = Vec::new();
        for &(u, f) in dag.preds(t) {
            if member[u.index()] && !seen.contains(&f) {
                seen.push(f);
                remaining[f.index()] -= 1;
            }
        }
        release(dag, t, &member, &mut indeg, &mut ready);
    }
    assert_eq!(
        order.len(),
        tasks.len(),
        "topo_min_volume: cyclic induced subgraph"
    );
    order
}

/// Live-volume change from executing `t` now: bytes of `t`'s outputs that
/// internal consumers still need, minus bytes of `t`'s inputs that become
/// dead (last internal consumer).
fn volume_delta(dag: &Dag, t: TaskId, member: &[bool], remaining: &[usize]) -> f64 {
    let mut delta = 0.0;
    for &f in dag.output_files(t) {
        let consumed_internally = dag
            .consumers(f)
            .iter()
            .any(|&c| member[c.index()] && c != t);
        if consumed_internally {
            delta += dag.file(f).size;
        }
    }
    let mut seen: Vec<crate::file::FileId> = Vec::new();
    for &(u, f) in dag.preds(t) {
        if member[u.index()] && !seen.contains(&f) {
            seen.push(f);
            if remaining[f.index()] == 1 {
                delta -= dag.file(f).size;
            }
        }
    }
    delta
}

fn release(dag: &Dag, t: TaskId, member: &[bool], indeg: &mut [usize], ready: &mut Vec<TaskId>) {
    let mut seen: Vec<TaskId> = Vec::new();
    for &(v, _) in dag.succs(t) {
        if member[v.index()] && !seen.contains(&v) {
            seen.push(v);
            indeg[v.index()] -= 1;
            if indeg[v.index()] == 0 {
                ready.push(v);
            }
        }
    }
}

/// Checks that `order` is a valid topological order of the sub-DAG induced
/// by its own task set.
pub fn is_topological_induced(dag: &Dag, order: &[TaskId]) -> bool {
    let mut pos = vec![usize::MAX; dag.n_tasks()];
    for (i, &t) in order.iter().enumerate() {
        if pos[t.index()] != usize::MAX {
            return false;
        }
        pos[t.index()] = i;
    }
    for &t in order {
        for &(v, _) in dag.succs(t) {
            if pos[v.index()] != usize::MAX && pos[t.index()] >= pos[v.index()] {
                return false;
            }
        }
    }
    true
}

/// Dispatches on the chosen [`Linearizer`]. `structural` must be the
/// depth-first expression order of exactly the same task set.
pub fn linearize(dag: &Dag, structural: Vec<TaskId>, how: Linearizer, seed: u64) -> Vec<TaskId> {
    match how {
        Linearizer::Structural => structural,
        Linearizer::RandomTopo => topo_random(dag, &structural, seed),
        Linearizer::MinVolume => topo_min_volume(dag, &structural),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Mspg;
    use crate::workflow::Workflow;

    fn fork_join_x2() -> Workflow {
        // a ⊳ (b ∥ c ∥ d) ⊳ e ⊳ (f ∥ g) ⊳ h
        let mut dag = Dag::new();
        let k = dag.add_kind("t");
        let mut tasks = Vec::new();
        for (name, w, s) in [
            ("a", 1.0, 10.0),
            ("b", 2.0, 5.0),
            ("c", 2.0, 50.0),
            ("d", 2.0, 5.0),
            ("e", 1.0, 10.0),
            ("f", 3.0, 1.0),
            ("g", 3.0, 1.0),
            ("h", 1.0, 1.0),
        ] {
            tasks.push(dag.add_task_with_output(name, k, w, s));
        }
        let t = |i: usize| Mspg::Task(tasks[i]);
        let root = Mspg::series([
            t(0),
            Mspg::parallel([t(1), t(2), t(3)]).unwrap(),
            t(4),
            Mspg::parallel([t(5), t(6)]).unwrap(),
            t(7),
        ])
        .unwrap();
        Workflow::new(dag, root)
    }

    #[test]
    fn random_topo_is_valid_and_seed_deterministic() {
        let w = fork_join_x2();
        let tasks = w.structural_order();
        let o1 = topo_random(&w.dag, &tasks, 42);
        let o2 = topo_random(&w.dag, &tasks, 42);
        let o3 = topo_random(&w.dag, &tasks, 43);
        assert_eq!(o1, o2);
        assert!(is_topological_induced(&w.dag, &o1));
        assert!(is_topological_induced(&w.dag, &o3));
    }

    #[test]
    fn random_topo_varies_with_seed() {
        let w = fork_join_x2();
        let tasks = w.structural_order();
        let distinct: std::collections::HashSet<Vec<TaskId>> =
            (0..32).map(|s| topo_random(&w.dag, &tasks, s)).collect();
        assert!(
            distinct.len() > 1,
            "32 seeds should produce >1 distinct order"
        );
    }

    #[test]
    fn min_volume_is_valid_topo() {
        let w = fork_join_x2();
        let tasks = w.structural_order();
        let o = topo_min_volume(&w.dag, &tasks);
        assert!(is_topological_induced(&w.dag, &o));
        assert_eq!(o.len(), tasks.len());
    }

    #[test]
    fn min_volume_defers_fat_outputs() {
        // Among b (5 bytes), c (50 bytes), d (5 bytes), the greedy order
        // should schedule c last so its big output stays live as briefly as
        // possible.
        let w = fork_join_x2();
        let tasks = w.structural_order();
        let o = topo_min_volume(&w.dag, &tasks);
        let pos = |name: &str| o.iter().position(|&t| w.dag.task(t).name == name).unwrap();
        assert!(pos("c") > pos("b"));
        assert!(pos("c") > pos("d"));
    }

    #[test]
    fn subgraph_linearization() {
        // Linearizing only the middle parallel block works on the induced
        // sub-DAG (no internal edges → any permutation is fine).
        let w = fork_join_x2();
        let sub: Vec<TaskId> = vec![TaskId(1), TaskId(2), TaskId(3)];
        let o = topo_random(&w.dag, &sub, 7);
        assert_eq!(o.len(), 3);
        let mut s = o.clone();
        s.sort_unstable();
        assert_eq!(s, sub);
    }

    #[test]
    fn structural_dispatch_passthrough() {
        let w = fork_join_x2();
        let tasks = w.structural_order();
        let o = linearize(&w.dag, tasks.clone(), Linearizer::Structural, 0);
        assert_eq!(o, tasks);
    }
}
