//! Tasks (workflow vertices) and their identifiers.

use std::fmt;

/// Identifier of a task: a dense index into [`crate::Dag`] storage.
///
/// Using a `u32` newtype rather than `usize` halves the footprint of edge
/// lists on 64-bit platforms, which matters for the 10⁵-edge bipartite
/// stages of the larger Pegasus-style workflows.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The task's index into dense per-task arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of an interned task *kind* (e.g. `mProjectPP`, `fastq2bfq`).
///
/// Kinds are interned in the owning [`crate::Dag`] so that tasks store a
/// 2-byte id instead of a heap string.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct KindId(pub u16);

impl KindId {
    /// The kind's index into the owning DAG's kind table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A workflow task: an atomic unit of sequential computation.
///
/// `weight` is the task's failure-free execution time in seconds (the
/// paper's `wᵢ`).
#[derive(Clone, Debug)]
pub struct Task {
    /// Human-readable name, unique within a workflow (used by DOT export
    /// and the text serialization format).
    pub name: String,
    /// Interned task kind.
    pub kind: KindId,
    /// Failure-free execution time, in seconds. Must be finite and `>= 0`.
    pub weight: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_id_roundtrip() {
        let t = TaskId(7);
        assert_eq!(t.index(), 7);
        assert_eq!(t.to_string(), "T7");
    }

    #[test]
    fn task_id_ordering_follows_index() {
        assert!(TaskId(1) < TaskId(2));
        assert_eq!(TaskId(3), TaskId(3));
    }

    #[test]
    fn kind_id_index() {
        assert_eq!(KindId(5).index(), 5);
    }
}
