//! Dummy-edge patching of near-M-SPG DAGs.
//!
//! §VI-A of the paper: "the baseline strategies process the original
//! workflow while CkptSome processes a workflow where bipartite graphs have
//! been extended with dummy dependencies carrying empty files (which adds
//! synchronizations but no data transfers)". This module implements that
//! transformation for the Ligo instances (experiment E8).

use crate::dag::Dag;
use crate::task::TaskId;

/// Adds a dummy dependence `u → v` carrying a zero-size file.
///
/// Reuses `u`'s existing dummy file if one was already created by a
/// previous patch, so a patched level adds at most one file per left-side
/// task.
pub fn add_dummy_edge(dag: &mut Dag, u: TaskId, v: TaskId) {
    let dummy = dag
        .output_files(u)
        .iter()
        .copied()
        .find(|&f| dag.file(f).size == 0.0 && dag.file(f).name.ends_with(".dummy"));
    let f = match dummy {
        Some(f) => f,
        None => {
            let name = format!("{}.dummy", dag.task(u).name);
            dag.add_file(name, 0.0, Some(u))
        }
    };
    dag.add_edge(v, f);
}

/// Completes the bipartite dependence relation between two task layers with
/// zero-size dummy edges: after the call, every `left` task has an edge to
/// every `right` task.
///
/// Returns the number of dummy edges added.
pub fn complete_bipartite(dag: &mut Dag, left: &[TaskId], right: &[TaskId]) -> usize {
    let mut added = 0;
    for &u in left {
        let existing: Vec<TaskId> = dag.succs(u).iter().map(|&(v, _)| v).collect();
        for &v in right {
            if !existing.contains(&v) {
                add_dummy_edge(dag, u, v);
                added += 1;
            }
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recognize::recognize;

    fn incomplete_bipartite() -> (Dag, Vec<TaskId>, Vec<TaskId>) {
        let mut g = Dag::new();
        let k = g.add_kind("t");
        let mut left = Vec::new();
        let mut right = Vec::new();
        for i in 0..3 {
            left.push(g.add_task_with_output(&format!("l{i}"), k, 1.0, 5.0));
        }
        for i in 0..3 {
            right.push(g.add_task_with_output(&format!("r{i}"), k, 1.0, 5.0));
        }
        // Each right task reads only from its matching left task: an
        // incomplete bipartite level.
        for i in 0..3 {
            let f = g.primary_output(left[i]).unwrap();
            g.add_edge(right[i], f);
        }
        (g, left, right)
    }

    #[test]
    fn unpatched_is_not_mspg() {
        let (g, _, _) = incomplete_bipartite();
        // Connected? No: it is three parallel 2-chains, which *is* an
        // M-SPG. Add one crossing edge to break it.
        let mut g = g;
        let f = g.primary_output(TaskId(0)).unwrap();
        g.add_edge(TaskId(4), f); // l0 → r1 as well
        assert!(recognize(&g).is_err());
    }

    #[test]
    fn patch_makes_mspg() {
        let (mut g, left, right) = incomplete_bipartite();
        let f = g.primary_output(TaskId(0)).unwrap();
        g.add_edge(TaskId(4), f);
        let added = complete_bipartite(&mut g, &left, &right);
        assert_eq!(added, 9 - 4); // 4 real edges already present
        assert!(recognize(&g).is_ok());
    }

    #[test]
    fn dummy_edges_carry_no_data() {
        let (mut g, left, right) = incomplete_bipartite();
        let before = g.total_data_volume();
        complete_bipartite(&mut g, &left, &right);
        assert_eq!(g.total_data_volume(), before);
    }

    #[test]
    fn dummy_file_reused_per_task() {
        let (mut g, left, right) = incomplete_bipartite();
        let files_before = g.n_files();
        complete_bipartite(&mut g, &left, &right);
        // One dummy file per left task (each missing 2 edges).
        assert_eq!(g.n_files(), files_before + left.len());
        let _ = right;
    }
}
