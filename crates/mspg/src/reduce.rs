//! Transitive reduction and General Series-Parallel Graph (GSPG) support.
//!
//! §VIII of the paper: "A first step would be to deal with General Series
//! Parallel Graphs, which are defined in [13] as graphs whose transitive
//! reduction is an M-SPG."
//!
//! [`transitive_reduction`] rewrites a DAG dropping every dependence edge
//! implied by a longer path. The dropped edge's *data* still matters — the
//! consumer really reads that file — so it is preserved as a **transitive
//! read** ([`crate::Dag::add_transitive_read`]): the file is fetched from
//! stable storage without constraining the schedule (the surviving
//! structure already guarantees the producer's segment — and therefore the
//! file's checkpoint — completes first). [`recognize_gspg`] then recovers
//! the M-SPG expression of the reduced graph, making the whole
//! scheduling/checkpointing pipeline applicable to GSPGs.

use crate::dag::Dag;
use crate::expr::Mspg;
use crate::recognize::{recognize, NotMspg};

/// Per-task descendant bitsets (`reach[t]` has bit `v` set iff there is a
/// non-empty path `t → v`). `O(V·E/64)` words of work.
pub fn reachability(dag: &Dag) -> Vec<Vec<u64>> {
    let n = dag.n_tasks();
    let words = n.div_ceil(64);
    let mut reach = vec![vec![0u64; words]; n];
    let order = dag.topo_order().expect("reachability: cyclic graph");
    for &t in order.iter().rev() {
        // reach(t) = ⋃ over succs s of ({s} ∪ reach(s)).
        let mut acc = vec![0u64; words];
        for &(s, _) in dag.succs(t) {
            acc[s.index() / 64] |= 1u64 << (s.index() % 64);
            for w in 0..words {
                acc[w] |= reach[s.index()][w];
            }
        }
        reach[t.index()] = acc;
    }
    reach
}

#[inline]
fn has_bit(bits: &[u64], i: usize) -> bool {
    bits[i / 64] >> (i % 64) & 1 == 1
}

/// Result of a transitive reduction.
#[derive(Clone, Debug)]
pub struct Reduced {
    /// The rewritten DAG: redundant dependence edges dropped, their files
    /// preserved as transitive reads.
    pub dag: Dag,
    /// Number of dependence edges dropped.
    pub dropped: usize,
}

/// Rewrites `dag` without transitively redundant dependence edges.
///
/// An edge `u → v` is redundant when some other direct successor of `u`
/// reaches `v`. Tasks, kinds, files, weights, workflow inputs and primary
/// outputs are preserved; each dropped edge's file becomes a transitive
/// read of `v`.
pub fn transitive_reduction(dag: &Dag) -> Reduced {
    let reach = reachability(dag);
    let mut out = Dag::new();
    for k in 0..dag.n_kinds() {
        out.add_kind(dag.kind_name(crate::task::KindId(k as u16)));
    }
    for t in dag.task_ids() {
        let task = dag.task(t);
        out.add_task(task.name.clone(), task.kind, task.weight);
    }
    for f in dag.file_ids() {
        let file = dag.file(f);
        out.add_file(file.name.clone(), file.size, dag.producer(f));
    }
    for t in dag.task_ids() {
        if let Some(f) = dag.primary_output(t) {
            out.set_primary_output(t, f);
        }
    }
    let mut dropped = 0usize;
    for v in dag.task_ids() {
        // Distinct predecessor tasks of v (an edge u→v is redundant iff a
        // *different* direct predecessor of v is reachable from u).
        let preds = dag.preds(v);
        for &(u, f) in preds {
            let redundant = preds
                .iter()
                .any(|&(w, _)| w != u && has_bit(&reach[u.index()], w.index()));
            if redundant {
                out.add_transitive_read(v, f);
                dropped += 1;
            } else {
                out.add_edge(v, f);
            }
        }
        for &f in dag.input_files(v) {
            if dag.producer(f).is_none() {
                out.add_input_file(v, f);
            } else {
                out.add_transitive_read(v, f);
            }
        }
    }
    Reduced { dag: out, dropped }
}

/// Recognizes a General SPG: transitively reduces, then recovers the
/// M-SPG expression of the reduction. On success returns the expression
/// together with the reduced DAG (which the scheduling pipeline should
/// use — it carries the dropped edges' files as transitive reads).
pub fn recognize_gspg(dag: &Dag) -> Result<(Mspg, Dag), NotMspg> {
    let reduced = transitive_reduction(dag);
    let expr = recognize(&reduced.dag)?;
    Ok((expr, reduced.dag))
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::task::TaskId;

    /// Diamond a → {b, c} → d plus the shortcut a → d (a GSPG that is not
    /// an M-SPG).
    fn diamond_with_shortcut() -> Dag {
        let mut g = Dag::new();
        let k = g.add_kind("t");
        let a = g.add_task_with_output("a", k, 1.0, 10.0);
        let b = g.add_task_with_output("b", k, 2.0, 20.0);
        let c = g.add_task_with_output("c", k, 3.0, 30.0);
        let d = g.add_task_with_output("d", k, 4.0, 40.0);
        let fa = g.primary_output(a).unwrap();
        let fb = g.primary_output(b).unwrap();
        let fc = g.primary_output(c).unwrap();
        g.add_edge(b, fa);
        g.add_edge(c, fa);
        g.add_edge(d, fb);
        g.add_edge(d, fc);
        g.add_edge(d, fa); // transitive shortcut carrying real data
        let _ = TaskId(0);
        g
    }

    #[test]
    fn reachability_diamond() {
        let g = diamond_with_shortcut();
        let r = reachability(&g);
        assert!(has_bit(&r[0], 1) && has_bit(&r[0], 2) && has_bit(&r[0], 3));
        assert!(has_bit(&r[1], 3));
        assert!(!has_bit(&r[1], 2));
        assert!(r[3].iter().all(|&w| w == 0));
    }

    #[test]
    fn shortcut_is_dropped_but_data_survives() {
        let g = diamond_with_shortcut();
        assert!(recognize(&g).is_err(), "shortcut diamond is not an M-SPG");
        let red = transitive_reduction(&g);
        assert_eq!(red.dropped, 1);
        assert_eq!(red.dag.n_edges(), 4);
        // d still reads a's file — now as a transitive read.
        let d = TaskId(3);
        let fa = red.dag.primary_output(TaskId(0)).unwrap();
        assert!(red.dag.input_files(d).contains(&fa));
        // And a's file still lists d as a consumer (checkpoint dedup).
        assert!(red.dag.consumers(fa).contains(&d));
        // Total data volume unchanged.
        assert_eq!(red.dag.total_data_volume(), g.total_data_volume());
    }

    #[test]
    fn gspg_recognition_succeeds_on_reduction() {
        let g = diamond_with_shortcut();
        let (expr, reduced) = recognize_gspg(&g).expect("diamond+shortcut is a GSPG");
        assert_eq!(expr.n_tasks(), 4);
        assert!(expr.is_normalized());
        assert!(reduced.validate().is_ok());
    }

    #[test]
    fn non_gspg_still_rejected() {
        // The N-graph's reduction is itself (no redundant edges): still
        // not an M-SPG.
        let mut g = Dag::new();
        let k = g.add_kind("t");
        let a = g.add_task_with_output("a", k, 1.0, 1.0);
        let b = g.add_task_with_output("b", k, 1.0, 1.0);
        let c = g.add_task("c", k, 1.0);
        let d = g.add_task("d", k, 1.0);
        let fa = g.primary_output(a).unwrap();
        let fb = g.primary_output(b).unwrap();
        g.add_edge(c, fa);
        g.add_edge(d, fa);
        g.add_edge(d, fb);
        assert!(recognize_gspg(&g).is_err());
    }

    #[test]
    fn already_reduced_graph_is_unchanged() {
        let w = crate::gen::random_workflow(&crate::gen::GenConfig {
            n_tasks: 40,
            seed: 5,
            ..Default::default()
        });
        // M-SPG wiring only creates sink→source edges of serial
        // compositions… which CAN be transitive across nested structure;
        // so just check idempotence of a second reduction.
        let once = transitive_reduction(&w.dag);
        let twice = transitive_reduction(&once.dag);
        assert_eq!(twice.dropped, 0);
        assert_eq!(once.dag.n_edges(), twice.dag.n_edges());
    }

    #[test]
    fn chain_of_shortcuts() {
        // a → b → c with both a→c and even a-file read by c: everything
        // collapses onto the chain.
        let mut g = Dag::new();
        let k = g.add_kind("t");
        let a = g.add_task_with_output("a", k, 1.0, 5.0);
        let b = g.add_task_with_output("b", k, 1.0, 5.0);
        let c = g.add_task_with_output("c", k, 1.0, 5.0);
        let fa = g.primary_output(a).unwrap();
        let fb = g.primary_output(b).unwrap();
        g.add_edge(b, fa);
        g.add_edge(c, fb);
        g.add_edge(c, fa); // redundant
        let (expr, _) = recognize_gspg(&g).unwrap();
        assert_eq!(expr, Mspg::chain([a, b, c]).unwrap());
    }
}
