//! Shared construction helpers for the workflow generators.

use mspg::{Dag, Mspg, TaskId};
use rand::rngs::StdRng;

use crate::profile::KindProfile;

/// Incremental workflow builder: creates tasks from [`KindProfile`]s with
/// seeded sampled runtimes and output sizes, tracking per-kind instance
/// counters for unique names.
pub struct Builder<'a> {
    /// The DAG under construction.
    pub dag: Dag,
    rng: &'a mut StdRng,
    counters: Vec<(String, usize)>,
    /// When `false`, tasks and files get empty names (`String::new()`
    /// allocates nothing) and no per-kind counters are kept. The RNG
    /// draw order is unchanged, so weights and sizes are bit-identical
    /// to the named path. The synthetic generic families use this to
    /// build million-task workflows without two heap allocations per
    /// task on naming alone.
    named: bool,
}

impl<'a> Builder<'a> {
    /// New builder drawing randomness from `rng`.
    pub fn new(rng: &'a mut StdRng) -> Self {
        Builder {
            dag: Dag::new(),
            rng,
            counters: Vec::new(),
            named: true,
        }
    }

    /// A builder for large synthetic workflows: storage reserved for
    /// `n_tasks` tasks (and their primary outputs) up front, and task
    /// naming disabled — see the `named` field. Weights and sizes are
    /// drawn exactly as [`Builder::new`] would.
    pub fn unnamed_with_capacity(rng: &'a mut StdRng, n_tasks: usize) -> Self {
        Builder {
            dag: Dag::with_capacity(n_tasks, n_tasks),
            rng,
            counters: Vec::new(),
            named: false,
        }
    }

    /// Adds one task of the given kind (with its primary output file) and
    /// returns its atomic expression.
    pub fn task(&mut self, profile: &KindProfile) -> Mspg {
        Mspg::Task(self.task_id(profile))
    }

    /// Adds one task of the given kind and returns its id.
    pub fn task_id(&mut self, profile: &KindProfile) -> TaskId {
        let kind = self.dag.add_kind(profile.name);
        let w = profile.sample_runtime(self.rng);
        let s = profile.sample_output(self.rng);
        if !self.named {
            let t = self.dag.add_task(String::new(), kind, w);
            let f = self.dag.add_file(String::new(), s, Some(t));
            self.dag.set_primary_output(t, f);
            return t;
        }
        let idx = {
            match self.counters.iter_mut().find(|(n, _)| n == profile.name) {
                Some((_, c)) => {
                    *c += 1;
                    *c - 1
                }
                None => {
                    self.counters.push((profile.name.to_owned(), 1));
                    0
                }
            }
        };
        self.dag
            .add_task_with_output(&format!("{}_{idx}", profile.name), kind, w, s)
    }

    /// Adds `n` parallel tasks of one kind, returning the parallel
    /// expression (or the single task when `n == 1`).
    pub fn level(&mut self, profile: &KindProfile, n: usize) -> Mspg {
        assert!(n >= 1);
        let parts: Vec<Mspg> = (0..n).map(|_| self.task(profile)).collect();
        Mspg::parallel(parts).expect("n >= 1")
    }

    /// Adds `n` parallel chains, each built by `chain` from this builder,
    /// returning the parallel expression.
    pub fn parallel_chains(&mut self, n: usize, mut chain: impl FnMut(&mut Self) -> Mspg) -> Mspg {
        assert!(n >= 1);
        let parts: Vec<Mspg> = (0..n).map(|_| chain(self)).collect();
        Mspg::parallel(parts).expect("n >= 1")
    }

    /// Attaches a workflow-input file of `size` bytes to `t` (read from
    /// stable storage before `t`'s first execution).
    pub fn input(&mut self, t: TaskId, size: f64) {
        let name = format!("{}.in", self.dag.task(t).name);
        let f = self.dag.add_file(name, size, None);
        self.dag.add_input_file(t, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::montage::{M_DIFF_FIT, M_PROJECT};
    use mspg::Workflow;
    use rand::SeedableRng;

    #[test]
    fn task_names_are_unique_and_numbered() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = Builder::new(&mut rng);
        let t0 = b.task_id(&M_PROJECT);
        let t1 = b.task_id(&M_PROJECT);
        let t2 = b.task_id(&M_DIFF_FIT);
        assert_eq!(b.dag.task(t0).name, "mProjectPP_0");
        assert_eq!(b.dag.task(t1).name, "mProjectPP_1");
        assert_eq!(b.dag.task(t2).name, "mDiffFit_0");
    }

    #[test]
    fn level_builds_parallel() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = Builder::new(&mut rng);
        let lvl = b.level(&M_PROJECT, 3);
        assert!(matches!(lvl, Mspg::Parallel(ref v) if v.len() == 3));
        let single = b.level(&M_DIFF_FIT, 1);
        assert!(matches!(single, Mspg::Task(_)));
    }

    #[test]
    fn wiring_levels_gives_bipartite() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = Builder::new(&mut rng);
        let a = b.level(&M_PROJECT, 2);
        let c = b.level(&M_DIFF_FIT, 3);
        let root = Mspg::series([a, c]).unwrap();
        let w = Workflow::new(b.dag, root);
        assert_eq!(w.dag.n_edges(), 6);
        w.validate().unwrap();
    }

    #[test]
    fn inputs_are_tracked() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut b = Builder::new(&mut rng);
        let t = b.task_id(&M_PROJECT);
        b.input(t, 2e6);
        assert_eq!(b.dag.input_files(t).len(), 1);
    }
}
