//! Epigenomics ("Genome") workflow generator.
//!
//! Structure (Bharathi et al. 2008, PWG `Epigenomics`): per sequencing
//! lane, a `fastqSplit` fans out to `k` parallel 4-task pipelines
//! (`filterContams → sol2sanger → fastq2bfq → map`) joined by a `mapMerge`;
//! lanes run in parallel and feed a global merge, then `maqIndex` and
//! `pileup` finish sequentially. A pure nested fork-join — an M-SPG by
//! construction.

use mspg::{Mspg, Workflow};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::builder::Builder;
use crate::profile::genome::*;

/// Generates an Epigenomics workflow with approximately `n_tasks` tasks
/// (the structure quantizes the count; see [`genome_shape`]).
pub fn generate(n_tasks: usize, seed: u64) -> Workflow {
    let (lanes, k) = genome_shape(n_tasks);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Builder::new(&mut rng);
    let mut lane_exprs = Vec::with_capacity(lanes);
    for _ in 0..lanes {
        let split = b.task(&FASTQ_SPLIT);
        if let Mspg::Task(t) = split {
            // Each lane starts by reading its raw FASTQ from storage.
            b.input(t, 40e6);
        }
        let pipes = b.parallel_chains(k, |b| {
            Mspg::series([
                b.task(&FILTER_CONTAMS),
                b.task(&SOL2SANGER),
                b.task(&FASTQ2BFQ),
                b.task(&MAP),
            ])
            .expect("4-task chain")
        });
        let merge = b.task(&MAP_MERGE);
        lane_exprs.push(Mspg::series([split, pipes, merge]).expect("lane"));
    }
    let mut tail = vec![Mspg::parallel(lane_exprs).expect(">=1 lane")];
    if lanes > 1 {
        tail.push(b.task(&MAP_MERGE)); // global merge
    }
    tail.push(b.task(&MAQ_INDEX));
    tail.push(b.task(&PILEUP));
    let root = Mspg::series(tail).expect("non-empty");
    Workflow::new(b.dag, root)
}

/// Chooses `(lanes, branches-per-lane)` so the task count
/// `lanes·(2 + 4k) + extra` approximates `n_tasks` (extra = 2 finishing
/// tasks, +1 global merge for multi-lane).
pub fn genome_shape(n_tasks: usize) -> (usize, usize) {
    assert!(n_tasks >= 8, "Genome needs at least 8 tasks");
    // Lanes scale slowly with size (real runs use 2–8 lanes).
    let lanes = match n_tasks {
        0..=119 => 1,
        120..=499 => 4,
        _ => 8,
    };
    let extra = if lanes > 1 { 3 } else { 2 };
    let per_lane = (n_tasks - extra) / lanes;
    let k = ((per_lane.saturating_sub(2)) / 4).max(1);
    (lanes, k)
}

/// Exact task count produced for a given `n_tasks` request.
pub fn actual_tasks(n_tasks: usize) -> usize {
    let (lanes, k) = genome_shape(n_tasks);
    let extra = if lanes > 1 { 3 } else { 2 };
    lanes * (2 + 4 * k) + extra
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspg::recognize;

    #[test]
    fn generates_mspg() {
        for n in [50, 300, 1000] {
            let w = generate(n, 42);
            w.validate().unwrap();
            recognize(&w.dag).expect("Genome must be an M-SPG");
        }
    }

    #[test]
    fn task_count_close_to_request() {
        for n in [50, 100, 300, 1000] {
            let w = generate(n, 1);
            let got = w.n_tasks();
            assert_eq!(got, actual_tasks(n));
            let err = (got as f64 - n as f64).abs() / n as f64;
            assert!(err < 0.15, "requested {n}, got {got}");
        }
    }

    #[test]
    fn seed_determinism() {
        let a = generate(300, 7);
        let b = generate(300, 7);
        assert_eq!(a.root, b.root);
        for t in a.dag.task_ids() {
            assert_eq!(a.dag.weight(t), b.dag.weight(t));
        }
    }

    #[test]
    fn map_dominates_compute() {
        // The mapping stage is the documented hot spot of Epigenomics.
        let w = generate(300, 3);
        let mut map_w = 0.0;
        let mut total = 0.0;
        for t in w.dag.task_ids() {
            let tw = w.dag.weight(t);
            total += tw;
            if w.dag.kind_name(w.dag.task(t).kind) == "map" {
                map_w += tw;
            }
        }
        assert!(map_w / total > 0.7, "map fraction {}", map_w / total);
    }

    #[test]
    fn multi_lane_structure_for_large_sizes() {
        let (lanes, _) = genome_shape(1000);
        assert_eq!(lanes, 8);
        let (lanes, _) = genome_shape(50);
        assert_eq!(lanes, 1);
    }

    #[test]
    fn lane_inputs_exist() {
        let w = generate(50, 9);
        let has_input = w.dag.task_ids().any(|t| !w.dag.input_files(t).is_empty());
        assert!(has_input, "fastqSplit tasks must read workflow inputs");
    }
}
