//! Communication-to-Computation Ratio control (§VI-A).
//!
//! "We vary the CCR by scaling file data sizes by a factor": the CCR of a
//! workflow is the total store time of all files (input, output and
//! intermediate) at the stable-storage bandwidth, divided by the total
//! failure-free compute time.

use mspg::Workflow;

/// Computes the CCR of `w` for stable-storage bandwidth `bw` (bytes/s).
pub fn ccr(w: &Workflow, bw: f64) -> f64 {
    w.ccr(bw)
}

/// Rescales every file size so that the workflow's CCR equals
/// `target_ccr` at bandwidth `bw`. Returns the scaling factor applied.
///
/// # Panics
/// Panics if the workflow has zero data volume (nothing to scale).
pub fn scale_to_ccr(w: &mut Workflow, target_ccr: f64, bw: f64) -> f64 {
    assert!(target_ccr > 0.0 && bw > 0.0);
    let current = w.ccr(bw);
    assert!(current > 0.0, "workflow has no file data to scale");
    let factor = target_ccr / current;
    w.dag.scale_file_sizes(factor);
    factor
}

/// The log-spaced CCR grid used by the paper's figures: `points` values
/// from `lo` to `hi` inclusive.
pub fn ccr_grid(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2 && lo > 0.0 && hi > lo);
    let (llo, lhi) = (lo.ln(), hi.ln());
    (0..points)
        .map(|i| (llo + (lhi - llo) * i as f64 / (points - 1) as f64).exp())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::fork_join;

    #[test]
    fn scaling_hits_target() {
        let mut w = fork_join(3, 6, 1);
        let bw = 1e8;
        for target in [1e-4, 1e-2, 1.0] {
            scale_to_ccr(&mut w, target, bw);
            assert!((ccr(&w, bw) - target).abs() < 1e-9 * target);
        }
    }

    #[test]
    fn factor_is_ratio() {
        let mut w = fork_join(2, 3, 2);
        let bw = 1e8;
        let before = ccr(&w, bw);
        let f = scale_to_ccr(&mut w, 2.0 * before, bw);
        assert!((f - 2.0).abs() < 1e-12);
    }

    #[test]
    fn grid_endpoints_and_monotone() {
        let g = ccr_grid(1e-4, 1e-2, 9);
        assert_eq!(g.len(), 9);
        assert!((g[0] - 1e-4).abs() < 1e-12);
        assert!((g[8] - 1e-2).abs() < 1e-9);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn weights_untouched_by_scaling() {
        let mut w = fork_join(2, 3, 3);
        let before = w.dag.total_weight();
        scale_to_ccr(&mut w, 0.5, 1e8);
        assert_eq!(w.dag.total_weight(), before);
    }
}
