//! Task-kind profiles: mean runtimes and output sizes per task type.
//!
//! The means are calibrated from the published Pegasus profiling study
//! (Juve, Chervenak, Deelman, Bharathi, Mehta, Vahi — *Characterizing and
//! profiling scientific workflows*, FGCS 2013) for the three applications
//! the paper evaluates. Absolute values only anchor the *relative* mix of
//! task weights and file sizes: the experiments normalize failure rates by
//! the mean task weight (`pfail`) and sweep the CCR by rescaling all file
//! sizes, exactly as §VI-A does.

use rand::rngs::StdRng;

use crate::stats::sample_around;

/// Statistical profile of one task kind.
#[derive(Clone, Copy, Debug)]
pub struct KindProfile {
    /// Task-type name (Pegasus executable name).
    pub name: &'static str,
    /// Mean failure-free runtime, seconds.
    pub runtime_mean: f64,
    /// Coefficient of variation of the runtime.
    pub runtime_cv: f64,
    /// Mean primary-output size, bytes.
    pub output_mean: f64,
    /// Coefficient of variation of the output size.
    pub output_cv: f64,
}

impl KindProfile {
    /// Draws a runtime for one task instance.
    pub fn sample_runtime(&self, rng: &mut StdRng) -> f64 {
        sample_around(rng, self.runtime_mean, self.runtime_cv)
    }

    /// Draws an output-file size for one task instance.
    pub fn sample_output(&self, rng: &mut StdRng) -> f64 {
        sample_around(rng, self.output_mean, self.output_cv)
    }
}

const MB: f64 = 1e6;

/// Montage (astronomy mosaic) task kinds.
pub mod montage {
    use super::{KindProfile, MB};

    /// Re-projection of one input image.
    pub const M_PROJECT: KindProfile = KindProfile {
        name: "mProjectPP",
        runtime_mean: 1.73,
        runtime_cv: 0.25,
        output_mean: 4.0 * MB,
        output_cv: 0.1,
    };
    /// Difference fit between overlapping images.
    pub const M_DIFF_FIT: KindProfile = KindProfile {
        name: "mDiffFit",
        runtime_mean: 0.66,
        runtime_cv: 0.25,
        output_mean: 0.64 * MB,
        output_cv: 0.1,
    };
    /// Fit-plane concatenation (single task).
    pub const M_CONCAT_FIT: KindProfile = KindProfile {
        name: "mConcatFit",
        runtime_mean: 143.0,
        runtime_cv: 0.1,
        output_mean: 1.0 * MB,
        output_cv: 0.1,
    };
    /// Background model (single task).
    pub const M_BG_MODEL: KindProfile = KindProfile {
        name: "mBgModel",
        runtime_mean: 384.0,
        runtime_cv: 0.1,
        output_mean: 0.1 * MB,
        output_cv: 0.1,
    };
    /// Background correction of one image.
    pub const M_BACKGROUND: KindProfile = KindProfile {
        name: "mBackground",
        runtime_mean: 1.72,
        runtime_cv: 0.25,
        output_mean: 4.0 * MB,
        output_cv: 0.1,
    };
    /// Image-table construction (single task).
    pub const M_IMGTBL: KindProfile = KindProfile {
        name: "mImgtbl",
        runtime_mean: 2.6,
        runtime_cv: 0.2,
        output_mean: 0.01 * MB,
        output_cv: 0.1,
    };
    /// Mosaic co-addition (single task).
    pub const M_ADD: KindProfile = KindProfile {
        name: "mAdd",
        runtime_mean: 282.0,
        runtime_cv: 0.1,
        output_mean: 165.0 * MB,
        output_cv: 0.1,
    };
    /// Mosaic shrink (single task).
    pub const M_SHRINK: KindProfile = KindProfile {
        name: "mShrink",
        runtime_mean: 66.0,
        runtime_cv: 0.1,
        output_mean: 25.0 * MB,
        output_cv: 0.1,
    };
    /// JPEG rendering (single task).
    pub const M_JPEG: KindProfile = KindProfile {
        name: "mJPEG",
        runtime_mean: 0.7,
        runtime_cv: 0.2,
        output_mean: 1.0 * MB,
        output_cv: 0.1,
    };
}

/// Epigenomics ("Genome") task kinds.
pub mod genome {
    use super::{KindProfile, MB};

    /// Splits a FASTQ lane into chunks.
    pub const FASTQ_SPLIT: KindProfile = KindProfile {
        name: "fastqSplit",
        runtime_mean: 35.0,
        runtime_cv: 0.2,
        output_mean: 20.0 * MB,
        output_cv: 0.15,
    };
    /// Removes contaminated reads from one chunk.
    pub const FILTER_CONTAMS: KindProfile = KindProfile {
        name: "filterContams",
        runtime_mean: 2.5,
        runtime_cv: 0.3,
        output_mean: 6.0 * MB,
        output_cv: 0.15,
    };
    /// Converts Solexa to Sanger quality scores.
    pub const SOL2SANGER: KindProfile = KindProfile {
        name: "sol2sanger",
        runtime_mean: 0.5,
        runtime_cv: 0.3,
        output_mean: 12.0 * MB,
        output_cv: 0.15,
    };
    /// Converts FASTQ to binary BFQ.
    pub const FASTQ2BFQ: KindProfile = KindProfile {
        name: "fastq2bfq",
        runtime_mean: 1.5,
        runtime_cv: 0.3,
        output_mean: 3.0 * MB,
        output_cv: 0.15,
    };
    /// Maps reads against the reference genome (dominant cost).
    pub const MAP: KindProfile = KindProfile {
        name: "map",
        runtime_mean: 201.0,
        runtime_cv: 0.3,
        output_mean: 1.0 * MB,
        output_cv: 0.15,
    };
    /// Merges mapped chunks of one lane.
    pub const MAP_MERGE: KindProfile = KindProfile {
        name: "mapMerge",
        runtime_mean: 11.0,
        runtime_cv: 0.2,
        output_mean: 20.0 * MB,
        output_cv: 0.15,
    };
    /// Indexes the merged alignments (single task).
    pub const MAQ_INDEX: KindProfile = KindProfile {
        name: "maqIndex",
        runtime_mean: 43.0,
        runtime_cv: 0.15,
        output_mean: 60.0 * MB,
        output_cv: 0.1,
    };
    /// Produces the final pileup (single task).
    pub const PILEUP: KindProfile = KindProfile {
        name: "pileup",
        runtime_mean: 56.0,
        runtime_cv: 0.15,
        output_mean: 10.0 * MB,
        output_cv: 0.1,
    };
}

/// LIGO Inspiral task kinds.
pub mod ligo {
    use super::{KindProfile, MB};

    /// Template-bank generation.
    pub const TMPLT_BANK: KindProfile = KindProfile {
        name: "TmpltBank",
        runtime_mean: 18.1,
        runtime_cv: 0.2,
        output_mean: 0.9 * MB,
        output_cv: 0.1,
    };
    /// Matched-filter inspiral analysis (dominant cost).
    pub const INSPIRAL: KindProfile = KindProfile {
        name: "Inspiral",
        runtime_mean: 460.0,
        runtime_cv: 0.3,
        output_mean: 0.3 * MB,
        output_cv: 0.15,
    };
    /// Coincidence analysis over a group of inspirals.
    pub const THINCA: KindProfile = KindProfile {
        name: "Thinca",
        runtime_mean: 5.4,
        runtime_cv: 0.25,
        output_mean: 0.02 * MB,
        output_cv: 0.15,
    };
    /// Trigger-bank extraction.
    pub const TRIG_BANK: KindProfile = KindProfile {
        name: "TrigBank",
        runtime_mean: 5.1,
        runtime_cv: 0.25,
        output_mean: 0.6 * MB,
        output_cv: 0.15,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_track_profile_means() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = montage::M_BG_MODEL;
        let xs: Vec<f64> = (0..50_000).map(|_| p.sample_runtime(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - p.runtime_mean).abs() < 0.02 * p.runtime_mean);
    }

    #[test]
    fn all_profiles_positive() {
        for p in [
            montage::M_PROJECT,
            montage::M_DIFF_FIT,
            montage::M_CONCAT_FIT,
            montage::M_BG_MODEL,
            montage::M_BACKGROUND,
            montage::M_IMGTBL,
            montage::M_ADD,
            montage::M_SHRINK,
            montage::M_JPEG,
            genome::FASTQ_SPLIT,
            genome::FILTER_CONTAMS,
            genome::SOL2SANGER,
            genome::FASTQ2BFQ,
            genome::MAP,
            genome::MAP_MERGE,
            genome::MAQ_INDEX,
            genome::PILEUP,
            ligo::TMPLT_BANK,
            ligo::INSPIRAL,
            ligo::THINCA,
            ligo::TRIG_BANK,
        ] {
            assert!(p.runtime_mean > 0.0 && p.output_mean > 0.0, "{}", p.name);
        }
    }
}
