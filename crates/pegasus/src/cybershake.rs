//! CyberShake (seismic hazard) workflow generator — an *extension* class.
//!
//! The paper evaluates on Genome, Montage and Ligo; CyberShake is the
//! fourth application the Pegasus characterization studies profile
//! (Bharathi et al. 2008, Juve et al. 2013) and exercises a different
//! regime: **very large files** (strain Green tensors) with short
//! post-processing tasks, i.e. CCR pressure concentrated on a few edges.
//!
//! Structure per site: two `ExtractSGT` tasks each fan out to `k`
//! `SeismogramSynthesis → PeakValCalcOkaya` chains; the site's results are
//! joined by `ZipSeismograms` and `ZipPeakSA` (modelled as a two-task
//! level). Sites are independent (parallel composition).

use mspg::{Mspg, Workflow};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::builder::Builder;
use crate::profile::KindProfile;

const MB: f64 = 1e6;

/// Extraction of the strain Green tensor for one rupture variation.
pub const EXTRACT_SGT: KindProfile = KindProfile {
    name: "ExtractSGT",
    runtime_mean: 110.0,
    runtime_cv: 0.25,
    output_mean: 300.0 * MB,
    output_cv: 0.2,
};

/// Synthesis of one seismogram (dominant task count).
pub const SEISMOGRAM_SYNTHESIS: KindProfile = KindProfile {
    name: "SeismogramSynthesis",
    runtime_mean: 48.0,
    runtime_cv: 0.3,
    output_mean: 0.2 * MB,
    output_cv: 0.2,
};

/// Peak ground-motion extraction from one seismogram.
pub const PEAK_VAL_CALC: KindProfile = KindProfile {
    name: "PeakValCalcOkaya",
    runtime_mean: 1.0,
    runtime_cv: 0.3,
    output_mean: 0.1 * MB,
    output_cv: 0.2,
};

/// Seismogram archive task.
pub const ZIP_SEIS: KindProfile = KindProfile {
    name: "ZipSeismograms",
    runtime_mean: 40.0,
    runtime_cv: 0.2,
    output_mean: 10.0 * MB,
    output_cv: 0.2,
};

/// Peak-value archive task.
pub const ZIP_PSA: KindProfile = KindProfile {
    name: "ZipPeakSA",
    runtime_mean: 38.0,
    runtime_cv: 0.2,
    output_mean: 5.0 * MB,
    output_cv: 0.2,
};

/// Shape: `sites` independent sites, each with 2 SGT extractions fanning
/// out to `k` synthesis chains.
pub fn cybershake_shape(n_tasks: usize) -> (usize, usize) {
    assert!(n_tasks >= 12, "CyberShake needs at least 12 tasks");
    let sites = (n_tasks / 120).clamp(1, 6);
    // Per site: 2·(1 + 2k) + 2 = 4k + 4.
    let per_site = n_tasks / sites;
    let k = ((per_site.saturating_sub(4)) / 4).max(1);
    (sites, k)
}

/// Exact task count for a given request.
pub fn actual_tasks(n_tasks: usize) -> usize {
    let (sites, k) = cybershake_shape(n_tasks);
    sites * (4 * k + 4)
}

/// Generates a CyberShake workflow with approximately `n_tasks` tasks.
pub fn generate(n_tasks: usize, seed: u64) -> Workflow {
    let (sites, k) = cybershake_shape(n_tasks);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Builder::new(&mut rng);
    let site_exprs: Vec<Mspg> = (0..sites)
        .map(|_| {
            let halves = b.parallel_chains(2, |b| {
                let sgt = b.task(&EXTRACT_SGT);
                if let Mspg::Task(t) = sgt {
                    b.input(t, 500.0 * MB); // master SGT volume from storage
                }
                let chains = b.parallel_chains(k, |b| {
                    Mspg::series([b.task(&SEISMOGRAM_SYNTHESIS), b.task(&PEAK_VAL_CALC)])
                        .expect("chain")
                });
                Mspg::series([sgt, chains]).expect("half-site")
            });
            let zips = Mspg::parallel([b.task(&ZIP_SEIS), b.task(&ZIP_PSA)]).expect("zips");
            Mspg::series([halves, zips]).expect("site")
        })
        .collect();
    let root = Mspg::parallel(site_exprs).expect(">=1 site");
    Workflow::new(b.dag, root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspg::recognize;

    #[test]
    fn generates_mspg() {
        for n in [50, 300, 1000] {
            let w = generate(n, 31);
            w.validate().unwrap();
            recognize(&w.dag).expect("CyberShake must be an M-SPG");
        }
    }

    #[test]
    fn task_count_close_to_request() {
        for n in [50, 300, 1000] {
            let got = generate(n, 2).n_tasks();
            assert_eq!(got, actual_tasks(n));
            let err = (got as f64 - n as f64).abs() / n as f64;
            assert!(err < 0.2, "requested {n}, got {got}");
        }
    }

    #[test]
    fn sgt_files_dominate_volume() {
        // CyberShake's signature: a few huge SGT files dwarf everything.
        let w = generate(300, 5);
        let sgt_bytes: f64 = w
            .dag
            .task_ids()
            .filter(|&t| w.dag.kind_name(w.dag.task(t).kind) == "ExtractSGT")
            .flat_map(|t| w.dag.output_files(t).to_vec())
            .map(|f| w.dag.file(f).size)
            .sum();
        assert!(sgt_bytes / w.dag.total_data_volume() > 0.3);
    }

    #[test]
    fn seed_determinism() {
        let a = generate(300, 9);
        let b = generate(300, 9);
        assert_eq!(a.root, b.root);
        assert_eq!(a.dag.total_weight(), b.dag.total_weight());
    }

    #[test]
    fn sites_are_parallel() {
        let (sites, _) = cybershake_shape(1000);
        assert!(sites > 1);
        let w = generate(1000, 1);
        match &w.root {
            Mspg::Parallel(gs) => assert_eq!(gs.len(), sites),
            _ => panic!("multi-site CyberShake root must be parallel"),
        }
    }
}
