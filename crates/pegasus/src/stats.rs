//! From-scratch sampling of the distributions the generators need
//! (no `rand_distr` dependency; see DESIGN.md's dependency policy).

use rand::rngs::StdRng;
use rand::Rng;

/// Standard normal sample via the Marsaglia polar method.
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u = 2.0 * rng.gen::<f64>() - 1.0;
        let v = 2.0 * rng.gen::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Gamma(shape, scale) sample via Marsaglia & Tsang (2000), with the
/// standard boost `Gamma(k) = Gamma(k+1)·U^(1/k)` for `shape < 1`.
pub fn gamma(rng: &mut StdRng, shape: f64, scale: f64) -> f64 {
    assert!(
        shape > 0.0 && scale > 0.0,
        "gamma needs positive parameters"
    );
    if shape < 1.0 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma(rng, shape + 1.0, scale) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x * x * x * x || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v * scale;
        }
    }
}

/// Strictly positive sample with the given `mean` and coefficient of
/// variation `cv` (std/mean), drawn from a Gamma with matching first two
/// moments. `cv == 0` returns `mean` deterministically.
///
/// This is how task runtimes and file sizes are perturbed around their
/// profiled means: positive, right-skewed, seed-reproducible — matching
/// the character of the Pegasus profiling data (Juve et al. 2013).
pub fn sample_around(rng: &mut StdRng, mean: f64, cv: f64) -> f64 {
    assert!(mean > 0.0, "mean must be positive");
    assert!(cv >= 0.0, "cv must be non-negative");
    if cv == 0.0 {
        return mean;
    }
    let shape = 1.0 / (cv * cv);
    let scale = mean * cv * cv;
    gamma(rng, shape, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng(1);
        let xs: Vec<f64> = (0..200_000).map(|_| standard_normal(&mut r)).collect();
        let (m, v) = moments(&xs);
        assert!(m.abs() < 0.01, "mean {m}");
        assert!((v - 1.0).abs() < 0.02, "var {v}");
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let mut r = rng(2);
        let (shape, scale) = (4.0, 2.5);
        let xs: Vec<f64> = (0..200_000).map(|_| gamma(&mut r, shape, scale)).collect();
        let (m, v) = moments(&xs);
        assert!((m - shape * scale).abs() < 0.1, "mean {m}");
        assert!((v - shape * scale * scale).abs() < 0.6, "var {v}");
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        let mut r = rng(3);
        let (shape, scale) = (0.5, 3.0);
        let xs: Vec<f64> = (0..200_000).map(|_| gamma(&mut r, shape, scale)).collect();
        let (m, v) = moments(&xs);
        assert!((m - 1.5).abs() < 0.05, "mean {m}");
        assert!((v - 4.5).abs() < 0.4, "var {v}");
    }

    #[test]
    fn sample_around_matches_mean_and_cv() {
        let mut r = rng(4);
        let xs: Vec<f64> = (0..200_000)
            .map(|_| sample_around(&mut r, 100.0, 0.3))
            .collect();
        let (m, v) = moments(&xs);
        assert!((m - 100.0).abs() < 0.6, "mean {m}");
        assert!((v.sqrt() - 30.0).abs() < 0.6, "std {}", v.sqrt());
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn zero_cv_is_deterministic() {
        let mut r = rng(5);
        assert_eq!(sample_around(&mut r, 42.0, 0.0), 42.0);
    }

    #[test]
    fn seeded_reproducibility() {
        let a: Vec<f64> = {
            let mut r = rng(6);
            (0..100).map(|_| gamma(&mut r, 2.0, 1.0)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng(6);
            (0..100).map(|_| gamma(&mut r, 2.0, 1.0)).collect()
        };
        assert_eq!(a, b);
    }
}
