//! Montage (astronomy mosaicking) workflow generator.
//!
//! Structure (Bharathi et al. 2008, PWG `Montage`): a level of `m`
//! `mProjectPP` re-projections, a level of `d` `mDiffFit` overlap fits, then
//! the sequential tail `mConcatFit → mBgModel`, a level of `m`
//! `mBackground` corrections, and the sequential finish
//! `mImgtbl → mAdd → mShrink → mJPEG`.
//!
//! In the real application each `mDiffFit` reads *two* overlapping
//! projected images. The M-SPG serial composition connects consecutive
//! levels completely (Figure 1(c) of the paper); each projection produces
//! a single file read by all fits, so data volumes are unchanged (a file
//! feeding several successors is stored once). This is the
//! M-SPG-ification the paper applies to production workflows.

use mspg::{Mspg, Workflow};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::builder::Builder;
use crate::profile::montage::*;

/// Generates a Montage workflow with approximately `n_tasks` tasks.
pub fn generate(n_tasks: usize, seed: u64) -> Workflow {
    let (m, d) = montage_shape(n_tasks);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Builder::new(&mut rng);
    let projections = b.level(&M_PROJECT, m);
    // Every projection reads its raw image from storage.
    for t in projections.tasks() {
        b.input(t, 2e6);
    }
    let fits = b.level(&M_DIFF_FIT, d);
    let concat = b.task(&M_CONCAT_FIT);
    let bgmodel = b.task(&M_BG_MODEL);
    let corrections = b.level(&M_BACKGROUND, m);
    let imgtbl = b.task(&M_IMGTBL);
    let add = b.task(&M_ADD);
    let shrink = b.task(&M_SHRINK);
    let jpeg = b.task(&M_JPEG);
    let root = Mspg::series([
        projections,
        fits,
        concat,
        bgmodel,
        corrections,
        imgtbl,
        add,
        shrink,
        jpeg,
    ])
    .expect("non-empty");
    Workflow::new(b.dag, root)
}

/// Chooses `(m, d)`: `m` projections/corrections and `d = n - 2m - 6`
/// difference fits (PWG's fit count grows roughly linearly with the image
/// count).
pub fn montage_shape(n_tasks: usize) -> (usize, usize) {
    assert!(n_tasks >= 10, "Montage needs at least 10 tasks");
    let m = ((n_tasks - 6) / 3).max(2);
    let d = (n_tasks - 6 - 2 * m).max(1);
    (m, d)
}

/// Exact task count produced for a given request.
pub fn actual_tasks(n_tasks: usize) -> usize {
    let (m, d) = montage_shape(n_tasks);
    2 * m + d + 6
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspg::recognize;

    #[test]
    fn generates_mspg() {
        for n in [50, 300, 1000] {
            let w = generate(n, 11);
            w.validate().unwrap();
            recognize(&w.dag).expect("Montage must be an M-SPG");
        }
    }

    #[test]
    fn task_count_close_to_request() {
        for n in [50, 300, 1000] {
            let got = generate(n, 2).n_tasks();
            assert_eq!(got, actual_tasks(n));
            let err = (got as f64 - n as f64).abs() / n as f64;
            assert!(err < 0.1, "requested {n}, got {got}");
        }
    }

    #[test]
    fn bipartite_level_is_complete() {
        let w = generate(50, 5);
        let (m, d) = montage_shape(50);
        // Every mDiffFit must read all m projection files.
        for t in w.dag.task_ids() {
            if w.dag.kind_name(w.dag.task(t).kind) == "mDiffFit" {
                assert_eq!(w.dag.preds(t).len(), m);
            }
        }
        let _ = d;
    }

    #[test]
    fn projection_file_stored_once() {
        // m projections × d fits edges, but only one file per projection.
        let w = generate(50, 5);
        let (m, d) = montage_shape(50);
        let mproject_files: usize = w
            .dag
            .task_ids()
            .filter(|&t| w.dag.kind_name(w.dag.task(t).kind) == "mProjectPP")
            .map(|t| w.dag.output_files(t).len())
            .sum();
        assert_eq!(mproject_files, m);
        let fit_in_edges: usize = w
            .dag
            .task_ids()
            .filter(|&t| w.dag.kind_name(w.dag.task(t).kind) == "mDiffFit")
            .map(|t| w.dag.preds(t).len())
            .sum();
        assert_eq!(fit_in_edges, m * d);
    }

    #[test]
    fn seed_determinism() {
        let a = generate(300, 8);
        let b = generate(300, 8);
        assert_eq!(a.root, b.root);
        assert_eq!(a.dag.total_weight(), b.dag.total_weight());
    }

    #[test]
    fn sequential_tail_present() {
        let w = generate(50, 1);
        let kinds: Vec<&str> = [
            "mConcatFit",
            "mBgModel",
            "mImgtbl",
            "mAdd",
            "mShrink",
            "mJPEG",
        ]
        .into_iter()
        .collect();
        for k in kinds {
            let count = w
                .dag
                .task_ids()
                .filter(|&t| w.dag.kind_name(w.dag.task(t).kind) == k)
                .count();
            assert_eq!(count, 1, "{k}");
        }
    }
}
