//! LIGO Inspiral workflow generator.
//!
//! Structure (Bharathi et al. 2008, PWG `Inspiral`): independent analysis
//! groups run in parallel. Within a group, `k` parallel
//! `TmpltBank → Inspiral` chains feed a level of `m` coincidence `Thinca`
//! tasks, whose triggers drive `k` second-stage `TrigBank → Inspiral`
//! chains joined by a final `Thinca`.
//!
//! The mainline generator wires consecutive levels completely (a true
//! M-SPG). [`generate_incomplete`] reproduces the §VI-A footnote artifact:
//! each first-stage `Thinca` reads only its own partition of the Inspiral
//! outputs (an *incomplete* bipartite level, not an M-SPG), which the
//! paper patches with dummy zero-size dependencies — see
//! [`mspg::patch::complete_bipartite`] and experiment E8.

use mspg::{Dag, Mspg, TaskId, Workflow};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::builder::Builder;
use crate::profile::ligo::*;

/// Shape of a Ligo instance: `groups` independent groups, each with `k`
/// first-stage chains, `m` first-stage Thincas, and `k` second-stage
/// chains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LigoShape {
    /// Number of independent analysis groups.
    pub groups: usize,
    /// First/second-stage chains per group.
    pub k: usize,
    /// First-stage Thinca tasks per group.
    pub m: usize,
}

/// Chooses the shape approximating `n_tasks` tasks.
pub fn ligo_shape(n_tasks: usize) -> LigoShape {
    assert!(n_tasks >= 12, "Ligo needs at least 12 tasks");
    let groups = (n_tasks / 100).clamp(1, 8);
    // Per group: 2k + m + 2k + 1 with m ≈ max(1, k/5).
    let per_group = n_tasks / groups;
    let mut k = ((per_group - 1) as f64 / 4.2).round() as usize;
    k = k.max(2);
    let m = (k / 5).max(1);
    LigoShape { groups, k, m }
}

/// Exact task count for a shape.
pub fn shape_tasks(s: LigoShape) -> usize {
    s.groups * (4 * s.k + s.m + 1)
}

fn build_group(b: &mut Builder<'_>, k: usize, m: usize) -> Mspg {
    let stage1 = b.parallel_chains(k, |b| {
        let tb = b.task(&TMPLT_BANK);
        if let Mspg::Task(t) = tb {
            b.input(t, 1e6); // GW strain segment from storage
        }
        Mspg::series([tb, b.task(&INSPIRAL)]).expect("chain")
    });
    let thincas = b.level(&THINCA, m);
    let stage2 = b.parallel_chains(k, |b| {
        Mspg::series([b.task(&TRIG_BANK), b.task(&INSPIRAL)]).expect("chain")
    });
    let final_thinca = b.task(&THINCA);
    Mspg::series([stage1, thincas, stage2, final_thinca]).expect("group")
}

/// Generates a (complete-bipartite, M-SPG) Ligo workflow with
/// approximately `n_tasks` tasks.
pub fn generate(n_tasks: usize, seed: u64) -> Workflow {
    let s = ligo_shape(n_tasks);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Builder::new(&mut rng);
    let groups: Vec<Mspg> = (0..s.groups)
        .map(|_| build_group(&mut b, s.k, s.m))
        .collect();
    let root = Mspg::parallel(groups).expect(">=1 group");
    Workflow::new(b.dag, root)
}

/// An incomplete-bipartite Ligo instance (NOT an M-SPG when `m ≥ 2`):
/// the same tasks as [`generate`], but each first-stage `Thinca` reads
/// only its own `⌈k/m⌉`-chain partition of Inspiral outputs.
///
/// Returns the DAG plus the per-group `(inspiral-level, thinca-level)`
/// task ids so callers can apply the paper's dummy-edge patch.
pub struct IncompleteLigo {
    /// The custom-wired DAG.
    pub dag: Dag,
    /// Per group: first-stage Inspiral tasks (the left side of the
    /// incomplete level).
    pub inspiral_level: Vec<Vec<TaskId>>,
    /// Per group: first-stage Thinca tasks (the right side).
    pub thinca_level: Vec<Vec<TaskId>>,
}

/// Generates the incomplete-bipartite variant (experiment E8).
pub fn generate_incomplete(n_tasks: usize, seed: u64) -> IncompleteLigo {
    let s = ligo_shape(n_tasks);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Builder::new(&mut rng);
    let mut inspiral_level = Vec::with_capacity(s.groups);
    let mut thinca_level = Vec::with_capacity(s.groups);
    for _ in 0..s.groups {
        // Stage 1 chains, wired by hand.
        let mut inspirals = Vec::with_capacity(s.k);
        for _ in 0..s.k {
            let tb = b.task_id(&TMPLT_BANK);
            b.input(tb, 1e6);
            let insp = b.task_id(&INSPIRAL);
            let f = b.dag.primary_output(tb).unwrap();
            b.dag.add_edge(insp, f);
            inspirals.push(insp);
        }
        // Incomplete Thinca level: each Thinca reads one chunk of Inspiral
        // outputs, overlapping its neighbour by one chain. The overlap is
        // what makes the level neither complete (not a serial cut) nor
        // partitioned (not a parallel split) — the PWG artifact the §VI-A
        // footnote describes.
        let mut thincas = Vec::with_capacity(s.m);
        let chunk = s.k.div_ceil(s.m);
        for j in 0..s.m {
            let th = b.task_id(&THINCA);
            let take = if j + 1 < s.m { chunk + 1 } else { chunk };
            for &insp in inspirals.iter().skip(j * chunk).take(take) {
                let f = b.dag.primary_output(insp).unwrap();
                b.dag.add_edge(th, f);
            }
            thincas.push(th);
        }
        // Stage 2: complete from the Thinca level (every TrigBank reads
        // all Thinca outputs, as in the mainline instance).
        let mut stage2_inspirals = Vec::with_capacity(s.k);
        for _ in 0..s.k {
            let tb = b.task_id(&TRIG_BANK);
            for &th in &thincas {
                let f = b.dag.primary_output(th).unwrap();
                b.dag.add_edge(tb, f);
            }
            let insp = b.task_id(&INSPIRAL);
            let f = b.dag.primary_output(tb).unwrap();
            b.dag.add_edge(insp, f);
            stage2_inspirals.push(insp);
        }
        let final_th = b.task_id(&THINCA);
        for &insp in &stage2_inspirals {
            let f = b.dag.primary_output(insp).unwrap();
            b.dag.add_edge(final_th, f);
        }
        inspiral_level.push(inspirals);
        thinca_level.push(thincas);
    }
    IncompleteLigo {
        dag: b.dag,
        inspiral_level,
        thinca_level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspg::patch::complete_bipartite;
    use mspg::recognize;

    #[test]
    fn generates_mspg() {
        for n in [50, 300, 1000] {
            let w = generate(n, 21);
            w.validate().unwrap();
            recognize(&w.dag).expect("mainline Ligo must be an M-SPG");
        }
    }

    #[test]
    fn task_count_close_to_request() {
        for n in [50, 300, 1000] {
            let got = generate(n, 2).n_tasks();
            assert_eq!(got, shape_tasks(ligo_shape(n)));
            let err = (got as f64 - n as f64).abs() / n as f64;
            assert!(err < 0.2, "requested {n}, got {got}");
        }
    }

    #[test]
    fn incomplete_variant_is_not_mspg_but_patches() {
        // 300 tasks → k large enough for m ≥ 2 Thincas per group.
        let mut inc = generate_incomplete(300, 4);
        let shape = ligo_shape(300);
        assert!(shape.m >= 2, "need m >= 2 for the artifact");
        assert!(
            recognize(&inc.dag).is_err(),
            "incomplete level must break M-SPG"
        );
        let before = inc.dag.total_data_volume();
        for g in 0..shape.groups {
            complete_bipartite(&mut inc.dag, &inc.inspiral_level[g], &inc.thinca_level[g]);
        }
        assert!(
            recognize(&inc.dag).is_ok(),
            "patched instance must be an M-SPG"
        );
        // "dummy dependencies carrying empty files": no data added.
        assert_eq!(inc.dag.total_data_volume(), before);
    }

    #[test]
    fn incomplete_and_complete_same_tasks() {
        let w = generate(300, 4);
        let inc = generate_incomplete(300, 4);
        assert_eq!(w.n_tasks(), inc.dag.n_tasks());
    }

    #[test]
    fn inspiral_dominates_compute() {
        let w = generate(300, 6);
        let mut insp = 0.0;
        let mut total = 0.0;
        for t in w.dag.task_ids() {
            let tw = w.dag.weight(t);
            total += tw;
            if w.dag.kind_name(w.dag.task(t).kind) == "Inspiral" {
                insp += tw;
            }
        }
        assert!(insp / total > 0.8, "Inspiral fraction {}", insp / total);
    }

    #[test]
    fn seed_determinism() {
        let a = generate(300, 5);
        let b = generate(300, 5);
        assert_eq!(a.root, b.root);
        assert_eq!(a.dag.total_weight(), b.dag.total_weight());
    }

    #[test]
    fn groups_are_parallel_components() {
        let s = ligo_shape(1000);
        assert!(s.groups > 1);
        let w = generate(1000, 3);
        match &w.root {
            Mspg::Parallel(gs) => assert_eq!(gs.len(), s.groups),
            _ => panic!("multi-group Ligo root must be a parallel composition"),
        }
    }
}
