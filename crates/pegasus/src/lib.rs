//! # pegasus — synthetic Pegasus-like scientific workflow generators
//!
//! Workflow-instance substrate for *Checkpointing Workflows for Fail-Stop
//! Errors* (Han et al., CLUSTER 2017). The paper evaluates on workflows
//! from the Pegasus Workflow Generator (PWG); this crate substitutes
//! structurally faithful synthetic generators for the three classes the
//! paper uses — **Genome** (Epigenomics), **Montage** and **Ligo**
//! (Inspiral) — calibrated against the published characterization studies
//! (Bharathi et al. 2008; Juve et al. 2013). See DESIGN.md §3 for why this
//! substitution preserves the experiments' behavior.
//!
//! All generators are deterministic in their `u64` seed, emit verified
//! M-SPGs (the [`mspg::recognize`] round-trip is enforced by tests), and
//! support the paper's CCR sweep via [`ccr::scale_to_ccr`].

pub mod builder;
pub mod ccr;
pub mod cybershake;
pub mod generic;
pub mod genome;
pub mod ligo;
pub mod montage;
pub mod profile;
pub mod stats;
pub mod textio;

use mspg::Workflow;

/// The three workflow classes of the paper's evaluation (§VI-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkflowClass {
    /// Epigenomics: nested fork-join, `map` dominated (Figure 5).
    Genome,
    /// Montage: wide bipartite levels, I/O heavy (Figure 6).
    Montage,
    /// LIGO Inspiral: parallel groups of two-stage pipelines (Figure 7).
    Ligo,
    /// CyberShake (extension class, not in the paper's evaluation):
    /// huge-file SGT extraction feeding wide synthesis fans.
    Cybershake,
}

impl WorkflowClass {
    /// The paper's three evaluation classes, in figure order
    /// (CyberShake is an extension and deliberately not included).
    pub const ALL: [WorkflowClass; 3] = [
        WorkflowClass::Genome,
        WorkflowClass::Montage,
        WorkflowClass::Ligo,
    ];

    /// All implemented classes, including extensions.
    pub const ALL_EXTENDED: [WorkflowClass; 4] = [
        WorkflowClass::Genome,
        WorkflowClass::Montage,
        WorkflowClass::Ligo,
        WorkflowClass::Cybershake,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            WorkflowClass::Genome => "genome",
            WorkflowClass::Montage => "montage",
            WorkflowClass::Ligo => "ligo",
            WorkflowClass::Cybershake => "cybershake",
        }
    }

    /// The CCR sweep range the paper uses for this class's figure.
    pub fn ccr_range(self) -> (f64, f64) {
        match self {
            WorkflowClass::Genome => (1e-4, 1e-2),
            WorkflowClass::Montage | WorkflowClass::Ligo | WorkflowClass::Cybershake => (1e-3, 1.0),
        }
    }
}

impl std::fmt::Display for WorkflowClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for WorkflowClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "genome" | "epigenomics" => Ok(WorkflowClass::Genome),
            "montage" => Ok(WorkflowClass::Montage),
            "ligo" | "inspiral" => Ok(WorkflowClass::Ligo),
            "cybershake" => Ok(WorkflowClass::Cybershake),
            other => Err(format!("unknown workflow class `{other}`")),
        }
    }
}

/// Generates a workflow of the given class with approximately `n_tasks`
/// tasks, deterministically in `seed`.
pub fn generate(class: WorkflowClass, n_tasks: usize, seed: u64) -> Workflow {
    match class {
        WorkflowClass::Genome => genome::generate(n_tasks, seed),
        WorkflowClass::Montage => montage::generate(n_tasks, seed),
        WorkflowClass::Ligo => ligo::generate(n_tasks, seed),
        WorkflowClass::Cybershake => cybershake::generate(n_tasks, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_parsing() {
        assert_eq!(
            "genome".parse::<WorkflowClass>().unwrap(),
            WorkflowClass::Genome
        );
        assert_eq!(
            "Montage".parse::<WorkflowClass>().unwrap(),
            WorkflowClass::Montage
        );
        assert_eq!(
            "inspiral".parse::<WorkflowClass>().unwrap(),
            WorkflowClass::Ligo
        );
        assert!("nope".parse::<WorkflowClass>().is_err());
    }

    #[test]
    fn unified_generate_dispatch() {
        for class in WorkflowClass::ALL {
            let w = generate(class, 60, 5);
            assert!(w.n_tasks() > 30, "{class}: {}", w.n_tasks());
            w.validate().unwrap();
        }
    }

    #[test]
    fn ccr_ranges_match_figures() {
        assert_eq!(WorkflowClass::Genome.ccr_range(), (1e-4, 1e-2));
        assert_eq!(WorkflowClass::Montage.ccr_range(), (1e-3, 1.0));
    }
}
