//! Generic synthetic workflow families (tests, ablations, benches).

use mspg::{Mspg, Workflow};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::builder::Builder;
use crate::profile::KindProfile;

/// A bland task profile for synthetic families.
pub const GENERIC: KindProfile = KindProfile {
    name: "task",
    runtime_mean: 10.0,
    runtime_cv: 0.3,
    output_mean: 1e7,
    output_cv: 0.2,
};

/// A pure chain of `n` tasks.
///
/// Tasks are unnamed (the family exists for scale tests and benches,
/// where two naming allocations per task dominate generation); weights
/// and sizes are drawn exactly as the named builder would.
pub fn chain(n: usize, seed: u64) -> Workflow {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Builder::unnamed_with_capacity(&mut rng, n);
    let parts: Vec<Mspg> = (0..n).map(|_| b.task(&GENERIC)).collect();
    let root = Mspg::series(parts).expect("n >= 1");
    Workflow::new(b.dag, root)
}

/// A fork-join stack: `levels` alternating single tasks and parallel
/// levels of `width` tasks, ending with a join task. Unnamed, like
/// [`chain`].
pub fn fork_join(levels: usize, width: usize, seed: u64) -> Workflow {
    assert!(levels >= 1 && width >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Builder::unnamed_with_capacity(&mut rng, levels * (width + 1) + 1);
    let mut parts = Vec::with_capacity(2 * levels + 1);
    for _ in 0..levels {
        parts.push(b.task(&GENERIC));
        parts.push(b.level(&GENERIC, width));
    }
    parts.push(b.task(&GENERIC));
    let root = Mspg::series(parts).expect("non-empty");
    Workflow::new(b.dag, root)
}

/// A two-level complete bipartite stage `a × b` with entry and exit tasks
/// (the Figure 1(c) pattern).
pub fn bipartite(a: usize, b_width: usize, seed: u64) -> Workflow {
    assert!(a >= 1 && b_width >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Builder::new(&mut rng);
    let root = Mspg::series([
        b.task(&GENERIC),
        b.level(&GENERIC, a),
        b.level(&GENERIC, b_width),
        b.task(&GENERIC),
    ])
    .expect("non-empty");
    Workflow::new(b.dag, root)
}

/// `n` independent chains of `len` tasks each (embarrassingly parallel).
pub fn independent_chains(n: usize, len: usize, seed: u64) -> Workflow {
    assert!(n >= 1 && len >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Builder::new(&mut rng);
    let chains = b.parallel_chains(n, |b| {
        let parts: Vec<Mspg> = (0..len).map(|_| b.task(&GENERIC)).collect();
        Mspg::series(parts).expect("len >= 1")
    });
    Workflow::new(b.dag, chains)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspg::recognize;

    #[test]
    fn families_are_valid_mspgs() {
        for w in [
            chain(10, 1),
            fork_join(3, 5, 2),
            bipartite(4, 6, 3),
            independent_chains(5, 4, 4),
        ] {
            w.validate().unwrap();
            recognize(&w.dag).unwrap();
        }
    }

    #[test]
    fn expected_task_counts() {
        assert_eq!(chain(10, 0).n_tasks(), 10);
        assert_eq!(fork_join(3, 5, 0).n_tasks(), 3 * 6 + 1);
        assert_eq!(bipartite(4, 6, 0).n_tasks(), 12);
        assert_eq!(independent_chains(5, 4, 0).n_tasks(), 20);
    }

    #[test]
    fn chain_has_no_parallelism() {
        let w = chain(6, 0);
        assert_eq!(w.dag.critical_path(), w.dag.total_weight());
    }

    #[test]
    fn independent_chains_have_full_parallelism() {
        let w = independent_chains(4, 3, 0);
        assert!(w.dag.critical_path() < w.dag.total_weight() / 2.0);
    }
}
