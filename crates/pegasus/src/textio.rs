//! Line-based text serialization of workflows.
//!
//! A deliberately small hermetic format (no serde; see DESIGN.md):
//!
//! ```text
//! # ckpt-workflows v1
//! kind <name>
//! task <kind-index> <weight> <name>
//! file <size> <producer-task|-> <name>
//! primary <task> <file>
//! edge <consumer-task> <file>
//! input <task> <file>
//! root <expr>         e.g. S(T0,P(T1,T2),T3)
//! ```
//!
//! Indices are implicit (declaration order). The `root` expression uses
//! `T<i>` for tasks, `S(...)` for series and `P(...)` for parallel.

use mspg::{Dag, FileId, Mspg, TaskId, Workflow};

/// Serialization/parsing error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 for expression-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Serializes a workflow to the text format.
pub fn to_text(w: &Workflow) -> String {
    let dag = &w.dag;
    let mut out = String::with_capacity(64 * dag.n_tasks());
    out.push_str("# ckpt-workflows v1\n");
    // Kinds in index order.
    for k in 0..dag.n_kinds() {
        out.push_str(&format!("kind {}\n", dag.kind_name(mspg::KindId(k as u16))));
    }
    for t in dag.task_ids() {
        let task = dag.task(t);
        out.push_str(&format!(
            "task {} {} {}\n",
            task.kind.0, task.weight, task.name
        ));
    }
    for f in dag.file_ids() {
        let file = dag.file(f);
        let prod = match dag.producer(f) {
            Some(t) => t.0.to_string(),
            None => "-".to_owned(),
        };
        out.push_str(&format!("file {} {} {}\n", file.size, prod, file.name));
    }
    for t in dag.task_ids() {
        if let Some(f) = dag.primary_output(t) {
            out.push_str(&format!("primary {} {}\n", t.0, f.0));
        }
    }
    for t in dag.task_ids() {
        for &(_, f) in dag.preds(t) {
            out.push_str(&format!("edge {} {}\n", t.0, f.0));
        }
        for &f in dag.input_files(t) {
            out.push_str(&format!("input {} {}\n", t.0, f.0));
        }
    }
    out.push_str("root ");
    write_expr(&w.root, &mut out);
    out.push('\n');
    out
}

fn write_expr(e: &Mspg, out: &mut String) {
    match e {
        Mspg::Task(t) => out.push_str(&format!("T{}", t.0)),
        Mspg::Series(cs) => {
            out.push_str("S(");
            for (i, c) in cs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_expr(c, out);
            }
            out.push(')');
        }
        Mspg::Parallel(cs) => {
            out.push_str("P(");
            for (i, c) in cs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_expr(c, out);
            }
            out.push(')');
        }
    }
}

/// Parses a workflow from the text format.
pub fn from_text(text: &str) -> Result<Workflow, ParseError> {
    let mut dag = Dag::new();
    let mut root: Option<Mspg> = None;
    let err = |line: usize, message: &str| ParseError {
        line,
        message: message.to_owned(),
    };
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (cmd, rest) = line
            .split_once(' ')
            .ok_or_else(|| err(line_no, "missing fields"))?;
        match cmd {
            "kind" => {
                dag.add_kind(rest);
            }
            "task" => {
                let mut it = rest.splitn(3, ' ');
                let kind: u16 = parse_field(it.next(), line_no, "kind index")?;
                let weight: f64 = parse_field(it.next(), line_no, "weight")?;
                let name = it.next().ok_or_else(|| err(line_no, "missing task name"))?;
                dag.add_task(name, mspg::KindId(kind), weight);
            }
            "file" => {
                let mut it = rest.splitn(3, ' ');
                let size: f64 = parse_field(it.next(), line_no, "size")?;
                let prod_str = it.next().ok_or_else(|| err(line_no, "missing producer"))?;
                let name = it.next().ok_or_else(|| err(line_no, "missing file name"))?;
                let producer = if prod_str == "-" {
                    None
                } else {
                    Some(TaskId(
                        prod_str
                            .parse()
                            .map_err(|_| err(line_no, "bad producer id"))?,
                    ))
                };
                dag.add_file(name, size, producer);
            }
            "primary" => {
                let (t, f) = two_ids(rest, line_no)?;
                dag.set_primary_output(TaskId(t), FileId(f));
            }
            "edge" => {
                let (t, f) = two_ids(rest, line_no)?;
                dag.add_edge(TaskId(t), FileId(f));
            }
            "input" => {
                let (t, f) = two_ids(rest, line_no)?;
                dag.add_input_file(TaskId(t), FileId(f));
            }
            "root" => {
                let (expr, used) = parse_expr(rest.as_bytes(), 0, line_no)?;
                if used != rest.len() {
                    return Err(err(line_no, "trailing characters after root expression"));
                }
                root = Some(expr);
            }
            other => return Err(err(line_no, &format!("unknown directive `{other}`"))),
        }
    }
    let root = root.ok_or_else(|| err(0, "missing root expression"))?;
    let w = Workflow::from_wired(dag, root);
    w.validate()
        .map_err(|e| err(0, &format!("invalid workflow: {e}")))?;
    Ok(w)
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, ParseError> {
    field
        .ok_or_else(|| ParseError {
            line,
            message: format!("missing {what}"),
        })?
        .parse()
        .map_err(|_| ParseError {
            line,
            message: format!("bad {what}"),
        })
}

fn two_ids(rest: &str, line: usize) -> Result<(u32, u32), ParseError> {
    let mut it = rest.split(' ');
    let a = parse_field(it.next(), line, "first id")?;
    let b = parse_field(it.next(), line, "second id")?;
    Ok((a, b))
}

/// Recursive-descent parser for `T<i>`, `S(...)`, `P(...)`.
fn parse_expr(s: &[u8], pos: usize, line: usize) -> Result<(Mspg, usize), ParseError> {
    let err = |message: String| ParseError { line, message };
    match s.get(pos) {
        Some(b'T') => {
            let mut j = pos + 1;
            while j < s.len() && s[j].is_ascii_digit() {
                j += 1;
            }
            if j == pos + 1 {
                return Err(err("expected task id after T".into()));
            }
            let id: u32 = std::str::from_utf8(&s[pos + 1..j])
                .unwrap()
                .parse()
                .map_err(|_| err("bad task id".into()))?;
            Ok((Mspg::Task(TaskId(id)), j))
        }
        Some(&c @ (b'S' | b'P')) => {
            if s.get(pos + 1) != Some(&b'(') {
                return Err(err("expected ( after composition".into()));
            }
            let mut parts = Vec::new();
            let mut j = pos + 2;
            loop {
                let (part, nj) = parse_expr(s, j, line)?;
                parts.push(part);
                j = nj;
                match s.get(j) {
                    Some(b',') => j += 1,
                    Some(b')') => {
                        j += 1;
                        break;
                    }
                    _ => return Err(err("expected , or ) in composition".into())),
                }
            }
            let e = if c == b'S' {
                Mspg::series(parts)
            } else {
                Mspg::parallel(parts)
            };
            Ok((e.ok_or_else(|| err("empty composition".into()))?, j))
        }
        _ => Err(err(format!("unexpected character at {pos}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{genome, ligo, montage};

    #[test]
    fn roundtrip_all_classes() {
        for w in [
            genome::generate(50, 1),
            montage::generate(50, 2),
            ligo::generate(50, 3),
        ] {
            let text = to_text(&w);
            let back = from_text(&text).unwrap();
            assert_eq!(back.root, w.root);
            assert_eq!(back.dag.n_tasks(), w.dag.n_tasks());
            assert_eq!(back.dag.n_edges(), w.dag.n_edges());
            assert_eq!(back.dag.n_files(), w.dag.n_files());
            for t in w.dag.task_ids() {
                assert_eq!(back.dag.weight(t), w.dag.weight(t));
                assert_eq!(back.dag.task(t).name, w.dag.task(t).name);
            }
            for f in w.dag.file_ids() {
                assert_eq!(back.dag.file(f).size, w.dag.file(f).size);
            }
        }
    }

    #[test]
    fn parse_errors_are_reported_with_lines() {
        let e = from_text("task nope").unwrap_err();
        assert_eq!(e.line, 1);
        let e = from_text("# ok\nbogus directive\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn missing_root_is_an_error() {
        let e = from_text("kind t\n").unwrap_err();
        assert!(e.message.contains("root"));
    }

    #[test]
    fn expr_parser_nested() {
        let (e, used) = parse_expr(b"S(T0,P(T1,S(T2,T3)),T4)", 0, 1).unwrap();
        assert_eq!(used, 23);
        assert_eq!(e.n_tasks(), 5);
        assert!(e.is_normalized());
    }

    #[test]
    fn expr_parser_rejects_garbage() {
        assert!(parse_expr(b"X(T0)", 0, 1).is_err());
        assert!(parse_expr(b"S(T0", 0, 1).is_err());
        assert!(parse_expr(b"T", 0, 1).is_err());
    }
}
