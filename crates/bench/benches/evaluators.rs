//! Criterion bench: the four expected-makespan evaluators of §VI-B on a
//! coalesced Genome-300 CkptAll graph (the paper's speed comparison:
//! PathApprox ≪ Normal < Dodin ≪ MonteCarlo).

use ckpt_bench::{instance, pipeline_for};
use ckpt_core::Strategy;
use criterion::{criterion_group, criterion_main, Criterion};
use probdag::{Dodin, Evaluator, MonteCarlo, NormalSculli, PathApprox};

fn bench_evaluators(c: &mut Criterion) {
    let w = instance(pegasus::WorkflowClass::Genome, 300, 1e-3, 42);
    let pipe = pipeline_for(&w, 18, 0.01, 42);
    let sg = pipe.segment_graph(Strategy::CkptAll);
    let pdag = sg.pdag;

    let mut group = c.benchmark_group("evaluators-genome300");
    group.bench_function("pathapprox", |b| {
        b.iter(|| PathApprox::default().expected_makespan(&pdag))
    });
    group.bench_function("normal", |b| {
        b.iter(|| NormalSculli.expected_makespan(&pdag))
    });
    group.bench_function("dodin", |b| {
        b.iter(|| Dodin::default().expected_makespan(&pdag))
    });
    group.sample_size(10);
    group.bench_function("montecarlo-10k", |b| {
        let mc = MonteCarlo {
            trials: 10_000,
            seed: 1,
            threads: 0,
        };
        b.iter(|| mc.run(&pdag).mean)
    });
    group.finish();
}

fn bench_pathapprox_montage(c: &mut Criterion) {
    // Montage's complete-bipartite levels are PathApprox's worst case
    // (wide pred lists in the K-way merge); K = 256 is the production
    // default. `reused` holds one evaluator across iterations (the
    // steady-state assess loop: arena + heap + bitsets at their
    // high-water marks, no per-run allocations); `fresh` constructs a
    // new evaluator per run.
    let w = instance(pegasus::WorkflowClass::Montage, 300, 1e-3, 42);
    let pipe = pipeline_for(&w, 18, 0.01, 42);
    let sg = pipe.segment_graph(Strategy::CkptAll);
    let pdag = sg.pdag;

    let mut group = c.benchmark_group("pathapprox-montage300-k256");
    let reused = PathApprox::default();
    group.bench_function("reused", |b| b.iter(|| reused.expected_makespan(&pdag)));
    group.bench_function("fresh", |b| {
        b.iter(|| PathApprox::default().expected_makespan(&pdag))
    });
    group.finish();
}

criterion_group!(benches, bench_evaluators, bench_pathapprox_montage);
criterion_main!(benches);
