//! Criterion bench: discrete-event simulator throughput (per-execution
//! cost of the checkpointed renewal simulation and the CkptNone cascade
//! engine).

use ckpt_bench::{instance, pipeline_for};
use ckpt_core::Strategy;
use criterion::{criterion_group, criterion_main, Criterion};
use failsim::{simulate_none, simulate_segments, ExpFailures};

fn bench_sim(c: &mut Criterion) {
    let w = instance(pegasus::WorkflowClass::Genome, 300, 1e-3, 42);
    let pipe = pipeline_for(&w, 18, 0.001, 42);
    let lambda = pipe.platform.lambda();
    let sg = pipe.segment_graph(Strategy::CkptSome);

    let mut group = c.benchmark_group("failsim-genome300");
    group.bench_function("segments-one-run", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            simulate_segments(&sg, lambda, seed)
        })
    });
    group.bench_function("ckptnone-one-run", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut src = ExpFailures::new(lambda, seed);
            simulate_none(&w.dag, &pipe.schedule, &mut src, 1_000_000).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
