//! Criterion bench: `Allocate` (Algorithm 1) runtime across workflow
//! classes and sizes.

use ckpt_core::{allocate, AllocateConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pegasus::WorkflowClass;

fn bench_allocate(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocate");
    for class in WorkflowClass::ALL {
        for &size in &[50usize, 300, 1000] {
            let w = pegasus::generate(class, size, 42);
            let procs = ckpt_core::Platform::paper_proc_counts(size)[1];
            group.bench_with_input(BenchmarkId::new(class.name(), size), &w, |b, w| {
                b.iter(|| allocate(w, procs, &AllocateConfig::default()))
            });
        }
    }
    group.finish();
}

fn bench_allocate_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocate-scaling");
    group.sample_size(20);
    for &size in &[1000usize, 3000] {
        let w = pegasus::generate(WorkflowClass::Genome, size, 7);
        group.bench_with_input(BenchmarkId::new("genome", size), &w, |b, w| {
            b.iter(|| allocate(w, 64, &AllocateConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allocate, bench_allocate_scaling);
criterion_main!(benches);
