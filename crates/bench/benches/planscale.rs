//! Criterion bench: the checkpoint DP's scaling curve, 10³ → 10⁶ tasks.
//!
//! Chains this long satisfy the subquadratic kernel's preconditions
//! (additive segment costs, monotone profiles, convex exponential
//! model), so `optimal_checkpoints_reusing` runs the candidate-queue
//! kernel in O(n log n) probes — the quadratic fallback would need an
//! O(n²) base table (~4 TB at 10⁶ tasks) and is benched separately at
//! the sizes where it is feasible, for the crossover picture.

use ckpt_core::checkpoint_dp::optimal_checkpoints_exact_quadratic;
use ckpt_core::{CostCtx, DpScratch};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mspg::TaskId;

fn bench_kernel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("planscale");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 100_000, 1_000_000] {
        let w = pegasus::generic::chain(n, 3);
        let chain: Vec<TaskId> = w.dag.task_ids().collect();
        let ctx = CostCtx::exponential(&w.dag, 1e-4, 1e8);
        let mut scratch = DpScratch::new();
        group.bench_with_input(BenchmarkId::new("dp-kernel", n), &chain, |b, chain| {
            b.iter(|| ckpt_core::optimal_checkpoints_reusing(&ctx, chain, &mut scratch))
        });
        assert!(
            scratch.last_run_used_kernel(),
            "scaling chains must ride the kernel (n={n})"
        );
    }
    // The exact quadratic path at the largest size where its O(n²)
    // base table is still reasonable, for the crossover comparison.
    for &n in &[1_000usize, 4_000] {
        let w = pegasus::generic::chain(n, 3);
        let chain: Vec<TaskId> = w.dag.task_ids().collect();
        let ctx = CostCtx::exponential(&w.dag, 1e-4, 1e8);
        let mut scratch = DpScratch::new();
        group.bench_with_input(BenchmarkId::new("dp-quadratic", n), &chain, |b, chain| {
            b.iter(|| optimal_checkpoints_exact_quadratic(&ctx, chain, &mut scratch))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel_scaling);
criterion_main!(benches);
