//! Criterion bench: checkpoint-planning cost per policy — a whole-plan
//! pass (every superchain of the schedule) on the 300-task Genome and
//! Montage instances, with one reused `PolicyScratch` so the DP rides
//! its allocation-free `DpScratch` path. The DP's `O(n²)` segment-table
//! sweep is the reference cost; DalyPeriodic is `O(n)` segment-cost
//! probes plus the effective-rate fixed point; RiskThreshold re-sweeps
//! the open segment per task; GreedyCrossover is a pure structural
//! scan.

use ckpt_core::policy::{
    CheckpointPolicy, DalyPeriodic, DpOptimalPolicy, GreedyCrossover, PolicyScratch, RiskThreshold,
};
use ckpt_core::{AllocateConfig, FailureModel, Pipeline, Platform};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pegasus::ccr::scale_to_ccr;
use pegasus::WorkflowClass;

fn bench_policy_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy-planning");
    group.sample_size(20);
    let policies: [(&str, &dyn CheckpointPolicy); 4] = [
        ("dp", &DpOptimalPolicy),
        ("daly", &DalyPeriodic { period: None }),
        ("risk", &RiskThreshold { max_risk: 0.1 }),
        ("crossover", &GreedyCrossover),
    ];
    for class in [WorkflowClass::Genome, WorkflowClass::Montage] {
        let mut w = pegasus::generate(class, 300, 42);
        let bw = 1e8;
        scale_to_ccr(&mut w, 0.01, bw);
        let lambda = ckpt_core::lambda_from_pfail(0.001, w.dag.mean_weight());
        let platform = Platform::new(18, lambda, bw);
        let pipe = Pipeline::new(&w, platform, &AllocateConfig::default());
        let mut scratch = PolicyScratch::new();
        for (name, policy) in policies {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{class}-300")),
                &pipe,
                |b, pipe| b.iter(|| pipe.plan_policy_reusing(policy, &mut scratch)),
            );
        }
    }
    group.finish();
}

fn bench_policy_planning_weibull(c: &mut Criterion) {
    // Non-memoryless planning rides the pipeline's RestartCurve: the
    // DP's O(n²) renewal queries and Daly's effective-rate fixed point
    // both answer from the table.
    let mut group = c.benchmark_group("policy-planning-weibull-k2");
    group.sample_size(10);
    let mut w = pegasus::generate(WorkflowClass::Genome, 300, 42);
    let bw = 1e8;
    scale_to_ccr(&mut w, 0.01, bw);
    let model = FailureModel::weibull_from_pfail(2.0, 0.001, w.dag.mean_weight());
    let platform = Platform::with_model(18, model, bw);
    let pipe = Pipeline::new(&w, platform, &AllocateConfig::default());
    let mut scratch = PolicyScratch::new();
    let policies: [(&str, &dyn CheckpointPolicy); 3] = [
        ("dp", &DpOptimalPolicy),
        ("daly", &DalyPeriodic { period: None }),
        ("risk", &RiskThreshold { max_risk: 0.1 }),
    ];
    for (name, policy) in policies {
        group.bench_function(BenchmarkId::new(name, "genome-300"), |b| {
            b.iter(|| pipe.plan_policy_reusing(policy, &mut scratch))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_policy_planning,
    bench_policy_planning_weibull
);
criterion_main!(benches);
