//! Criterion bench: the O(n²) checkpoint-placement DP (Algorithm 2) on
//! superchains of growing length, plus the direct `segment_cost` used by
//! the simulator/cross-check path (now linear in segment width via the
//! reusable epoch-stamped id sets instead of `Vec::contains` scans).

use ckpt_core::{optimal_checkpoints, segment_cost_reusing, CostCtx, SegmentCostScratch};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mspg::TaskId;

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint-dp");
    for &n in &[10usize, 100, 500, 1000] {
        if n >= 500 {
            group.sample_size(10);
        }
        let w = pegasus::generic::chain(n, 3);
        let chain: Vec<TaskId> = w.dag.task_ids().collect();
        let ctx = CostCtx::exponential(&w.dag, 1e-4, 1e8);
        group.bench_with_input(BenchmarkId::new("chain", n), &chain, |b, chain| {
            b.iter(|| optimal_checkpoints(&ctx, chain))
        });
    }
    group.finish();
}

fn bench_dp_superchain(c: &mut Criterion) {
    // A linearized parallel block is denser in cross edges than a chain.
    let mut group = c.benchmark_group("checkpoint-dp-superchain");
    group.sample_size(20);
    let w = pegasus::generic::bipartite(40, 40, 5);
    let sched = ckpt_core::allocate(&w, 1, &ckpt_core::AllocateConfig::default());
    let ctx = CostCtx::exponential(&w.dag, 1e-4, 1e8);
    let biggest = sched
        .superchains
        .iter()
        .max_by_key(|sc| sc.tasks.len())
        .unwrap();
    group.bench_function("bipartite-40x40", |b| {
        b.iter(|| optimal_checkpoints(&ctx, &biggest.tasks))
    });
    group.finish();
}

fn bench_segment_cost(c: &mut Criterion) {
    // Wide segments are where the old O(width²) file dedup hurt: a
    // linearized bipartite block puts hundreds of files in one segment.
    let mut group = c.benchmark_group("segment-cost");
    for &width in &[40usize, 100] {
        let w = pegasus::generic::bipartite(width, width, 5);
        let sched = ckpt_core::allocate(&w, 1, &ckpt_core::AllocateConfig::default());
        let ctx = CostCtx::exponential(&w.dag, 1e-4, 1e8);
        let biggest = sched
            .superchains
            .iter()
            .max_by_key(|sc| sc.tasks.len())
            .unwrap();
        let hi = biggest.tasks.len() - 1;
        let mut scratch = SegmentCostScratch::new();
        group.bench_with_input(
            BenchmarkId::new("full-width", width),
            &biggest.tasks,
            |b, tasks| b.iter(|| segment_cost_reusing(&ctx, tasks, 0, hi, &mut scratch)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dp, bench_dp_superchain, bench_segment_cost);
criterion_main!(benches);
