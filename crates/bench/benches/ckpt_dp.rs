//! Criterion bench: the O(n²) checkpoint-placement DP (Algorithm 2) on
//! superchains of growing length, plus the direct `segment_cost` used by
//! the simulator/cross-check path (now linear in segment width via the
//! reusable epoch-stamped id sets instead of `Vec::contains` scans).
//!
//! The `checkpoint-dp-models` group is the RestartCurve headline: the
//! same Weibull/LogNormal DP with per-query 128-panel quadrature
//! (`direct`) vs the precomputed renewal curve (`curve`), and the
//! `checkpoint-dp-scratch` group is the allocation-free datapoint
//! (fresh buffers per superchain vs one reused `DpScratch`).

use ckpt_core::{
    optimal_checkpoints, optimal_checkpoints_reusing, segment_cost_reusing, CostCtx, DpScratch,
    FailureModel, RestartCurve, SegmentCostScratch,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mspg::TaskId;

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint-dp");
    for &n in &[10usize, 100, 500, 1000] {
        if n >= 500 {
            group.sample_size(10);
        }
        let w = pegasus::generic::chain(n, 3);
        let chain: Vec<TaskId> = w.dag.task_ids().collect();
        let ctx = CostCtx::exponential(&w.dag, 1e-4, 1e8);
        group.bench_with_input(BenchmarkId::new("chain", n), &chain, |b, chain| {
            b.iter(|| optimal_checkpoints(&ctx, chain))
        });
    }
    group.finish();
}

fn bench_dp_superchain(c: &mut Criterion) {
    // A linearized parallel block is denser in cross edges than a chain.
    let mut group = c.benchmark_group("checkpoint-dp-superchain");
    group.sample_size(20);
    let w = pegasus::generic::bipartite(40, 40, 5);
    let sched = ckpt_core::allocate(&w, 1, &ckpt_core::AllocateConfig::default());
    let ctx = CostCtx::exponential(&w.dag, 1e-4, 1e8);
    let biggest = sched
        .superchains
        .iter()
        .max_by_key(|sc| sc.tasks.len())
        .unwrap();
    group.bench_function("bipartite-40x40", |b| {
        b.iter(|| optimal_checkpoints(&ctx, &biggest.tasks))
    });
    group.finish();
}

fn bench_dp_models(c: &mut Criterion) {
    // Non-memoryless DP: every T(i, j) is a renewal query. `direct`
    // re-integrates per query (the pre-curve hot path); `curve` answers
    // from the precomputed table.
    let mut group = c.benchmark_group("checkpoint-dp-models");
    group.sample_size(10);
    let n = 100;
    let w = pegasus::generic::chain(n, 3);
    let chain: Vec<TaskId> = w.dag.task_ids().collect();
    let total = w.dag.total_weight() + 2.0 * w.dag.total_data_volume() / 1e8;
    let w_bar = w.dag.mean_weight();
    let models = [
        (
            "weibull-k0.7",
            FailureModel::weibull_from_pfail(0.7, 0.01, w_bar),
        ),
        (
            "weibull-k2",
            FailureModel::weibull_from_pfail(2.0, 0.01, w_bar),
        ),
        (
            "lognormal-s1",
            FailureModel::lognormal_from_pfail(1.0, 0.01, w_bar),
        ),
    ];
    for (name, model) in models {
        let direct_ctx = CostCtx::with_model(&w.dag, model, 1e8);
        group.bench_with_input(BenchmarkId::new("direct", name), &chain, |b, chain| {
            b.iter(|| optimal_checkpoints(&direct_ctx, chain))
        });
        let curve = RestartCurve::build(model, w_bar.min(total), total);
        let curve_ctx = CostCtx::with_curve(&w.dag, model, 1e8, Some(&curve));
        group.bench_with_input(BenchmarkId::new("curve", name), &chain, |b, chain| {
            b.iter(|| optimal_checkpoints(&curve_ctx, chain))
        });
    }
    group.finish();
}

fn bench_dp_scratch(c: &mut Criterion) {
    // The steady-state plan loop: the same superchain DP with fresh
    // buffers per call vs one reused scratch (no per-superchain heap
    // allocations once grown).
    let mut group = c.benchmark_group("checkpoint-dp-scratch");
    group.sample_size(20);
    let w = pegasus::generic::chain(500, 3);
    let chain: Vec<TaskId> = w.dag.task_ids().collect();
    let ctx = CostCtx::exponential(&w.dag, 1e-4, 1e8);
    group.bench_function("fresh-alloc", |b| {
        b.iter(|| optimal_checkpoints(&ctx, &chain))
    });
    let mut scratch = DpScratch::new();
    group.bench_function("reused-scratch", |b| {
        b.iter(|| optimal_checkpoints_reusing(&ctx, &chain, &mut scratch))
    });
    group.finish();
}

fn bench_segment_cost(c: &mut Criterion) {
    // Wide segments are where the old O(width²) file dedup hurt: a
    // linearized bipartite block puts hundreds of files in one segment.
    let mut group = c.benchmark_group("segment-cost");
    for &width in &[40usize, 100] {
        let w = pegasus::generic::bipartite(width, width, 5);
        let sched = ckpt_core::allocate(&w, 1, &ckpt_core::AllocateConfig::default());
        let ctx = CostCtx::exponential(&w.dag, 1e-4, 1e8);
        let biggest = sched
            .superchains
            .iter()
            .max_by_key(|sc| sc.tasks.len())
            .unwrap();
        let hi = biggest.tasks.len() - 1;
        let mut scratch = SegmentCostScratch::new();
        group.bench_with_input(
            BenchmarkId::new("full-width", width),
            &biggest.tasks,
            |b, tasks| b.iter(|| segment_cost_reusing(&ctx, tasks, 0, hi, &mut scratch)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dp,
    bench_dp_superchain,
    bench_dp_models,
    bench_dp_scratch,
    bench_segment_cost
);
criterion_main!(benches);
