//! Criterion bench: the O(n²) checkpoint-placement DP (Algorithm 2) on
//! superchains of growing length.

use ckpt_core::{optimal_checkpoints, CostCtx};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mspg::TaskId;

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint-dp");
    for &n in &[10usize, 100, 500, 1000] {
        if n >= 500 {
            group.sample_size(10);
        }
        let w = pegasus::generic::chain(n, 3);
        let chain: Vec<TaskId> = w.dag.task_ids().collect();
        let ctx = CostCtx {
            dag: &w.dag,
            lambda: 1e-4,
            bandwidth: 1e8,
        };
        group.bench_with_input(BenchmarkId::new("chain", n), &chain, |b, chain| {
            b.iter(|| optimal_checkpoints(&ctx, chain))
        });
    }
    group.finish();
}

fn bench_dp_superchain(c: &mut Criterion) {
    // A linearized parallel block is denser in cross edges than a chain.
    let mut group = c.benchmark_group("checkpoint-dp-superchain");
    group.sample_size(20);
    let w = pegasus::generic::bipartite(40, 40, 5);
    let sched = ckpt_core::allocate(&w, 1, &ckpt_core::AllocateConfig::default());
    let ctx = CostCtx {
        dag: &w.dag,
        lambda: 1e-4,
        bandwidth: 1e8,
    };
    let biggest = sched
        .superchains
        .iter()
        .max_by_key(|sc| sc.tasks.len())
        .unwrap();
    group.bench_function("bipartite-40x40", |b| {
        b.iter(|| optimal_checkpoints(&ctx, &biggest.tasks))
    });
    group.finish();
}

criterion_group!(benches, bench_dp, bench_dp_superchain);
criterion_main!(benches);
