//! Criterion bench: scenario-engine overhead and cache payoff on a tiny
//! figure grid (one class, one size, 2 CCR points — small enough that
//! the enumeration/pool/sink machinery is a visible fraction).

use ckpt_bench::engine::{self, EngineConfig, NullSink, Scenario, StringSink};
use ckpt_bench::scenarios::FigureScenario;
use criterion::{criterion_group, criterion_main, Criterion};
use pegasus::WorkflowClass;

fn tiny_scenario() -> FigureScenario {
    FigureScenario {
        class: WorkflowClass::Genome,
        sizes: vec![50],
        ccr_points: 2,
        instances: 1,
        base_seed: 42,
    }
}

fn bench_engine(c: &mut Criterion) {
    let scenario = tiny_scenario();
    let mut group = c.benchmark_group("engine-genome50");
    group.sample_size(10);
    group.bench_function("run-serial", |b| {
        b.iter(|| engine::run(&scenario, &EngineConfig::with_threads(1), &mut NullSink).unwrap())
    });
    group.bench_function("run-2-workers", |b| {
        b.iter(|| engine::run(&scenario, &EngineConfig::with_threads(2), &mut NullSink).unwrap())
    });
    group.bench_function("run-with-csv-sink", |b| {
        b.iter(|| {
            let mut sink = StringSink::new();
            engine::run(&scenario, &EngineConfig::with_threads(1), &mut sink).unwrap();
            sink.csv.len()
        })
    });
    group.bench_function("cell-enumeration", |b| b.iter(|| scenario.cells().len()));
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
