//! # ckpt-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§VI).
//! See DESIGN.md §5 for the experiment index (E1–E12) and §5.1 for the
//! scenario engine; EXPERIMENTS.md tracks paper-vs-measured results.
//! Binaries (all driven through [`engine`] by the scenarios in
//! [`scenarios`], all accepting `--threads`):
//!
//! * `figures` — E1/E2/E3: relative expected makespan of CkptAll and
//!   CkptNone over CkptSome vs CCR (Figures 5, 6, 7);
//! * `accuracy` — E4: accuracy/runtime of the four 2-state evaluators
//!   (§VI-B);
//! * `validate` — E5: first-order model vs discrete-event simulation;
//! * `ablation` — E6 (linearization), E7 (naive coalescing), E8 (Ligo
//!   incomplete-bipartite footnote);
//! * `distributions` — E9: the four strategies under Weibull / LogNormal
//!   failure models against the exponential baseline (DESIGN.md §6);
//! * `strategies` — E10: the checkpoint-policy comparison (DP vs
//!   Young/Daly periodic vs risk-threshold vs structural crossover,
//!   DESIGN.md §8);
//! * `drift` — E12: the incremental-planning drift sweep (per-cell
//!   `ckpt_service` sessions committing a drift ladder with an in-run
//!   cold-equality self-check, DESIGN.md §10);
//! * `whatif` — the batched what-if query load, incremental vs cold
//!   recompute (not grid-driven: it exercises `ckpt_service` directly;
//!   `splitting` and `planscale` are likewise direct harnesses).

pub mod engine;
pub mod scenarios;
pub mod summary;

use std::fmt::Write as _;
use std::path::Path;

use ckpt_core::{lambda_from_pfail, AllocateConfig, Pipeline, Platform, Strategy};
use mspg::Workflow;
use pegasus::ccr::scale_to_ccr;
use pegasus::WorkflowClass;
use probdag::{Evaluator, PathApprox};

/// Stable-storage bandwidth used throughout the experiments (bytes/s).
/// Its absolute value is immaterial: every experiment pins the CCR by
/// rescaling file sizes against it (§VI-A).
pub const BANDWIDTH: f64 = 1e8;

/// The paper's workflow sizes.
pub const SIZES: [usize; 3] = [50, 300, 1000];

/// The paper's `pfail` values (columns of Figures 5–7).
pub const PFAILS: [f64; 3] = [0.01, 0.001, 0.0001];

/// One row of the figure experiments.
#[derive(Clone, Debug)]
pub struct FigureRow {
    /// Workflow class (figure).
    pub class: WorkflowClass,
    /// Requested task count (row of the figure).
    pub size: usize,
    /// Actual task count of the generated instance.
    pub actual_tasks: usize,
    /// Processor count (curve).
    pub procs: usize,
    /// Per-task failure probability (column).
    pub pfail: f64,
    /// Communication-to-computation ratio (x-axis).
    pub ccr: f64,
    /// Expected makespan of CkptSome (seconds).
    pub em_some: f64,
    /// Expected makespan of CkptAll (seconds).
    pub em_all: f64,
    /// Expected makespan of CkptNone (Theorem 1, seconds).
    pub em_none: f64,
    /// Checkpointed tasks under CkptSome.
    pub ckpts_some: usize,
    /// Relative expected makespan CkptAll / CkptSome (y-axis, > 1 means
    /// CkptSome wins).
    pub rel_all: f64,
    /// Relative expected makespan CkptNone / CkptSome.
    pub rel_none: f64,
}

/// Runs one figure cell, averaging over `instances` generated workflows.
///
/// This is the serial reference implementation the calibration gates in
/// `tests/figure_shapes.rs` pin; the binaries and [`figure_grid`] run
/// the cache-sharing engine path ([`scenarios::FigureScenario`])
/// instead.
pub fn figure_cell(
    class: WorkflowClass,
    size: usize,
    procs: usize,
    pfail: f64,
    ccr: f64,
    instances: usize,
    base_seed: u64,
) -> FigureRow {
    assert!(instances >= 1);
    let evaluator = PathApprox::default();
    let (mut em_some, mut em_all, mut em_none) = (0.0, 0.0, 0.0);
    let mut ckpts = 0usize;
    let mut actual = 0usize;
    for i in 0..instances {
        let seed = base_seed.wrapping_add(i as u64);
        let mut w = pegasus::generate(class, size, seed);
        actual = w.n_tasks();
        scale_to_ccr(&mut w, ccr, BANDWIDTH);
        let lambda = lambda_from_pfail(pfail, w.dag.mean_weight());
        let platform = Platform::new(procs, lambda, BANDWIDTH);
        let cfg = AllocateConfig {
            seed,
            ..Default::default()
        };
        let pipe = Pipeline::new(&w, platform, &cfg);
        let some = pipe.assess(Strategy::CkptSome, &evaluator);
        let all = pipe.assess(Strategy::CkptAll, &evaluator);
        let none = pipe.assess(Strategy::CkptNone, &evaluator);
        em_some += some.expected_makespan;
        em_all += all.expected_makespan;
        em_none += none.expected_makespan;
        ckpts += some.n_checkpoints;
    }
    let nf = instances as f64;
    let (em_some, em_all, em_none) = (em_some / nf, em_all / nf, em_none / nf);
    FigureRow {
        class,
        size,
        actual_tasks: actual,
        procs,
        pfail,
        ccr,
        em_some,
        em_all,
        em_none,
        ckpts_some: ckpts / instances,
        rel_all: em_all / em_some,
        rel_none: em_none / em_some,
    }
}

/// Runs the full grid for one class (one figure): sizes × processor
/// counts × pfail × CCR grid, through the parallel scenario engine
/// (all cores; rows come back in canonical grid order regardless).
pub fn figure_grid(
    class: WorkflowClass,
    ccr_points: usize,
    instances: usize,
    seed: u64,
) -> Vec<FigureRow> {
    let scenario = scenarios::FigureScenario::paper(class, ccr_points, instances, seed);
    engine::run(
        &scenario,
        &engine::EngineConfig::default(),
        &mut engine::NullSink,
    )
    .expect("in-memory engine run cannot fail")
    .rows
}

/// CSV header matching [`FigureRow`].
pub const FIGURE_HEADER: &str =
    "class,size,actual_tasks,procs,pfail,ccr,em_some,em_all,em_none,ckpts_some,rel_all,rel_none";

/// Formats a figure row as CSV.
pub fn figure_csv(r: &FigureRow) -> String {
    format!(
        "{},{},{},{},{},{:.6e},{:.6},{:.6},{:.6},{},{:.4},{:.4}",
        r.class,
        r.size,
        r.actual_tasks,
        r.procs,
        r.pfail,
        r.ccr,
        r.em_some,
        r.em_all,
        r.em_none,
        r.ckpts_some,
        r.rel_all,
        r.rel_none
    )
}

/// Writes rows to `path`, creating parent directories.
pub fn write_csv(path: &Path, header: &str, rows: &[String]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut out = String::with_capacity(rows.len() * 80 + header.len() + 1);
    writeln!(out, "{header}").unwrap();
    for r in rows {
        writeln!(out, "{r}").unwrap();
    }
    std::fs::write(path, out)
}

/// A workflow instance pinned to a CCR (shared by `accuracy`/`validate`).
pub fn instance(class: WorkflowClass, size: usize, ccr: f64, seed: u64) -> Workflow {
    let mut w = pegasus::generate(class, size, seed);
    scale_to_ccr(&mut w, ccr, BANDWIDTH);
    w
}

/// Builds the evaluation pipeline for an instance.
pub fn pipeline_for<'a>(w: &'a Workflow, procs: usize, pfail: f64, seed: u64) -> Pipeline<'a> {
    let lambda = lambda_from_pfail(pfail, w.dag.mean_weight());
    let platform = Platform::new(procs, lambda, BANDWIDTH);
    let cfg = AllocateConfig {
        seed,
        ..Default::default()
    };
    Pipeline::new(w, platform, &cfg)
}

/// Times a single evaluator invocation, returning `(estimate, seconds)`.
pub fn timed_eval(e: &dyn Evaluator, pdag: &probdag::ProbDag) -> (f64, f64) {
    let start = std::time::Instant::now();
    let v = e.expected_makespan(pdag);
    (v, start.elapsed().as_secs_f64())
}

/// Tiny `--key value` argument parser for the harness binaries.
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parses `std::env::args()` (skipping the binary name).
    pub fn parse() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            if let Some(key) = argv[i].strip_prefix("--") {
                let value = argv.get(i + 1).cloned().unwrap_or_default();
                pairs.push((key.to_owned(), value));
                i += 2;
            } else {
                i += 1;
            }
        }
        Args { pairs }
    }

    /// The value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parses `--key` as `T`, with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Observability outputs for a harness binary, parsed from
/// `--trace-out FILE` (schema-validated JSONL span dump) and
/// `--metrics-out FILE` (Prometheus text exposition, or the
/// machine-readable JSON snapshot when FILE ends in `.json` — the form
/// the `obs` section of BENCH_hotpath.json is regenerated from). Every
/// binary accepts both; construct this **before** the run (it arms the
/// span recorder and zeroes the metrics registry) and call
/// [`ObsOut::finish`] after.
pub struct ObsOut {
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

impl ObsOut {
    /// Parses the flags; arms the recorder / resets the registry when
    /// an output was requested. A binary built with
    /// `--no-default-features` has the layer compiled out, and silently
    /// writing an empty trace would be worse than refusing — so this
    /// panics instead.
    pub fn from_args(args: &Args) -> Self {
        let trace_out = args.get("trace-out").map(str::to_owned);
        let metrics_out = args.get("metrics-out").map(str::to_owned);
        if (trace_out.is_some() || metrics_out.is_some()) && !obs::compiled_in() {
            panic!(
                "--trace-out/--metrics-out require the `observe` feature; \
                 this binary was built with --no-default-features"
            );
        }
        if trace_out.is_some() || metrics_out.is_some() {
            obs::metrics::reset();
        }
        if trace_out.is_some() {
            obs::span::arm();
        }
        ObsOut {
            trace_out,
            metrics_out,
        }
    }

    /// Whether span recording was requested (and the recorder armed).
    pub fn tracing(&self) -> bool {
        self.trace_out.is_some()
    }

    /// Whether a metrics dump was requested.
    pub fn metrics(&self) -> bool {
        self.metrics_out.is_some()
    }

    /// Disarms the recorder and writes the requested files. Call after
    /// any final metric exports (e.g. `Store::export_metrics`), once.
    pub fn finish(&self) -> std::io::Result<()> {
        obs::span::disarm();
        if let Some(out) = &self.trace_out {
            let spans = obs::span::drain();
            let path = Path::new(out);
            obs::jsonl::write_file(path, &spans)?;
            eprintln!("trace: {} spans -> {}", spans.len(), path.display());
        }
        if let Some(out) = &self.metrics_out {
            let path = Path::new(out);
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)?;
                }
            }
            let text = if out.ends_with(".json") {
                obs::metrics::snapshot_json()
            } else {
                obs::metrics::exposition()
            };
            std::fs::write(path, text)?;
            eprintln!("metrics -> {}", path.display());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_cell_produces_sane_ratios() {
        let r = figure_cell(WorkflowClass::Genome, 50, 5, 0.001, 1e-3, 1, 42);
        assert!(r.em_some > 0.0);
        assert!(r.rel_all >= 0.98, "CkptAll/CkptSome {}", r.rel_all);
        assert!(r.rel_none > 0.0);
        assert_eq!(r.procs, 5);
    }

    #[test]
    fn csv_roundtrip_format() {
        let r = figure_cell(WorkflowClass::Montage, 50, 3, 0.01, 0.1, 1, 1);
        let line = figure_csv(&r);
        assert_eq!(line.split(',').count(), FIGURE_HEADER.split(',').count());
        assert!(line.starts_with("montage,50"));
    }

    #[test]
    fn args_parser() {
        let args = Args {
            pairs: vec![
                ("workflow".into(), "ligo".into()),
                ("points".into(), "5".into()),
            ],
        };
        assert_eq!(args.get("workflow"), Some("ligo"));
        assert_eq!(args.get_or("points", 9usize), 5);
        assert_eq!(args.get_or("instances", 3usize), 3);
    }
}
