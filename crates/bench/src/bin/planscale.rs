//! planscale — end-to-end planning of one huge synthetic workflow
//! (default: a million-task chain), printing a deterministic placement
//! digest on stdout and the per-stage wall breakdown on stderr.
//!
//! The digest line is a pure function of the arguments: task count,
//! superchain count, checkpoint count, an FNV-1a hash of the
//! checkpoint-after bits, and the analytic expected makespan (exact
//! bits). CI diffs it across `--plan-threads` budgets to pin the
//! parallel-placement determinism guarantee; the stage walls quantify
//! where generate/schedule/plan/evaluate time goes at scale.
//!
//! ```text
//! cargo run -p ckpt_bench --release --bin planscale
//!     [-- --tasks 1000000] [--shape chain|forkjoin] [--width 1000]
//!     [--procs 8] [--pfail 0.001] [--seed 42] [--plan-threads 1]
//!     [--eval 1]
//! ```
//!
//! `--eval 0` skips the expected-makespan evaluation (and drops its
//! fields from the digest line) — the placement digest is complete
//! without it, and time-budgeted CI smokes only need the placement.

use ckpt_bench::engine::{Stage, StageWalls};
use ckpt_bench::{Args, ObsOut, BANDWIDTH};
use ckpt_core::{
    allocate, coalesce, lambda_from_pfail, AllocateConfig, CostCtx, Pipeline, Platform, Strategy,
};
use mspg::linearize::Linearizer;
use probdag::{Evaluator, PathApprox};

fn main() {
    let args = Args::parse();
    let obs_out = ObsOut::from_args(&args);
    let tasks: usize = args.get_or("tasks", 1_000_000);
    let shape: String = args.get_or("shape", "chain".to_owned());
    let width: usize = args.get_or("width", 1000);
    let procs: usize = args.get_or("procs", 8);
    let pfail: f64 = args.get_or("pfail", 0.001);
    let seed: u64 = args.get_or("seed", 42);
    let plan_threads: usize = args.get_or("plan-threads", 1);
    let eval: usize = args.get_or("eval", 1);

    let walls = StageWalls::new();
    let w = walls.time(Stage::Generate, || match shape.as_str() {
        "chain" => pegasus::generic::chain(tasks, seed),
        "forkjoin" => {
            let levels = (tasks / (width + 1)).max(1);
            pegasus::generic::fork_join(levels, width, seed)
        }
        other => panic!("unknown --shape `{other}` (chain|forkjoin)"),
    });
    let n = w.n_tasks();
    let schedule = walls.time(Stage::Schedule, || {
        allocate(
            &w,
            procs,
            &AllocateConfig {
                linearizer: Linearizer::Structural,
                seed,
            },
        )
    });
    let n_chains = schedule.superchains.len();
    let lambda = lambda_from_pfail(pfail, w.dag.mean_weight());
    let platform = Platform::new(procs, lambda, BANDWIDTH);
    let pipe = Pipeline::with_schedule(&w, platform, schedule).with_plan_threads(plan_threads);
    let plan = walls.time(Stage::Plan, || pipe.plan(Strategy::CkptSome));
    // Coalescing is part of planning; reuse the computed plan rather
    // than replanning through `segment_graph`.
    let ctx = CostCtx::exponential(&w.dag, lambda, BANDWIDTH);
    let sg = walls.time(Stage::Plan, || coalesce(&ctx, &pipe.schedule, &plan));
    let em = (eval != 0).then(|| {
        walls.time(Stage::Evaluate, || {
            PathApprox::default().expected_makespan(&sg.pdag)
        })
    });

    // FNV-1a over the checkpoint-after bits: any placement difference
    // flips the digest. The formula lives in seedmix::digest now; CI
    // pins this printed line, so the shared helper must stay
    // byte-identical to the historical inline loop.
    let h = seedmix::digest::plan_digest(&plan.ckpt_after);
    let em_cols = em
        .map(|em| format!(" em_bits={:016x} em={:.6e}", em.to_bits(), em))
        .unwrap_or_default();
    println!(
        "tasks={} superchains={} checkpoints={} digest={:016x}{}",
        n,
        n_chains,
        plan.n_checkpoints(),
        h,
        em_cols
    );
    eprintln!(
        "planscale: shape={shape} tasks={n} procs={procs} pfail={pfail} \
         plan_threads={plan_threads} segments={}",
        sg.segments.len()
    );
    eprintln!("stage walls: {}", walls.report().summary());
    obs_out.finish().expect("write observability outputs");
}
