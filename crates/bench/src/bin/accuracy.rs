//! E4 — §VI-B: accuracy and runtime of the four expected-makespan
//! evaluators (MonteCarlo ground truth at 300k trials vs Dodin, Normal,
//! PathApprox) on the 2-state DAGs the pipeline produces. Cells run on
//! the scenario engine; `--threads` buys cell-level parallelism while
//! each cell's nested Monte Carlo gets the separate `--mc-threads`
//! budget (default 0 = all cores — MC estimates are bit-identical
//! functions of `(seed, trials)`, so the budget only sets the pace;
//! the `runtime_s` column is wall-clock by design and never
//! byte-stable).
//!
//! ```text
//! cargo run -p ckpt_bench --release --bin accuracy [-- --trials 300000]
//!     [--seed 42] [--threads 0] [--mc-threads 0] [--plan-threads 1]
//!     [--out results]
//! ```

use ckpt_bench::engine::{self, CsvFileSink, EngineConfig};
use ckpt_bench::scenarios::AccuracyScenario;
use ckpt_bench::{Args, ObsOut};

fn main() {
    let args = Args::parse();
    let obs_out = ObsOut::from_args(&args);
    let trials: usize = args.get_or("trials", 300_000);
    let seed: u64 = args.get_or("seed", 42);
    let threads: usize = args.get_or("threads", 0);
    let mc_threads: usize = args.get_or("mc-threads", 0);
    let plan_threads: usize = args.get_or("plan-threads", 1);
    let out_dir: String = args.get_or("out", "results".to_owned());
    let pfail = 0.01;
    let scenario = AccuracyScenario {
        trials,
        sizes: vec![50, 300, 1000],
        pfail,
        base_seed: seed,
    };
    println!("# E4 accuracy (MC trials = {trials}, pfail = {pfail})");
    let path = std::path::Path::new(&out_dir).join("table_accuracy.csv");
    let mut sink = CsvFileSink::new(&path);
    let cfg = EngineConfig {
        threads,
        mc_threads,
        plan_threads,
    };
    let report = engine::run(&scenario, &cfg, &mut sink).expect("write CSV");
    println!(
        "{:8} {:5} {:9} {:6} {:>11} {:>12} {:>12} {:>10}",
        "class", "size", "strategy", "nodes", "evaluator", "estimate", "err(%)", "time(s)"
    );
    for r in &report.rows {
        println!(
            "{:8} {:5} {:9} {:6} {:>11} {:>12.4} {:>12.4} {:>10.6}",
            r.class.name(),
            r.size,
            r.strategy.name(),
            r.nodes,
            r.evaluator,
            r.estimate,
            r.rel_error_pct,
            r.runtime_s
        );
    }
    eprintln!(
        "wrote {} ({} cells in {:.1}s, {} workers × {} MC threads)",
        path.display(),
        report.cells,
        report.wall,
        report.workers,
        report.mc_threads
    );
    eprintln!("stage walls: {}", report.stages.summary());
    obs_out.finish().expect("write observability outputs");
}
