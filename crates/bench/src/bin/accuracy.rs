//! E4 — §VI-B: accuracy and runtime of the four expected-makespan
//! evaluators (MonteCarlo ground truth at 300k trials vs Dodin, Normal,
//! PathApprox) on the 2-state DAGs the pipeline produces.
//!
//! ```text
//! cargo run -p ckpt-bench --release --bin accuracy [-- --trials 300000]
//!     [--seed 42] [--out results]
//! ```

use ckpt_bench::{instance, pipeline_for, timed_eval, write_csv, Args};
use ckpt_core::Strategy;
use pegasus::WorkflowClass;
use probdag::{Dodin, Evaluator, MonteCarlo, NormalSculli, PathApprox};

const HEADER: &str =
    "class,size,strategy,nodes,evaluator,estimate,rel_error_pct,runtime_s,mc_stderr";

fn main() {
    let args = Args::parse();
    let trials: usize = args.get_or("trials", 300_000);
    let seed: u64 = args.get_or("seed", 42);
    let out_dir: String = args.get_or("out", "results".to_owned());
    let pfail = 0.01;
    let mut lines = Vec::new();
    println!("# E4 accuracy (MC trials = {trials}, pfail = {pfail})");
    println!(
        "{:8} {:5} {:9} {:6} {:>11} {:>12} {:>12} {:>10}",
        "class", "size", "strategy", "nodes", "evaluator", "estimate", "err(%)", "time(s)"
    );
    for class in WorkflowClass::ALL {
        for &size in &[50usize, 300, 1000] {
            let ccr = {
                let (lo, hi) = class.ccr_range();
                (lo * hi).sqrt() // mid of the log range
            };
            let w = instance(class, size, ccr, seed);
            let procs = ckpt_core::Platform::paper_proc_counts(size)[1];
            let pipe = pipeline_for(&w, procs, pfail, seed);
            for strategy in [Strategy::CkptAll, Strategy::CkptSome] {
                let sg = pipe.segment_graph(strategy);
                let mc = MonteCarlo {
                    trials,
                    seed,
                    threads: 0,
                };
                let t0 = std::time::Instant::now();
                let truth = mc.run(&sg.pdag);
                let mc_time = t0.elapsed().as_secs_f64();
                let evals: Vec<(&str, f64, f64)> = vec![
                    ("MonteCarlo", truth.mean, mc_time),
                    {
                        let (v, t) = timed_eval(&Dodin::default(), &sg.pdag);
                        ("Dodin", v, t)
                    },
                    {
                        let (v, t) = timed_eval(&NormalSculli, &sg.pdag);
                        ("Normal", v, t)
                    },
                    {
                        let (v, t) = timed_eval(&PathApprox::default(), &sg.pdag);
                        ("PathApprox", v, t)
                    },
                ];
                for (name, v, t) in evals {
                    let err = 100.0 * (v - truth.mean).abs() / truth.mean;
                    println!(
                        "{:8} {:5} {:9} {:6} {:>11} {:>12.4} {:>12.4} {:>10.6}",
                        class.name(),
                        size,
                        strategy.name(),
                        sg.pdag.n_nodes(),
                        name,
                        v,
                        err,
                        t
                    );
                    lines.push(format!(
                        "{},{},{},{},{},{:.6},{:.4},{:.6},{:.6}",
                        class.name(),
                        size,
                        strategy.name(),
                        sg.pdag.n_nodes(),
                        name,
                        v,
                        err,
                        t,
                        truth.stderr
                    ));
                }
            }
        }
    }
    let path = std::path::Path::new(&out_dir).join("table_accuracy.csv");
    write_csv(&path, HEADER, &lines).expect("write CSV");
    eprintln!("wrote {}", path.display());
    let _ = Evaluator::name(&PathApprox::default());
}
