//! E12 — the incremental-planning drift sweep: every `(class, size)`
//! cell opens a fresh `ckpt_service` session and serially commits a
//! fixed drift ladder (λ drifts, policy swaps, a platform rescale, a
//! model-family swap), one CSV row per step. With the self-check on
//! (the default) every incremental answer is asserted bit-identical to
//! a cold recompute of the same drifted inputs inside the run itself —
//! the scenario doubles as an end-to-end soundness harness for the
//! service's cache invalidation.
//!
//! ```text
//! cargo run -p ckpt_bench --release --bin drift
//!     [-- --sizes 50,300] [--seed 42] [--threads 0]
//!     [--self-check 1] [--out results]
//! ```

use ckpt_bench::engine::{self, CsvFileSink, EngineConfig};
use ckpt_bench::scenarios::DriftScenario;
use ckpt_bench::{Args, ObsOut};

fn main() {
    let args = Args::parse();
    let obs_out = ObsOut::from_args(&args);
    let seed: u64 = args.get_or("seed", 42);
    let threads: usize = args.get_or("threads", 0);
    let self_check: usize = args.get_or("self-check", 1);
    let out_dir: String = args.get_or("out", "results".to_owned());
    let sizes: Vec<usize> = args
        .get("sizes")
        .map(|s| {
            s.split(',')
                .map(|x| x.parse().expect("bad --sizes entry"))
                .collect()
        })
        .unwrap_or_else(|| vec![50, 300]);
    println!(
        "# E12 incremental drift sweep (cold self-check: {})",
        self_check != 0
    );
    let scenario = DriftScenario {
        self_check: self_check != 0,
        ..DriftScenario::standard(sizes, seed)
    };
    let path = std::path::Path::new(&out_dir).join("drift.csv");
    let mut sink = CsvFileSink::new(&path);
    let report =
        engine::run(&scenario, &EngineConfig::with_threads(threads), &mut sink).expect("write CSV");
    eprintln!(
        "wrote {} rows to {} in {:.1}s ({} workers)",
        sink.rows_written(),
        path.display(),
        report.wall,
        report.workers,
    );
    obs_out.finish().expect("write observability outputs");
}
