//! E5 — validates the paper's first-order model against discrete-event
//! simulation:
//!
//! * CkptAll / CkptSome: PathApprox on the coalesced 2-state DAG
//!   (Eq. (2)) vs the exact renewal simulation of checkpointed execution;
//! * CkptNone: the Theorem 1 closed form vs the full crossover-cascade
//!   simulation (whose expectation is #P-complete to compute).
//!
//! Cells run on the scenario engine; `--threads` buys cell-level
//! parallelism, while each cell's nested simulation gets the separate
//! `--mc-threads` budget (default 0 = all cores). Both are pure speed
//! knobs: the CSV is byte-identical for every combination.
//!
//! ```text
//! cargo run -p ckpt_bench --release --bin validate [-- --runs 5000]
//!     [--seed 42] [--threads 0] [--mc-threads 0] [--plan-threads 1]
//!     [--out results]
//! ```

use ckpt_bench::engine::{self, CsvFileSink, EngineConfig};
use ckpt_bench::scenarios::ValidateScenario;
use ckpt_bench::summary::EndpointSummary;
use ckpt_bench::{Args, ObsOut};

fn main() {
    let args = Args::parse();
    let obs_out = ObsOut::from_args(&args);
    let runs: usize = args.get_or("runs", 5000);
    let seed: u64 = args.get_or("seed", 42);
    let threads: usize = args.get_or("threads", 0);
    let mc_threads: usize = args.get_or("mc-threads", 0);
    let plan_threads: usize = args.get_or("plan-threads", 1);
    let out_dir: String = args.get_or("out", "results".to_owned());
    let scenario = ValidateScenario {
        runs,
        sizes: vec![50, 300],
        base_seed: seed,
    };
    println!("# E5 model-vs-simulation validation ({runs} sim runs per cell)");
    let path = std::path::Path::new(&out_dir).join("table_validation.csv");
    let mut sink = CsvFileSink::new(&path);
    let cfg = EngineConfig {
        threads,
        mc_threads,
        plan_threads,
    };
    let report = engine::run(&scenario, &cfg, &mut sink).expect("write CSV");
    println!(
        "{:8} {:5} {:7} {:9} {:>14} {:>12} {:>12} {:>9}",
        "class", "size", "pfail", "strategy", "model", "model_EM", "sim_EM", "err(%)"
    );
    for r in &report.rows {
        println!(
            "{:8} {:5} {:7} {:9} {:>14} {:>12.2} {:>12.2} {:>9.3}  (diverged {})",
            r.class.name(),
            r.size,
            r.pfail,
            r.strategy,
            r.model,
            r.model_em,
            r.sim_em,
            r.rel_err_pct,
            r.diverged
        );
    }
    // Shape summary: model error at the pfail endpoints, per strategy.
    let mut summary = EndpointSummary::new("class size strategy", "pfail", &["err_pct"]);
    for r in &report.rows {
        summary.observe(
            &format!("{:8} {:5} {:9}", r.class.name(), r.size, r.strategy),
            r.pfail,
            &[r.rel_err_pct],
        );
    }
    println!("# E5 model-error summary");
    summary.print();
    eprintln!(
        "wrote {} ({} cells in {:.1}s, {} workers × {} sim threads)",
        path.display(),
        report.cells,
        report.wall,
        report.workers,
        report.mc_threads
    );
    eprintln!("stage walls: {}", report.stages.summary());
    obs_out.finish().expect("write observability outputs");
}
