//! E5 — validates the paper's first-order model against discrete-event
//! simulation:
//!
//! * CkptAll / CkptSome: PathApprox on the coalesced 2-state DAG
//!   (Eq. (2)) vs the exact renewal simulation of checkpointed execution;
//! * CkptNone: the Theorem 1 closed form vs the full crossover-cascade
//!   simulation (whose expectation is #P-complete to compute).
//!
//! ```text
//! cargo run -p ckpt-bench --release --bin validate [-- --runs 5000]
//!     [--seed 42] [--out results]
//! ```

use ckpt_bench::{instance, pipeline_for, write_csv, Args};
use ckpt_core::Strategy;
use failsim::{montecarlo_none, montecarlo_segments, SimConfig};
use pegasus::WorkflowClass;
use probdag::PathApprox;

const HEADER: &str =
    "class,size,pfail,strategy,model,model_em,sim_em,sim_stderr,rel_err_pct,diverged";

fn main() {
    let args = Args::parse();
    let runs: usize = args.get_or("runs", 5000);
    let seed: u64 = args.get_or("seed", 42);
    let out_dir: String = args.get_or("out", "results".to_owned());
    let mut lines = Vec::new();
    println!("# E5 model-vs-simulation validation ({runs} sim runs per cell)");
    println!(
        "{:8} {:5} {:7} {:9} {:>10} {:>12} {:>12} {:>9}",
        "class", "size", "pfail", "strategy", "model", "model_EM", "sim_EM", "err(%)"
    );
    for class in WorkflowClass::ALL {
        for &size in &[50usize, 300] {
            let ccr = {
                let (lo, hi) = class.ccr_range();
                (lo * hi).sqrt()
            };
            for &pfail in &[0.01, 0.001, 0.0001] {
                let w = instance(class, size, ccr, seed);
                let procs = ckpt_core::Platform::paper_proc_counts(size)[1];
                let pipe = pipeline_for(&w, procs, pfail, seed);
                let lambda = pipe.platform.lambda;
                let cfg = SimConfig {
                    runs,
                    seed,
                    ..Default::default()
                };
                // Checkpointed strategies: Eq. (2) model vs renewal sim.
                for strategy in [Strategy::CkptAll, Strategy::CkptSome] {
                    let model = pipe
                        .assess(strategy, &PathApprox::default())
                        .expected_makespan;
                    let sg = pipe.segment_graph(strategy);
                    let sim = montecarlo_segments(&sg, lambda, &cfg);
                    let err = 100.0 * (model - sim.mean_makespan).abs() / sim.mean_makespan;
                    println!(
                        "{:8} {:5} {:7} {:9} {:>10} {:>12.2} {:>12.2} {:>9.3}",
                        class.name(),
                        size,
                        pfail,
                        strategy.name(),
                        "Eq2+PA",
                        model,
                        sim.mean_makespan,
                        err
                    );
                    lines.push(format!(
                        "{},{},{},{},Eq2+PathApprox,{:.4},{:.4},{:.4},{:.3},0",
                        class.name(),
                        size,
                        pfail,
                        strategy.name(),
                        model,
                        sim.mean_makespan,
                        sim.stderr,
                        err
                    ));
                }
                // CkptNone: Theorem 1 vs cascade simulation.
                let model = pipe
                    .assess(Strategy::CkptNone, &PathApprox::default())
                    .expected_makespan;
                let sim = montecarlo_none(&w.dag, &pipe.schedule, lambda, &cfg);
                let err = 100.0 * (model - sim.stats.mean_makespan).abs() / sim.stats.mean_makespan;
                println!(
                    "{:8} {:5} {:7} {:9} {:>10} {:>12.2} {:>12.2} {:>9.3}  (diverged {})",
                    class.name(),
                    size,
                    pfail,
                    "CkptNone",
                    "Theorem1",
                    model,
                    sim.stats.mean_makespan,
                    err,
                    sim.diverged
                );
                lines.push(format!(
                    "{},{},{},CkptNone,Theorem1,{:.4},{:.4},{:.4},{:.3},{}",
                    class.name(),
                    size,
                    pfail,
                    model,
                    sim.stats.mean_makespan,
                    sim.stats.stderr,
                    err,
                    sim.diverged
                ));
            }
        }
    }
    let path = std::path::Path::new(&out_dir).join("table_validation.csv");
    write_csv(&path, HEADER, &lines).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
