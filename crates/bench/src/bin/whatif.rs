//! `whatif` — the incremental planning service under a batched
//! drift-query load, against its own cold-recompute control.
//!
//! Opens one [`ckpt_service::Session`] on a generated instance and
//! answers a deterministic batch of what-if queries — λ drifts cycling
//! a fixed set of distinct values, policy swaps, platform rescales —
//! either **incrementally** (one shared store, the default) or **cold**
//! (`--cold 1`: a fresh session and store per query). Both modes write
//! the same CSV schema with rows in query order, and the bytes are
//! identical for every `--threads` value *and* across the two modes:
//! the store only decides who computes an artifact, never what it is.
//! CI diffs the two files; the wall-clock ratio printed to stderr is
//! the service's batch-amortized speedup (BENCH_hotpath.json).
//!
//! ```text
//! cargo run -p ckpt_bench --release --bin whatif
//!     [-- --class montage] [--size 300] [--seed 9] [--ccr 0.05]
//!     [--procs 18] [--pfail 1e-3] [--queries 256] [--lambdas 16]
//!     [--kinds all] [--threads 0] [--cold 0] [--out results/whatif.csv]
//!     [--deadline-ms 0]
//! ```
//!
//! `--deadline-ms N` (default 0 = off) gives every query a cooperative
//! wall-clock budget (`Session::deadline`): over-budget queries report
//! a typed cancellation instead of a row value, and their count goes to
//! stderr. Off by default, so benchmark CSVs are bit-identical to the
//! pre-deadline runs.
//!
//! Observability (DESIGN.md §12): `--trace-out FILE` dumps the query
//! batch's span tree as schema-validated JSONL, `--metrics-out FILE`
//! the Prometheus text exposition (store counters included), and
//! `--stats 1` prints the per-memo [`ckpt_service::StoreStats`] table
//! to stderr. None of these perturb the CSV — CI diffs traced against
//! untraced output.

use std::io::Write as _;
use std::time::Instant;

use ckpt_bench::{Args, ObsOut};
use ckpt_service::{
    Answer, Inputs, ModelSpec, PlanResult, PolicySpec, Session, WhatIf, WorkflowSource,
};
use pegasus::WorkflowClass;

/// The deterministic query batch. `--kinds all` (the default) mixes two
/// λ drifts for every policy swap or platform rescale, cycling
/// `lambdas` distinct multipliers of the base `pfail` so the
/// incremental store keeps revisiting warm keys; `--kinds pfail` emits
/// pure λ drifts, so with `lambdas >= n` every incremental query is a
/// *first visit* of its λ — the honest per-query drift cost, no batch
/// amortization.
fn build_queries(n: usize, lambdas: usize, pfail: f64, procs: usize, kinds: &str) -> Vec<WhatIf> {
    const POLICIES: [PolicySpec; 5] = [
        PolicySpec::DpOptimal,
        PolicySpec::CkptAll,
        PolicySpec::ExitOnly,
        PolicySpec::Daly { period: None },
        PolicySpec::Crossover,
    ];
    let lambda = |i: usize| WhatIf::SetPfail(pfail * (1.0 + (i % lambdas) as f64 * 0.25));
    match kinds {
        "pfail" => (0..n).map(lambda).collect(),
        "all" => (0..n)
            .map(|i| match i % 4 {
                0 | 1 => lambda(i / 2),
                2 => WhatIf::SetPolicy(POLICIES[(i / 4) % POLICIES.len()]),
                _ => WhatIf::SetProcs(procs + (i / 4) % 8),
            })
            .collect(),
        other => panic!("unknown --kinds {other} (expected all|pfail)"),
    }
}

fn kind(q: &WhatIf) -> &'static str {
    match q {
        WhatIf::SetPfail(_) => "pfail",
        WhatIf::SetPolicy(_) => "policy",
        WhatIf::SetProcs(_) => "procs",
        _ => "nop",
    }
}

fn param(q: &WhatIf) -> f64 {
    match q {
        WhatIf::SetPfail(p) => *p,
        WhatIf::SetProcs(n) => *n as f64,
        _ => 0.0,
    }
}

fn csv_row(i: usize, q: &WhatIf, a: &Answer) -> String {
    format!(
        "{},{},{:.6e},{},{:.4},{},{},{:.6e},{:.4}",
        i,
        kind(q),
        param(q),
        a.policy,
        a.expected_makespan,
        a.n_segments,
        a.ckpt_files,
        a.ckpt_bytes,
        a.w_par
    )
}

fn main() {
    let args = Args::parse();
    let obs_out = ObsOut::from_args(&args);
    let class = match args.get_or("class", "montage".to_owned()).as_str() {
        "genome" => WorkflowClass::Genome,
        "montage" => WorkflowClass::Montage,
        "ligo" => WorkflowClass::Ligo,
        "cybershake" => WorkflowClass::Cybershake,
        other => panic!("unknown --class {other}"),
    };
    let size: usize = args.get_or("size", 300);
    let seed: u64 = args.get_or("seed", 9);
    let ccr: f64 = args.get_or("ccr", 0.05);
    let procs: usize = args.get_or("procs", 18);
    let pfail: f64 = args.get_or("pfail", 1e-3);
    let n_queries: usize = args.get_or("queries", 256);
    let lambdas: usize = args.get_or("lambdas", 16);
    let threads: usize = args.get_or("threads", 0);
    let cold: usize = args.get_or("cold", 0);
    let kinds: String = args.get_or("kinds", "all".to_owned());
    let out: String = args.get_or("out", "results/whatif.csv".to_owned());
    let deadline_ms: u64 = args.get_or("deadline-ms", 0);
    let deadline = (deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms));
    let stats: usize = args.get_or("stats", 0);

    let inputs = Inputs::basic(
        WorkflowSource::Generated {
            class,
            size,
            seed,
            ccr: Some(ccr),
        },
        procs,
        ckpt_bench::BANDWIDTH,
        ModelSpec::Exponential { pfail },
    );
    let queries = build_queries(n_queries, lambdas.max(1), pfail, procs, &kinds);

    let t0 = Instant::now();
    // The incremental session outlives the batch so `--stats` and the
    // metrics dump can read its store afterwards.
    let mut incr_session: Option<Session> = None;
    let answers: Vec<PlanResult<Answer>> = if cold != 0 {
        // Control: every query pays the full pipeline in its own store.
        seedmix::parallel_slots(queries.len(), threads, |i| {
            let mut session = Session::new(inputs.clone());
            session.deadline = deadline;
            session.try_query(&queries[i])
        })
    } else {
        let mut session = Session::new(inputs.clone());
        session.deadline = deadline;
        let answers = session.try_query_batch(&queries, threads);
        incr_session = Some(session);
        answers
    };
    let wall = t0.elapsed().as_secs_f64();
    let cancelled = answers.iter().filter(|r| r.is_err()).count();
    if deadline.is_none() {
        // Without a deadline every query must succeed — surface the
        // first typed error instead of writing a partial CSV.
        if let Some(e) = answers.iter().find_map(|r| r.as_ref().err()) {
            panic!("what-if query failed: {e}");
        }
    }

    let path = std::path::Path::new(&out);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).expect("create CSV"));
    writeln!(
        f,
        "query,kind,param,policy,em,segments,ckpt_files,ckpt_bytes,w_par"
    )
    .expect("write CSV");
    for (i, (q, a)) in queries.iter().zip(&answers).enumerate() {
        if let Ok(a) = a {
            writeln!(f, "{}", csv_row(i, q, a)).expect("write CSV");
        }
    }
    f.flush().expect("flush CSV");
    eprintln!(
        "{} {} queries ({} distinct lambdas) on {}-{} in {:.3}s ({:.3} ms/query) -> {}{}",
        if cold != 0 { "cold" } else { "incremental" },
        n_queries,
        lambdas,
        class.name(),
        size,
        wall,
        1e3 * wall / n_queries.max(1) as f64,
        path.display(),
        if deadline.is_some() {
            format!(" [{cancelled} over-deadline]")
        } else {
            String::new()
        },
    );
    match &incr_session {
        Some(session) => {
            if stats != 0 {
                eprintln!("{}", session.store().stats());
            }
            if obs_out.metrics() {
                session.store().export_metrics();
            }
        }
        None if stats != 0 => {
            eprintln!("--stats 1 needs incremental mode; cold stores are per-query and discarded")
        }
        None => {}
    }
    obs_out.finish().expect("write observability outputs");
}
