//! E11 — the rare-event splitting study on the E9 wear-out corners:
//! CkptNone under Weibull wear-out (`k = 2`) at `pfail ∈ {1e-3, 1e-4}`,
//! where almost no naive trajectory samples a failure cascade and the
//! makespan CI is driven by a handful of lucky draws. The multilevel
//! splitting estimator ([`failsim::Estimator::Splitting`]) clones every
//! trajectory that survives `stride` failures and weights the leaves,
//! smoothing exactly that tail.
//!
//! For each corner the binary runs both estimators over a ladder of run
//! counts and emits the CI-width-vs-runs curve for both the mean
//! makespan and the cascade-tail probability `P(failures ≥ tail_at)`,
//! plus a paired summary: the per-run variance of each estimator and
//! the run-reduction factor (naive runs per splitting root at equal CI
//! width). The tail probability is where splitting earns its keep —
//! naive sampling needs `≫ 1/p` runs to see one deep cascade, while
//! every splitting root that enters the cascade regime contributes
//! `factor^levels` weighted leaves. Both estimators are bit-identical
//! functions of `(seed, runs)`, so the curve is reproducible for any
//! `--mc-threads`.
//!
//! ```text
//! cargo run -p ckpt_bench --release --bin splitting
//!     [-- --runs 65536] [--seed 42] [--factor 2] [--stride 1]
//!     [--levels 8] [--tail-at 8] [--pfails 1e-3,1e-4] [--procs 4]
//!     [--mc-threads 0] [--out results]
//! ```

use ckpt_bench::{Args, ObsOut};
use ckpt_core::{allocate, AllocateConfig, FailureModel};
use failsim::{montecarlo_none_model, Estimator, NoneMcStats, SimConfig, SplitConfig};
use pegasus::{generate, WorkflowClass};
use std::io::Write;
use std::time::Instant;

struct Point {
    pfail: f64,
    estimator: &'static str,
    runs: usize,
    stats: NoneMcStats,
    wall: f64,
}

fn main() {
    let args = Args::parse();
    let obs_out = ObsOut::from_args(&args);
    let max_runs: usize = args.get_or("runs", 65_536);
    let seed: u64 = args.get_or("seed", 42);
    let factor: Option<usize> = args.get("factor").map(|v| v.parse().expect("factor"));
    let stride: usize = args.get_or("stride", 1);
    let max_levels: usize = args.get_or("levels", 8);
    let tail_at: usize = args.get_or("tail-at", stride * max_levels);
    let mc_threads: usize = args.get_or("mc-threads", 0);
    let procs: usize = args.get_or("procs", 4);
    let out_dir: String = args.get_or("out", "results".to_owned());
    let pfails: Vec<f64> = args
        .get("pfails")
        .map(|v| v.split(',').map(|s| s.parse().expect("pfail")).collect())
        .unwrap_or_else(|| vec![1e-3, 1e-4]);

    // The E9 wear-out corner: Genome/50, Weibull k = 2 calibrated to
    // the per-task pfail.
    let w = generate(WorkflowClass::Genome, 50, 4);
    let sched = allocate(&w, procs, &AllocateConfig::default());
    // Splitting pays when `factor × q ≈ 1` for `q` the conditional
    // probability of one more cascade failure: the rarer the corner,
    // the smaller `q` and the harder each passage must multiply. The
    // per-corner default keeps the dense corner's clone tree bounded
    // while the rare corner still samples deep cascades.
    let split_for = |pfail: f64| SplitConfig {
        factor: factor.unwrap_or(if pfail < 3e-4 { 8 } else { 2 }),
        stride,
        max_levels,
    };
    println!(
        "# E11 rare-event splitting study (Genome/50 on {procs} procs, Weibull k=2, \
         stride {stride} levels {max_levels}, tail at {tail_at} failures)"
    );

    let ladder: Vec<usize> = (0..4).rev().map(|i| max_runs >> (2 * i)).collect();
    let mut points = Vec::new();
    for &pfail in &pfails {
        let model = FailureModel::weibull_from_pfail(2.0, pfail, w.dag.mean_weight());
        for &runs in &ladder {
            for (name, estimator) in [
                ("naive", Estimator::Naive),
                ("splitting", Estimator::Splitting(split_for(pfail))),
            ] {
                let cfg = SimConfig {
                    runs,
                    seed,
                    threads: mc_threads,
                    max_failures: 10_000,
                    estimator,
                    tail_at,
                };
                let t = Instant::now();
                let stats = montecarlo_none_model(&w.dag, &sched, &model, &cfg);
                points.push(Point {
                    pfail,
                    estimator: name,
                    runs,
                    stats,
                    wall: t.elapsed().as_secs_f64(),
                });
            }
        }
    }

    let path = std::path::Path::new(&out_dir).join("table_splitting.csv");
    std::fs::create_dir_all(&out_dir).expect("create out dir");
    let mut csv = std::io::BufWriter::new(std::fs::File::create(&path).expect("create CSV"));
    writeln!(
        csv,
        "pfail,estimator,runs,mean_makespan,stderr,ci95_width,mean_failures,\
         p_tail,p_tail_stderr,diverged,wall_s"
    )
    .unwrap();
    println!(
        "{:>8} {:>10} {:>7} {:>12} {:>10} {:>10} {:>11} {:>11} {:>8}",
        "pfail", "estimator", "runs", "mean_EM", "stderr", "ci95", "p_tail", "p_stderr", "wall(s)"
    );
    for p in &points {
        let s = &p.stats.stats;
        let ci = 2.0 * 1.96 * s.stderr;
        writeln!(
            csv,
            "{},{},{},{:.6},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e},{},{:.3}",
            p.pfail,
            p.estimator,
            p.runs,
            s.mean_makespan,
            s.stderr,
            ci,
            s.mean_failures,
            p.stats.p_tail,
            p.stats.p_tail_stderr,
            p.stats.diverged,
            p.wall
        )
        .unwrap();
        println!(
            "{:>8} {:>10} {:>7} {:>12.2} {:>10.4} {:>10.4} {:>11.4e} {:>11.4e} {:>8.2}",
            p.pfail,
            p.estimator,
            p.runs,
            s.mean_makespan,
            s.stderr,
            ci,
            p.stats.p_tail,
            p.stats.p_tail_stderr,
            p.wall
        );
    }
    csv.flush().unwrap();

    // Paired summary from the top rung: stderr · √runs estimates each
    // estimator's per-run standard deviation, so the run count needed
    // for a target CI width scales with its square — the ratio is the
    // equal-width run-reduction factor.
    println!("# E11 equal-CI-width summary (top rung, {max_runs} runs)");
    for &pfail in &pfails {
        let top = |name: &str| {
            points
                .iter()
                .find(|p| p.pfail == pfail && p.estimator == name && p.runs == max_runs)
                .unwrap()
        };
        let (naive, split) = (top("naive"), top("splitting"));
        let sqn = (max_runs as f64).sqrt();
        let em = (naive.stats.stats.stderr / split.stats.stats.stderr).powi(2);
        // When the corner is rare enough that *no* naive run sampled the
        // tail, the empirical naive sd degenerates to 0; fall back to
        // the exact Bernoulli sd at the splitting point estimate (a
        // naive run is an indicator draw, so this is its true per-run
        // sd, not an approximation).
        let p = split.stats.p_tail;
        let naive_sd = if naive.stats.p_tail > 0.0 && naive.stats.p_tail < 1.0 {
            naive.stats.p_tail_stderr * sqn
        } else {
            (p * (1.0 - p)).sqrt()
        };
        let split_sd = split.stats.p_tail_stderr * sqn;
        let tail = (naive_sd / split_sd).powi(2);
        let cost = split.wall / naive.wall;
        println!(
            "pfail {pfail:>6}: makespan per-run sd {:.3} vs {:.3} -> {em:.1}x; \
             P(failures >= {tail_at}) per-run sd {naive_sd:.3e} vs {split_sd:.3e} \
             -> {tail:.1}x fewer runs at equal CI width \
             ({cost:.1}x wall-clock per run -> {:.1}x net)",
            naive.stats.stats.stderr * sqn,
            split.stats.stats.stderr * sqn,
            tail / cost,
        );
    }
    eprintln!("wrote {}", path.display());
    obs_out.finish().expect("write observability outputs");
}
