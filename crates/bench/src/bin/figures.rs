//! E1/E2/E3 — regenerates Figures 5 (Genome), 6 (Montage) and 7 (Ligo):
//! relative expected makespan of CkptAll and CkptNone over CkptSome as a
//! function of the CCR, for three workflow sizes, four processor counts
//! and three failure probabilities. Cells run on the scenario engine's
//! thread pool; the CSV is streamed in canonical grid order and is
//! byte-identical for every `--threads` value.
//!
//! ```text
//! cargo run -p ckpt_bench --release --bin figures [-- --workflow genome|montage|ligo]
//!     [--points 9] [--instances 3] [--seed 42] [--threads 0]
//!     [--plan-threads 1] [--out results]
//! ```

use ckpt_bench::engine::{self, CsvFileSink, EngineConfig};
use ckpt_bench::scenarios::FigureScenario;
use ckpt_bench::summary::figure_shape_summary;
use ckpt_bench::{Args, ObsOut};
use pegasus::WorkflowClass;

fn main() {
    let args = Args::parse();
    let obs_out = ObsOut::from_args(&args);
    let points: usize = args.get_or("points", 9);
    let instances: usize = args.get_or("instances", 3);
    let seed: u64 = args.get_or("seed", 42);
    let threads: usize = args.get_or("threads", 0);
    let out_dir: String = args.get_or("out", "results".to_owned());
    let classes: Vec<WorkflowClass> = match args.get("workflow") {
        Some(c) => vec![c.parse().expect("unknown workflow class")],
        None => WorkflowClass::ALL.to_vec(),
    };
    let mut cfg = EngineConfig::with_threads(threads);
    cfg.plan_threads = args.get_or("plan-threads", 1);
    for class in classes {
        let fig = match class {
            WorkflowClass::Genome => "fig5",
            WorkflowClass::Montage => "fig6",
            WorkflowClass::Ligo => "fig7",
            WorkflowClass::Cybershake => "figx",
        };
        eprintln!("running {fig} ({class}): {points} CCR points × sizes × procs × pfail…");
        let scenario = FigureScenario::paper(class, points, instances, seed);
        let path = std::path::Path::new(&out_dir).join(format!("{fig}_{class}.csv"));
        let mut sink = CsvFileSink::new(&path);
        let report = engine::run(&scenario, &cfg, &mut sink).expect("write CSV");
        eprintln!(
            "wrote {} rows to {} in {:.1}s ({} workers × {} MC threads; \
             workflow cache {}/{} hits, schedule cache {}/{} hits)",
            sink.rows_written(),
            path.display(),
            report.wall,
            report.workers,
            report.mc_threads,
            report.cache.workflow_hits,
            report.cache.workflow_hits + report.cache.workflow_misses,
            report.cache.schedule_hits,
            report.cache.schedule_hits + report.cache.schedule_misses,
        );
        eprintln!("stage walls: {}", report.stages.summary());
        // Shape summary on stdout: per (size, procs, pfail), the CCR
        // endpoints.
        println!("# {fig} ({class}) shape summary");
        figure_shape_summary(&report.rows).print();
    }
    obs_out.finish().expect("write observability outputs");
}
