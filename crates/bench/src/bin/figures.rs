//! E1/E2/E3 — regenerates Figures 5 (Genome), 6 (Montage) and 7 (Ligo):
//! relative expected makespan of CkptAll and CkptNone over CkptSome as a
//! function of the CCR, for three workflow sizes, four processor counts
//! and three failure probabilities.
//!
//! ```text
//! cargo run -p ckpt-bench --release --bin figures [-- --workflow genome|montage|ligo]
//!     [--points 9] [--instances 3] [--seed 42] [--out results]
//! ```

use ckpt_bench::{figure_csv, figure_grid, write_csv, Args, FIGURE_HEADER};
use pegasus::WorkflowClass;

fn main() {
    let args = Args::parse();
    let points: usize = args.get_or("points", 9);
    let instances: usize = args.get_or("instances", 3);
    let seed: u64 = args.get_or("seed", 42);
    let out_dir: String = args.get_or("out", "results".to_owned());
    let classes: Vec<WorkflowClass> = match args.get("workflow") {
        Some(c) => vec![c.parse().expect("unknown workflow class")],
        None => WorkflowClass::ALL.to_vec(),
    };
    for class in classes {
        let fig = match class {
            WorkflowClass::Genome => "fig5",
            WorkflowClass::Montage => "fig6",
            WorkflowClass::Ligo => "fig7",
            WorkflowClass::Cybershake => "figx",
        };
        eprintln!("running {fig} ({class}): {points} CCR points × sizes × procs × pfail…");
        let start = std::time::Instant::now();
        let rows = figure_grid(class, points, instances, seed);
        let lines: Vec<String> = rows.iter().map(figure_csv).collect();
        let path = std::path::Path::new(&out_dir).join(format!("{fig}_{class}.csv"));
        write_csv(&path, FIGURE_HEADER, &lines).expect("write CSV");
        eprintln!(
            "wrote {} rows to {} in {:.1}s",
            rows.len(),
            path.display(),
            start.elapsed().as_secs_f64()
        );
        // Shape summary on stdout: per (size, pfail), the CCR endpoints.
        println!("# {fig} ({class}) shape summary");
        println!("size procs pfail | rel_all@loCCR rel_all@hiCCR | rel_none@loCCR rel_none@hiCCR");
        for &size in &ckpt_bench::SIZES {
            for &procs in ckpt_core::Platform::paper_proc_counts(size) {
                for &pfail in &ckpt_bench::PFAILS {
                    let cells: Vec<&ckpt_bench::FigureRow> = rows
                        .iter()
                        .filter(|r| r.size == size && r.procs == procs && r.pfail == pfail)
                        .collect();
                    if cells.is_empty() {
                        continue;
                    }
                    let lo = cells.first().unwrap();
                    let hi = cells.last().unwrap();
                    println!(
                        "{size:4} {procs:5} {pfail:6} | {:13.3} {:13.3} | {:14.3} {:15.3}",
                        lo.rel_all, hi.rel_all, lo.rel_none, hi.rel_none
                    );
                }
            }
        }
    }
}
