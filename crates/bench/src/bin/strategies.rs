//! E10 — the checkpoint-policy study: the paper's DP placement
//! (CkptSome) against classical competitors — Young/Daly periodic
//! checkpointing, adaptive risk-threshold checkpointing, the structural
//! crossover heuristic — plus the CkptAll/ExitOnly baselines, under
//! exponential and Weibull (infant-mortality, wear-out) failure models,
//! every family calibrated so an average task fails with the cell's
//! `pfail`. Each row pairs the analytic renewal-path estimate with its
//! discrete-event simulation ground truth and the placement census
//! (segments / checkpointed files / bytes). Cells run on the scenario
//! engine's thread pool; the CSV is byte-identical for every
//! `--threads` *and* `--mc-threads` value — both are pure speed knobs
//! (nested simulation defaults to all cores, `--mc-threads 0`).
//!
//! ```text
//! cargo run -p ckpt_bench --release --bin strategies
//!     [-- --runs 400] [--sizes 50] [--seed 42] [--threads 0]
//!     [--mc-threads 0] [--plan-threads 1] [--out results]
//! ```

use ckpt_bench::engine::{self, CsvFileSink, EngineConfig};
use ckpt_bench::scenarios::StrategiesScenario;
use ckpt_bench::summary::EndpointSummary;
use ckpt_bench::{Args, ObsOut};

fn main() {
    let args = Args::parse();
    let obs_out = ObsOut::from_args(&args);
    let runs: usize = args.get_or("runs", 400);
    let seed: u64 = args.get_or("seed", 42);
    let threads: usize = args.get_or("threads", 0);
    let mc_threads: usize = args.get_or("mc-threads", 0);
    let plan_threads: usize = args.get_or("plan-threads", 1);
    let out_dir: String = args.get_or("out", "results".to_owned());
    let sizes: Vec<usize> = args
        .get("sizes")
        .map(|s| {
            s.split(',')
                .map(|x| x.parse().expect("bad --sizes entry"))
                .collect()
        })
        .unwrap_or_else(|| vec![50]);
    let cfg = EngineConfig {
        threads,
        mc_threads,
        plan_threads,
    };
    println!("# E10 checkpoint-policy study ({runs} simulated runs per cell)");
    let scenario = StrategiesScenario::standard(runs, sizes, seed);
    let path = std::path::Path::new(&out_dir).join("strategies.csv");
    let mut sink = CsvFileSink::new(&path);
    let report = engine::run(&scenario, &cfg, &mut sink).expect("write CSV");
    eprintln!(
        "wrote {} rows to {} in {:.1}s ({} workers × {} MC threads)",
        sink.rows_written(),
        path.display(),
        report.wall,
        report.workers,
        report.mc_threads,
    );
    eprintln!("stage walls: {}", report.stages.summary());
    // Per-(policy, model)-block wall-clock attribution (diagnostic
    // only, never part of the CSV).
    for (label, range) in scenario.blocks() {
        let block_wall: f64 = report.cell_walls[range].iter().sum();
        eprintln!("block {label:32} {block_wall:7.2}s");
    }
    // The headline table: each policy's analytic expected makespan
    // relative to the DP's on the *same* instance, schedule, seed, and
    // calibrated model (the grid is paired along both block axes), plus
    // the placement size. Ratios > 1 are the DP's margin.
    let n_models = scenario.models.len();
    let block = report.rows.len() / (scenario.policies.len() * n_models);
    let mut summary = EndpointSummary::new(
        "policy model shape class",
        "pfail",
        &["em_vs_dp", "segments", "rel_err_pct"],
    );
    for (i, r) in report.rows.iter().enumerate() {
        let dp = &report.rows[i % (n_models * block)];
        summary.observe(
            &format!(
                "{:15} {:12} {:4} {:8}",
                r.policy,
                r.model,
                r.shape,
                r.class.name()
            ),
            r.pfail,
            &[r.model_em / dp.model_em, r.segments as f64, r.rel_err_pct],
        );
    }
    summary.print();
    obs_out.finish().expect("write observability outputs");
}
