//! E6/E7/E8 — ablation studies:
//!
//! * `--study linearization` (E6): random topological sort vs the
//!   volume-minimizing sum-cut heuristic (§VIII future work) vs the
//!   structural order, as superchain linearizers inside CkptSome;
//! * `--study naive-coalesce` (E7): the §II-C naive solution (checkpoint
//!   only superchain exits) vs the full DP;
//! * `--study ligo-footnote` (E8): the incomplete-bipartite Ligo instances
//!   patched with dummy edges (footnote 3: a few CCR points where CkptAll
//!   can beat CkptSome on Ligo/300).
//!
//! ```text
//! cargo run -p ckpt-bench --release --bin ablation [-- --study all]
//!     [--seed 42] [--out results]
//! ```

use ckpt_bench::{write_csv, Args, BANDWIDTH};
use ckpt_core::{lambda_from_pfail, AllocateConfig, Pipeline, Platform, Strategy};
use mspg::linearize::Linearizer;
use mspg::Workflow;
use pegasus::ccr::{ccr_grid, scale_to_ccr};
use pegasus::WorkflowClass;
use probdag::PathApprox;

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get_or("seed", 42);
    let out_dir: String = args.get_or("out", "results".to_owned());
    let study: String = args.get_or("study", "all".to_owned());
    match study.as_str() {
        "linearization" => linearization(seed, &out_dir),
        "naive-coalesce" => naive_coalesce(seed, &out_dir),
        "ligo-footnote" => ligo_footnote(seed, &out_dir),
        "all" => {
            linearization(seed, &out_dir);
            naive_coalesce(seed, &out_dir);
            ligo_footnote(seed, &out_dir);
        }
        other => panic!("unknown study `{other}`"),
    }
}

fn assess(
    w: &Workflow,
    procs: usize,
    pfail: f64,
    lin: Linearizer,
    seed: u64,
    strategy: Strategy,
) -> f64 {
    let lambda = lambda_from_pfail(pfail, w.dag.mean_weight());
    let platform = Platform::new(procs, lambda, BANDWIDTH);
    let cfg = AllocateConfig {
        linearizer: lin,
        seed,
    };
    let pipe = Pipeline::new(w, platform, &cfg);
    pipe.assess(strategy, &PathApprox::default())
        .expected_makespan
}

/// E6: linearizer comparison inside CkptSome.
fn linearization(seed: u64, out_dir: &str) {
    println!("# E6 linearization ablation (CkptSome expected makespan)");
    println!(
        "{:8} {:9} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "class", "ccr", "pfail", "random", "minvolume", "structural", "mv_gain_pct"
    );
    let mut lines = Vec::new();
    for class in [WorkflowClass::Montage, WorkflowClass::Genome] {
        let (lo, hi) = class.ccr_range();
        for &ccr in &ccr_grid(lo, hi, 5) {
            for &pfail in &[0.01, 0.001] {
                let mut w = pegasus::generate(class, 300, seed);
                scale_to_ccr(&mut w, ccr, BANDWIDTH);
                let rnd = assess(
                    &w,
                    18,
                    pfail,
                    Linearizer::RandomTopo,
                    seed,
                    Strategy::CkptSome,
                );
                let mv = assess(
                    &w,
                    18,
                    pfail,
                    Linearizer::MinVolume,
                    seed,
                    Strategy::CkptSome,
                );
                let st = assess(
                    &w,
                    18,
                    pfail,
                    Linearizer::Structural,
                    seed,
                    Strategy::CkptSome,
                );
                let gain = 100.0 * (rnd - mv) / rnd;
                println!(
                    "{:8} {:<9.2e} {:>10} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
                    class.name(),
                    ccr,
                    pfail,
                    rnd,
                    mv,
                    st,
                    gain
                );
                lines.push(format!(
                    "{},{:.6e},{},{:.4},{:.4},{:.4},{:.3}",
                    class.name(),
                    ccr,
                    pfail,
                    rnd,
                    mv,
                    st,
                    gain
                ));
            }
        }
    }
    let path = std::path::Path::new(out_dir).join("ablation_linearization.csv");
    write_csv(
        &path,
        "class,ccr,pfail,em_random,em_minvolume,em_structural,minvolume_gain_pct",
        &lines,
    )
    .expect("write CSV");
    eprintln!("wrote {}", path.display());
}

/// E7: exit-only checkpoints (naive coalescing) vs the DP.
fn naive_coalesce(seed: u64, out_dir: &str) {
    println!("# E7 naive-coalescing ablation (ExitOnly vs CkptSome)");
    println!(
        "{:8} {:5} {:9} {:>10} {:>12} {:>12} {:>10}",
        "class", "size", "ccr", "pfail", "exit_only", "ckptsome", "ratio"
    );
    let mut lines = Vec::new();
    for class in WorkflowClass::ALL {
        let (lo, hi) = class.ccr_range();
        for &size in &[50usize, 300] {
            for &ccr in &ccr_grid(lo, hi, 4) {
                for &pfail in &[0.01, 0.001] {
                    let mut w = pegasus::generate(class, size, seed);
                    scale_to_ccr(&mut w, ccr, BANDWIDTH);
                    let procs = Platform::paper_proc_counts(size)[1];
                    let exit = assess(
                        &w,
                        procs,
                        pfail,
                        Linearizer::RandomTopo,
                        seed,
                        Strategy::ExitOnly,
                    );
                    let some = assess(
                        &w,
                        procs,
                        pfail,
                        Linearizer::RandomTopo,
                        seed,
                        Strategy::CkptSome,
                    );
                    let ratio = exit / some;
                    println!(
                        "{:8} {:5} {:<9.2e} {:>10} {:>12.2} {:>12.2} {:>10.4}",
                        class.name(),
                        size,
                        ccr,
                        pfail,
                        exit,
                        some,
                        ratio
                    );
                    lines.push(format!(
                        "{},{},{:.6e},{},{:.4},{:.4},{:.4}",
                        class.name(),
                        size,
                        ccr,
                        pfail,
                        exit,
                        some,
                        ratio
                    ));
                }
            }
        }
    }
    let path = std::path::Path::new(out_dir).join("ablation_naive_coalesce.csv");
    write_csv(
        &path,
        "class,size,ccr,pfail,em_exit_only,em_ckptsome,ratio",
        &lines,
    )
    .expect("write CSV");
    eprintln!("wrote {}", path.display());
}

/// E8: the Ligo incomplete-bipartite artifact. CkptSome must process the
/// dummy-patched workflow (extra synchronizations, no data), while
/// CkptAll's costs are unaffected by the zero-size dummies — reproducing
/// footnote 3: the patched instance can cost CkptSome its advantage at a
/// few CCR points.
fn ligo_footnote(seed: u64, out_dir: &str) {
    println!("# E8 Ligo incomplete-bipartite footnote");
    println!(
        "{:9} {:>10} {:>14} {:>14} {:>14}",
        "ccr", "pfail", "relall_main", "relall_patched", "sync_penalty"
    );
    let mut lines = Vec::new();
    // Mainline (complete-bipartite) Ligo.
    let mainline = pegasus::ligo::generate(300, seed);
    // Incomplete instance, patched to an M-SPG with dummy edges.
    let mut inc = pegasus::ligo::generate_incomplete(300, seed);
    let shape = pegasus::ligo::ligo_shape(300);
    for g in 0..shape.groups {
        mspg::patch::complete_bipartite(&mut inc.dag, &inc.inspiral_level[g], &inc.thinca_level[g]);
    }
    let root = mspg::recognize(&inc.dag).expect("patched Ligo must be an M-SPG");
    let patched = Workflow::from_wired(inc.dag, root);
    patched.validate().expect("patched workflow valid");
    let (lo, hi) = WorkflowClass::Ligo.ccr_range();
    for &ccr in &ccr_grid(lo, hi, 7) {
        {
            let pfail = 0.001f64;
            let run = |w: &Workflow| -> f64 {
                let mut w = w.clone();
                scale_to_ccr(&mut w, ccr, BANDWIDTH);
                let all = assess(
                    &w,
                    18,
                    pfail,
                    Linearizer::RandomTopo,
                    seed,
                    Strategy::CkptAll,
                );
                let some = assess(
                    &w,
                    18,
                    pfail,
                    Linearizer::RandomTopo,
                    seed,
                    Strategy::CkptSome,
                );
                all / some
            };
            let rel_main = run(&mainline);
            let rel_patched = run(&patched);
            let penalty = rel_main - rel_patched;
            println!(
                "{:<9.2e} {:>10} {:>14.4} {:>14.4} {:>14.4}",
                ccr, pfail, rel_main, rel_patched, penalty
            );
            lines.push(format!(
                "{:.6e},{},{:.4},{:.4},{:.4}",
                ccr, pfail, rel_main, rel_patched, penalty
            ));
        }
    }
    let path = std::path::Path::new(out_dir).join("ablation_ligo_footnote.csv");
    write_csv(
        &path,
        "ccr,pfail,rel_all_mainline,rel_all_patched,sync_penalty",
        &lines,
    )
    .expect("write CSV");
    eprintln!("wrote {}", path.display());
}
