//! E6/E7/E8 — ablation studies, all driven through the scenario engine:
//!
//! * `--study linearization` (E6): random topological sort vs the
//!   volume-minimizing sum-cut heuristic (§VIII future work) vs the
//!   structural order, as superchain linearizers inside CkptSome;
//! * `--study naive-coalesce` (E7): the §II-C naive solution (checkpoint
//!   only superchain exits) vs the full DP;
//! * `--study ligo-footnote` (E8): the incomplete-bipartite Ligo instances
//!   patched with dummy edges (footnote 3: a few CCR points where CkptAll
//!   can beat CkptSome on Ligo/300).
//!
//! ```text
//! cargo run -p ckpt_bench --release --bin ablation [-- --study all]
//!     [--seed 42] [--threads 0] [--plan-threads 1] [--out results]
//! ```

use ckpt_bench::engine::{self, CsvFileSink, EngineConfig, Scenario};
use ckpt_bench::scenarios::{LigoFootnoteScenario, LinearizationScenario, NaiveCoalesceScenario};
use ckpt_bench::summary::EndpointSummary;
use ckpt_bench::{Args, ObsOut};

fn main() {
    let args = Args::parse();
    let obs_out = ObsOut::from_args(&args);
    let seed: u64 = args.get_or("seed", 42);
    let threads: usize = args.get_or("threads", 0);
    let out_dir: String = args.get_or("out", "results".to_owned());
    let study: String = args.get_or("study", "all".to_owned());
    let mut cfg = EngineConfig::with_threads(threads);
    cfg.plan_threads = args.get_or("plan-threads", 1);
    match study.as_str() {
        "linearization" => linearization(seed, &out_dir, &cfg),
        "naive-coalesce" => naive_coalesce(seed, &out_dir, &cfg),
        "ligo-footnote" => ligo_footnote(seed, &out_dir, &cfg),
        "all" => {
            linearization(seed, &out_dir, &cfg);
            naive_coalesce(seed, &out_dir, &cfg);
            ligo_footnote(seed, &out_dir, &cfg);
        }
        other => panic!("unknown study `{other}`"),
    }
    obs_out.finish().expect("write observability outputs");
}

fn run_study<S: Scenario>(
    scenario: &S,
    cfg: &EngineConfig,
    out_dir: &str,
    file: &str,
) -> Vec<S::Row> {
    let path = std::path::Path::new(out_dir).join(file);
    let mut sink = CsvFileSink::new(&path);
    let report = engine::run(scenario, cfg, &mut sink).expect("write CSV");
    eprintln!(
        "wrote {} rows to {} in {:.1}s ({} workers)",
        sink.rows_written(),
        path.display(),
        report.wall,
        report.workers
    );
    eprintln!("stage walls: {}", report.stages.summary());
    report.rows
}

/// E6: linearizer comparison inside CkptSome.
fn linearization(seed: u64, out_dir: &str, cfg: &EngineConfig) {
    println!("# E6 linearization ablation (CkptSome expected makespan)");
    let scenario = LinearizationScenario {
        ccr_points: 5,
        base_seed: seed,
    };
    let rows = run_study(&scenario, cfg, out_dir, "ablation_linearization.csv");
    let mut summary = EndpointSummary::new(
        "class pfail",
        "CCR",
        &["em_random", "em_minvolume", "em_structural"],
    );
    for r in &rows {
        summary.observe(
            &format!("{:8} {:6}", r.class.name(), r.pfail),
            r.ccr,
            &[r.em_random, r.em_minvolume, r.em_structural],
        );
    }
    summary.print();
}

/// E7: exit-only checkpoints (naive coalescing) vs the DP.
fn naive_coalesce(seed: u64, out_dir: &str, cfg: &EngineConfig) {
    println!("# E7 naive-coalescing ablation (ExitOnly vs CkptSome)");
    let scenario = NaiveCoalesceScenario {
        ccr_points: 4,
        base_seed: seed,
    };
    let rows = run_study(&scenario, cfg, out_dir, "ablation_naive_coalesce.csv");
    let mut summary = EndpointSummary::new("class size pfail", "CCR", &["exit/some"]);
    for r in &rows {
        summary.observe(
            &format!("{:8} {:5} {:6}", r.class.name(), r.size, r.pfail),
            r.ccr,
            &[r.ratio],
        );
    }
    summary.print();
}

/// E8: the Ligo incomplete-bipartite artifact (see
/// [`LigoFootnoteScenario`]).
fn ligo_footnote(seed: u64, out_dir: &str, cfg: &EngineConfig) {
    println!("# E8 Ligo incomplete-bipartite footnote");
    let scenario = LigoFootnoteScenario::new(7, seed);
    let rows = run_study(&scenario, cfg, out_dir, "ablation_ligo_footnote.csv");
    let mut summary = EndpointSummary::new("pfail", "CCR", &["relall_main", "relall_patched"]);
    for r in &rows {
        summary.observe(
            &format!("{:6}", r.pfail),
            r.ccr,
            &[r.rel_all_mainline, r.rel_all_patched],
        );
    }
    summary.print();
}
