//! E9 — the failure-distribution study: CkptAll / CkptNone / CkptSome /
//! ExitOnly under Weibull (infant-mortality and wear-out) and LogNormal
//! failures against the paper's exponential baseline, every family
//! calibrated so an average task fails with the cell's `pfail`. The
//! analytic column drives the quadrature renewal cost path; the
//! simulation column is its discrete-event ground truth. Cells run on
//! the scenario engine's thread pool; the CSV is byte-identical for
//! every `--threads` *and* `--mc-threads` value — both are pure speed
//! knobs (nested simulation defaults to all cores, `--mc-threads 0`).
//!
//! ```text
//! cargo run -p ckpt_bench --release --bin distributions
//!     [-- --runs 400] [--sizes 50] [--seed 42] [--threads 0]
//!     [--mc-threads 0] [--plan-threads 1] [--out results]
//! ```

use ckpt_bench::engine::{self, CsvFileSink, EngineConfig};
use ckpt_bench::scenarios::DistributionsScenario;
use ckpt_bench::summary::EndpointSummary;
use ckpt_bench::{Args, ObsOut};

fn main() {
    let args = Args::parse();
    let obs_out = ObsOut::from_args(&args);
    let runs: usize = args.get_or("runs", 400);
    let seed: u64 = args.get_or("seed", 42);
    let threads: usize = args.get_or("threads", 0);
    let mc_threads: usize = args.get_or("mc-threads", 0);
    let plan_threads: usize = args.get_or("plan-threads", 1);
    let out_dir: String = args.get_or("out", "results".to_owned());
    let sizes: Vec<usize> = args
        .get("sizes")
        .map(|s| {
            s.split(',')
                .map(|x| x.parse().expect("bad --sizes entry"))
                .collect()
        })
        .unwrap_or_else(|| vec![50]);
    let cfg = EngineConfig {
        threads,
        mc_threads,
        plan_threads,
    };
    println!("# E9 failure-distribution study ({runs} simulated runs per cell and strategy)");
    let scenario = DistributionsScenario::standard(runs, sizes, seed);
    let path = std::path::Path::new(&out_dir).join("distributions.csv");
    let mut sink = CsvFileSink::new(&path);
    let report = engine::run(&scenario, &cfg, &mut sink).expect("write CSV");
    eprintln!(
        "wrote {} rows to {} in {:.1}s ({} workers × {} MC threads)",
        sink.rows_written(),
        path.display(),
        report.wall,
        report.workers,
        report.mc_threads,
    );
    eprintln!("stage walls: {}", report.stages.summary());
    // Per-model-block CPU attribution (sums of per-cell run_cell wall
    // clocks; diagnostic only, never part of the CSV). This is the
    // number BENCH_hotpath.json tracks for the non-exponential blocks.
    for (label, range) in scenario.model_blocks() {
        let block_wall: f64 = report.cell_walls[range].iter().sum();
        eprintln!("block {label:18} {block_wall:7.2}s");
    }
    // Per (model, strategy): how far the analytic path strays from the
    // simulated ground truth across the grid.
    let mut summary = EndpointSummary::new("model shape strategy", "pfail", &["rel_err_pct"]);
    for r in &report.rows {
        summary.observe(
            &format!("{:12} {:4} {:8}", r.model, r.shape, r.strategy),
            r.pfail,
            &[r.rel_err_pct],
        );
    }
    summary.print();
    obs_out.finish().expect("write observability outputs");
}
