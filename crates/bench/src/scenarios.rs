//! The experiment scenarios E1–E10, expressed against the
//! [`crate::engine`]. Each harness binary is now a thin CLI shell around
//! one of these types; the grids, seeds, caching and parallelism all
//! live here and in the engine. E1–E8 reproduce the paper's evaluation;
//! E9 ([`DistributionsScenario`]) extends it along the failure-model
//! axis (Weibull / LogNormal vs the exponential baseline), and E10
//! ([`StrategiesScenario`]) along the checkpoint-policy axis (the DP vs
//! Young/Daly periodic, risk-threshold, and structural placements).

use ckpt_core::policy::{
    CheckpointPolicy, CkptAllPolicy, DalyPeriodic, DpOptimalPolicy, ExitOnlyPolicy,
    GreedyCrossover, RiskThreshold,
};
use ckpt_core::{allocate, AllocateConfig, FailureModel, Schedule, Strategy};
use failsim::{
    montecarlo_none, montecarlo_none_model, montecarlo_segments, montecarlo_segments_model,
    SimConfig,
};
use mspg::linearize::Linearizer;
use mspg::Workflow;
use pegasus::ccr::scale_to_ccr;
use pegasus::WorkflowClass;
use probdag::{Dodin, Evaluator, MonteCarlo, NormalSculli, PathApprox};

use crate::engine::{CcrAxis, Cell, CellCtx, Grid, ProcAxis, Scenario, Stage, StrategyAxis};
use crate::{figure_csv, timed_eval, FigureRow, BANDWIDTH, FIGURE_HEADER, PFAILS, SIZES};

/// E1/E2/E3 — one figure: relative expected makespan of CkptAll and
/// CkptNone over CkptSome across the CCR sweep.
#[derive(Clone, Debug)]
pub struct FigureScenario {
    /// Workflow class (one figure per class).
    pub class: WorkflowClass,
    /// Workflow sizes (rows of the figure).
    pub sizes: Vec<usize>,
    /// CCR points per sweep.
    pub ccr_points: usize,
    /// Generated instances averaged per cell.
    pub instances: usize,
    /// Base seed everything derives from.
    pub base_seed: u64,
}

impl FigureScenario {
    /// The paper's full grid for `class`.
    pub fn paper(
        class: WorkflowClass,
        ccr_points: usize,
        instances: usize,
        base_seed: u64,
    ) -> Self {
        FigureScenario {
            class,
            sizes: SIZES.to_vec(),
            ccr_points,
            instances,
            base_seed,
        }
    }
}

impl Scenario for FigureScenario {
    type Row = FigureRow;

    fn name(&self) -> &'static str {
        "figure"
    }

    fn cells(&self) -> Vec<Cell> {
        Grid {
            classes: vec![self.class],
            sizes: self.sizes.clone(),
            procs: ProcAxis::Paper,
            pfails: PFAILS.to_vec(),
            ccrs: CcrAxis::ClassLog {
                points: self.ccr_points,
            },
            strategies: StrategyAxis::Combined,
            instances: self.instances,
            base_seed: self.base_seed,
        }
        .cells()
    }

    fn run_cell(&self, cell: &Cell, ctx: &CellCtx<'_>) -> Vec<FigureRow> {
        let evaluator = PathApprox::default();
        let (mut em_some, mut em_all, mut em_none) = (0.0, 0.0, 0.0);
        let mut ckpts = 0usize;
        let mut actual = 0usize;
        for i in 0..cell.instances {
            let w = ctx.scaled_instance(cell, i);
            actual = w.n_tasks();
            let pipe = ctx.pipeline(cell, i, &w, Linearizer::RandomTopo);
            // assess = segment_graph (Plan) + assess_graph (Evaluate);
            // split so the stage walls attribute each half.
            let assess = |strategy: Strategy| {
                let sg = ctx.timed(Stage::Plan, || pipe.segment_graph(strategy));
                ctx.timed(Stage::Evaluate, || {
                    pipe.assess_graph(strategy.name(), &sg, &evaluator)
                })
            };
            let some = assess(Strategy::CkptSome);
            em_some += some.expected_makespan;
            ckpts += some.n_checkpoints;
            em_all += assess(Strategy::CkptAll).expected_makespan;
            // CkptNone is the Theorem 1 closed form — no planning stage.
            em_none += ctx
                .timed(Stage::Evaluate, || {
                    pipe.assess(Strategy::CkptNone, &evaluator)
                })
                .expected_makespan;
        }
        let nf = cell.instances as f64;
        let (em_some, em_all, em_none) = (em_some / nf, em_all / nf, em_none / nf);
        vec![FigureRow {
            class: cell.class,
            size: cell.size,
            actual_tasks: actual,
            procs: cell.procs,
            pfail: cell.pfail,
            ccr: cell.ccr,
            em_some,
            em_all,
            em_none,
            ckpts_some: ckpts / cell.instances,
            rel_all: em_all / em_some,
            rel_none: em_none / em_some,
        }]
    }

    fn header(&self) -> String {
        FIGURE_HEADER.to_owned()
    }

    fn csv(&self, row: &FigureRow) -> String {
        figure_csv(row)
    }
}

/// One row of the E4 accuracy table.
#[derive(Clone, Debug)]
pub struct AccuracyRow {
    /// Workflow class.
    pub class: WorkflowClass,
    /// Requested task count.
    pub size: usize,
    /// Strategy whose coalesced DAG is evaluated.
    pub strategy: Strategy,
    /// Nodes of the coalesced 2-state DAG.
    pub nodes: usize,
    /// Evaluator name.
    pub evaluator: &'static str,
    /// Expected-makespan estimate.
    pub estimate: f64,
    /// |estimate − MC| / MC, percent.
    pub rel_error_pct: f64,
    /// Evaluator runtime (seconds; wall clock, not deterministic).
    pub runtime_s: f64,
    /// Standard error of the Monte Carlo ground truth.
    pub mc_stderr: f64,
}

/// E4 — §VI-B: accuracy and runtime of the four 2-state evaluators
/// against the Monte Carlo ground truth.
#[derive(Clone, Debug)]
pub struct AccuracyScenario {
    /// Monte Carlo trials for the ground truth (the paper uses 300 000).
    pub trials: usize,
    /// Workflow sizes.
    pub sizes: Vec<usize>,
    /// Per-task failure probability.
    pub pfail: f64,
    /// Base seed.
    pub base_seed: u64,
}

/// CSV header of the E4 table.
pub const ACCURACY_HEADER: &str =
    "class,size,strategy,nodes,evaluator,estimate,rel_error_pct,runtime_s,mc_stderr";

impl Scenario for AccuracyScenario {
    type Row = AccuracyRow;

    fn name(&self) -> &'static str {
        "accuracy"
    }

    fn cells(&self) -> Vec<Cell> {
        Grid {
            classes: WorkflowClass::ALL.to_vec(),
            sizes: self.sizes.clone(),
            procs: ProcAxis::PaperIndex(1),
            pfails: vec![self.pfail],
            ccrs: CcrAxis::ClassMid,
            strategies: StrategyAxis::Each(vec![Strategy::CkptAll, Strategy::CkptSome]),
            instances: 1,
            base_seed: self.base_seed,
        }
        .cells()
    }

    fn run_cell(&self, cell: &Cell, ctx: &CellCtx<'_>) -> Vec<AccuracyRow> {
        let strategy = cell.strategy.expect("accuracy cells carry a strategy");
        let w = ctx.scaled_instance(cell, 0);
        let pipe = ctx.pipeline(cell, 0, &w, Linearizer::RandomTopo);
        let sg = ctx.timed(Stage::Plan, || pipe.segment_graph(strategy));
        let mc = MonteCarlo {
            trials: self.trials,
            seed: ctx.instance_seed(cell, 0),
            threads: ctx.mc_threads,
        };
        let (truth, evals) = ctx.timed(Stage::Evaluate, || {
            let t0 = std::time::Instant::now();
            let truth = mc.run(&sg.pdag);
            let mc_time = t0.elapsed().as_secs_f64();
            let evals: Vec<(&'static str, f64, f64)> = vec![
                ("MonteCarlo", truth.mean, mc_time),
                {
                    let (v, t) = timed_eval(&Dodin::default(), &sg.pdag);
                    ("Dodin", v, t)
                },
                {
                    let (v, t) = timed_eval(&NormalSculli, &sg.pdag);
                    ("Normal", v, t)
                },
                {
                    let (v, t) = timed_eval(&PathApprox::default(), &sg.pdag);
                    ("PathApprox", v, t)
                },
            ];
            (truth, evals)
        });
        evals
            .into_iter()
            .map(|(name, v, t)| AccuracyRow {
                class: cell.class,
                size: cell.size,
                strategy,
                nodes: sg.pdag.n_nodes(),
                evaluator: name,
                estimate: v,
                rel_error_pct: 100.0 * (v - truth.mean).abs() / truth.mean,
                runtime_s: t,
                mc_stderr: truth.stderr,
            })
            .collect()
    }

    fn header(&self) -> String {
        ACCURACY_HEADER.to_owned()
    }

    fn csv(&self, r: &AccuracyRow) -> String {
        format!(
            "{},{},{},{},{},{:.6},{:.4},{:.6},{:.6}",
            r.class.name(),
            r.size,
            r.strategy.name(),
            r.nodes,
            r.evaluator,
            r.estimate,
            r.rel_error_pct,
            r.runtime_s,
            r.mc_stderr
        )
    }
}

/// One row of the E5 validation table.
#[derive(Clone, Debug)]
pub struct ValidateRow {
    /// Workflow class.
    pub class: WorkflowClass,
    /// Requested task count.
    pub size: usize,
    /// Per-task failure probability.
    pub pfail: f64,
    /// Strategy name.
    pub strategy: &'static str,
    /// Model name (`Eq2+PathApprox` or `Theorem1`).
    pub model: &'static str,
    /// First-order model estimate.
    pub model_em: f64,
    /// Simulated mean makespan.
    pub sim_em: f64,
    /// Standard error of the simulated mean.
    pub sim_stderr: f64,
    /// |model − sim| / sim, percent.
    pub rel_err_pct: f64,
    /// Diverged CkptNone runs (0 for checkpointed strategies).
    pub diverged: usize,
}

/// E5 — first-order model vs discrete-event simulation.
#[derive(Clone, Debug)]
pub struct ValidateScenario {
    /// Simulated executions per cell.
    pub runs: usize,
    /// Workflow sizes.
    pub sizes: Vec<usize>,
    /// Base seed.
    pub base_seed: u64,
}

/// CSV header of the E5 table.
pub const VALIDATE_HEADER: &str =
    "class,size,pfail,strategy,model,model_em,sim_em,sim_stderr,rel_err_pct,diverged";

impl Scenario for ValidateScenario {
    type Row = ValidateRow;

    fn name(&self) -> &'static str {
        "validate"
    }

    fn cells(&self) -> Vec<Cell> {
        Grid {
            classes: WorkflowClass::ALL.to_vec(),
            sizes: self.sizes.clone(),
            procs: ProcAxis::PaperIndex(1),
            pfails: PFAILS.to_vec(),
            ccrs: CcrAxis::ClassMid,
            strategies: StrategyAxis::Combined,
            instances: 1,
            base_seed: self.base_seed,
        }
        .cells()
    }

    fn run_cell(&self, cell: &Cell, ctx: &CellCtx<'_>) -> Vec<ValidateRow> {
        let w = ctx.scaled_instance(cell, 0);
        let pipe = ctx.pipeline(cell, 0, &w, Linearizer::RandomTopo);
        let lambda = pipe.platform.lambda();
        let cfg = SimConfig {
            runs: self.runs,
            seed: ctx.instance_seed(cell, 0),
            threads: ctx.mc_threads,
            ..Default::default()
        };
        let evaluator = PathApprox::default();
        let mut rows = Vec::with_capacity(3);
        for strategy in [Strategy::CkptAll, Strategy::CkptSome] {
            // One segment graph serves both the analytic estimate and the
            // simulation (assess = segment_graph + evaluator, so this is
            // bit-identical to assessing separately at half the planning
            // cost).
            let sg = ctx.timed(Stage::Plan, || pipe.segment_graph(strategy));
            let model = ctx.timed(Stage::Evaluate, || evaluator.expected_makespan(&sg.pdag));
            let sim = ctx.timed(Stage::Evaluate, || montecarlo_segments(&sg, lambda, &cfg));
            rows.push(ValidateRow {
                class: cell.class,
                size: cell.size,
                pfail: cell.pfail,
                strategy: strategy.name(),
                model: "Eq2+PathApprox",
                model_em: model,
                sim_em: sim.mean_makespan,
                sim_stderr: sim.stderr,
                rel_err_pct: 100.0 * (model - sim.mean_makespan).abs() / sim.mean_makespan,
                diverged: 0,
            });
        }
        let model = ctx
            .timed(Stage::Evaluate, || {
                pipe.assess(Strategy::CkptNone, &evaluator)
            })
            .expected_makespan;
        let sim = ctx.timed(Stage::Evaluate, || {
            montecarlo_none(&w.dag, &pipe.schedule, lambda, &cfg)
        });
        rows.push(ValidateRow {
            class: cell.class,
            size: cell.size,
            pfail: cell.pfail,
            strategy: Strategy::CkptNone.name(),
            model: "Theorem1",
            model_em: model,
            sim_em: sim.stats.mean_makespan,
            sim_stderr: sim.stats.stderr,
            rel_err_pct: 100.0 * (model - sim.stats.mean_makespan).abs() / sim.stats.mean_makespan,
            diverged: sim.diverged,
        });
        rows
    }

    fn header(&self) -> String {
        VALIDATE_HEADER.to_owned()
    }

    fn csv(&self, r: &ValidateRow) -> String {
        format!(
            "{},{},{},{},{},{:.4},{:.4},{:.4},{:.3},{}",
            r.class.name(),
            r.size,
            r.pfail,
            r.strategy,
            r.model,
            r.model_em,
            r.sim_em,
            r.sim_stderr,
            r.rel_err_pct,
            r.diverged
        )
    }
}

/// One row of the E6 linearization ablation.
#[derive(Clone, Debug)]
pub struct LinearizationRow {
    /// Workflow class.
    pub class: WorkflowClass,
    /// Communication-to-computation ratio.
    pub ccr: f64,
    /// Per-task failure probability.
    pub pfail: f64,
    /// CkptSome expected makespan under the random topological order.
    pub em_random: f64,
    /// … under the volume-minimizing order.
    pub em_minvolume: f64,
    /// … under the structural order.
    pub em_structural: f64,
    /// Gain of MinVolume over random, percent.
    pub gain_pct: f64,
}

/// E6 — superchain linearizers inside CkptSome.
#[derive(Clone, Debug)]
pub struct LinearizationScenario {
    /// CCR points per class sweep.
    pub ccr_points: usize,
    /// Base seed.
    pub base_seed: u64,
}

/// CSV header of the E6 table.
pub const LINEARIZATION_HEADER: &str =
    "class,ccr,pfail,em_random,em_minvolume,em_structural,minvolume_gain_pct";

impl Scenario for LinearizationScenario {
    type Row = LinearizationRow;

    fn name(&self) -> &'static str {
        "linearization"
    }

    fn cells(&self) -> Vec<Cell> {
        Grid {
            classes: vec![WorkflowClass::Montage, WorkflowClass::Genome],
            sizes: vec![300],
            procs: ProcAxis::Explicit(vec![18]),
            pfails: vec![0.01, 0.001],
            ccrs: CcrAxis::ClassLog {
                points: self.ccr_points,
            },
            strategies: StrategyAxis::Combined,
            instances: 1,
            base_seed: self.base_seed,
        }
        .cells()
    }

    fn run_cell(&self, cell: &Cell, ctx: &CellCtx<'_>) -> Vec<LinearizationRow> {
        let w = ctx.scaled_instance(cell, 0);
        let evaluator = PathApprox::default();
        let em = |lin: Linearizer| {
            let pipe = ctx.pipeline(cell, 0, &w, lin);
            let sg = ctx.timed(Stage::Plan, || pipe.segment_graph(Strategy::CkptSome));
            ctx.timed(Stage::Evaluate, || {
                pipe.assess_graph(Strategy::CkptSome.name(), &sg, &evaluator)
            })
            .expected_makespan
        };
        let em_random = em(Linearizer::RandomTopo);
        let em_minvolume = em(Linearizer::MinVolume);
        let em_structural = em(Linearizer::Structural);
        vec![LinearizationRow {
            class: cell.class,
            ccr: cell.ccr,
            pfail: cell.pfail,
            em_random,
            em_minvolume,
            em_structural,
            gain_pct: 100.0 * (em_random - em_minvolume) / em_random,
        }]
    }

    fn header(&self) -> String {
        LINEARIZATION_HEADER.to_owned()
    }

    fn csv(&self, r: &LinearizationRow) -> String {
        format!(
            "{},{:.6e},{},{:.4},{:.4},{:.4},{:.3}",
            r.class.name(),
            r.ccr,
            r.pfail,
            r.em_random,
            r.em_minvolume,
            r.em_structural,
            r.gain_pct
        )
    }
}

/// One row of the E7 naive-coalescing ablation.
#[derive(Clone, Debug)]
pub struct NaiveCoalesceRow {
    /// Workflow class.
    pub class: WorkflowClass,
    /// Requested task count.
    pub size: usize,
    /// Communication-to-computation ratio.
    pub ccr: f64,
    /// Per-task failure probability.
    pub pfail: f64,
    /// Expected makespan of the §II-C naive solution.
    pub em_exit_only: f64,
    /// Expected makespan of the DP.
    pub em_ckptsome: f64,
    /// ExitOnly / CkptSome.
    pub ratio: f64,
}

/// E7 — exit-only checkpoints (naive coalescing) vs the DP.
#[derive(Clone, Debug)]
pub struct NaiveCoalesceScenario {
    /// CCR points per class sweep.
    pub ccr_points: usize,
    /// Base seed.
    pub base_seed: u64,
}

/// CSV header of the E7 table.
pub const NAIVE_COALESCE_HEADER: &str = "class,size,ccr,pfail,em_exit_only,em_ckptsome,ratio";

impl Scenario for NaiveCoalesceScenario {
    type Row = NaiveCoalesceRow;

    fn name(&self) -> &'static str {
        "naive_coalesce"
    }

    fn cells(&self) -> Vec<Cell> {
        Grid {
            classes: WorkflowClass::ALL.to_vec(),
            sizes: vec![50, 300],
            procs: ProcAxis::PaperIndex(1),
            pfails: vec![0.01, 0.001],
            ccrs: CcrAxis::ClassLog {
                points: self.ccr_points,
            },
            strategies: StrategyAxis::Combined,
            instances: 1,
            base_seed: self.base_seed,
        }
        .cells()
    }

    fn run_cell(&self, cell: &Cell, ctx: &CellCtx<'_>) -> Vec<NaiveCoalesceRow> {
        let w = ctx.scaled_instance(cell, 0);
        let pipe = ctx.pipeline(cell, 0, &w, Linearizer::RandomTopo);
        let evaluator = PathApprox::default();
        let em = |strategy: Strategy| {
            let sg = ctx.timed(Stage::Plan, || pipe.segment_graph(strategy));
            ctx.timed(Stage::Evaluate, || {
                pipe.assess_graph(strategy.name(), &sg, &evaluator)
            })
            .expected_makespan
        };
        let em_exit_only = em(Strategy::ExitOnly);
        let em_ckptsome = em(Strategy::CkptSome);
        vec![NaiveCoalesceRow {
            class: cell.class,
            size: cell.size,
            ccr: cell.ccr,
            pfail: cell.pfail,
            em_exit_only,
            em_ckptsome,
            ratio: em_exit_only / em_ckptsome,
        }]
    }

    fn header(&self) -> String {
        NAIVE_COALESCE_HEADER.to_owned()
    }

    fn csv(&self, r: &NaiveCoalesceRow) -> String {
        format!(
            "{},{},{:.6e},{},{:.4},{:.4},{:.4}",
            r.class.name(),
            r.size,
            r.ccr,
            r.pfail,
            r.em_exit_only,
            r.em_ckptsome,
            r.ratio
        )
    }
}

/// One row of the E8 Ligo-footnote study.
#[derive(Clone, Debug)]
pub struct LigoFootnoteRow {
    /// Communication-to-computation ratio.
    pub ccr: f64,
    /// Per-task failure probability.
    pub pfail: f64,
    /// rel_all of the mainline (complete-bipartite) instance.
    pub rel_all_mainline: f64,
    /// rel_all of the dummy-patched incomplete instance.
    pub rel_all_patched: f64,
    /// mainline − patched.
    pub sync_penalty: f64,
}

/// E8 — the Ligo incomplete-bipartite footnote: CkptSome must process
/// the dummy-patched workflow (extra synchronizations, no data), while
/// CkptAll's costs are unaffected by the zero-size dummies.
///
/// The two 300-task instances (and their CCR-invariant schedules) are
/// built once at construction; each cell only rescales clones.
pub struct LigoFootnoteScenario {
    ccr_points: usize,
    base_seed: u64,
    mainline: Workflow,
    mainline_schedule: Schedule,
    patched: Workflow,
    patched_schedule: Schedule,
}

/// CSV header of the E8 table.
pub const LIGO_FOOTNOTE_HEADER: &str = "ccr,pfail,rel_all_mainline,rel_all_patched,sync_penalty";

const LIGO_FOOTNOTE_PROCS: usize = 18;

impl LigoFootnoteScenario {
    /// Builds both Ligo-300 variants and their schedules.
    pub fn new(ccr_points: usize, base_seed: u64) -> Self {
        let seed = seedmix::derive(base_seed, &[WorkflowClass::Ligo as u64, 300]);
        let wf_seed = seedmix::stream_seed(seed, 0);
        let mainline = pegasus::ligo::generate(300, wf_seed);
        let mut inc = pegasus::ligo::generate_incomplete(300, wf_seed);
        let shape = pegasus::ligo::ligo_shape(300);
        for g in 0..shape.groups {
            mspg::patch::complete_bipartite(
                &mut inc.dag,
                &inc.inspiral_level[g],
                &inc.thinca_level[g],
            );
        }
        let root = mspg::recognize(&inc.dag).expect("patched Ligo must be an M-SPG");
        let patched = Workflow::from_wired(inc.dag, root);
        patched.validate().expect("patched workflow valid");
        let cfg = AllocateConfig {
            linearizer: Linearizer::RandomTopo,
            seed: wf_seed,
        };
        let mainline_schedule = allocate(&mainline, LIGO_FOOTNOTE_PROCS, &cfg);
        let patched_schedule = allocate(&patched, LIGO_FOOTNOTE_PROCS, &cfg);
        LigoFootnoteScenario {
            ccr_points,
            base_seed,
            mainline,
            mainline_schedule,
            patched,
            patched_schedule,
        }
    }

    fn rel_all(&self, w: &Workflow, schedule: &Schedule, cell: &Cell, ctx: &CellCtx<'_>) -> f64 {
        let w = ctx.timed(Stage::Generate, || {
            let mut w = w.clone();
            scale_to_ccr(&mut w, cell.ccr, BANDWIDTH);
            w
        });
        let lambda = ckpt_core::lambda_from_pfail(cell.pfail, w.dag.mean_weight());
        let platform = ckpt_core::Platform::new(cell.procs, lambda, BANDWIDTH);
        let pipe = ckpt_core::Pipeline::with_schedule(&w, platform, schedule.clone())
            .with_plan_threads(ctx.plan_threads);
        let evaluator = PathApprox::default();
        let em = |strategy: Strategy| {
            let sg = ctx.timed(Stage::Plan, || pipe.segment_graph(strategy));
            ctx.timed(Stage::Evaluate, || {
                pipe.assess_graph(strategy.name(), &sg, &evaluator)
            })
            .expected_makespan
        };
        em(Strategy::CkptAll) / em(Strategy::CkptSome)
    }
}

impl Scenario for LigoFootnoteScenario {
    type Row = LigoFootnoteRow;

    fn name(&self) -> &'static str {
        "ligo_footnote"
    }

    fn cells(&self) -> Vec<Cell> {
        Grid {
            classes: vec![WorkflowClass::Ligo],
            sizes: vec![300],
            procs: ProcAxis::Explicit(vec![LIGO_FOOTNOTE_PROCS]),
            pfails: vec![0.001],
            ccrs: CcrAxis::ClassLog {
                points: self.ccr_points,
            },
            strategies: StrategyAxis::Combined,
            instances: 1,
            base_seed: self.base_seed,
        }
        .cells()
    }

    fn run_cell(&self, cell: &Cell, ctx: &CellCtx<'_>) -> Vec<LigoFootnoteRow> {
        let rel_all_mainline = self.rel_all(&self.mainline, &self.mainline_schedule, cell, ctx);
        let rel_all_patched = self.rel_all(&self.patched, &self.patched_schedule, cell, ctx);
        vec![LigoFootnoteRow {
            ccr: cell.ccr,
            pfail: cell.pfail,
            rel_all_mainline,
            rel_all_patched,
            sync_penalty: rel_all_mainline - rel_all_patched,
        }]
    }

    fn header(&self) -> String {
        LIGO_FOOTNOTE_HEADER.to_owned()
    }

    fn csv(&self, r: &LigoFootnoteRow) -> String {
        format!(
            "{:.6e},{},{:.4},{:.4},{:.4}",
            r.ccr, r.pfail, r.rel_all_mainline, r.rel_all_patched, r.sync_penalty
        )
    }
}

/// A failure-model family point of the E9 `distributions` grid: the
/// family plus its shape knob, calibrated per cell against the cell's
/// `pfail` and the instance's mean task weight.
#[derive(Clone, Copy, Debug)]
pub enum DistModel {
    /// The paper's memoryless baseline.
    Exponential,
    /// Weibull with the given shape (`< 1` infant mortality, `> 1`
    /// wear-out).
    Weibull {
        /// Shape `k`.
        shape: f64,
    },
    /// LogNormal with the given log-deviation.
    LogNormal {
        /// Log-std `σ`.
        sigma: f64,
    },
}

impl DistModel {
    /// The family's shape knob (1 for the exponential, `k` for Weibull,
    /// `σ` for LogNormal).
    pub fn shape(self) -> f64 {
        match self {
            DistModel::Exponential => 1.0,
            DistModel::Weibull { shape } => shape,
            DistModel::LogNormal { sigma } => sigma,
        }
    }

    /// Calibrates the concrete [`FailureModel`] so a task of
    /// `mean_weight` fails with probability `pfail`.
    pub fn calibrate(self, pfail: f64, mean_weight: f64) -> FailureModel {
        match self {
            DistModel::Exponential => FailureModel::exponential_from_pfail(pfail, mean_weight),
            DistModel::Weibull { shape } => {
                FailureModel::weibull_from_pfail(shape, pfail, mean_weight)
            }
            DistModel::LogNormal { sigma } => {
                FailureModel::lognormal_from_pfail(sigma, pfail, mean_weight)
            }
        }
    }
}

/// One row of the E9 `distributions` table.
#[derive(Clone, Debug)]
pub struct DistributionRow {
    /// Workflow class.
    pub class: WorkflowClass,
    /// Requested task count.
    pub size: usize,
    /// Processor count.
    pub procs: usize,
    /// Per-task failure probability every model is calibrated to.
    pub pfail: f64,
    /// Communication-to-computation ratio.
    pub ccr: f64,
    /// Failure-model family.
    pub model: &'static str,
    /// Shape knob of the family.
    pub shape: f64,
    /// Strategy name.
    pub strategy: &'static str,
    /// Analytic expected makespan (renewal cost path + PathApprox, or
    /// generalized Theorem 1 for CkptNone).
    pub model_em: f64,
    /// Simulated mean makespan.
    pub sim_em: f64,
    /// Standard error of the simulated mean.
    pub sim_stderr: f64,
    /// |model − sim| / sim, percent.
    pub rel_err_pct: f64,
    /// Diverged CkptNone runs (0 for checkpointed strategies).
    pub diverged: usize,
}

/// E9 — the failure-distribution study: CkptAll / CkptNone / CkptSome /
/// ExitOnly under non-memoryless failure models (Weibull, LogNormal)
/// against the exponential baseline, every family calibrated to the same
/// per-task `pfail`. The analytic column exercises the quadrature
/// renewal cost path; the simulation column is its ground truth.
///
/// The cell list is the Cartesian grid `model × class × size × pfail`
/// (model outermost, so each model's block reuses the same per-lane
/// workflow instances, schedules, and simulation seeds — a paired
/// comparison across families).
#[derive(Clone, Debug)]
pub struct DistributionsScenario {
    /// Failure-model family points.
    pub models: Vec<DistModel>,
    /// Workflow sizes.
    pub sizes: Vec<usize>,
    /// Per-task failure probabilities.
    pub pfails: Vec<f64>,
    /// Simulated executions per cell and strategy.
    pub runs: usize,
    /// Base seed.
    pub base_seed: u64,
}

/// CSV header of the E9 table.
pub const DISTRIBUTIONS_HEADER: &str =
    "class,size,procs,pfail,ccr,model,shape,strategy,model_em,sim_em,sim_stderr,rel_err_pct,diverged";

impl DistributionsScenario {
    /// The default study: exponential baseline, infant-mortality and
    /// wear-out Weibull, and a heavy-tailed LogNormal.
    pub fn standard(runs: usize, sizes: Vec<usize>, base_seed: u64) -> Self {
        DistributionsScenario {
            models: vec![
                DistModel::Exponential,
                DistModel::Weibull { shape: 0.7 },
                DistModel::Weibull { shape: 2.0 },
                DistModel::LogNormal { sigma: 1.0 },
            ],
            sizes,
            pfails: vec![0.01, 0.001],
            runs,
            base_seed,
        }
    }

    fn base_grid(&self) -> Grid {
        Grid {
            classes: WorkflowClass::ALL.to_vec(),
            sizes: self.sizes.clone(),
            procs: ProcAxis::PaperIndex(1),
            pfails: self.pfails.clone(),
            ccrs: CcrAxis::ClassMid,
            strategies: StrategyAxis::Combined,
            instances: 1,
            base_seed: self.base_seed,
        }
    }

    /// Cells per model block, computed arithmetically from the base
    /// grid's axes (`classes × sizes × procs(1 each) × pfails ×
    /// CCR(1)`); `cells()` asserts it against the actual enumeration so
    /// it cannot drift from [`DistributionsScenario::base_grid`].
    fn cells_per_model(&self) -> usize {
        WorkflowClass::ALL.len() * self.sizes.len() * self.pfails.len()
    }

    /// The model a cell belongs to (cells are the base grid repeated
    /// once per model, in model order).
    fn model_of(&self, cell: &Cell) -> DistModel {
        self.models[cell.index / self.cells_per_model()]
    }

    /// The contiguous cell-index range of each model's block, labelled
    /// `family(shape)` — used by the binary to attribute per-block
    /// wall-clock from [`crate::engine::RunReport::cell_walls`].
    pub fn model_blocks(&self) -> Vec<(String, std::ops::Range<usize>)> {
        let block = self.cells_per_model();
        self.models
            .iter()
            .enumerate()
            .map(|(m, dist)| {
                let label = match dist {
                    DistModel::Exponential => "exponential".to_owned(),
                    DistModel::Weibull { shape } => format!("weibull(k={shape})"),
                    DistModel::LogNormal { sigma } => format!("lognormal(s={sigma})"),
                };
                (label, m * block..(m + 1) * block)
            })
            .collect()
    }
}

impl Scenario for DistributionsScenario {
    type Row = DistributionRow;

    fn name(&self) -> &'static str {
        "distributions"
    }

    fn cells(&self) -> Vec<Cell> {
        assert!(!self.models.is_empty(), "need at least one model");
        let base = self.base_grid().cells();
        assert_eq!(
            base.len(),
            self.cells_per_model(),
            "cells_per_model out of sync with base_grid"
        );
        let mut cells = Vec::with_capacity(base.len() * self.models.len());
        for _ in &self.models {
            for c in &base {
                cells.push(Cell {
                    index: cells.len(),
                    ..c.clone()
                });
            }
        }
        cells
    }

    fn run_cell(&self, cell: &Cell, ctx: &CellCtx<'_>) -> Vec<DistributionRow> {
        let dist = self.model_of(cell);
        let w = ctx.scaled_instance(cell, 0);
        let model = dist.calibrate(cell.pfail, w.dag.mean_weight());
        let pipe = ctx.pipeline_with_model(cell, 0, &w, Linearizer::RandomTopo, model);
        let cfg = SimConfig {
            runs: self.runs,
            seed: ctx.instance_seed(cell, 0),
            threads: ctx.mc_threads,
            // Wear-out models at high pfail push CkptNone into genuine
            // divergence (every attempt of a long task fails); a tight
            // budget censors those runs quickly instead of grinding
            // through the default million-failure budget per run.
            max_failures: 10_000,
            ..Default::default()
        };
        let evaluator = PathApprox::default();
        let mut rows = Vec::with_capacity(4);
        let mut row = |strategy: Strategy, model_em: f64, sim_em: f64, stderr: f64, div: usize| {
            rows.push(DistributionRow {
                class: cell.class,
                size: cell.size,
                procs: cell.procs,
                pfail: cell.pfail,
                ccr: cell.ccr,
                model: model.family_name(),
                shape: dist.shape(),
                strategy: strategy.name(),
                model_em,
                sim_em,
                sim_stderr: stderr,
                // A fully censored simulation (every CkptNone run
                // diverged, sim_em = ∞) has unbounded model error; keep
                // the column an explicit `inf`, not `inf/inf = NaN`.
                rel_err_pct: if sim_em.is_finite() {
                    100.0 * (model_em - sim_em).abs() / sim_em
                } else {
                    f64::INFINITY
                },
                diverged: div,
            });
        };
        for strategy in [Strategy::CkptAll, Strategy::CkptSome, Strategy::ExitOnly] {
            // One segment graph per strategy for both columns (see
            // ValidateScenario::run_cell).
            let sg = ctx.timed(Stage::Plan, || pipe.segment_graph(strategy));
            let model_em = ctx.timed(Stage::Evaluate, || evaluator.expected_makespan(&sg.pdag));
            let sim = ctx.timed(Stage::Evaluate, || {
                montecarlo_segments_model(&sg, &model, &cfg)
            });
            row(strategy, model_em, sim.mean_makespan, sim.stderr, 0);
        }
        let model_em = ctx
            .timed(Stage::Evaluate, || {
                pipe.assess(Strategy::CkptNone, &evaluator)
            })
            .expected_makespan;
        let sim = ctx.timed(Stage::Evaluate, || {
            montecarlo_none_model(&w.dag, &pipe.schedule, &model, &cfg)
        });
        row(
            Strategy::CkptNone,
            model_em,
            sim.stats.mean_makespan,
            sim.stats.stderr,
            sim.diverged,
        );
        rows
    }

    fn header(&self) -> String {
        DISTRIBUTIONS_HEADER.to_owned()
    }

    fn csv(&self, r: &DistributionRow) -> String {
        format!(
            "{},{},{},{},{:.6e},{},{},{},{:.4},{:.4},{:.4},{:.3},{}",
            r.class.name(),
            r.size,
            r.procs,
            r.pfail,
            r.ccr,
            r.model,
            r.shape,
            r.strategy,
            r.model_em,
            r.sim_em,
            r.sim_stderr,
            r.rel_err_pct,
            r.diverged
        )
    }
}

/// A checkpoint-policy point of the E10 `strategies` grid: the builtin
/// policy plus its knob, instantiable per cell.
#[derive(Clone, Copy, Debug)]
pub enum PolicyChoice {
    /// The paper's DP placement (CkptSome).
    DpOptimal,
    /// Checkpoint after every task.
    CkptAll,
    /// Checkpoint superchain exits only.
    ExitOnly,
    /// Young/Daly periodic checkpointing with the model-derived period.
    Daly,
    /// Adaptive risk-threshold checkpointing with the given per-segment
    /// failure-probability bound.
    Risk {
        /// Per-segment failure-probability bound, in `(0, 1)`.
        max_risk: f64,
    },
    /// The structural crossover heuristic.
    Crossover,
}

impl PolicyChoice {
    /// Builds the policy object this choice names.
    pub fn instantiate(&self) -> Box<dyn CheckpointPolicy> {
        match *self {
            PolicyChoice::DpOptimal => Box::new(DpOptimalPolicy),
            PolicyChoice::CkptAll => Box::new(CkptAllPolicy),
            PolicyChoice::ExitOnly => Box::new(ExitOnlyPolicy),
            PolicyChoice::Daly => Box::new(DalyPeriodic::auto()),
            PolicyChoice::Risk { max_risk } => Box::new(RiskThreshold::new(max_risk)),
            PolicyChoice::Crossover => Box::new(GreedyCrossover),
        }
    }

    /// The policy's display name (CSV label). Knob values are **not**
    /// encoded in the label, so a grid should carry at most one point
    /// per policy family — two `Risk` points would emit
    /// indistinguishable rows.
    pub fn name(&self) -> &'static str {
        match *self {
            PolicyChoice::DpOptimal => DpOptimalPolicy.name(),
            PolicyChoice::CkptAll => CkptAllPolicy.name(),
            PolicyChoice::ExitOnly => ExitOnlyPolicy.name(),
            PolicyChoice::Daly => DalyPeriodic::auto().name(),
            PolicyChoice::Risk { .. } => "RiskThreshold",
            PolicyChoice::Crossover => GreedyCrossover.name(),
        }
    }
}

/// One row of the E10 `strategies` table.
#[derive(Clone, Debug)]
pub struct StrategyRow {
    /// Workflow class.
    pub class: WorkflowClass,
    /// Requested task count.
    pub size: usize,
    /// Processor count.
    pub procs: usize,
    /// Per-task failure probability every model is calibrated to.
    pub pfail: f64,
    /// Communication-to-computation ratio.
    pub ccr: f64,
    /// Failure-model family.
    pub model: &'static str,
    /// Shape knob of the family.
    pub shape: f64,
    /// Checkpoint-policy name.
    pub policy: &'static str,
    /// Analytic expected makespan (renewal cost path + PathApprox).
    pub model_em: f64,
    /// Simulated mean makespan.
    pub sim_em: f64,
    /// Standard error of the simulated mean.
    pub sim_stderr: f64,
    /// |model − sim| / sim, percent.
    pub rel_err_pct: f64,
    /// Coalesced segments (= checkpointed tasks).
    pub segments: usize,
    /// Files the placement checkpoints.
    pub ckpt_files: usize,
    /// Bytes the placement checkpoints.
    pub ckpt_bytes: f64,
}

/// E10 — the checkpoint-policy study: the DP placement against the
/// classical competitors (Young/Daly periodic, adaptive risk-threshold,
/// structural crossover) and the paper's baselines, under exponential
/// and non-memoryless failure models, every family calibrated to the
/// cell's `pfail`. Quantifies what the DP actually buys over periodic
/// checkpointing — especially under wear-out, where memoryless-tuned
/// periods should visibly lose.
///
/// The cell list is the Cartesian grid `policy × model × class × size ×
/// pfail` with the **policy axis outermost** (then the model axis), so
/// every `(policy, model)` block reuses the same per-lane workflow
/// instances, schedules, and simulation seeds — a paired comparison
/// along both new axes.
#[derive(Clone, Debug)]
pub struct StrategiesScenario {
    /// Checkpoint policies (blocks, outermost axis).
    pub policies: Vec<PolicyChoice>,
    /// Failure-model family points (inner block axis).
    pub models: Vec<DistModel>,
    /// Workflow classes.
    pub classes: Vec<WorkflowClass>,
    /// Workflow sizes.
    pub sizes: Vec<usize>,
    /// Per-task failure probabilities.
    pub pfails: Vec<f64>,
    /// Simulated executions per cell.
    pub runs: usize,
    /// Base seed.
    pub base_seed: u64,
}

/// CSV header of the E10 table.
pub const STRATEGIES_HEADER: &str = "class,size,procs,pfail,ccr,model,shape,policy,\
     model_em,sim_em,sim_stderr,rel_err_pct,segments,ckpt_files,ckpt_bytes";

impl StrategiesScenario {
    /// The default study: all six builtin policies under the
    /// exponential baseline and both Weibull regimes, on the two
    /// structurally extreme classes (Genome's deep lanes, Montage's
    /// wide levels).
    pub fn standard(runs: usize, sizes: Vec<usize>, base_seed: u64) -> Self {
        StrategiesScenario {
            policies: vec![
                PolicyChoice::DpOptimal,
                PolicyChoice::CkptAll,
                PolicyChoice::ExitOnly,
                PolicyChoice::Daly,
                PolicyChoice::Risk { max_risk: 0.1 },
                PolicyChoice::Crossover,
            ],
            models: vec![
                DistModel::Exponential,
                DistModel::Weibull { shape: 0.7 },
                DistModel::Weibull { shape: 2.0 },
            ],
            classes: vec![WorkflowClass::Genome, WorkflowClass::Montage],
            sizes,
            pfails: vec![0.01, 0.001],
            runs,
            base_seed,
        }
    }

    fn base_grid(&self) -> Grid {
        Grid {
            classes: self.classes.clone(),
            sizes: self.sizes.clone(),
            procs: ProcAxis::PaperIndex(1),
            pfails: self.pfails.clone(),
            ccrs: CcrAxis::ClassMid,
            strategies: StrategyAxis::Combined,
            instances: 1,
            base_seed: self.base_seed,
        }
    }

    /// Cells per `(policy, model)` block, computed arithmetically from
    /// the base grid's axes; `cells()` asserts it against the actual
    /// enumeration.
    fn cells_per_block(&self) -> usize {
        self.classes.len() * self.sizes.len() * self.pfails.len()
    }

    /// The `(policy, model)` pair a cell belongs to.
    fn block_of(&self, cell: &Cell) -> (PolicyChoice, DistModel) {
        let block = cell.index / self.cells_per_block();
        (
            self.policies[block / self.models.len()],
            self.models[block % self.models.len()],
        )
    }

    /// The contiguous cell-index range of each `(policy, model)` block,
    /// labelled `policy/family(shape)` — used by the binary to
    /// attribute per-block wall-clock.
    pub fn blocks(&self) -> Vec<(String, std::ops::Range<usize>)> {
        let block = self.cells_per_block();
        let mut out = Vec::with_capacity(self.policies.len() * self.models.len());
        for (p, policy) in self.policies.iter().enumerate() {
            for (m, dist) in self.models.iter().enumerate() {
                let i = p * self.models.len() + m;
                let label = format!(
                    "{}/{}({})",
                    policy.name(),
                    match dist {
                        DistModel::Exponential => "exponential",
                        DistModel::Weibull { .. } => "weibull",
                        DistModel::LogNormal { .. } => "lognormal",
                    },
                    dist.shape()
                );
                out.push((label, i * block..(i + 1) * block));
            }
        }
        out
    }
}

impl Scenario for StrategiesScenario {
    type Row = StrategyRow;

    fn name(&self) -> &'static str {
        "strategies"
    }

    fn cells(&self) -> Vec<Cell> {
        assert!(!self.policies.is_empty(), "need at least one policy");
        assert!(!self.models.is_empty(), "need at least one model");
        let base = self.base_grid().cells();
        assert_eq!(
            base.len(),
            self.cells_per_block(),
            "cells_per_block out of sync with base_grid"
        );
        let blocks = self.policies.len() * self.models.len();
        let mut cells = Vec::with_capacity(base.len() * blocks);
        for _ in 0..blocks {
            for c in &base {
                cells.push(Cell {
                    index: cells.len(),
                    ..c.clone()
                });
            }
        }
        cells
    }

    fn run_cell(&self, cell: &Cell, ctx: &CellCtx<'_>) -> Vec<StrategyRow> {
        let (choice, dist) = self.block_of(cell);
        let w = ctx.scaled_instance(cell, 0);
        let model = dist.calibrate(cell.pfail, w.dag.mean_weight());
        let pipe = ctx.pipeline_with_model(cell, 0, &w, Linearizer::RandomTopo, model);
        let policy = choice.instantiate();
        // One segment graph serves the analytic assessment (with its
        // placement census) and the simulation ground truth.
        let sg = ctx.timed(Stage::Plan, || pipe.segment_graph_policy(policy.as_ref()));
        let assessment = ctx.timed(Stage::Evaluate, || {
            pipe.assess_graph(policy.name(), &sg, &PathApprox::default())
        });
        let cfg = SimConfig {
            runs: self.runs,
            seed: ctx.instance_seed(cell, 0),
            threads: ctx.mc_threads,
            max_failures: 10_000,
            ..Default::default()
        };
        let sim = ctx.timed(Stage::Evaluate, || {
            montecarlo_segments_model(&sg, &model, &cfg)
        });
        vec![StrategyRow {
            class: cell.class,
            size: cell.size,
            procs: cell.procs,
            pfail: cell.pfail,
            ccr: cell.ccr,
            model: model.family_name(),
            shape: dist.shape(),
            policy: assessment.policy,
            model_em: assessment.expected_makespan,
            sim_em: sim.mean_makespan,
            sim_stderr: sim.stderr,
            rel_err_pct: if sim.mean_makespan.is_finite() {
                100.0 * (assessment.expected_makespan - sim.mean_makespan).abs() / sim.mean_makespan
            } else {
                f64::INFINITY
            },
            segments: assessment.n_segments,
            ckpt_files: assessment.ckpt_files,
            ckpt_bytes: assessment.ckpt_bytes,
        }]
    }

    fn header(&self) -> String {
        STRATEGIES_HEADER.to_owned()
    }

    fn csv(&self, r: &StrategyRow) -> String {
        format!(
            "{},{},{},{},{:.6e},{},{},{},{:.4},{:.4},{:.4},{:.3},{},{},{:.6e}",
            r.class.name(),
            r.size,
            r.procs,
            r.pfail,
            r.ccr,
            r.model,
            r.shape,
            r.policy,
            r.model_em,
            r.sim_em,
            r.sim_stderr,
            r.rel_err_pct,
            r.segments,
            r.ckpt_files,
            r.ckpt_bytes
        )
    }
}

/// One row of the E12 `drift` table: the answer to one step of a
/// session's drift ladder. Results only — stage-execution metadata
/// stays out of the CSV so the bytes are comparable against any cold
/// recompute.
#[derive(Clone, Debug)]
pub struct DriftRow {
    /// Workflow class.
    pub class: WorkflowClass,
    /// Requested task count.
    pub size: usize,
    /// Processor count the step ran on (drifts mid-ladder).
    pub procs: usize,
    /// Communication-to-computation ratio.
    pub ccr: f64,
    /// Ladder step index.
    pub step: usize,
    /// What drifted at this step.
    pub kind: &'static str,
    /// The drifted value (pfail, shape, or processor count).
    pub param: f64,
    /// Placement policy in force.
    pub policy: &'static str,
    /// Analytic expected makespan.
    pub em: f64,
    /// Coalesced segments.
    pub segments: usize,
    /// Files the placement checkpoints.
    pub ckpt_files: usize,
    /// Bytes the placement checkpoints.
    pub ckpt_bytes: f64,
    /// Failure-free parallel time of the schedule in force.
    pub w_par: f64,
}

/// CSV header of the E12 table.
pub const DRIFT_HEADER: &str =
    "class,size,procs,ccr,step,kind,param,policy,em,segments,ckpt_files,ckpt_bytes,w_par";

/// E12 — the incremental-planning drift sweep: every cell opens a fresh
/// [`ckpt_service::Session`] on its `(class, size)` instance and
/// serially commits a fixed **drift ladder** — λ drifts, policy swaps,
/// a platform rescale, a model-family swap, and a return to the
/// starting λ — emitting one row per step. This drives the service's
/// incremental path end-to-end under the engine (cells in parallel,
/// each ladder sequential and stateful), and with
/// [`DriftScenario::self_check`] on, every step's answer is asserted
/// bit-identical to a cold recompute of the same drifted inputs in a
/// fresh store — the soundness bar, enforced inside the run itself.
#[derive(Clone, Debug)]
pub struct DriftScenario {
    /// Workflow classes.
    pub classes: Vec<WorkflowClass>,
    /// Workflow sizes.
    pub sizes: Vec<usize>,
    /// Base per-task failure probability each ladder starts from.
    pub pfail: f64,
    /// Assert each incremental answer against a cold recompute.
    pub self_check: bool,
    /// Base seed.
    pub base_seed: u64,
}

impl DriftScenario {
    /// The default sweep: both structurally extreme classes, cold
    /// self-check on.
    pub fn standard(sizes: Vec<usize>, base_seed: u64) -> Self {
        DriftScenario {
            classes: vec![WorkflowClass::Genome, WorkflowClass::Montage],
            sizes,
            pfail: 1e-3,
            self_check: true,
            base_seed,
        }
    }

    /// The drift ladder every cell walks: `(kind, param, delta)`
    /// triples, committed in order.
    fn ladder(&self, procs: usize) -> Vec<(&'static str, f64, ckpt_service::WhatIf)> {
        use ckpt_service::{ModelSpec, PolicySpec, WhatIf};
        let p = self.pfail;
        vec![
            ("baseline", p, WhatIf::Nop),
            ("pfail", 2.0 * p, WhatIf::SetPfail(2.0 * p)),
            ("pfail", 4.0 * p, WhatIf::SetPfail(4.0 * p)),
            ("policy", 4.0 * p, WhatIf::SetPolicy(PolicySpec::CkptAll)),
            ("policy", 4.0 * p, WhatIf::SetPolicy(PolicySpec::ExitOnly)),
            ("policy", 4.0 * p, WhatIf::SetPolicy(PolicySpec::DpOptimal)),
            ("procs", (2 * procs) as f64, WhatIf::SetProcs(2 * procs)),
            (
                "model",
                0.7,
                WhatIf::SetModel(ModelSpec::Weibull {
                    shape: 0.7,
                    pfail: 4.0 * p,
                }),
            ),
            // Return to the starting λ: with the Weibull family in
            // force this re-calibrates it, not the original
            // exponential — drift ladders don't rewind.
            ("pfail", p, WhatIf::SetPfail(p)),
        ]
    }
}

impl Scenario for DriftScenario {
    type Row = DriftRow;

    fn name(&self) -> &'static str {
        "drift"
    }

    fn cells(&self) -> Vec<Cell> {
        Grid {
            classes: self.classes.clone(),
            sizes: self.sizes.clone(),
            procs: ProcAxis::PaperIndex(1),
            pfails: vec![self.pfail],
            ccrs: CcrAxis::ClassMid,
            strategies: StrategyAxis::Combined,
            instances: 1,
            base_seed: self.base_seed,
        }
        .cells()
    }

    fn run_cell(&self, cell: &Cell, ctx: &CellCtx<'_>) -> Vec<DriftRow> {
        use ckpt_service::{Inputs, ModelSpec, Session, WorkflowSource};
        let seed = ctx.instance_seed(cell, 0);
        let source = WorkflowSource::Generated {
            class: cell.class,
            size: cell.size,
            seed,
            ccr: Some(cell.ccr),
        };
        let mut inputs = Inputs::basic(
            source,
            cell.procs,
            crate::BANDWIDTH,
            ModelSpec::Exponential { pfail: cell.pfail },
        );
        inputs.alloc = AllocateConfig {
            seed,
            ..AllocateConfig::default()
        };
        let mut session = Session::new(inputs);
        session.plan_threads = ctx.plan_threads;
        let mut rows = Vec::new();
        for (step, (kind, param, delta)) in self.ladder(cell.procs).into_iter().enumerate() {
            session.apply(&delta);
            let answer = ctx.timed(Stage::Plan, || session.baseline());
            if self.self_check {
                // The soundness bar: a fresh session (empty store) on
                // the drifted inputs must reproduce the incremental
                // answer bit for bit.
                let cold = ctx.timed(Stage::Evaluate, || {
                    Session::new(session.inputs().clone()).baseline()
                });
                assert_eq!(
                    answer.expected_makespan.to_bits(),
                    cold.expected_makespan.to_bits(),
                    "incremental/cold divergence at step {step} ({kind})"
                );
                assert_eq!(answer.n_segments, cold.n_segments);
                assert_eq!(answer.ckpt_bytes.to_bits(), cold.ckpt_bytes.to_bits());
            }
            rows.push(DriftRow {
                class: cell.class,
                size: cell.size,
                procs: session.inputs().procs,
                ccr: cell.ccr,
                step,
                kind,
                param,
                policy: answer.policy,
                em: answer.expected_makespan,
                segments: answer.n_segments,
                ckpt_files: answer.ckpt_files,
                ckpt_bytes: answer.ckpt_bytes,
                w_par: answer.w_par,
            });
        }
        rows
    }

    fn header(&self) -> String {
        DRIFT_HEADER.to_owned()
    }

    fn csv(&self, r: &DriftRow) -> String {
        format!(
            "{},{},{},{:.6e},{},{},{:.6e},{},{:.4},{},{},{:.6e},{:.4}",
            r.class.name(),
            r.size,
            r.procs,
            r.ccr,
            r.step,
            r.kind,
            r.param,
            r.policy,
            r.em,
            r.segments,
            r.ckpt_files,
            r.ckpt_bytes,
            r.w_par
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{self, EngineConfig, NullSink};

    #[test]
    fn figure_scenario_covers_the_paper_grid() {
        let s = FigureScenario::paper(WorkflowClass::Ligo, 2, 1, 7);
        // 3 sizes × 4 proc counts × 3 pfails × 2 CCR points.
        assert_eq!(s.cells().len(), 3 * 4 * 3 * 2);
    }

    #[test]
    fn accuracy_cells_carry_strategies() {
        let s = AccuracyScenario {
            trials: 100,
            sizes: vec![50],
            pfail: 0.01,
            base_seed: 1,
        };
        let cells = s.cells();
        assert_eq!(cells.len(), 3 * 2);
        assert!(cells.iter().all(|c| c.strategy.is_some()));
    }

    #[test]
    fn validate_scenario_mini_run_produces_three_rows_per_cell() {
        let s = ValidateScenario {
            runs: 40,
            sizes: vec![50],
            base_seed: 3,
        };
        let report = engine::run(&s, &EngineConfig::with_threads(1), &mut NullSink).unwrap();
        assert_eq!(report.cells, 3 * 3);
        assert_eq!(report.rows.len(), report.cells * 3);
        for r in &report.rows {
            assert!(r.model_em > 0.0 && r.sim_em > 0.0);
        }
    }

    #[test]
    fn distributions_cells_repeat_the_base_grid_per_model() {
        let s = DistributionsScenario::standard(10, vec![50], 3);
        let cells = s.cells();
        // 4 models × 3 classes × 1 size × 1 proc × 2 pfails × 1 CCR.
        assert_eq!(cells.len(), 4 * 3 * 2);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        // Model blocks share lane seeds with the base grid (paired
        // comparison): cell k and cell k + block have identical
        // coordinates.
        let block = cells.len() / 4;
        for k in 0..block {
            assert_eq!(cells[k].seed, cells[k + block].seed);
            assert_eq!(cells[k].pfail, cells[k + block].pfail);
        }
    }

    #[test]
    fn distributions_mini_run_produces_four_rows_per_cell() {
        let s = DistributionsScenario {
            models: vec![DistModel::Exponential, DistModel::Weibull { shape: 2.0 }],
            sizes: vec![50],
            pfails: vec![0.01],
            runs: 20,
            base_seed: 9,
        };
        let report = engine::run(&s, &EngineConfig::with_threads(2), &mut NullSink).unwrap();
        assert_eq!(report.cells, 2 * 3);
        assert_eq!(report.rows.len(), report.cells * 4);
        for r in &report.rows {
            assert!(r.model_em > 0.0 && r.sim_em > 0.0, "{r:?}");
        }
        // The exponential block must agree with the validate scenario's
        // exponential machinery: same strategies, finite errors.
        assert!(report.rows.iter().any(|r| r.model == "exponential"));
        assert!(report.rows.iter().any(|r| r.model == "weibull"));
    }

    #[test]
    fn strategies_cells_repeat_the_base_grid_per_policy_and_model() {
        let s = StrategiesScenario::standard(10, vec![50], 5);
        let cells = s.cells();
        // 6 policies × 3 models × (2 classes × 1 size × 2 pfails).
        assert_eq!(cells.len(), 6 * 3 * (2 * 2));
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        // Every block shares lane seeds with the base grid (paired
        // comparison along both the policy and the model axis).
        let block = s.cells_per_block();
        for k in 0..cells.len() {
            assert_eq!(cells[k].seed, cells[k % block].seed);
            assert_eq!(cells[k].pfail, cells[k % block].pfail);
        }
        assert_eq!(s.blocks().len(), 6 * 3);
    }

    #[test]
    fn strategies_mini_run_ranks_the_dp_first() {
        let s = StrategiesScenario {
            policies: vec![
                PolicyChoice::DpOptimal,
                PolicyChoice::Daly,
                PolicyChoice::Risk { max_risk: 0.1 },
                PolicyChoice::Crossover,
            ],
            models: vec![DistModel::Exponential, DistModel::Weibull { shape: 2.0 }],
            classes: vec![WorkflowClass::Genome],
            sizes: vec![50],
            pfails: vec![0.01],
            runs: 20,
            base_seed: 13,
        };
        let report = engine::run(&s, &EngineConfig::with_threads(2), &mut NullSink).unwrap();
        let block = s.cells_per_block();
        assert_eq!(report.rows.len(), 4 * 2 * block);
        for r in &report.rows {
            assert!(r.model_em > 0.0 && r.sim_em > 0.0, "{r:?}");
            assert!(r.segments >= 1 && r.ckpt_files >= 1);
            assert!(r.ckpt_bytes > 0.0);
        }
        // Paired comparison: for each (model, cell) the DP's analytic
        // expected makespan is never (meaningfully) beaten by any other
        // policy on the same instance, schedule, and calibrated model.
        let n_models = s.models.len();
        for (i, r) in report.rows.iter().enumerate() {
            let dp = &report.rows[i % (n_models * block)];
            assert_eq!(dp.policy, "CkptSome");
            assert_eq!(dp.model, r.model);
            assert!(
                dp.model_em <= r.model_em * 1.02,
                "{} under {}: DP {} vs {}",
                r.policy,
                r.model,
                dp.model_em,
                r.model_em
            );
        }
    }

    #[test]
    fn drift_scenario_walks_the_full_ladder_with_self_check() {
        let s = DriftScenario {
            classes: vec![WorkflowClass::Genome],
            sizes: vec![50],
            pfail: 1e-3,
            self_check: true, // cold-equality asserted inside run_cell
            base_seed: 17,
        };
        let report = engine::run(&s, &EngineConfig::with_threads(2), &mut NullSink).unwrap();
        assert_eq!(report.cells, 1);
        assert_eq!(report.rows.len(), 9);
        for (step, r) in report.rows.iter().enumerate() {
            assert_eq!(r.step, step);
            assert!(r.em > 0.0 && r.w_par > 0.0, "{r:?}");
        }
        // The ladder's λ steps strictly increase the expected makespan
        // on the same policy and platform.
        assert!(report.rows[1].em > report.rows[0].em);
        assert!(report.rows[2].em > report.rows[1].em);
        // CkptAll checkpoints at least as many files as the DP.
        assert!(report.rows[3].ckpt_files >= report.rows[2].ckpt_files);
        // The platform rescale doubles the processor count in the rows.
        assert_eq!(report.rows[6].procs, 2 * report.rows[5].procs);
    }

    #[test]
    fn ligo_footnote_scenario_reproduces_a_sync_penalty_signal() {
        let s = LigoFootnoteScenario::new(3, 42);
        let report = engine::run(&s, &EngineConfig::with_threads(2), &mut NullSink).unwrap();
        assert_eq!(report.rows.len(), 3);
        for r in &report.rows {
            assert!(r.rel_all_mainline > 0.0 && r.rel_all_patched > 0.0);
        }
    }
}
