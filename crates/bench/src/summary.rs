//! Stdout shape summaries shared by the harness binaries.
//!
//! The per-figure "endpoints" table used to be private to the `figures`
//! binary; it is generic over any grouped sweep, so `validate` and
//! `ablation` reuse it: for each group of rows, report each tracked
//! column's value at the lowest and highest x of the sweep.

use std::fmt::Write as _;

use crate::FigureRow;

struct GroupEnds {
    label: String,
    lo_x: f64,
    lo: Vec<f64>,
    hi_x: f64,
    hi: Vec<f64>,
}

/// Accumulates `(group, x, columns…)` observations and renders one line
/// per group with every column's value at the sweep endpoints.
pub struct EndpointSummary {
    x_label: String,
    group_label: String,
    columns: Vec<String>,
    groups: Vec<GroupEnds>,
}

impl EndpointSummary {
    /// A summary over sweeps of `x_label`, grouped under `group_label`,
    /// tracking the named columns.
    pub fn new(group_label: &str, x_label: &str, columns: &[&str]) -> Self {
        EndpointSummary {
            x_label: x_label.to_owned(),
            group_label: group_label.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            groups: Vec::new(),
        }
    }

    /// Records one observation. Groups appear in first-observation order;
    /// `values` must match the column list.
    pub fn observe(&mut self, group: &str, x: f64, values: &[f64]) {
        assert_eq!(values.len(), self.columns.len(), "column arity mismatch");
        match self.groups.iter_mut().find(|g| g.label == group) {
            Some(g) => {
                if x < g.lo_x {
                    g.lo_x = x;
                    g.lo = values.to_vec();
                }
                if x > g.hi_x {
                    g.hi_x = x;
                    g.hi = values.to_vec();
                }
            }
            None => self.groups.push(GroupEnds {
                label: group.to_owned(),
                lo_x: x,
                lo: values.to_vec(),
                hi_x: x,
                hi: values.to_vec(),
            }),
        }
    }

    /// Renders the summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .groups
            .iter()
            .map(|g| g.label.len())
            .chain([self.group_label.len()])
            .max()
            .unwrap_or(0);
        write!(out, "{:width$}", self.group_label).unwrap();
        for c in &self.columns {
            write!(out, " | {c}@lo{x} {c}@hi{x}", x = self.x_label).unwrap();
        }
        out.push('\n');
        for g in &self.groups {
            write!(out, "{:width$}", g.label).unwrap();
            for (i, c) in self.columns.iter().enumerate() {
                let w = c.len() + 3 + self.x_label.len();
                write!(out, " | {:>w$.3} {:>w$.3}", g.lo[i], g.hi[i]).unwrap();
            }
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// The figure binaries' shape summary: per `(size, procs, pfail)` group,
/// the relative expected makespans at the CCR endpoints.
pub fn figure_shape_summary(rows: &[FigureRow]) -> EndpointSummary {
    let mut s = EndpointSummary::new("size procs pfail", "CCR", &["rel_all", "rel_none"]);
    for r in rows {
        s.observe(
            &format!("{:4} {:5} {:6}", r.size, r.procs, r.pfail),
            r.ccr,
            &[r.rel_all, r.rel_none],
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_endpoints_per_group() {
        let mut s = EndpointSummary::new("g", "x", &["a"]);
        s.observe("one", 2.0, &[20.0]);
        s.observe("one", 1.0, &[10.0]);
        s.observe("one", 3.0, &[30.0]);
        s.observe("two", 5.0, &[50.0]);
        let text = s.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("10.000") && lines[1].contains("30.000"));
        assert!(lines[2].contains("50.000"));
    }

    #[test]
    fn figure_summary_groups_by_size_procs_pfail() {
        let mk = |size, ccr, rel_all| FigureRow {
            class: pegasus::WorkflowClass::Genome,
            size,
            actual_tasks: size,
            procs: 5,
            pfail: 0.01,
            ccr,
            em_some: 1.0,
            em_all: rel_all,
            em_none: 1.0,
            ckpts_some: 1,
            rel_all,
            rel_none: 1.0,
        };
        let rows = vec![mk(50, 1e-3, 1.0), mk(50, 1e-1, 2.0), mk(300, 1e-2, 3.0)];
        let text = figure_shape_summary(&rows).render();
        assert_eq!(text.lines().count(), 3, "{text}");
        assert!(text.contains("rel_all@loCCR"));
    }
}
