//! Streaming row sinks.
//!
//! The old harness collected every CSV line into a `Vec<String>` and
//! wrote the file at the end; the engine instead streams each row the
//! moment its canonical predecessor has been emitted, so partial results
//! survive interruption and memory stays flat on large grids.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// A destination for the engine's ordered CSV stream.
pub trait RowSink {
    /// Called once before any row, with the CSV header.
    fn begin(&mut self, header: &str) -> std::io::Result<()>;
    /// Called once per row, in canonical grid order.
    fn row(&mut self, line: &str) -> std::io::Result<()>;
    /// Called after the last row; flush buffers here.
    fn finish(&mut self) -> std::io::Result<()>;
}

/// Streams rows into a CSV file, creating parent directories on `begin`.
pub struct CsvFileSink {
    path: PathBuf,
    writer: Option<BufWriter<File>>,
    rows: usize,
}

impl CsvFileSink {
    /// A sink that will create (or truncate) `path` when the run begins.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CsvFileSink {
            path: path.into(),
            writer: None,
            rows: 0,
        }
    }

    /// The destination path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rows written so far (excluding the header).
    pub fn rows_written(&self) -> usize {
        self.rows
    }
}

impl RowSink for CsvFileSink {
    fn begin(&mut self, header: &str) -> std::io::Result<()> {
        if let Some(parent) = self.path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut w = BufWriter::new(File::create(&self.path)?);
        writeln!(w, "{header}")?;
        self.writer = Some(w);
        Ok(())
    }

    fn row(&mut self, line: &str) -> std::io::Result<()> {
        let w = self.writer.as_mut().expect("row() before begin()");
        writeln!(w, "{line}")?;
        self.rows += 1;
        Ok(())
    }

    fn finish(&mut self) -> std::io::Result<()> {
        if let Some(mut w) = self.writer.take() {
            w.flush()?;
        }
        Ok(())
    }
}

/// Collects the byte-exact CSV document in memory (tests compare these
/// across thread counts).
#[derive(Default)]
pub struct StringSink {
    /// The accumulated CSV document, header first.
    pub csv: String,
}

impl StringSink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RowSink for StringSink {
    fn begin(&mut self, header: &str) -> std::io::Result<()> {
        self.csv.push_str(header);
        self.csv.push('\n');
        Ok(())
    }

    fn row(&mut self, line: &str) -> std::io::Result<()> {
        self.csv.push_str(line);
        self.csv.push('\n');
        Ok(())
    }

    fn finish(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Discards the stream (callers that only want the typed rows).
#[derive(Default)]
pub struct NullSink;

impl RowSink for NullSink {
    fn begin(&mut self, _header: &str) -> std::io::Result<()> {
        Ok(())
    }

    fn row(&mut self, _line: &str) -> std::io::Result<()> {
        Ok(())
    }

    fn finish(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_file_sink_streams_and_counts() {
        let dir = std::env::temp_dir().join("ckpt_engine_sink_test");
        let path = dir.join("nested").join("out.csv");
        let mut sink = CsvFileSink::new(&path);
        sink.begin("a,b").unwrap();
        sink.row("1,2").unwrap();
        sink.row("3,4").unwrap();
        sink.finish().unwrap();
        assert_eq!(sink.rows_written(), 2);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n3,4\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn string_sink_accumulates_document() {
        let mut sink = StringSink::new();
        sink.begin("h").unwrap();
        sink.row("r1").unwrap();
        sink.finish().unwrap();
        assert_eq!(sink.csv, "h\nr1\n");
    }
}
