//! Shared per-run caches: generated workflow instances and their
//! schedules.
//!
//! A figure grid revisits the same `(class, size, instance)` workflow at
//! every CCR point, processor count and failure probability — dozens of
//! times. Generation (and scheduling, which for structure-driven
//! linearizers is CCR-invariant, see
//! [`ckpt_core::Pipeline::with_schedule`]) therefore happens once per
//! key; cells clone the cached unscaled instance and rescale the clone.
//!
//! Since the `ckpt_service` crate exists, the cache is two of its
//! fingerprint-keyed [`Memo`]s: the same slot-per-key concurrency story
//! (racing lanes block on the slot, not the map), plus a **bounded
//! capacity with deterministic LRU eviction** — a huge grid no longer
//! grows the cache without limit, and because generation and scheduling
//! are pure functions of the key, an eviction can only ever cost a
//! recompute, never change a row.

use std::sync::Arc;

use ckpt_core::fingerprint::linearizer_tag;
use ckpt_core::{allocate, AllocateConfig, Schedule};
use ckpt_service::Memo;
use mspg::Workflow;
use pegasus::WorkflowClass;
use seedmix::digest::Fnv1a;

/// Default per-memo capacity: comfortably above any shipped grid's
/// per-(class, size, instance) lane count, so eviction only engages on
/// genuinely huge sweeps.
pub const DEFAULT_CACHE_CAPACITY: usize = 512;

fn class_tag(class: WorkflowClass) -> u64 {
    match class {
        WorkflowClass::Genome => 0,
        WorkflowClass::Montage => 1,
        WorkflowClass::Ligo => 2,
        WorkflowClass::Cybershake => 3,
    }
}

/// Cache hit/miss counters of one engine run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Workflow lookups served from the cache.
    pub workflow_hits: usize,
    /// Workflow lookups that generated a new instance.
    pub workflow_misses: usize,
    /// Schedule lookups served from the cache.
    pub schedule_hits: usize,
    /// Schedule lookups that ran `Allocate`.
    pub schedule_misses: usize,
    /// Entries dropped by the capacity bound (both memos).
    pub evictions: usize,
}

/// Concurrent, capacity-bounded per-run cache of generated workflows
/// and schedules (see module docs).
pub struct WorkflowCache {
    workflows: Memo<Workflow>,
    schedules: Memo<Schedule>,
}

impl Default for WorkflowCache {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkflowCache {
    /// A cache bounded at [`DEFAULT_CACHE_CAPACITY`] entries per memo.
    pub fn new() -> Self {
        Self::bounded(DEFAULT_CACHE_CAPACITY)
    }

    /// A cache holding at most `capacity` workflows and `capacity`
    /// schedules (`0` = unbounded), evicting least-recently-used.
    pub fn bounded(capacity: usize) -> Self {
        WorkflowCache {
            workflows: Memo::bounded(capacity),
            schedules: Memo::bounded(capacity),
        }
    }

    /// The unscaled workflow instance `(class, size, seed)`, generated on
    /// first use.
    pub fn workflow(&self, class: WorkflowClass, size: usize, seed: u64) -> Arc<Workflow> {
        let key = Fnv1a::tagged(0x5746_4b59) // "WFKY"
            .write_word(class_tag(class))
            .write_usize(size)
            .write_word(seed)
            .finish();
        self.workflows
            .get_or_compute(key, || pegasus::generate(class, size, seed))
    }

    /// The schedule of instance `(class, size, seed)` on `procs`
    /// processors under `cfg`, computed on the **unscaled** instance on
    /// first use.
    ///
    /// For `Structural`/`RandomTopo` linearizers this is bit-identical to
    /// scheduling any CCR-rescaled clone; for `MinVolume` (which ranks by
    /// data volume) uniform rescaling preserves the ranking up to
    /// floating-point ties, and the cached order is the canonical one.
    pub fn schedule(
        &self,
        class: WorkflowClass,
        size: usize,
        seed: u64,
        procs: usize,
        cfg: &AllocateConfig,
    ) -> Arc<Schedule> {
        let key = Fnv1a::tagged(0x5343_4b59) // "SCKY"
            .write_word(class_tag(class))
            .write_usize(size)
            .write_word(seed)
            .write_usize(procs)
            .write_word(linearizer_tag(cfg.linearizer))
            .finish();
        let cfg = AllocateConfig { seed, ..*cfg };
        self.schedules.get_or_compute(key, || {
            let w = self.workflow(class, size, seed);
            allocate(&w, procs, &cfg)
        })
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        let w = self.workflows.stats();
        let s = self.schedules.stats();
        CacheStats {
            workflow_hits: w.hits as usize,
            workflow_misses: w.misses as usize,
            schedule_hits: s.hits as usize,
            schedule_misses: s.misses as usize,
            evictions: (w.evictions + s.evictions) as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspg::linearize::Linearizer;

    #[test]
    fn workflow_generated_once_per_key() {
        let cache = WorkflowCache::new();
        let a = cache.workflow(WorkflowClass::Genome, 50, 7);
        let b = cache.workflow(WorkflowClass::Genome, 50, 7);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!(stats.workflow_misses, 1);
        assert_eq!(stats.workflow_hits, 1);
        // A different seed is a different instance.
        let c = cache.workflow(WorkflowClass::Genome, 50, 8);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats().workflow_misses, 2);
    }

    #[test]
    fn schedule_cache_keys_on_procs_and_linearizer() {
        let cache = WorkflowCache::new();
        let cfg = AllocateConfig::default();
        let a = cache.schedule(WorkflowClass::Montage, 50, 3, 5, &cfg);
        let b = cache.schedule(WorkflowClass::Montage, 50, 3, 5, &cfg);
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.schedule(WorkflowClass::Montage, 50, 3, 7, &cfg);
        assert!(!Arc::ptr_eq(&a, &c));
        let structural = AllocateConfig {
            linearizer: Linearizer::Structural,
            ..cfg
        };
        let d = cache.schedule(WorkflowClass::Montage, 50, 3, 5, &structural);
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(cache.stats().schedule_misses, 3);
        assert_eq!(cache.stats().schedule_hits, 1);
    }

    #[test]
    fn cached_schedule_matches_direct_allocate() {
        let cache = WorkflowCache::new();
        let cfg = AllocateConfig::default();
        let w = cache.workflow(WorkflowClass::Ligo, 50, 11);
        let cached = cache.schedule(WorkflowClass::Ligo, 50, 11, 5, &cfg);
        let direct = allocate(&w, 5, &AllocateConfig { seed: 11, ..cfg });
        assert_eq!(cached.superchains, direct.superchains);
    }

    #[test]
    fn bounded_cache_evicts_lru_and_still_answers_correctly() {
        let cache = WorkflowCache::bounded(2);
        let a = cache.workflow(WorkflowClass::Genome, 50, 1);
        cache.workflow(WorkflowClass::Genome, 50, 2);
        cache.workflow(WorkflowClass::Genome, 50, 1); // touch 1 → 2 is LRU
        cache.workflow(WorkflowClass::Genome, 50, 3); // evicts seed 2
        assert_eq!(cache.stats().evictions, 1);
        // The evicted instance regenerates — a fresh Arc, same content
        // (re-inserting it evicts the now-LRU seed 1 in turn).
        let b = cache.workflow(WorkflowClass::Genome, 50, 2);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().workflow_misses, 4);
        assert_eq!(cache.stats().evictions, 2);
        let direct = pegasus::generate(WorkflowClass::Genome, 50, 2);
        assert_eq!(b.n_tasks(), direct.n_tasks());
        let ta = b
            .dag
            .task_ids()
            .map(|t| b.dag.weight(t))
            .collect::<Vec<_>>();
        let tb = direct
            .dag
            .task_ids()
            .map(|t| direct.dag.weight(t))
            .collect::<Vec<_>>();
        assert_eq!(ta, tb);
    }
}
