//! Shared per-run caches: generated workflow instances and their
//! schedules.
//!
//! A figure grid revisits the same `(class, size, instance)` workflow at
//! every CCR point, processor count and failure probability — dozens of
//! times. Generation (and scheduling, which for structure-driven
//! linearizers is CCR-invariant, see
//! [`ckpt_core::Pipeline::with_schedule`]) therefore happens once per
//! key; cells clone the cached unscaled instance and rescale the clone.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use ckpt_core::{allocate, AllocateConfig, Schedule};
use mspg::linearize::Linearizer;
use mspg::Workflow;
use pegasus::WorkflowClass;

type WorkflowKey = (WorkflowClass, usize, u64);
type ScheduleKey = (WorkflowClass, usize, u64, usize, u8);

fn linearizer_tag(lin: Linearizer) -> u8 {
    match lin {
        Linearizer::Structural => 0,
        Linearizer::RandomTopo => 1,
        Linearizer::MinVolume => 2,
    }
}

/// Cache hit/miss counters of one engine run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Workflow lookups served from the cache.
    pub workflow_hits: usize,
    /// Workflow lookups that generated a new instance.
    pub workflow_misses: usize,
    /// Schedule lookups served from the cache.
    pub schedule_hits: usize,
    /// Schedule lookups that ran `Allocate`.
    pub schedule_misses: usize,
}

/// Concurrent per-run cache of generated workflows and schedules.
///
/// Each slot is an `Arc<OnceLock<…>>`: the map lock is held only to find
/// the slot, and racing workers block on the slot (not the map) while the
/// first one generates — so two lanes never serialize each other.
#[derive(Default)]
pub struct WorkflowCache {
    workflows: Mutex<HashMap<WorkflowKey, Arc<OnceLock<Arc<Workflow>>>>>,
    schedules: Mutex<HashMap<ScheduleKey, Arc<OnceLock<Arc<Schedule>>>>>,
    workflow_hits: AtomicUsize,
    workflow_misses: AtomicUsize,
    schedule_hits: AtomicUsize,
    schedule_misses: AtomicUsize,
}

impl WorkflowCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The unscaled workflow instance `(class, size, seed)`, generated on
    /// first use.
    pub fn workflow(&self, class: WorkflowClass, size: usize, seed: u64) -> Arc<Workflow> {
        let slot = {
            let mut map = self.workflows.lock().expect("workflow cache poisoned");
            map.entry((class, size, seed)).or_default().clone()
        };
        let mut generated = false;
        let w = slot
            .get_or_init(|| {
                generated = true;
                Arc::new(pegasus::generate(class, size, seed))
            })
            .clone();
        if generated {
            self.workflow_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.workflow_hits.fetch_add(1, Ordering::Relaxed);
        }
        w
    }

    /// The schedule of instance `(class, size, seed)` on `procs`
    /// processors under `cfg`, computed on the **unscaled** instance on
    /// first use.
    ///
    /// For `Structural`/`RandomTopo` linearizers this is bit-identical to
    /// scheduling any CCR-rescaled clone; for `MinVolume` (which ranks by
    /// data volume) uniform rescaling preserves the ranking up to
    /// floating-point ties, and the cached order is the canonical one.
    pub fn schedule(
        &self,
        class: WorkflowClass,
        size: usize,
        seed: u64,
        procs: usize,
        cfg: &AllocateConfig,
    ) -> Arc<Schedule> {
        let key = (class, size, seed, procs, linearizer_tag(cfg.linearizer));
        let slot = {
            let mut map = self.schedules.lock().expect("schedule cache poisoned");
            map.entry(key).or_default().clone()
        };
        let mut computed = false;
        let cfg = AllocateConfig { seed, ..*cfg };
        let s = slot
            .get_or_init(|| {
                computed = true;
                let w = self.workflow(class, size, seed);
                Arc::new(allocate(&w, procs, &cfg))
            })
            .clone();
        if computed {
            self.schedule_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.schedule_hits.fetch_add(1, Ordering::Relaxed);
        }
        s
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            workflow_hits: self.workflow_hits.load(Ordering::Relaxed),
            workflow_misses: self.workflow_misses.load(Ordering::Relaxed),
            schedule_hits: self.schedule_hits.load(Ordering::Relaxed),
            schedule_misses: self.schedule_misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workflow_generated_once_per_key() {
        let cache = WorkflowCache::new();
        let a = cache.workflow(WorkflowClass::Genome, 50, 7);
        let b = cache.workflow(WorkflowClass::Genome, 50, 7);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!(stats.workflow_misses, 1);
        assert_eq!(stats.workflow_hits, 1);
        // A different seed is a different instance.
        let c = cache.workflow(WorkflowClass::Genome, 50, 8);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats().workflow_misses, 2);
    }

    #[test]
    fn schedule_cache_keys_on_procs_and_linearizer() {
        let cache = WorkflowCache::new();
        let cfg = AllocateConfig::default();
        let a = cache.schedule(WorkflowClass::Montage, 50, 3, 5, &cfg);
        let b = cache.schedule(WorkflowClass::Montage, 50, 3, 5, &cfg);
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.schedule(WorkflowClass::Montage, 50, 3, 7, &cfg);
        assert!(!Arc::ptr_eq(&a, &c));
        let structural = AllocateConfig {
            linearizer: Linearizer::Structural,
            ..cfg
        };
        let d = cache.schedule(WorkflowClass::Montage, 50, 3, 5, &structural);
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(cache.stats().schedule_misses, 3);
        assert_eq!(cache.stats().schedule_hits, 1);
    }

    #[test]
    fn cached_schedule_matches_direct_allocate() {
        let cache = WorkflowCache::new();
        let cfg = AllocateConfig::default();
        let w = cache.workflow(WorkflowClass::Ligo, 50, 11);
        let cached = cache.schedule(WorkflowClass::Ligo, 50, 11, 5, &cfg);
        let direct = allocate(&w, 5, &AllocateConfig { seed: 11, ..cfg });
        assert_eq!(cached.superchains, direct.superchains);
    }
}
