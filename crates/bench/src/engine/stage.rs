//! Per-stage wall-clock accounting for the planning pipeline.
//!
//! The grid binaries report where a run spends its time — workflow
//! generation, scheduling, checkpoint planning, or evaluation — without
//! touching the CSV stream. [`StageWalls`] is a lock-free accumulator
//! shared by all cell workers: scenarios wrap the relevant calls in
//! `CellCtx::timed` (or the `CellCtx` accessors do it for them), and the
//! engine snapshots the totals into the [`RunReport`](super::RunReport).
//!
//! Totals are summed **across workers**, so with `N` cell workers the
//! stage seconds can add up to `N ×` the run's wall clock; they measure
//! where compute went, not elapsed time. Purely diagnostic: stage walls
//! never feed back into any value, so the byte-identity guarantee of the
//! engine is unaffected.

use std::sync::atomic::{AtomicU64, Ordering};

/// A pipeline stage whose wall time the engine accounts separately.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Workflow generation (cache misses) and per-cell CCR rescaling.
    Generate,
    /// Proportional-mapping allocation and linearization (cache misses).
    Schedule,
    /// Checkpoint placement: the superchain DP / policies and
    /// segment-graph coalescing.
    Plan,
    /// Expected-makespan evaluation: estimators and simulation.
    Evaluate,
}

/// All stages, in reporting order.
pub const STAGES: [Stage; 4] = [
    Stage::Generate,
    Stage::Schedule,
    Stage::Plan,
    Stage::Evaluate,
];

impl Stage {
    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Generate => "generate",
            Stage::Schedule => "schedule",
            Stage::Plan => "plan",
            Stage::Evaluate => "evaluate",
        }
    }

    /// Span name for this stage in the engine's trace
    /// (`obs::span`-namespaced so engine timing spans are
    /// distinguishable from the service's `stage.*` execution spans).
    pub fn site(self) -> &'static str {
        match self {
            Stage::Generate => "engine.generate",
            Stage::Schedule => "engine.schedule",
            Stage::Plan => "engine.plan",
            Stage::Evaluate => "engine.evaluate",
        }
    }
}

/// Thread-safe accumulator of per-stage wall time in nanoseconds.
///
/// `add`/`time` are relaxed atomic adds — cheap enough to leave enabled
/// unconditionally on every hot path the engine times.
///
/// Since the observability layer landed, the clock itself lives in
/// `obs::span::timed`: `time` opens a `engine.<stage>` span (recorded
/// when the span recorder is armed, pure timing otherwise) and charges
/// the span's measured nanoseconds here, so there is exactly one timing
/// source. Built with `obs` compiled out, `timed` reports zero and the
/// stage walls read 0 — the report is diagnostic only, never a value.
pub struct StageWalls {
    nanos: [AtomicU64; 4],
    /// Per-stage `ckpt_stage_wall_seconds{stage=...}` histogram handles,
    /// resolved once at construction so `time` never takes the registry
    /// lock.
    hists: [obs::metrics::Histogram; 4],
}

impl Default for StageWalls {
    fn default() -> Self {
        StageWalls::new()
    }
}

impl StageWalls {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        StageWalls {
            nanos: Default::default(),
            hists: STAGES.map(|s| {
                obs::metrics::labeled_histogram_seconds(
                    "ckpt_stage_wall_seconds",
                    "stage",
                    s.name(),
                )
            }),
        }
    }

    /// Adds `nanos` to `stage`'s total.
    pub fn add(&self, stage: Stage, nanos: u64) {
        self.nanos[stage as usize].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Runs `f`, charging its elapsed wall time to `stage`.
    #[inline]
    pub fn time<T>(&self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let (out, nanos) = obs::span::timed(stage.site(), f);
        self.add(stage, nanos);
        self.hists[stage as usize].observe_ns(nanos);
        out
    }

    /// Accumulated seconds of `stage`.
    pub fn seconds(&self, stage: Stage) -> f64 {
        self.nanos[stage as usize].load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Snapshot of all stage totals.
    pub fn report(&self) -> StageReport {
        StageReport {
            generate: self.seconds(Stage::Generate),
            schedule: self.seconds(Stage::Schedule),
            plan: self.seconds(Stage::Plan),
            evaluate: self.seconds(Stage::Evaluate),
        }
    }
}

/// A snapshot of accumulated per-stage walls, in seconds (summed across
/// workers — see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageReport {
    /// Seconds spent generating/rescaling workflows.
    pub generate: f64,
    /// Seconds spent scheduling.
    pub schedule: f64,
    /// Seconds spent placing checkpoints.
    pub plan: f64,
    /// Seconds spent evaluating expected makespans.
    pub evaluate: f64,
}

impl StageReport {
    /// Seconds of `stage`.
    pub fn seconds(&self, stage: Stage) -> f64 {
        match stage {
            Stage::Generate => self.generate,
            Stage::Schedule => self.schedule,
            Stage::Plan => self.plan,
            Stage::Evaluate => self.evaluate,
        }
    }

    /// One-line stderr summary, e.g.
    /// `generate 0.42s | schedule 0.10s | plan 1.73s | evaluate 6.05s`.
    pub fn summary(&self) -> String {
        STAGES
            .iter()
            .map(|&s| format!("{} {:.2}s", s.name(), self.seconds(s)))
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_accumulates_into_the_right_stage() {
        let walls = StageWalls::new();
        let x = walls.time(Stage::Plan, || 2 + 2);
        assert_eq!(x, 4);
        walls.add(Stage::Plan, 1_500_000_000);
        walls.add(Stage::Evaluate, 250_000_000);
        let r = walls.report();
        assert!(r.plan >= 1.5);
        assert!((r.evaluate - 0.25).abs() < 1e-9);
        assert_eq!(r.generate, 0.0);
        assert_eq!(r.schedule, 0.0);
    }

    #[test]
    fn summary_lists_all_stages_in_order() {
        let r = StageReport {
            generate: 1.0,
            schedule: 0.5,
            plan: 0.25,
            evaluate: 2.0,
        };
        assert_eq!(
            r.summary(),
            "generate 1.00s | schedule 0.50s | plan 0.25s | evaluate 2.00s"
        );
    }
}
