//! # engine — the unified parallel scenario engine (E1–E10)
//!
//! The paper's evaluation is one big Cartesian grid — workflow class ×
//! size × processor count × pfail × CCR × strategy — which the harness
//! binaries used to walk with per-binary copies of hand-rolled nested
//! loops, serially, regenerating every workflow at every grid point.
//! This module replaces all of that with one declarative engine:
//!
//! * a [`Grid`] spec enumerates [`Cell`]s in canonical order, each with
//!   a seed derived from one base seed via `seedmix`;
//! * a [`Scenario`] turns a cell into typed rows (each binary is now a
//!   thin scenario + CLI shell, see [`crate::scenarios`]);
//! * [`run`] executes cells on a work-queue thread pool, re-sequencing
//!   results so the CSV stream is **byte-identical for every thread
//!   count** (see `DESIGN.md` §5.1 for the determinism argument);
//! * a [`WorkflowCache`] shares generated instances and CCR-invariant
//!   schedules across all cells of a `(class, size)` lane;
//! * a [`RowSink`] streams rows out as soon as their canonical
//!   predecessors exist, replacing the collect-then-write pattern.
//!
//! ## Thread budget
//!
//! `EngineConfig::threads` (0 = all cores) buys **cell-level**
//! parallelism: the engine runs `min(threads, cells)` workers. Monte
//! Carlo work nested *inside* a cell gets the separate
//! [`EngineConfig::mc_threads`] budget (default 0 = all cores) via
//! [`CellCtx::mc_threads`]. Both budgets are **pure speed knobs**:
//! every Monte Carlo estimate in the workspace is a bit-identical
//! function of `(seed, runs)` — each replication owns its own `seedmix`
//! stream and result slot, and aggregation folds in canonical run order
//! (see `DESIGN.md` §5.1 and the `sim_properties` /
//! `evaluator_consistency` proptests) — so any combination of
//! `--threads` and `--mc-threads` produces the same CSV bytes. Pick
//! them for wall-clock alone: cell workers amortize planning across the
//! grid, while `mc_threads` parallelizes inside long cells (the E9/E10
//! CkptNone blocks, where one wear-out cell dominates the whole run).
//! Oversubscribing `workers × mc_threads` past the core count costs
//! some scheduling overhead but never changes a value.

pub mod cache;
pub mod pool;
pub mod sink;
pub mod spec;
pub mod stage;

pub use cache::{CacheStats, WorkflowCache};
pub use pool::ordered_parallel;
pub use sink::{CsvFileSink, NullSink, RowSink, StringSink};
pub use spec::{CcrAxis, Cell, Grid, ProcAxis, StrategyAxis};
pub use stage::{Stage, StageReport, StageWalls, STAGES};

use std::sync::Arc;
use std::time::Instant;

use ckpt_core::{lambda_from_pfail, AllocateConfig, FailureModel, Pipeline, Platform, Schedule};
use mspg::linearize::Linearizer;
use mspg::Workflow;
use pegasus::ccr::scale_to_ccr;

use crate::BANDWIDTH;

/// Engine-wide execution parameters.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Cell-level worker budget (0 = all available cores).
    pub threads: usize,
    /// Thread budget for Monte Carlo work nested inside one cell
    /// (0 = all available cores, the default). A pure speed knob: MC
    /// estimates are bit-identical functions of `(seed, runs)` for any
    /// budget, so this never affects the CSV.
    pub mc_threads: usize,
    /// Thread budget for per-superchain checkpoint placement inside one
    /// cell's `Pipeline::plan` (1 = serial, the default; 0 = all
    /// cores). A pure speed knob: policy placement is a pure function
    /// of each superchain, so placements — and hence the CSV — are
    /// bit-identical for any budget (see `DESIGN.md` §9). Cell workers
    /// already saturate the cores on full grids, so this mostly pays on
    /// single huge workflows (the `planscale` binary).
    pub plan_threads: usize,
}

impl EngineConfig {
    /// `threads` cell workers with fully parallel nested Monte Carlo and
    /// serial per-cell planning.
    pub fn with_threads(threads: usize) -> Self {
        EngineConfig {
            threads,
            mc_threads: 0,
            plan_threads: 1,
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::with_threads(0)
    }
}

/// Per-cell execution context: the shared cache, the cell's nested
/// thread budgets, and the shared per-stage wall accumulator.
pub struct CellCtx<'e> {
    cache: &'e WorkflowCache,
    stages: &'e StageWalls,
    /// Thread budget for Monte Carlo work nested inside one cell
    /// (0 = all cores). Plumb this into `probdag::MonteCarlo::threads` /
    /// `failsim::SimConfig::threads`; it only sets the pace, never the
    /// values.
    pub mc_threads: usize,
    /// Per-superchain placement budget handed to every pipeline this
    /// context builds (see [`EngineConfig::plan_threads`]).
    pub plan_threads: usize,
}

impl CellCtx<'_> {
    /// Runs `f`, charging its elapsed wall time to `stage` in the run's
    /// shared [`StageWalls`]. Scenarios wrap their planning and
    /// evaluation calls in this; generation and scheduling are timed by
    /// the [`CellCtx`] accessors themselves.
    #[inline]
    pub fn timed<T>(&self, stage: Stage, f: impl FnOnce() -> T) -> T {
        self.stages.time(stage, f)
    }

    /// Seed of instance `i` of this cell's `(class, size)` lane.
    pub fn instance_seed(&self, cell: &Cell, i: usize) -> u64 {
        seedmix::stream_seed(cell.seed, i as u64)
    }

    /// The cached **unscaled** workflow instance `i` of this cell's lane.
    ///
    /// Charged to [`Stage::Generate`] (near-zero on cache hits).
    pub fn instance(&self, cell: &Cell, i: usize) -> Arc<Workflow> {
        self.timed(Stage::Generate, || {
            self.cache
                .workflow(cell.class, cell.size, self.instance_seed(cell, i))
        })
    }

    /// A clone of instance `i` rescaled to the cell's CCR at the
    /// experiment bandwidth. Charged to [`Stage::Generate`].
    pub fn scaled_instance(&self, cell: &Cell, i: usize) -> Workflow {
        let w = self.instance(cell, i);
        self.timed(Stage::Generate, || {
            let mut w = (*w).clone();
            scale_to_ccr(&mut w, cell.ccr, BANDWIDTH);
            w
        })
    }

    /// The cached schedule of instance `i` on the cell's processors.
    ///
    /// Charged to [`Stage::Schedule`] (near-zero on cache hits).
    pub fn schedule(&self, cell: &Cell, i: usize, linearizer: Linearizer) -> Arc<Schedule> {
        self.timed(Stage::Schedule, || {
            self.cache.schedule(
                cell.class,
                cell.size,
                self.instance_seed(cell, i),
                cell.procs,
                &AllocateConfig {
                    linearizer,
                    seed: 0, // overwritten by the cache with the instance seed
                },
            )
        })
    }

    /// The evaluation pipeline of the rescaled instance `w` (a clone
    /// obtained from [`CellCtx::scaled_instance`]) under the cached
    /// schedule and the cell's platform.
    pub fn pipeline<'w>(
        &self,
        cell: &Cell,
        i: usize,
        w: &'w Workflow,
        linearizer: Linearizer,
    ) -> Pipeline<'w> {
        let lambda = lambda_from_pfail(cell.pfail, w.dag.mean_weight());
        self.pipeline_with_model(cell, i, w, linearizer, FailureModel::exponential(lambda))
    }

    /// [`CellCtx::pipeline`] with an arbitrary failure model (the
    /// `distributions` scenario calibrates one per cell from the cell's
    /// `pfail` and the instance's mean weight).
    pub fn pipeline_with_model<'w>(
        &self,
        cell: &Cell,
        i: usize,
        w: &'w Workflow,
        linearizer: Linearizer,
        model: FailureModel,
    ) -> Pipeline<'w> {
        let platform = Platform::with_model(cell.procs, model, BANDWIDTH);
        let schedule = self.schedule(cell, i, linearizer);
        Pipeline::with_schedule(w, platform, (*schedule).clone())
            .with_plan_threads(self.plan_threads)
    }
}

/// One experiment driven by the engine: a cell list plus the cell → rows
/// computation and the CSV mapping.
pub trait Scenario: Sync {
    /// The typed result row.
    type Row: Send;

    /// Short scenario name, used to attribute engine errors (a failed
    /// sink write names the scenario and cell it died on).
    fn name(&self) -> &'static str;

    /// The cells to execute, in canonical output order (`cells[i].index
    /// == i`).
    fn cells(&self) -> Vec<Cell>;

    /// Executes one cell. Must be a pure function of `(cell, ctx)` —
    /// no shared mutable state, no ambient randomness — so that results
    /// are independent of worker scheduling.
    fn run_cell(&self, cell: &Cell, ctx: &CellCtx<'_>) -> Vec<Self::Row>;

    /// The CSV header for this scenario's rows.
    fn header(&self) -> String;

    /// Formats one row as a CSV line.
    fn csv(&self, row: &Self::Row) -> String;
}

/// Outcome of an engine run: the typed rows (canonical order) plus
/// execution metadata.
#[derive(Debug)]
pub struct RunReport<R> {
    /// All rows, in canonical grid order.
    pub rows: Vec<R>,
    /// Wall-clock seconds each cell's `run_cell` took, in canonical cell
    /// order (diagnostic only — never part of the CSV, so the
    /// byte-identity guarantee is unaffected).
    pub cell_walls: Vec<f64>,
    /// Number of cells executed.
    pub cells: usize,
    /// Resolved cell-level worker count.
    pub workers: usize,
    /// Nested Monte Carlo budget each cell received (0 = all cores).
    pub mc_threads: usize,
    /// Per-superchain placement budget each pipeline received.
    pub plan_threads: usize,
    /// Per-stage wall seconds, summed across workers (diagnostic only —
    /// never part of the CSV). Only stages a scenario routes through
    /// [`CellCtx::timed`] (or the timed accessors) are non-zero.
    pub stages: StageReport,
    /// Wall-clock seconds for the whole run.
    pub wall: f64,
    /// Workflow/schedule cache counters.
    pub cache: CacheStats,
}

/// Wraps a sink I/O error with the scenario (and cell) it occurred on,
/// preserving the original `ErrorKind`.
fn sink_context(
    e: std::io::Error,
    scenario: &str,
    what: &str,
    cell: Option<&Cell>,
) -> std::io::Error {
    let place = match cell {
        Some(c) => format!(
            " for cell {} (class={} size={} procs={} pfail={} ccr={})",
            c.index,
            c.class.name(),
            c.size,
            c.procs,
            c.pfail,
            c.ccr
        ),
        None => String::new(),
    };
    std::io::Error::new(e.kind(), format!("scenario {scenario}: {what}{place}: {e}"))
}

/// Runs a scenario: executes its cells on the thread pool, streams CSV
/// rows to `sink` in canonical order, and returns the typed rows.
pub fn run<S: Scenario>(
    scenario: &S,
    cfg: &EngineConfig,
    sink: &mut dyn RowSink,
) -> std::io::Result<RunReport<S::Row>> {
    let start = Instant::now();
    let cells = scenario.cells();
    debug_assert!(cells.iter().enumerate().all(|(i, c)| c.index == i));
    // One grid-level span per run; every cell span attaches under it by
    // explicit id so the tree is identical for any worker count (cells
    // execute on pool threads, where `Parent::Current` would be empty).
    let grid_span = obs::span::enter(scenario.name());
    let cell_parent = match grid_span.id() {
        Some(id) => obs::span::Parent::Under(id),
        None => obs::span::Parent::Root,
    };
    let workers = seedmix::resolve_threads(cfg.threads)
        .min(cells.len())
        .max(1);
    let mc_threads = cfg.mc_threads;
    let cache = WorkflowCache::new();
    let stages = StageWalls::new();
    let ctx = CellCtx {
        cache: &cache,
        stages: &stages,
        mc_threads,
        plan_threads: cfg.plan_threads,
    };
    // Fail fast with attribution: a sink that can no longer be written
    // aborts the run, and the surfaced error names the scenario (and,
    // for row writes, the exact cell) so a failed overnight grid is
    // diagnosable from the error line alone.
    sink.begin(&scenario.header())
        .map_err(|e| sink_context(e, scenario.name(), "writing header", None))?;
    let mut rows = Vec::with_capacity(cells.len());
    let mut cell_walls = Vec::with_capacity(cells.len());
    let mut sink_err: Option<std::io::Error> = None;
    ordered_parallel(
        cells.len(),
        workers,
        |i| {
            // The span clock is the cell timing source: `cell_walls`
            // reports the same nanoseconds the trace records (zero when
            // the observability layer is compiled out — diagnostic only).
            let (out, nanos) =
                obs::span::timed_full("cell", None, Some(i as u64), cell_parent, || {
                    scenario.run_cell(&cells[i], &ctx)
                });
            (out, nanos as f64 * 1e-9)
        },
        |i, (cell_rows, cell_wall)| {
            cell_walls.push(cell_wall);
            for row in cell_rows {
                if sink_err.is_none() {
                    if let Err(e) = sink.row(&scenario.csv(&row)) {
                        sink_err = Some(sink_context(
                            e,
                            scenario.name(),
                            "writing row",
                            Some(&cells[i]),
                        ));
                    }
                }
                rows.push(row);
            }
            // A sink error aborts the run: remaining cells are cancelled
            // rather than computed for a file that can no longer be
            // written.
            sink_err.is_none()
        },
    );
    if let Some(e) = sink_err {
        return Err(e);
    }
    sink.finish()
        .map_err(|e| sink_context(e, scenario.name(), "finishing output", None))?;
    Ok(RunReport {
        rows,
        cell_walls,
        cells: cells.len(),
        workers,
        mc_threads,
        plan_threads: cfg.plan_threads,
        stages: stages.report(),
        wall: start.elapsed().as_secs_f64(),
        cache: cache.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegasus::WorkflowClass;

    /// A synthetic scenario exercising the engine plumbing without the
    /// full evaluation pipeline: rows record cell coordinates and the
    /// cached instance's task count.
    struct Probe;

    impl Scenario for Probe {
        type Row = (usize, usize, u64);

        fn name(&self) -> &'static str {
            "probe"
        }

        fn cells(&self) -> Vec<Cell> {
            Grid {
                classes: vec![WorkflowClass::Genome],
                sizes: vec![50],
                procs: ProcAxis::Explicit(vec![3, 5]),
                pfails: vec![0.01],
                ccrs: CcrAxis::Explicit(vec![1e-3, 1e-2, 1e-1]),
                strategies: StrategyAxis::Combined,
                instances: 2,
                base_seed: 9,
            }
            .cells()
        }

        fn run_cell(&self, cell: &Cell, ctx: &CellCtx<'_>) -> Vec<Self::Row> {
            let mut tasks = 0;
            for i in 0..cell.instances {
                tasks = ctx.instance(cell, i).n_tasks();
            }
            vec![(cell.index, tasks, cell.seed)]
        }

        fn header(&self) -> String {
            "index,tasks,seed".into()
        }

        fn csv(&self, r: &Self::Row) -> String {
            format!("{},{},{}", r.0, r.1, r.2)
        }
    }

    #[test]
    fn rows_arrive_in_canonical_order_for_any_thread_count() {
        for threads in [1, 2, 5] {
            let mut sink = StringSink::new();
            let report = run(&Probe, &EngineConfig::with_threads(threads), &mut sink).unwrap();
            assert_eq!(report.cells, 6);
            let indices: Vec<usize> = report.rows.iter().map(|r| r.0).collect();
            assert_eq!(indices, (0..6).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn csv_is_identical_across_thread_counts() {
        let mut serial = StringSink::new();
        run(&Probe, &EngineConfig::with_threads(1), &mut serial).unwrap();
        for threads in [2, 4] {
            let mut parallel = StringSink::new();
            run(&Probe, &EngineConfig::with_threads(threads), &mut parallel).unwrap();
            assert_eq!(serial.csv, parallel.csv, "threads={threads}");
        }
    }

    #[test]
    fn workflow_cache_is_shared_across_cells() {
        let mut sink = NullSink;
        let report = run(&Probe, &EngineConfig::with_threads(1), &mut sink).unwrap();
        // 6 cells × 2 instances = 12 lookups, but only 2 distinct
        // (class, size, instance) keys exist.
        assert_eq!(report.cache.workflow_misses, 2);
        assert_eq!(report.cache.workflow_hits, 10);
    }

    #[test]
    fn mc_budget_is_independent_of_cell_workers() {
        // Cell workers cap at the cell count; the nested MC budget is
        // its own knob (default 0 = all cores) and passes through
        // unchanged — it is a pure speed knob, so no coercion is needed
        // for determinism.
        let report = run(&Probe, &EngineConfig::with_threads(4), &mut NullSink).unwrap();
        assert_eq!(report.workers, 4);
        assert_eq!(report.mc_threads, 0);
        let report = run(&Probe, &EngineConfig::with_threads(24), &mut NullSink).unwrap();
        assert_eq!(report.workers, 6);
        assert_eq!(report.mc_threads, 0);
        let cfg = EngineConfig {
            threads: 2,
            mc_threads: 3,
            plan_threads: 4,
        };
        let report = run(&Probe, &cfg, &mut NullSink).unwrap();
        assert_eq!(report.mc_threads, 3);
        assert_eq!(report.plan_threads, 4);
    }

    // The stage clock is `obs::span::timed`, which reports zero
    // nanoseconds when the observability layer is compiled out — so the
    // positive half of this assertion only holds with `observe` on.
    #[cfg(feature = "observe")]
    #[test]
    fn timed_accessors_fill_the_stage_report() {
        let report = run(&Probe, &EngineConfig::with_threads(1), &mut NullSink).unwrap();
        // Probe only generates instances: Generate accumulates, the
        // untouched stages stay exactly zero.
        assert!(report.stages.generate > 0.0);
        assert_eq!(report.stages.schedule, 0.0);
        assert_eq!(report.stages.plan, 0.0);
        assert_eq!(report.stages.evaluate, 0.0);
        assert!(report.stages.summary().starts_with("generate "));
    }

    /// A sink that fails on the nth row.
    struct FailingSink {
        rows_before_failure: usize,
        rows: usize,
    }

    impl RowSink for FailingSink {
        fn begin(&mut self, _header: &str) -> std::io::Result<()> {
            Ok(())
        }

        fn row(&mut self, _line: &str) -> std::io::Result<()> {
            if self.rows >= self.rows_before_failure {
                return Err(std::io::Error::other("disk full"));
            }
            self.rows += 1;
            Ok(())
        }

        fn finish(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn sink_error_aborts_the_run() {
        for threads in [1, 3] {
            let mut sink = FailingSink {
                rows_before_failure: 2,
                rows: 0,
            };
            let err = run(&Probe, &EngineConfig::with_threads(threads), &mut sink)
                .expect_err("sink failure must surface");
            let msg = err.to_string();
            assert!(msg.contains("disk full"), "threads={threads}: {msg}");
            // Fail-fast attribution: the error names the scenario and
            // the cell whose row could not be written.
            assert!(msg.contains("scenario probe"), "threads={threads}: {msg}");
            assert!(msg.contains("class=genome"), "threads={threads}: {msg}");
            assert!(msg.contains("procs="), "threads={threads}: {msg}");
        }
    }

    #[test]
    fn unwritable_sink_path_fails_with_scenario_attribution() {
        // A parent that is a regular *file*: `begin` can neither create
        // the directory chain nor the CSV (the sink normally mkdir -p's
        // missing parents, so a merely absent directory is writable).
        let blocker = std::env::temp_dir().join("ckpt_engine_unwritable_blocker");
        std::fs::write(&blocker, b"not a directory").unwrap();
        let path = blocker.join("out.csv");
        let mut sink = crate::engine::sink::CsvFileSink::new(&path);
        let err = run(&Probe, &EngineConfig::with_threads(1), &mut sink)
            .expect_err("unwritable path must surface");
        let msg = err.to_string();
        assert!(msg.contains("scenario probe"), "{msg}");
        assert!(msg.contains("writing header"), "{msg}");
    }
}
