//! Declarative grid specification: which cells an experiment visits, in
//! which canonical order, and with which derived seeds.

use ckpt_core::{Platform, Strategy};
use pegasus::ccr::ccr_grid;
use pegasus::WorkflowClass;

/// Processor-count axis of a [`Grid`].
#[derive(Clone, Debug)]
pub enum ProcAxis {
    /// All of the paper's per-size processor counts (the figure curves).
    Paper,
    /// One of the paper's per-size counts, by index (the accuracy and
    /// validation tables use index 1).
    PaperIndex(usize),
    /// Explicit counts, identical for every size.
    Explicit(Vec<usize>),
}

impl ProcAxis {
    fn resolve(&self, size: usize) -> Vec<usize> {
        match self {
            ProcAxis::Paper => Platform::paper_proc_counts(size).to_vec(),
            ProcAxis::PaperIndex(i) => vec![Platform::paper_proc_counts(size)[*i]],
            ProcAxis::Explicit(v) => v.clone(),
        }
    }
}

/// CCR axis of a [`Grid`].
#[derive(Clone, Debug)]
pub enum CcrAxis {
    /// The class's figure range, log-spaced (`points ≥ 2`).
    ClassLog { points: usize },
    /// The geometric midpoint of the class's figure range (one point).
    ClassMid,
    /// Explicit CCR values.
    Explicit(Vec<f64>),
}

impl CcrAxis {
    fn resolve(&self, class: WorkflowClass) -> Vec<f64> {
        match self {
            CcrAxis::ClassLog { points } => {
                let (lo, hi) = class.ccr_range();
                ccr_grid(lo, hi, *points)
            }
            CcrAxis::ClassMid => {
                let (lo, hi) = class.ccr_range();
                vec![(lo * hi).sqrt()]
            }
            CcrAxis::Explicit(v) => v.clone(),
        }
    }
}

/// Strategy axis of a [`Grid`].
#[derive(Clone, Debug)]
pub enum StrategyAxis {
    /// One cell covers the whole strategy comparison (the figures
    /// pattern: one row aggregates CkptSome / CkptAll / CkptNone).
    Combined,
    /// One cell per listed strategy (the accuracy-table pattern).
    Each(Vec<Strategy>),
}

/// A declarative experiment grid: the Cartesian product of its axes,
/// enumerated in canonical order
/// `class → size → procs → pfail → CCR → strategy`.
///
/// Every `(class, size)` lane derives its own seed stream from
/// `base_seed` via [`seedmix::derive`], so instance workflows are shared
/// by all cells of a lane (the engine's workflow cache keys on it) while
/// distinct lanes stay statistically independent.
#[derive(Clone, Debug)]
pub struct Grid {
    /// Workflow classes, outermost axis.
    pub classes: Vec<WorkflowClass>,
    /// Requested task counts.
    pub sizes: Vec<usize>,
    /// Processor counts per size.
    pub procs: ProcAxis,
    /// Per-task failure probabilities.
    pub pfails: Vec<f64>,
    /// Communication-to-computation ratios per class.
    pub ccrs: CcrAxis,
    /// Strategy handling.
    pub strategies: StrategyAxis,
    /// Workflow instances averaged (or enumerated) per cell.
    pub instances: usize,
    /// The single user-facing seed everything derives from.
    pub base_seed: u64,
}

/// One point of an experiment grid, with its derived seed and canonical
/// position.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Canonical position; the engine emits rows in this order.
    pub index: usize,
    /// Workflow class.
    pub class: WorkflowClass,
    /// Requested task count.
    pub size: usize,
    /// Processor count.
    pub procs: usize,
    /// Per-task failure probability.
    pub pfail: f64,
    /// Communication-to-computation ratio.
    pub ccr: f64,
    /// The cell's strategy, or `None` for combined-comparison cells.
    pub strategy: Option<Strategy>,
    /// Workflow instances this cell aggregates.
    pub instances: usize,
    /// Seed of the `(class, size)` lane; instance `i` lives on
    /// `seedmix::stream_seed(seed, i)`.
    pub seed: u64,
}

impl Grid {
    /// Enumerates the grid's cells in canonical order.
    pub fn cells(&self) -> Vec<Cell> {
        assert!(self.instances >= 1, "grids need at least one instance");
        let mut cells = Vec::new();
        for &class in &self.classes {
            let ccrs = self.ccrs.resolve(class);
            for &size in &self.sizes {
                let seed = seedmix::derive(self.base_seed, &[class as u64, size as u64]);
                for procs in self.procs.resolve(size) {
                    for &pfail in &self.pfails {
                        for &ccr in &ccrs {
                            let strategies: Vec<Option<Strategy>> = match &self.strategies {
                                StrategyAxis::Combined => vec![None],
                                StrategyAxis::Each(list) => {
                                    list.iter().copied().map(Some).collect()
                                }
                            };
                            for strategy in strategies {
                                cells.push(Cell {
                                    index: cells.len(),
                                    class,
                                    size,
                                    procs,
                                    pfail,
                                    ccr,
                                    strategy,
                                    instances: self.instances,
                                    seed,
                                });
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Grid {
        Grid {
            classes: vec![WorkflowClass::Genome, WorkflowClass::Ligo],
            sizes: vec![50, 300],
            procs: ProcAxis::Paper,
            pfails: vec![0.01, 0.001],
            ccrs: CcrAxis::ClassLog { points: 3 },
            strategies: StrategyAxis::Combined,
            instances: 2,
            base_seed: 42,
        }
    }

    #[test]
    fn cell_count_is_cartesian() {
        // 2 classes × 2 sizes × 4 procs × 2 pfails × 3 CCRs × 1 (combined).
        assert_eq!(tiny().cells().len(), 2 * 2 * 4 * 2 * 3);
    }

    #[test]
    fn indices_are_canonical_positions() {
        for (i, c) in tiny().cells().iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn lanes_share_seeds_and_differ_across_lanes() {
        let cells = tiny().cells();
        let seed_of = |class, size| {
            cells
                .iter()
                .find(|c| c.class == class && c.size == size)
                .unwrap()
                .seed
        };
        // All cells of one (class, size) lane share the seed…
        for c in &cells {
            assert_eq!(c.seed, seed_of(c.class, c.size));
        }
        // …and the four lanes are pairwise distinct.
        let mut lanes: Vec<u64> = cells.iter().map(|c| c.seed).collect();
        lanes.sort_unstable();
        lanes.dedup();
        assert_eq!(lanes.len(), 4);
    }

    #[test]
    fn strategy_axis_expands_cells() {
        let mut g = tiny();
        g.strategies = StrategyAxis::Each(vec![Strategy::CkptAll, Strategy::CkptSome]);
        let cells = g.cells();
        assert_eq!(cells.len(), 2 * 2 * 4 * 2 * 3 * 2);
        assert_eq!(cells[0].strategy, Some(Strategy::CkptAll));
        assert_eq!(cells[1].strategy, Some(Strategy::CkptSome));
    }

    #[test]
    fn class_mid_is_geometric_midpoint() {
        let mut g = tiny();
        g.ccrs = CcrAxis::ClassMid;
        let c = &g.cells()[0];
        let (lo, hi) = c.class.ccr_range();
        assert!((c.ccr - (lo * hi).sqrt()).abs() < 1e-12);
    }
}
