//! Work-queue thread pool with in-order emission.
//!
//! Cells of a grid vary wildly in cost (a 1000-task Ligo cell is ~100×
//! a 50-task Genome cell), so static partitioning would idle most
//! workers; instead workers claim the next unclaimed index from a shared
//! atomic counter. Results flow back over a channel and are re-sequenced
//! by a small reorder buffer, so the consumer always observes canonical
//! grid order no matter which worker finished first.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

/// Runs `run(0..n)` on `threads` scoped workers, invoking `emit(i, out)`
/// strictly in index order. `emit` returning `false` aborts the run:
/// workers stop claiming new indices and in-flight results are
/// discarded — this is how a sink error cancels the rest of an
/// expensive grid instead of burning it to completion.
///
/// `threads <= 1` degenerates to a plain serial loop (no queue, no
/// channel), which is also the reference order the parallel path must
/// reproduce byte-for-byte.
pub fn ordered_parallel<T, F, E>(n: usize, threads: usize, run: F, mut emit: E)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    E: FnMut(usize, T) -> bool,
{
    if threads <= 1 || n <= 1 {
        for i in 0..n {
            if !emit(i, run(i)) {
                return;
            }
        }
        return;
    }
    let threads = threads.min(n);
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let (next, stop) = (&next, &stop);
            let run = &run;
            scope.spawn(move || loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // A send error means the receiver is gone (consumer
                // panicked); stop producing.
                if tx.send((i, run(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut pending: BTreeMap<usize, T> = BTreeMap::new();
        let mut next_emit = 0usize;
        // High-water mark of the reorder buffer: how far completion
        // order ran ahead of canonical order. A persistently deep
        // buffer means one slow cell is damming many finished ones
        // (results held in memory, not lost).
        let depth_gauge = obs::metrics::gauge("ckpt_pool_reorder_depth_peak");
        for (i, out) in rx {
            if stop.load(Ordering::Relaxed) {
                continue; // draining after an abort
            }
            pending.insert(i, out);
            depth_gauge.set_max(pending.len() as u64);
            while let Some(out) = pending.remove(&next_emit) {
                if !emit(next_emit, out) {
                    stop.store(true, Ordering::Relaxed);
                    pending.clear();
                    break;
                }
                next_emit += 1;
            }
        }
        // If a worker panicked, the scope re-raises its panic after the
        // channel drains; otherwise every index was emitted or the
        // consumer aborted.
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_all_indices_in_order() {
        for threads in [1, 2, 3, 8] {
            let mut seen = Vec::new();
            ordered_parallel(
                37,
                threads,
                |i| i * i,
                |i, v| {
                    seen.push((i, v));
                    true
                },
            );
            assert_eq!(seen.len(), 37, "threads={threads}");
            for (i, (idx, v)) in seen.iter().enumerate() {
                assert_eq!(*idx, i);
                assert_eq!(*v, i * i);
            }
        }
    }

    #[test]
    fn unbalanced_work_still_emits_in_order() {
        // Make early indices the slowest so completion order inverts
        // emission order.
        let mut seen = Vec::new();
        ordered_parallel(
            12,
            4,
            |i| {
                std::thread::sleep(std::time::Duration::from_millis(
                    (12 - i as u64).saturating_mul(3),
                ));
                i
            },
            |_, v| {
                seen.push(v);
                true
            },
        );
        assert_eq!(seen, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn zero_items_is_a_no_op() {
        let mut calls = 0;
        ordered_parallel(
            0,
            4,
            |i| i,
            |_, _| {
                calls += 1;
                true
            },
        );
        assert_eq!(calls, 0);
    }

    #[test]
    fn consumer_abort_stops_dispatch() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for threads in [1, 3] {
            let ran = AtomicUsize::new(0);
            let mut emitted = Vec::new();
            ordered_parallel(
                1000,
                threads,
                |i| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    // Slow enough that the consumer's abort lands while
                    // workers are still mid-queue.
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    i
                },
                |_, v| {
                    emitted.push(v);
                    v < 4 // abort after emitting index 4
                },
            );
            assert_eq!(emitted, vec![0, 1, 2, 3, 4], "threads={threads}");
            // Workers must stop claiming work shortly after the abort
            // rather than running all 1000 items.
            assert!(
                ran.load(Ordering::Relaxed) < 500,
                "threads={threads}: ran {}",
                ran.load(Ordering::Relaxed)
            );
        }
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panic_propagates() {
        ordered_parallel(
            8,
            2,
            |i| {
                if i == 5 {
                    panic!("worker boom");
                }
                i
            },
            |_, _| true,
        );
    }
}
