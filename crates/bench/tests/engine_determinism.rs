//! The engine's core guarantee (ISSUE 2 acceptance bar, extended by
//! ISSUE 6): for a fixed scenario and base seed, the emitted CSV is
//! **byte-identical for every `threads` and `mc_threads` value** —
//! cells may execute in any order on any worker, seeds derive from
//! grid coordinates, rows are re-sequenced into canonical order before
//! they reach the sink, and every nested Monte Carlo estimate is a
//! pure function of `(seed, runs)` regardless of its thread budget.

use ckpt_bench::engine::{self, EngineConfig, NullSink, Scenario, StringSink};
use ckpt_bench::scenarios::{
    DistModel, DistributionsScenario, DriftScenario, FigureScenario, PolicyChoice,
    StrategiesScenario, ValidateScenario,
};
use pegasus::WorkflowClass;

fn csv<S: Scenario>(scenario: &S, threads: usize) -> String {
    let mut sink = StringSink::new();
    engine::run(scenario, &EngineConfig::with_threads(threads), &mut sink).unwrap();
    sink.csv
}

fn mini_figures() -> FigureScenario {
    FigureScenario {
        class: WorkflowClass::Montage,
        sizes: vec![50],
        ccr_points: 3,
        instances: 2,
        base_seed: 42,
    }
}

#[test]
fn parallel_figure_grid_is_byte_identical_to_serial() {
    let scenario = mini_figures();
    let serial = csv(&scenario, 1);
    // 1 size × 4 procs × 3 pfails × 3 CCRs = 36 cells, plus the header.
    assert_eq!(serial.lines().count(), 37);
    for threads in [2, 4, 8] {
        assert_eq!(serial, csv(&scenario, threads), "threads={threads}");
    }
    // And stable across repeated runs of the same configuration.
    assert_eq!(serial, csv(&scenario, 1));
}

#[test]
fn parallel_validation_with_nested_mc_is_byte_identical_to_serial() {
    // The validation scenario nests Monte Carlo simulation inside each
    // cell; each replication draws from its own derived stream and the
    // results reduce in canonical run-index order, so the simulated
    // estimates are identical across cell-worker counts — including
    // budgets larger than the 9-cell grid.
    let scenario = ValidateScenario {
        runs: 60,
        sizes: vec![50],
        base_seed: 7,
    };
    let serial = csv(&scenario, 1);
    for threads in [2, 4, 16] {
        assert_eq!(serial, csv(&scenario, threads), "threads={threads}");
    }
}

#[test]
fn parallel_distributions_grid_is_byte_identical_to_serial() {
    // The E9 failure-distribution scenario nests both segment and
    // CkptNone Monte Carlo inside each cell and repeats the base grid
    // once per model block; its CSV must hold the engine's byte-identity
    // guarantee for any thread count, including budgets beyond the cell
    // count.
    let scenario = DistributionsScenario {
        models: vec![DistModel::Exponential, DistModel::Weibull { shape: 0.7 }],
        sizes: vec![50],
        pfails: vec![0.001],
        runs: 30,
        base_seed: 11,
    };
    let serial = csv(&scenario, 1);
    // 2 models × 3 classes × 1 size × 1 pfail cells, 4 strategies each,
    // plus the header.
    assert_eq!(serial.lines().count(), 2 * 3 * 4 + 1);
    for threads in [2, 8] {
        assert_eq!(serial, csv(&scenario, threads), "threads={threads}");
    }
}

#[test]
fn parallel_strategies_grid_is_byte_identical_to_serial() {
    // The E10 checkpoint-policy scenario repeats the base grid once per
    // (policy, model) block and nests a segment simulation in every
    // cell; its CSV must hold the engine's byte-identity guarantee for
    // any thread count, including budgets beyond the cell count.
    let scenario = StrategiesScenario {
        policies: vec![
            PolicyChoice::DpOptimal,
            PolicyChoice::Daly,
            PolicyChoice::Risk { max_risk: 0.1 },
            PolicyChoice::Crossover,
        ],
        models: vec![DistModel::Exponential, DistModel::Weibull { shape: 2.0 }],
        classes: vec![WorkflowClass::Genome, WorkflowClass::Montage],
        sizes: vec![50],
        pfails: vec![0.01],
        runs: 30,
        base_seed: 21,
    };
    let serial = csv(&scenario, 1);
    // 4 policies × 2 models × 2 classes × 1 size × 1 pfail cells, one
    // row each, plus the header.
    assert_eq!(serial.lines().count(), 4 * 2 * 2 + 1);
    for threads in [2, 8, 32] {
        assert_eq!(serial, csv(&scenario, threads), "threads={threads}");
    }
}

#[test]
fn csv_is_byte_identical_across_mc_thread_budgets() {
    // ISSUE 6 acceptance bar: `mc_threads` is a pure speed knob. The
    // nested Monte Carlo partitions its replications differently under
    // each budget, but per-replication streams and canonical-order
    // reduction make every estimate — and therefore the CSV — a pure
    // function of `(seed, runs)`.
    let scenario = ValidateScenario {
        runs: 60,
        sizes: vec![50],
        base_seed: 7,
    };
    let csv_at = |mc_threads: usize| {
        let mut sink = StringSink::new();
        let cfg = EngineConfig {
            threads: 2,
            mc_threads,
            plan_threads: 1,
        };
        engine::run(&scenario, &cfg, &mut sink).unwrap();
        sink.csv
    };
    let baseline = csv_at(1);
    for mc_threads in [4, 0] {
        assert_eq!(baseline, csv_at(mc_threads), "mc_threads={mc_threads}");
    }
}

#[test]
fn csv_is_byte_identical_across_plan_thread_budgets() {
    // ISSUE 7 acceptance bar: `plan_threads` is a pure speed knob.
    // Parallel per-superchain placement claims superchains from an
    // atomic counter, but each placement is a pure function of its own
    // superchain and results land in canonical slots, so the plan — and
    // therefore the CSV — is bit-identical for every budget. The figure
    // scenario exercises all three strategies (CkptSome runs the DP per
    // superchain) on multi-superchain Montage schedules.
    let scenario = mini_figures();
    let csv_at = |plan_threads: usize| {
        let mut sink = StringSink::new();
        let cfg = EngineConfig {
            threads: 2,
            mc_threads: 0,
            plan_threads,
        };
        engine::run(&scenario, &cfg, &mut sink).unwrap();
        sink.csv
    };
    let baseline = csv_at(1);
    for plan_threads in [4, 0] {
        assert_eq!(
            baseline,
            csv_at(plan_threads),
            "plan_threads={plan_threads}"
        );
    }
}

#[test]
fn parallel_drift_sweep_is_byte_identical_to_serial() {
    // The E12 scenario is stateful *within* a cell (each cell's session
    // commits a drift ladder step by step) but cells are independent:
    // every cell owns a fresh session and store, so the engine's
    // byte-identity guarantee must hold for any worker count. The cold
    // self-check stays on — this doubles as the invalidation soundness
    // harness under parallel execution.
    let scenario = DriftScenario {
        classes: vec![pegasus::WorkflowClass::Genome, WorkflowClass::Montage],
        sizes: vec![50],
        pfail: 1e-3,
        self_check: true,
        base_seed: 29,
    };
    let serial = csv(&scenario, 1);
    // 2 classes × 1 size cells, 9 ladder steps each, plus the header.
    assert_eq!(serial.lines().count(), 2 * 9 + 1);
    for threads in [2, 8] {
        assert_eq!(serial, csv(&scenario, threads), "threads={threads}");
    }
}

#[test]
fn rows_follow_canonical_cell_order() {
    let scenario = mini_figures();
    let cells = scenario.cells();
    let report = engine::run(&scenario, &EngineConfig::with_threads(4), &mut NullSink).unwrap();
    assert_eq!(report.rows.len(), cells.len());
    for (cell, row) in cells.iter().zip(&report.rows) {
        assert_eq!(cell.size, row.size);
        assert_eq!(cell.procs, row.procs);
        assert_eq!(cell.pfail.to_bits(), row.pfail.to_bits());
        assert_eq!(cell.ccr.to_bits(), row.ccr.to_bits());
    }
}

#[test]
fn workflow_cache_shares_instances_across_the_grid() {
    let scenario = mini_figures();
    let report = engine::run(&scenario, &EngineConfig::with_threads(2), &mut NullSink).unwrap();
    // 1 size × 2 instances distinct workflows for 36 cells × 2 lookups.
    assert_eq!(report.cache.workflow_misses, 2);
    assert!(report.cache.workflow_hits >= 70, "{:?}", report.cache);
    // Schedules: 4 proc counts × 2 instances distinct, reused across
    // 3 pfails × 3 CCRs.
    assert_eq!(report.cache.schedule_misses, 8);
    assert_eq!(report.cache.schedule_hits, 64);
}

#[test]
fn figure_grid_wrapper_matches_explicit_engine_run() {
    let rows = ckpt_bench::figure_grid(WorkflowClass::Ligo, 2, 1, 11);
    let scenario = FigureScenario::paper(WorkflowClass::Ligo, 2, 1, 11);
    let report = engine::run(&scenario, &EngineConfig::with_threads(1), &mut NullSink).unwrap();
    assert_eq!(rows.len(), report.rows.len());
    for (a, b) in rows.iter().zip(&report.rows) {
        assert_eq!(ckpt_bench::figure_csv(a), ckpt_bench::figure_csv(b));
    }
}
