//! Smoke tests for the experiment harness: tiny grids must run, emit
//! well-formed CSV, and cover the extension class.

use ckpt_bench::{figure_cell, figure_csv, figure_grid, write_csv, FIGURE_HEADER};
use pegasus::WorkflowClass;

#[test]
fn tiny_grid_covers_all_dimensions() {
    let rows = figure_grid(WorkflowClass::Ligo, 2, 1, 7);
    // 3 sizes × 4 proc counts × 3 pfails × 2 CCR points.
    assert_eq!(rows.len(), 3 * 4 * 3 * 2);
    // Every row has positive makespans and consistent ratios.
    for r in &rows {
        assert!(r.em_some > 0.0 && r.em_all > 0.0 && r.em_none > 0.0);
        assert!((r.rel_all - r.em_all / r.em_some).abs() < 1e-9);
        assert!((r.rel_none - r.em_none / r.em_some).abs() < 1e-9);
    }
}

#[test]
fn cybershake_extension_runs_through_harness() {
    let r = figure_cell(WorkflowClass::Cybershake, 50, 5, 0.001, 0.1, 1, 3);
    assert!(r.em_some > 0.0);
    assert!(r.rel_all >= 0.97);
    assert_eq!(r.class, WorkflowClass::Cybershake);
}

#[test]
fn csv_writer_roundtrip() {
    let dir = std::env::temp_dir().join("ckpt_bench_smoke");
    let path = dir.join("probe.csv");
    let r = figure_cell(WorkflowClass::Genome, 50, 3, 0.001, 1e-3, 1, 1);
    write_csv(&path, FIGURE_HEADER, &[figure_csv(&r)]).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some(FIGURE_HEADER));
    let data = lines.next().unwrap();
    assert_eq!(data.split(',').count(), FIGURE_HEADER.split(',').count());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn instances_average_smooths_determinism() {
    let a = figure_cell(WorkflowClass::Montage, 50, 5, 0.001, 0.1, 2, 11);
    let b = figure_cell(WorkflowClass::Montage, 50, 5, 0.001, 0.1, 2, 11);
    assert_eq!(a.em_some, b.em_some, "averaged cells are deterministic");
}
