//! Observability no-perturbation suite for the scenario engine (ISSUE
//! 10 acceptance bar): running a grid with the span recorder **armed**
//! must emit the exact same CSV bytes as running it untraced, while
//! producing a complete, schema-valid span tree — one grid root, one
//! `cell` span per cell attached under it, engine stage spans nested
//! inside the cells. Gated on `observe` (a default feature; a
//! `--no-default-features` build compiles the layer out entirely).

#![cfg(feature = "observe")]

use std::sync::Mutex;

use ckpt_bench::engine::{self, EngineConfig, Scenario, StringSink};
use ckpt_bench::scenarios::{DriftScenario, FigureScenario};
use obs::span::SpanRecord;
use pegasus::WorkflowClass;

/// The span recorder is process-global; trace tests must not overlap.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn csv<S: Scenario>(scenario: &S, threads: usize) -> String {
    let mut sink = StringSink::new();
    engine::run(scenario, &EngineConfig::with_threads(threads), &mut sink).unwrap();
    sink.csv
}

fn traced_csv<S: Scenario>(scenario: &S, threads: usize) -> (String, Vec<SpanRecord>) {
    obs::span::arm();
    let out = csv(scenario, threads);
    obs::span::disarm();
    (out, obs::span::drain())
}

fn mini_figures() -> FigureScenario {
    FigureScenario {
        class: WorkflowClass::Montage,
        sizes: vec![50],
        ccr_points: 3,
        instances: 1,
        base_seed: 42,
    }
}

#[test]
fn traced_figure_grid_is_byte_identical_and_fully_spanned() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let scenario = mini_figures();
    let n_cells = scenario.cells().len();
    let quiet = csv(&scenario, 2);
    let (traced, spans) = traced_csv(&scenario, 2);
    assert_eq!(quiet, traced, "tracing changed the CSV bytes");

    let grid: Vec<&SpanRecord> = spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(1, grid.len(), "exactly one grid root span");
    assert_eq!(scenario.name(), grid[0].name);
    let cells: Vec<&SpanRecord> = spans.iter().filter(|s| s.name == "cell").collect();
    assert_eq!(n_cells, cells.len(), "one `cell` span per grid cell");
    let mut ords: Vec<u64> = cells
        .iter()
        .map(|c| {
            assert_eq!(Some(grid[0].id), c.parent, "cells attach under the grid");
            c.ord.expect("cell spans carry the cell index")
        })
        .collect();
    ords.sort_unstable();
    assert_eq!((0..n_cells as u64).collect::<Vec<_>>(), ords);
    // Engine stage spans nest inside cells, and every line is wire-valid.
    assert!(spans.iter().any(|s| s.name == "engine.generate"));
    for span in &spans {
        let line = obs::jsonl::to_line(span);
        obs::jsonl::validate_line(&line)
            .unwrap_or_else(|e| panic!("span {} failed schema: {e}\n{line}", span.id));
    }
}

#[test]
fn traced_drift_sweep_is_byte_identical_with_service_spans() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // The drift scenario runs full `ckpt_service` sessions inside each
    // cell — this is the cross-layer path (engine spans + service
    // resolve/stage spans in one trace). Self-check off: the traced and
    // untraced runs must already be byte-identical on their own.
    let scenario = DriftScenario {
        self_check: false,
        ..DriftScenario::standard(vec![50], 42)
    };
    let quiet = csv(&scenario, 2);
    let (traced, spans) = traced_csv(&scenario, 2);
    assert_eq!(quiet, traced, "tracing changed the drift CSV bytes");
    for name in ["cell", "query", "resolve.curve", "stage.curve"] {
        assert!(
            spans.iter().any(|s| s.name == name),
            "no `{name}` span in the drift trace"
        );
    }
}

#[test]
fn repeated_traced_runs_produce_the_same_canonical_tree() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let scenario = mini_figures();
    let (_, first) = traced_csv(&scenario, 1);
    let (_, second) = traced_csv(&scenario, 4);
    assert_eq!(
        obs::jsonl::canonicalize(&first),
        obs::jsonl::canonicalize(&second),
        "canonical engine trace diverged across thread budgets"
    );
}
