//! Trace-determinism suite for the observability layer (DESIGN.md §12).
//! Only compiled with the `observe` feature:
//!
//! ```text
//! cargo test -p ckpt_service --features observe --test trace
//! ```
//!
//! The contract:
//!
//! * **Same tree for every budget** — one seed and query batch produce
//!   the *same canonical span tree* for thread budgets 1, 2 and 7.
//!   Executed/cached attribution is scheduling-dependent (the store
//!   decides *who* computes, never *what*), so the canonicalizer folds
//!   both into `resolved`; everything else — structure, names, keys,
//!   ords, failures — must match byte for byte.
//! * **Same work for every budget** — the multiset of `(name, key)`
//!   pairs that actually *executed* is also budget-invariant: each
//!   missing artifact is computed exactly once no matter how workers
//!   interleave.
//! * **Schema round-trip** — every recorded span serializes to a JSONL
//!   line that passes the wire-schema validator.
//! * **No perturbation** — answers with the recorder armed are
//!   bit-identical to answers without it.

#![cfg(feature = "observe")]

use std::sync::Mutex;

use ckpt_service::{
    Answer, Inputs, McSpec, ModelSpec, PolicySpec, Session, WhatIf, WorkflowSource,
};
use obs::span::{SpanOutcome, SpanRecord};
use pegasus::WorkflowClass;

/// The span recorder is process-global; trace tests must not overlap.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn trace_inputs() -> Inputs {
    let mut inputs = Inputs::basic(
        WorkflowSource::Generated {
            class: WorkflowClass::Montage,
            size: 60,
            seed: 11,
            ccr: Some(0.05),
        },
        8,
        1e8,
        ModelSpec::Exponential { pfail: 1e-3 },
    );
    inputs.mc = Some(McSpec { runs: 60, seed: 5 });
    inputs
}

/// A batch touching every stage: λ drifts (with repeats, so the store
/// serves cached resolutions), a policy swap, a rescale, and a no-op.
fn trace_queries() -> Vec<WhatIf> {
    vec![
        WhatIf::Nop,
        WhatIf::SetPfail(2e-3),
        WhatIf::SetPolicy(PolicySpec::CkptAll),
        WhatIf::SetProcs(12),
        WhatIf::SetPfail(2e-3),
        WhatIf::SetPfail(3e-3),
        WhatIf::SetBandwidth(2e8),
        WhatIf::Nop,
    ]
}

/// Runs the batch on a fresh session/store and returns the drained
/// spans plus the answers.
fn traced_batch(threads: usize) -> (Vec<SpanRecord>, Vec<Answer>) {
    let queries = trace_queries();
    obs::span::arm();
    let session = Session::new(trace_inputs());
    let results = session.try_query_batch(&queries, threads);
    obs::span::disarm();
    let spans = obs::span::drain();
    let answers = results
        .into_iter()
        .map(|r| r.expect("fault-free query must succeed"))
        .collect();
    (spans, answers)
}

/// The budget-invariant view of *what executed*: every `(name, key)`
/// whose resolution span ran the stage function, as a sorted multiset.
fn executed_multiset(spans: &[SpanRecord]) -> Vec<(&'static str, Option<u64>)> {
    let mut out: Vec<_> = spans
        .iter()
        .filter(|s| s.outcome == SpanOutcome::Executed)
        .map(|s| (s.name, s.key))
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn span_trees_are_identical_across_thread_budgets() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (spans1, answers1) = traced_batch(1);
    let canon1 = obs::jsonl::canonicalize(&spans1);
    let executed1 = executed_multiset(&spans1);
    // The serial trace has one root per query, in batch order.
    let roots: Vec<u64> = spans1
        .iter()
        .filter(|s| s.parent.is_none())
        .map(|s| (s.name, s.ord))
        .map(|(name, ord)| {
            assert_eq!("query", name);
            ord.expect("batch roots carry their query index")
        })
        .collect();
    assert_eq!((0..trace_queries().len() as u64).collect::<Vec<_>>(), roots);
    for threads in [2usize, 7] {
        let (spans, answers) = traced_batch(threads);
        assert_eq!(
            canon1,
            obs::jsonl::canonicalize(&spans),
            "threads={threads}: canonical span tree diverged"
        );
        assert_eq!(
            executed1,
            executed_multiset(&spans),
            "threads={threads}: executed (name, key) multiset diverged"
        );
        for (i, (a, b)) in answers1.iter().zip(&answers).enumerate() {
            assert_eq!(
                a.expected_makespan.to_bits(),
                b.expected_makespan.to_bits(),
                "threads={threads} q{i}"
            );
        }
    }
}

#[test]
fn every_recorded_span_passes_the_wire_schema() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (spans, _) = traced_batch(2);
    assert!(!spans.is_empty());
    for span in &spans {
        let line = obs::jsonl::to_line(span);
        obs::jsonl::validate_line(&line)
            .unwrap_or_else(|e| panic!("span {} failed schema: {e}\n{line}", span.id));
    }
    // The batch exercised every span family the service emits.
    for name in ["query", "resolve.curve", "stage.curve", "mc.reduce"] {
        assert!(
            spans.iter().any(|s| s.name == name),
            "no `{name}` span in the batch trace"
        );
    }
}

#[test]
fn arming_the_recorder_does_not_bend_answers() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let queries = trace_queries();
    // Untraced reference on a fresh session.
    let quiet: Vec<Answer> = Session::new(trace_inputs())
        .try_query_batch(&queries, 2)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    let (_, traced) = traced_batch(2);
    for (i, (a, b)) in quiet.iter().zip(&traced).enumerate() {
        assert_eq!(
            a.expected_makespan.to_bits(),
            b.expected_makespan.to_bits(),
            "q{i}: expected_makespan"
        );
        assert_eq!(a.ckpt_bytes.to_bits(), b.ckpt_bytes.to_bits(), "q{i}");
        assert_eq!(a.w_par.to_bits(), b.w_par.to_bits(), "q{i}");
        match (&a.mc, &b.mc) {
            (Some(x), Some(y)) => {
                assert_eq!(x.mean_makespan.to_bits(), y.mean_makespan.to_bits(), "q{i}")
            }
            (None, None) => {}
            _ => panic!("q{i}: MC presence mismatch"),
        }
    }
}
