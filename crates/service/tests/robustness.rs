//! Recovery tests for the serving path — no fault injection feature
//! required. Three properties:
//!
//! 1. **Memo abandonment**: a computing worker that dies never strands
//!    its waiters — one of them takes over and everybody gets the
//!    correct value in bounded time (thread budgets 2 and 7).
//! 2. **Invalid inputs are inert**: malformed what-if parameters are
//!    rejected with typed [`PlanError::InvalidInput`]s *before* any
//!    stage runs, and the session's next valid answer is byte-identical
//!    to a fresh cold session's.
//! 3. **Deadline degradation**: an expired per-query deadline during
//!    Monte Carlo yields the exact analytic answer flagged `degraded`,
//!    not an error and not a corrupted estimate.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use ckpt_core::StageId;
use ckpt_service::{
    Answer, ErrorKind, Inputs, McSpec, Memo, ModelSpec, PlanError, PolicySpec, Session, WhatIf,
    WorkflowSource, MAX_ATTEMPTS,
};
use pegasus::WorkflowClass;

fn montage_inputs(pfail: f64) -> Inputs {
    Inputs::basic(
        WorkflowSource::Generated {
            class: WorkflowClass::Montage,
            size: 60,
            seed: 11,
            ccr: Some(0.05),
        },
        8,
        1e8,
        ModelSpec::Exponential { pfail },
    )
}

fn assert_same(a: &Answer, b: &Answer) {
    assert_eq!(a.policy, b.policy);
    assert_eq!(a.expected_makespan.to_bits(), b.expected_makespan.to_bits());
    assert_eq!(a.n_checkpoints, b.n_checkpoints);
    assert_eq!(a.n_segments, b.n_segments);
    assert_eq!(a.ckpt_files, b.ckpt_files);
    assert_eq!(a.ckpt_bytes.to_bits(), b.ckpt_bytes.to_bits());
    assert_eq!(a.w_par.to_bits(), b.w_par.to_bits());
    assert_eq!(a.degraded, b.degraded);
    match (&a.mc, &b.mc) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.mean_makespan.to_bits(), y.mean_makespan.to_bits());
            assert_eq!(x.stderr.to_bits(), y.stderr.to_bits());
            assert_eq!(x.runs, y.runs);
        }
        _ => panic!("MC presence mismatch"),
    }
}

/// Regression for the abandoned-slot hang: the *first* worker to claim
/// a memo slot panics mid-compute while the other workers are already
/// parked on it. A waiter must take over with its own closure and every
/// thread must receive the correct value — quickly, not after some
/// timeout-driven crawl.
#[test]
fn waiters_survive_a_dying_first_worker() {
    for threads in [2usize, 7] {
        let memo: Memo<u64> = Memo::new();
        let attempts = AtomicUsize::new(0);
        let start = Instant::now();
        let values = seedmix::parallel_slots(threads, threads, |_| {
            memo.get_or_try_compute(42, StageId::Placement, || {
                // Exactly the first attempt dies; whoever retries
                // (the original claimant or a parked waiter) succeeds.
                if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("first worker dies mid-compute");
                }
                Ok(7u64)
            })
        });
        assert!(
            values.iter().all(|v| matches!(v.as_deref(), Ok(&7))),
            "threads={threads}: some worker saw a wrong or missing value"
        );
        // "Bounded time" with a generous CI margin: recovery is driven
        // by takeover + notification, not by waiting out long timeouts.
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "threads={threads}: recovery took {:?}",
            start.elapsed()
        );
        assert!(attempts.load(Ordering::SeqCst) >= 2);
    }
}

/// A closure that *always* dies turns terminally `Failed` after
/// [`MAX_ATTEMPTS`], every concurrent worker gets the typed error, and
/// the memo self-heals: the next compute with a working closure
/// succeeds on a fresh slot.
#[test]
fn persistent_failure_is_typed_and_self_healing() {
    for threads in [2usize, 7] {
        let memo: Memo<u64> = Memo::new();
        let attempts = AtomicUsize::new(0);
        let results = seedmix::parallel_slots(threads, threads, |_| {
            memo.get_or_try_compute(9, StageId::Curve, || {
                attempts.fetch_add(1, Ordering::SeqCst);
                panic!("always dies");
            })
        });
        for r in &results {
            match r {
                Err(PlanError::StageFailed {
                    stage, attempts, ..
                }) => {
                    assert_eq!(*stage, StageId::Curve);
                    assert_eq!(*attempts, MAX_ATTEMPTS);
                }
                other => panic!("threads={threads}: expected StageFailed, got {other:?}"),
            }
        }
        // Parked waiters share the claimant's MAX_ATTEMPTS; a worker
        // arriving *after* the failed key self-healed away starts a
        // fresh slot and burns its own attempts — so the global count
        // is at least one bound's worth, at most one per worker.
        let total = attempts.load(Ordering::SeqCst);
        assert!(total >= MAX_ATTEMPTS as usize);
        assert!(total <= MAX_ATTEMPTS as usize * threads);
        // Self-healing: the failed key was removed, so a later query
        // recomputes instead of inheriting the corpse.
        let v = memo
            .get_or_try_compute(9, StageId::Curve, || Ok(5u64))
            .unwrap();
        assert_eq!(*v, 5);
    }
}

#[test]
fn invalid_whatifs_return_typed_errors_and_leave_the_session_exact() {
    let session = Session::new(montage_inputs(1e-3));
    session.baseline();

    let field = |r: Result<Answer, PlanError>| match r {
        Err(PlanError::InvalidInput { field, .. }) => field,
        other => panic!("expected InvalidInput, got {other:?}"),
    };
    assert_eq!(
        field(session.try_query(&WhatIf::SetPfail(f64::NAN))),
        "pfail"
    );
    assert_eq!(field(session.try_query(&WhatIf::SetPfail(1.5))), "pfail");
    assert_eq!(field(session.try_query(&WhatIf::SetProcs(0))), "procs");
    assert_eq!(
        field(session.try_query(&WhatIf::SetBandwidth(-1.0))),
        "bandwidth"
    );
    assert_eq!(
        field(session.try_query(&WhatIf::SetPolicy(PolicySpec::Risk { max_risk: 1.5 }))),
        "max_risk"
    );
    assert_eq!(
        field(session.try_query(&WhatIf::SetTaskWeight {
            task: 0,
            weight: -3.0
        })),
        "weight"
    );
    assert_eq!(
        field(session.try_query(&WhatIf::SetTaskWeight {
            task: usize::MAX,
            weight: 1.0
        })),
        "task"
    );

    // After the barrage, a valid query answers byte-identically to a
    // fresh cold session: nothing was poisoned.
    let warm = session.try_query(&WhatIf::SetPfail(2e-3)).unwrap();
    let cold = Session::new(montage_inputs(2e-3)).try_baseline().unwrap();
    assert_same(&warm, &cold);
}

#[test]
fn failed_apply_leaves_current_inputs_untouched() {
    let mut session = Session::new(montage_inputs(1e-3));
    let before = session.baseline();
    assert!(matches!(
        session.try_apply(&WhatIf::SetProcs(0)),
        Err(PlanError::InvalidInput { field: "procs", .. })
    ));
    assert!(matches!(
        session.try_apply(&WhatIf::SetPfail(2.0)),
        Err(PlanError::InvalidInput { field: "pfail", .. })
    ));
    assert_same(&before, &session.baseline());
}

#[test]
fn batch_queries_fail_independently() {
    let session = Session::new(montage_inputs(1e-3));
    let queries = [
        WhatIf::SetPfail(2e-3),
        WhatIf::SetProcs(0),
        WhatIf::SetPfail(3e-3),
    ];
    for threads in [1usize, 2, 7] {
        let results = session.try_query_batch(&queries, threads);
        assert!(results[0].is_ok(), "threads={threads}");
        assert!(
            matches!(
                &results[1],
                Err(PlanError::InvalidInput { field: "procs", .. })
            ),
            "threads={threads}"
        );
        assert!(results[2].is_ok(), "threads={threads}");
    }
}

/// An expired deadline during Monte Carlo degrades gracefully: the
/// analytic fields are exact (byte-identical to an undeadlined session
/// without MC), `mc` is `None`, and the answer is flagged. Once the
/// deadline is lifted the same session serves the full answer.
#[test]
fn deadline_degrades_monte_carlo_to_the_exact_analytic_answer() {
    let mut inputs = montage_inputs(1e-3);
    // Enough replications that the simulation cannot finish inside the
    // deadline (seconds of work), while the analytic pipeline
    // (milliseconds on this workflow) comfortably does.
    inputs.mc = Some(McSpec {
        runs: 2_000_000,
        seed: 17,
    });
    let mut session = Session::new(inputs.clone());
    session.deadline = Some(Duration::from_millis(100));
    let start = Instant::now();
    let degraded = session.try_baseline().unwrap();
    // No hang: the abort predicate is polled per replication.
    assert!(start.elapsed() < Duration::from_secs(30));
    assert!(degraded.degraded);
    assert!(degraded.mc.is_none());
    // The tracker records *how* the MC stage died: one cancelled
    // resolution on its first attempt, nothing else failed.
    assert_eq!(
        vec![(StageId::EvalMc, 1, ErrorKind::Cancelled)],
        session.tracker().failures()
    );

    let mut analytic_inputs = inputs.clone();
    analytic_inputs.mc = None;
    let exact = Session::new(analytic_inputs).try_baseline().unwrap();
    assert_eq!(
        degraded.expected_makespan.to_bits(),
        exact.expected_makespan.to_bits()
    );
    assert_eq!(degraded.w_par.to_bits(), exact.w_par.to_bits());

    // Lifting the deadline on the *same* session serves the full
    // answer — the aborted simulation was never cached.
    session.deadline = None;
    let mut full_inputs = inputs;
    full_inputs.mc = Some(McSpec {
        runs: 200,
        seed: 17,
    });
    let mut full_session = Session::new(full_inputs.clone());
    let full = full_session.try_baseline().unwrap();
    assert!(!full.degraded);
    assert!(full.mc.is_some());
    // And a deadlined session whose MC *fits* the budget is not
    // degraded either.
    full_session.deadline = Some(Duration::from_secs(60));
    let relaxed = full_session.try_baseline().unwrap();
    assert!(!relaxed.degraded);
    assert_same(&full, &relaxed);
}

/// A deadline that is already exhausted before planning starts cancels
/// the query with the typed error — and the session stays serviceable:
/// removing the deadline immediately yields the exact answer.
#[test]
fn zero_deadline_cancels_and_the_session_recovers() {
    let mut session = Session::new(montage_inputs(1e-3));
    session.deadline = Some(Duration::ZERO);
    match session.try_baseline() {
        Err(PlanError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    session.deadline = None;
    let warm = session.try_baseline().unwrap();
    let cold = Session::new(montage_inputs(1e-3)).try_baseline().unwrap();
    assert_same(&warm, &cold);
}
