//! The invalidation matrix, tracker-asserted: each what-if re-executes
//! exactly the stages whose input fingerprints change — no fewer
//! (soundness would be luck) and no more (or "incremental" is a lie).

use ckpt_core::StageId;
use ckpt_service::{Inputs, ModelSpec, PolicySpec, Session, WhatIf, WorkflowSource};
use pegasus::WorkflowClass;
use std::collections::BTreeSet;

fn montage_session(size: usize) -> Session {
    let source = WorkflowSource::Generated {
        class: WorkflowClass::Montage,
        size,
        seed: 9,
        ccr: Some(0.05),
    };
    Session::new(Inputs::basic(
        source,
        18,
        1e8,
        ModelSpec::Exponential { pfail: 1e-3 },
    ))
}

fn stages(ids: &[StageId]) -> BTreeSet<StageId> {
    ids.iter().copied().collect()
}

#[test]
fn first_visit_executes_the_whole_graph() {
    let session = montage_session(50);
    session.baseline();
    assert_eq!(
        session.tracker().executed(),
        stages(&[
            StageId::Generate,
            StageId::Schedule,
            StageId::Curve,
            StageId::Placement,
            StageId::SegmentGraph,
            StageId::EvalAnalytic,
        ])
    );
}

#[test]
fn noop_reexecutes_zero_stages() {
    let session = montage_session(50);
    session.baseline();
    session.tracker().clear();
    session.query(&WhatIf::Nop);
    assert!(
        session.tracker().executed().is_empty(),
        "no-op executed {:?}",
        session.tracker().executed()
    );
    // …and the same drift asked twice is a no-op the second time.
    session.query(&WhatIf::SetPfail(2e-3));
    session.tracker().clear();
    session.query(&WhatIf::SetPfail(2e-3));
    assert!(session.tracker().executed().is_empty());
}

#[test]
fn lambda_drift_touches_only_curve_placement_graph_evaluate() {
    // The acceptance-bar case, on the full 300-task Montage instance:
    // λ drift must leave the workflow and schedule untouched. The
    // coalesced graph's 2-state probabilities read λ, so the
    // segment-graph stage is part of the placement group here.
    let session = montage_session(300);
    session.baseline();
    session.tracker().clear();
    session.query(&WhatIf::SetPfail(2e-3));
    assert_eq!(
        session.tracker().executed(),
        stages(&[
            StageId::Curve,
            StageId::Placement,
            StageId::SegmentGraph,
            StageId::EvalAnalytic,
        ])
    );
    // Explicitly: the expensive upstream stages were *not* re-run.
    assert_eq!(session.tracker().executed_count(StageId::Generate), 0);
    assert_eq!(session.tracker().executed_count(StageId::Schedule), 0);
}

#[test]
fn model_family_swap_behaves_like_lambda_drift() {
    let session = montage_session(50);
    session.baseline();
    session.tracker().clear();
    session.query(&WhatIf::SetModel(ModelSpec::Weibull {
        shape: 0.7,
        pfail: 1e-3,
    }));
    assert_eq!(
        session.tracker().executed(),
        stages(&[
            StageId::Curve,
            StageId::Placement,
            StageId::SegmentGraph,
            StageId::EvalAnalytic,
        ])
    );
}

#[test]
fn policy_swap_touches_only_placement_graph_evaluate() {
    let session = montage_session(50);
    session.baseline();
    session.tracker().clear();
    session.query(&WhatIf::SetPolicy(PolicySpec::CkptAll));
    assert_eq!(
        session.tracker().executed(),
        stages(&[
            StageId::Placement,
            StageId::SegmentGraph,
            StageId::EvalAnalytic,
        ])
    );
}

#[test]
fn platform_rescale_reruns_schedule_but_not_curve() {
    // Curve reads (model, span stats, bandwidth) — not the processor
    // count. Early cutoff keeps the quadrature table cached.
    let session = montage_session(50);
    session.baseline();
    session.tracker().clear();
    session.query(&WhatIf::SetProcs(24));
    assert_eq!(
        session.tracker().executed(),
        stages(&[
            StageId::Schedule,
            StageId::Placement,
            StageId::SegmentGraph,
            StageId::EvalAnalytic,
        ])
    );
}

#[test]
fn bandwidth_rescale_leaves_the_schedule_cached() {
    // On a *fixed* workflow (provided, so file sizes are pinned —
    // a CCR-pinned generated source would legitimately re-derive its
    // sizes), a storage upgrade re-prices I/O but never re-schedules:
    // structure-driven linearizers read neither sizes nor bandwidth.
    let source = WorkflowSource::provided(pegasus::generate(WorkflowClass::Montage, 50, 9));
    let session = Session::new(Inputs::basic(
        source,
        18,
        1e8,
        ModelSpec::Exponential { pfail: 1e-3 },
    ));
    session.baseline();
    session.tracker().clear();
    session.query(&WhatIf::SetBandwidth(2e8));
    assert_eq!(
        session.tracker().executed(),
        stages(&[
            StageId::Curve,
            StageId::Placement,
            StageId::SegmentGraph,
            StageId::EvalAnalytic,
        ])
    );
}

#[test]
fn workflow_edit_invalidates_everything_downstream() {
    let session = montage_session(50);
    session.baseline();
    session.tracker().clear();
    session.query(&WhatIf::SetTaskWeight {
        task: 0,
        weight: 1234.5,
    });
    // The edited workflow is provided (Generate has nothing to run),
    // but every planning stage downstream re-executes.
    assert_eq!(
        session.tracker().executed(),
        stages(&[
            StageId::Schedule,
            StageId::Curve,
            StageId::Placement,
            StageId::SegmentGraph,
            StageId::EvalAnalytic,
        ])
    );
}

#[test]
fn apply_commits_so_the_next_baseline_is_cached() {
    let mut session = montage_session(50);
    session.baseline();
    session.apply(&WhatIf::SetPfail(5e-3));
    session.query(&WhatIf::Nop); // warm the drifted state
    session.tracker().clear();
    let a = session.baseline();
    assert!(session.tracker().executed().is_empty());
    let b = session.query(&WhatIf::SetPfail(5e-3));
    assert_eq!(
        a.expected_makespan.to_bits(),
        b.expected_makespan.to_bits(),
        "committed state must equal the equivalent drift query"
    );
}

#[test]
fn weibull_session_caches_the_restart_curve_across_policy_swaps() {
    // Non-memoryless models pay a real cost to build the quadrature
    // curve; a policy swap must reuse it.
    let source = WorkflowSource::Generated {
        class: WorkflowClass::Genome,
        size: 50,
        seed: 3,
        ccr: Some(0.05),
    };
    let session = Session::new(Inputs::basic(
        source,
        5,
        1e8,
        ModelSpec::Weibull {
            shape: 0.7,
            pfail: 1e-3,
        },
    ));
    session.baseline();
    session.tracker().clear();
    session.query(&WhatIf::SetPolicy(PolicySpec::Daly { period: None }));
    let executed = session.tracker().executed();
    assert!(!executed.contains(&StageId::Curve), "curve must be cached");
    assert!(executed.contains(&StageId::Placement));
}
