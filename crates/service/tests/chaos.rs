//! Chaos suite: random what-if batches under deterministic seeded
//! fault injection, across thread budgets. Only compiled with the
//! `faultinject` feature:
//!
//! ```text
//! cargo test -p ckpt_service --features faultinject --test chaos
//! ```
//!
//! The contract under chaos (see `DESIGN.md` §11):
//!
//! * **no hang** — every query returns, fault plan or not;
//! * **no corrupted value** — every `Ok` answer produced *during*
//!   injection is byte-identical to the fault-free cold answer for that
//!   query (injection can fail a query, never bend one);
//! * **full recovery** — once the plan is disarmed, the *same* session
//!   (and the same store) answers every query `Ok` and byte-identical
//!   to a fresh cold session: failed slots self-healed, nothing was
//!   poisoned.

#![cfg(feature = "faultinject")]

use std::sync::Mutex;
use std::time::{Duration, Instant};

use ckpt_service::{
    Answer, ErrorKind, Inputs, McSpec, ModelSpec, PlanError, PolicySpec, Session, WhatIf,
    WorkflowSource,
};
use pegasus::WorkflowClass;
use seedmix::faultinject::{arm, disarm, FaultPlan};

/// The armed fault plan is process-global, so chaos tests must not
/// overlap. Poison-recovering lock: a failed chaos test must not
/// cascade into the rest of the suite.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn chaos_inputs() -> Inputs {
    let mut inputs = Inputs::basic(
        WorkflowSource::Generated {
            class: WorkflowClass::Montage,
            size: 60,
            seed: 11,
            ccr: Some(0.05),
        },
        8,
        1e8,
        ModelSpec::Exponential { pfail: 1e-3 },
    );
    inputs.mc = Some(McSpec { runs: 100, seed: 5 });
    inputs
}

/// A mixed bag of valid what-if deltas touching every stage of the
/// graph (λ drift, policy swap, platform rescale, evaluator swap,
/// workflow edit).
fn chaos_queries() -> Vec<WhatIf> {
    vec![
        WhatIf::Nop,
        WhatIf::SetPfail(2e-3),
        WhatIf::SetPfail(5e-3),
        WhatIf::SetPolicy(PolicySpec::CkptAll),
        WhatIf::SetPolicy(PolicySpec::Daly { period: None }),
        WhatIf::SetProcs(24),
        WhatIf::SetBandwidth(2e8),
        WhatIf::SetEvaluator(ckpt_service::EvalSpec::Normal),
        WhatIf::SetTaskWeight {
            task: 3,
            weight: 123.0,
        },
        WhatIf::SetPfail(3e-3),
    ]
}

fn assert_same(tag: &str, a: &Answer, b: &Answer) {
    assert_eq!(a.policy, b.policy, "{tag}: policy");
    assert_eq!(
        a.expected_makespan.to_bits(),
        b.expected_makespan.to_bits(),
        "{tag}: expected_makespan"
    );
    assert_eq!(a.n_checkpoints, b.n_checkpoints, "{tag}: n_checkpoints");
    assert_eq!(a.n_segments, b.n_segments, "{tag}: n_segments");
    assert_eq!(a.ckpt_files, b.ckpt_files, "{tag}: ckpt_files");
    assert_eq!(
        a.ckpt_bytes.to_bits(),
        b.ckpt_bytes.to_bits(),
        "{tag}: ckpt_bytes"
    );
    assert_eq!(a.w_par.to_bits(), b.w_par.to_bits(), "{tag}: w_par");
    match (&a.mc, &b.mc) {
        (Some(x), Some(y)) => {
            assert_eq!(
                x.mean_makespan.to_bits(),
                y.mean_makespan.to_bits(),
                "{tag}: mc mean"
            );
            assert_eq!(x.stderr.to_bits(), y.stderr.to_bits(), "{tag}: mc stderr");
            assert_eq!(x.runs, y.runs, "{tag}: mc runs");
        }
        (None, None) => {}
        _ => panic!("{tag}: MC presence mismatch"),
    }
}

/// Fault-free ground truth, one cold answer per query.
fn cold_answers(queries: &[WhatIf]) -> Vec<Answer> {
    disarm();
    let session = Session::new(chaos_inputs());
    queries
        .iter()
        .map(|q| session.try_query(q).expect("fault-free query must succeed"))
        .collect()
}

#[test]
fn chaos_serves_only_exact_answers_and_recovers_cold_equal() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let queries = chaos_queries();
    let cold = cold_answers(&queries);

    let mut total_failures = 0usize;
    for fault_seed in [1u64, 22, 333] {
        for threads in [1usize, 2, 7] {
            let tag = format!("seed={fault_seed} threads={threads}");
            let session = Session::new(chaos_inputs());

            arm(FaultPlan::hostile(fault_seed));
            let start = Instant::now();
            let stormy = session.try_query_batch(&queries, threads);
            // "No hang": panicking workers hand their slots to waiters,
            // terminal failures notify everyone, delays are bounded.
            assert!(
                start.elapsed() < Duration::from_secs(60),
                "{tag}: chaos batch took {:?}",
                start.elapsed()
            );
            let mut failures = 0usize;
            for (i, result) in stormy.iter().enumerate() {
                match result {
                    // An answer served under fire must be the exact
                    // fault-free answer — injection may fail a query,
                    // never corrupt one.
                    Ok(answer) => assert_same(&format!("{tag} q{i}"), answer, &cold[i]),
                    Err(PlanError::StageFailed { attempts, .. }) => {
                        assert!(
                            (1..=ckpt_service::MAX_ATTEMPTS).contains(attempts),
                            "{tag} q{i}: attempts={attempts}"
                        );
                        failures += 1;
                    }
                    Err(other) => panic!("{tag} q{i}: unexpected error {other}"),
                }
            }
            disarm();
            total_failures += failures;

            // Recovery on the SAME session and store: every query now
            // succeeds and matches the fresh cold session bit for bit.
            let calm = session.try_query_batch(&queries, threads);
            for (i, result) in calm.iter().enumerate() {
                match result {
                    Ok(answer) => assert_same(&format!("{tag} calm q{i}"), answer, &cold[i]),
                    Err(e) => panic!("{tag} calm q{i}: {e}"),
                }
            }
        }
    }
    // A query only *fails* when all MAX_ATTEMPTS draws at one site come
    // up bad, so any single (seed, threads) run may survive unscathed —
    // but across 9 hostile runs at least one query must have died, or
    // the harness is not exercising the failure path at all.
    assert!(total_failures > 0, "hostile plans never surfaced a failure");
}

/// A saturated plan (every hit panics) fails *every* cold query with
/// the terminal typed error at exactly the attempt bound — and the
/// session still recovers to cold-identical answers afterwards.
#[test]
fn saturated_panic_plan_fails_everything_then_recovers() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let queries = chaos_queries();
    let cold = cold_answers(&queries);

    let session = Session::new(chaos_inputs());
    arm(FaultPlan {
        seed: 9,
        panic_per_mille: 1000,
        error_per_mille: 0,
        delay_per_mille: 0,
        delay_ms: 0,
    });
    for (i, result) in session.try_query_batch(&queries, 2).iter().enumerate() {
        match result {
            Err(PlanError::StageFailed { attempts, .. }) => {
                assert_eq!(*attempts, ckpt_service::MAX_ATTEMPTS, "q{i}");
            }
            other => panic!("q{i}: expected terminal StageFailed, got {other:?}"),
        }
    }
    // The tracker's enriched events agree: every recorded failure is a
    // terminal stage failure at exactly the attempt bound.
    let failures = session.tracker().failures();
    assert!(!failures.is_empty());
    for (stage, attempts, kind) in &failures {
        assert_eq!(ErrorKind::StageFailed, *kind, "{stage:?}");
        assert_eq!(ckpt_service::MAX_ATTEMPTS, *attempts, "{stage:?}");
    }
    disarm();
    for (i, result) in session.try_query_batch(&queries, 2).iter().enumerate() {
        match result {
            Ok(answer) => assert_same(&format!("calm q{i}"), answer, &cold[i]),
            Err(e) => panic!("calm q{i}: {e}"),
        }
    }
}

/// Injected *errors* (fail the stage without unwinding) follow the same
/// retry/terminal path as panics and recover the same way.
#[test]
fn quiet_error_plans_recover_too() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let queries = chaos_queries();
    let cold = cold_answers(&queries);

    for fault_seed in [7u64, 4242] {
        let session = Session::new(chaos_inputs());
        arm(FaultPlan::quiet(fault_seed));
        let stormy = session.try_query_batch(&queries, 2);
        for (i, result) in stormy.iter().enumerate() {
            match result {
                Ok(answer) => assert_same(&format!("seed={fault_seed} q{i}"), answer, &cold[i]),
                Err(PlanError::StageFailed { .. }) => {}
                Err(other) => panic!("seed={fault_seed} q{i}: unexpected error {other}"),
            }
        }
        disarm();
        for (i, result) in session.try_query_batch(&queries, 2).iter().enumerate() {
            match result {
                Ok(answer) => {
                    assert_same(&format!("seed={fault_seed} calm q{i}"), answer, &cold[i])
                }
                Err(e) => panic!("seed={fault_seed} calm q{i}: {e}"),
            }
        }
    }
}

/// Injection under a deadline: faults and cancellation compose — every
/// outcome is an exact answer (possibly `degraded`), a typed stage
/// failure, or a cancellation; and the session still recovers.
#[test]
fn chaos_composes_with_deadlines() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let queries = chaos_queries();
    let cold = cold_answers(&queries);

    let mut session = Session::new(chaos_inputs());
    session.deadline = Some(Duration::from_secs(60));
    arm(FaultPlan::hostile(99));
    for (i, result) in session.try_query_batch(&queries, 2).iter().enumerate() {
        match result {
            // A generous deadline should not trip on this workload, so
            // an Ok answer is still the exact fault-free one.
            Ok(answer) if !answer.degraded => {
                assert_same(&format!("deadline q{i}"), answer, &cold[i])
            }
            Ok(_) | Err(PlanError::StageFailed { .. }) | Err(PlanError::Cancelled) => {}
            Err(other) => panic!("deadline q{i}: unexpected error {other}"),
        }
    }
    disarm();
    session.deadline = None;
    for (i, result) in session.try_query_batch(&queries, 2).iter().enumerate() {
        match result {
            Ok(answer) => assert_same(&format!("calm q{i}"), answer, &cold[i]),
            Err(e) => panic!("calm q{i}: {e}"),
        }
    }
}
