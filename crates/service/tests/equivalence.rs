//! Incremental answers must be byte-identical to cold recomputes —
//! caching decides *who* computes an artifact, never *what* it is —
//! and batches must be invariant to the worker thread budget.

use ckpt_service::{
    Answer, EvalSpec, Inputs, McSpec, ModelSpec, PolicySpec, Session, WhatIf, WorkflowSource,
};
use pegasus::WorkflowClass;

fn montage_inputs(pfail: f64) -> Inputs {
    let source = WorkflowSource::Generated {
        class: WorkflowClass::Montage,
        size: 300,
        seed: 9,
        ccr: Some(0.05),
    };
    Inputs::basic(source, 18, 1e8, ModelSpec::Exponential { pfail })
}

fn assert_same(a: &Answer, b: &Answer) {
    assert_eq!(a.policy, b.policy);
    assert_eq!(a.expected_makespan.to_bits(), b.expected_makespan.to_bits());
    assert_eq!(a.n_checkpoints, b.n_checkpoints);
    assert_eq!(a.n_segments, b.n_segments);
    assert_eq!(a.ckpt_files, b.ckpt_files);
    assert_eq!(a.ckpt_bytes.to_bits(), b.ckpt_bytes.to_bits());
    assert_eq!(a.w_par.to_bits(), b.w_par.to_bits());
    match (&a.mc, &b.mc) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.mean_makespan.to_bits(), y.mean_makespan.to_bits());
            assert_eq!(x.stderr.to_bits(), y.stderr.to_bits());
            assert_eq!(x.runs, y.runs);
        }
        _ => panic!("MC presence mismatch"),
    }
}

#[test]
fn lambda_drift_matches_cold_recompute_on_montage_300() {
    // The acceptance-bar identity: a warm session answering a λ-drift
    // what-if returns exactly what a fresh session at that λ computes.
    let warm = Session::new(montage_inputs(1e-3));
    warm.baseline();
    let incremental = warm.query(&WhatIf::SetPfail(2e-3));
    let cold = Session::new(montage_inputs(2e-3)).baseline();
    assert_same(&incremental, &cold);
}

#[test]
fn every_whatif_kind_matches_its_cold_session() {
    let warm = Session::new(montage_inputs(1e-3));
    warm.baseline();

    // Policy swap.
    let inc = warm.query(&WhatIf::SetPolicy(PolicySpec::ExitOnly));
    let mut inputs = montage_inputs(1e-3);
    inputs.policy = PolicySpec::ExitOnly;
    assert_same(&inc, &Session::new(inputs).baseline());

    // Platform rescale.
    let inc = warm.query(&WhatIf::SetProcs(24));
    let mut inputs = montage_inputs(1e-3);
    inputs.procs = 24;
    assert_same(&inc, &Session::new(inputs).baseline());

    // Model family swap.
    let spec = ModelSpec::Weibull {
        shape: 2.0,
        pfail: 1e-3,
    };
    let inc = warm.query(&WhatIf::SetModel(spec));
    let mut inputs = montage_inputs(1e-3);
    inputs.model = spec;
    assert_same(&inc, &Session::new(inputs).baseline());
}

#[test]
fn batch_answers_are_thread_invariant_and_order_preserving() {
    let queries: Vec<WhatIf> = (0..24)
        .map(|i| match i % 4 {
            0 => WhatIf::SetPfail(1e-3 * (1.0 + i as f64 / 8.0)),
            1 => WhatIf::SetPolicy(PolicySpec::CkptAll),
            2 => WhatIf::SetProcs(12 + i),
            _ => WhatIf::Nop,
        })
        .collect();
    // Separate sessions: the store state differs (the serial one warms
    // sequentially), which must not matter for the answers.
    let s1 = Session::new(montage_inputs(1e-3));
    let serial = s1.query_batch(&queries, 1);
    let s4 = Session::new(montage_inputs(1e-3));
    let parallel = s4.query_batch(&queries, 4);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_same(a, b);
    }
}

#[test]
fn mc_stage_is_memoized_and_identical_to_cold() {
    let mut inputs = montage_inputs(1e-3);
    inputs.workflow = WorkflowSource::Generated {
        class: WorkflowClass::Genome,
        size: 50,
        seed: 4,
        ccr: Some(0.05),
    };
    inputs.procs = 5;
    inputs.mc = Some(McSpec { runs: 64, seed: 77 });
    let warm = Session::new(inputs.clone());
    warm.baseline();
    let inc = warm.query(&WhatIf::SetPfail(3e-3));
    let mut cold_inputs = inputs.clone();
    cold_inputs.model = cold_inputs.model.with_pfail(3e-3);
    let cold = Session::new(cold_inputs).baseline();
    assert_same(&inc, &cold);
    assert!(inc.mc.is_some());
    // Asking again re-uses the simulated estimate.
    warm.tracker().clear();
    warm.query(&WhatIf::SetPfail(3e-3));
    assert!(warm.tracker().executed().is_empty());
}

#[test]
fn evaluator_swap_reuses_the_graph() {
    let warm = Session::new(montage_inputs(1e-3));
    warm.baseline();
    warm.tracker().clear();
    let mut inputs = montage_inputs(1e-3);
    inputs.evaluator = EvalSpec::Normal;
    // Build the same state via a fresh session to cross-check values…
    let cold = Session::new(inputs).baseline();
    // …and via the warm store: only EvalAnalytic re-runs.
    let inc = warm.query(&WhatIf::SetEvaluator(EvalSpec::Normal));
    let executed = warm.tracker().executed();
    assert_eq!(
        executed,
        [ckpt_core::StageId::EvalAnalytic].into_iter().collect()
    );
    assert_same(&inc, &cold);
}
