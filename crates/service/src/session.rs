//! Long-lived incremental planning sessions.
//!
//! A [`Session`] holds one set of planning [`Inputs`] (workflow,
//! platform shape, failure model, scheduling configuration, placement
//! policy, evaluator) plus a shared artifact [`Store`], and answers
//! **what-if queries** — "what would the plan cost if λ drifted / the
//! policy changed / the platform rescaled / the workflow were edited" —
//! by re-executing *only* the stages whose input fingerprints changed.
//!
//! ## Key derivation
//!
//! Every stage artifact is keyed by a composition of the content
//! fingerprints of exactly the inputs that stage reads
//! (`ckpt_core::fingerprint`):
//!
//! ```text
//! workflow  = digest(class, size, seed, ccr, bw)        (generated)
//!           | content fingerprint                        (provided)
//! schedule  = (wf.structure [, wf.sizes iff MinVolume], procs, alloc)
//! curve     = (model, wf.structure, wf.sizes, bw)
//! placement = (wf.combined, model, bw, schedule, policy)
//! graph     = (placement)      — placement's key closes over the rest
//! eval      = (graph, evaluator)
//! mc        = (graph, model, runs, seed)
//! ```
//!
//! Equal key ⇒ equal inputs ⇒ (stages are pure) equal artifact, so a
//! cache hit is always sound and every answer is byte-identical to a
//! cold recompute — for any thread budget, since memoization only
//! decides *who* computes, never *what*. The split workflow fingerprint
//! gives early cutoff: a CCR rescale leaves `schedule` untouched, a λ
//! drift leaves both `schedule` and the workflow alone, and a no-op
//! query re-executes nothing at all. The [`Tracker`] records each
//! stage's outcome so tests assert those sets exactly.
//!
//! ## Failure semantics
//!
//! Every query has a fallible form (`try_query` / `try_query_batch` /
//! `try_apply`) returning typed [`PlanError`]s. Malformed parameters
//! are rejected at the what-if boundary by [`Inputs::validate`] /
//! [`Session::try_apply`] **before** any stage runs, so an invalid
//! query can never poison the session or the shared [`Store`], and the
//! next valid query answers byte-identically to a fresh session. Stage
//! failures (including injected ones — `seedmix::faultinject`) are
//! retried a bounded number of times at the memo boundary and surface
//! as [`PlanError::StageFailed`]. An optional per-query
//! [`Session::deadline`] cancels the DP hot loops cooperatively
//! ([`PlanError::Cancelled`]) and degrades Monte Carlo ground truth
//! gracefully: the analytic answer is still served, flagged
//! [`Answer::degraded`]. See `DESIGN.md` §11.

use std::sync::Arc;
use std::time::Duration;

use ckpt_core::budget::install_quiet_unwind_hook;
use ckpt_core::error::{require_pfail, require_positive};
use ckpt_core::fingerprint::{allocate_config_fp, compose, linearizer_reads_file_sizes, model_fp};
use ckpt_core::policy::{
    CheckpointPolicy, CkptAllPolicy, DalyPeriodic, DpOptimalPolicy, ExitOnlyPolicy,
    GreedyCrossover, PolicyScratch, RiskThreshold,
};
use ckpt_core::stage::{
    curve_stage, evaluate_stage, inject, placement_stage, schedule_stage, segment_graph_stage,
    traced, StageId,
};
use ckpt_core::{AllocateConfig, Budget, CostCtx, FailureModel, PlanError, PlanResult, Platform};
use failsim::{montecarlo_segments_model, montecarlo_segments_model_abortable, McStats, SimConfig};
use mspg::TaskId;
use pegasus::WorkflowClass;
use probdag::{Dodin, Evaluator, NormalSculli, PathApprox};
use seedmix::digest::Fnv1a;
use seedmix::parallel_slots;

use crate::store::{Memo, Resolution, Store, WorkflowArtifact};
use crate::tracker::{Outcome, Tracker};
use obs::span::SpanOutcome;

/// Domain tags for session-level stage keys (disjoint from the
/// `ckpt_core::fingerprint::tag` artifact tags).
mod tag {
    pub const GENERATE: u64 = 0x5356_4745; // "SVGE"
    pub const SCHEDULE: u64 = 0x5356_5343; // "SVSC"
    pub const CURVE: u64 = 0x5356_4356; // "SVCV"
    pub const PLACEMENT: u64 = 0x5356_504c; // "SVPL"
    pub const GRAPH: u64 = 0x5356_4752; // "SVGR"
    pub const EVAL: u64 = 0x5356_4556; // "SVEV"
    pub const MC: u64 = 0x5356_4d43; // "SVMC"
    pub const POLICY: u64 = 0x5356_5043; // "SVPC"
    pub const EVALUATOR: u64 = 0x5356_4554; // "SVET"
    pub const MCSPEC: u64 = 0x5356_4d53; // "SVMS"
    pub const WPAR: u64 = 0x5356_5750; // "SVWP"
    pub const STATS: u64 = 0x5356_5354; // "SVST"
}

/// Where the session's workflow comes from.
#[derive(Clone)]
pub enum WorkflowSource {
    /// A Pegasus-class instance generated (and optionally CCR-rescaled)
    /// on first use — the Generate stage proper.
    Generated {
        /// Workflow class.
        class: WorkflowClass,
        /// Task count.
        size: usize,
        /// Instance seed.
        seed: u64,
        /// Target CCR at the session bandwidth, if rescaled.
        ccr: Option<f64>,
    },
    /// A caller-provided (e.g. edited) workflow with its precomputed
    /// fingerprint.
    Provided(Arc<WorkflowArtifact>),
}

impl WorkflowSource {
    /// Wraps an owned workflow, fingerprinting it once.
    pub fn provided(workflow: mspg::Workflow) -> Self {
        WorkflowSource::Provided(Arc::new(WorkflowArtifact::new(workflow)))
    }
}

fn class_tag(c: WorkflowClass) -> u64 {
    match c {
        WorkflowClass::Genome => 0,
        WorkflowClass::Montage => 1,
        WorkflowClass::Ligo => 2,
        WorkflowClass::Cybershake => 3,
    }
}

/// A calibrated failure-model specification. Unlike a raw
/// [`FailureModel`], the calibrated variants re-derive their parameters
/// from the *current* workflow's mean task weight — so a workflow edit
/// automatically re-calibrates, exactly like the experiment grids.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ModelSpec {
    /// Memoryless, calibrated so an average task fails w.p. `pfail`.
    Exponential {
        /// Per-mean-weight-task failure probability.
        pfail: f64,
    },
    /// Weibull of the given shape, same calibration.
    Weibull {
        /// Shape `k > 0`.
        shape: f64,
        /// Per-mean-weight-task failure probability.
        pfail: f64,
    },
    /// LogNormal of the given log-std-dev, same calibration.
    LogNormal {
        /// Standard deviation of the log.
        sigma: f64,
        /// Per-mean-weight-task failure probability.
        pfail: f64,
    },
    /// An explicit, already-parameterized model (no re-calibration).
    Raw(FailureModel),
}

impl ModelSpec {
    /// Materializes the failure model for a workflow of mean task
    /// weight `mean_weight`.
    pub fn build(&self, mean_weight: f64) -> FailureModel {
        match *self {
            ModelSpec::Exponential { pfail } => {
                FailureModel::exponential_from_pfail(pfail, mean_weight)
            }
            ModelSpec::Weibull { shape, pfail } => {
                FailureModel::weibull_from_pfail(shape, pfail, mean_weight)
            }
            ModelSpec::LogNormal { sigma, pfail } => {
                FailureModel::lognormal_from_pfail(sigma, pfail, mean_weight)
            }
            ModelSpec::Raw(m) => m,
        }
    }

    /// The same family re-calibrated to a new `pfail` (a raw model
    /// becomes a calibrated exponential — the paper's default family).
    pub fn with_pfail(&self, pfail: f64) -> ModelSpec {
        match *self {
            ModelSpec::Exponential { .. } => ModelSpec::Exponential { pfail },
            ModelSpec::Weibull { shape, .. } => ModelSpec::Weibull { shape, pfail },
            ModelSpec::LogNormal { sigma, .. } => ModelSpec::LogNormal { sigma, pfail },
            ModelSpec::Raw(_) => ModelSpec::Exponential { pfail },
        }
    }
}

/// A checkpoint-placement policy specification: a digestible, cloneable
/// description that builds the builtin [`CheckpointPolicy`] objects.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PolicySpec {
    /// Checkpoint every task.
    CkptAll,
    /// The paper's Algorithm 2 DP (optimal placement).
    DpOptimal,
    /// Superchain exits only.
    ExitOnly,
    /// Young/Daly periodic (`None` = auto period).
    Daly {
        /// Fixed period in seconds, or `None` for the Daly formula.
        period: Option<f64>,
    },
    /// Adaptive risk-threshold checkpointing.
    Risk {
        /// Maximum tolerated per-segment failure probability.
        max_risk: f64,
    },
    /// The structural crossover heuristic.
    Crossover,
}

impl PolicySpec {
    /// Builds the policy object.
    pub fn build(&self) -> Box<dyn CheckpointPolicy> {
        match *self {
            PolicySpec::CkptAll => Box::new(CkptAllPolicy),
            PolicySpec::DpOptimal => Box::new(DpOptimalPolicy),
            PolicySpec::ExitOnly => Box::new(ExitOnlyPolicy),
            PolicySpec::Daly { period: None } => Box::new(DalyPeriodic::auto()),
            PolicySpec::Daly { period: Some(p) } => Box::new(DalyPeriodic::with_period(p)),
            PolicySpec::Risk { max_risk } => Box::new(RiskThreshold::new(max_risk)),
            PolicySpec::Crossover => Box::new(GreedyCrossover),
        }
    }

    /// Display name (the built policy's).
    pub fn name(&self) -> &'static str {
        self.build().name()
    }

    /// Content fingerprint (variant + parameters).
    pub fn fp(&self) -> u64 {
        let mut h = Fnv1a::tagged(tag::POLICY);
        match *self {
            PolicySpec::CkptAll => h.write_word(1),
            PolicySpec::DpOptimal => h.write_word(2),
            PolicySpec::ExitOnly => h.write_word(3),
            PolicySpec::Daly { period } => {
                h.write_word(4);
                match period {
                    None => h.write_word(0),
                    Some(p) => h.write_word(1).write_f64(p),
                }
            }
            PolicySpec::Risk { max_risk } => h.write_word(5).write_f64(max_risk),
            PolicySpec::Crossover => h.write_word(6),
        };
        h.finish()
    }
}

/// Which analytic evaluator estimates the expected makespan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalSpec {
    /// The renewal path approximation (the repo's workhorse).
    PathApprox,
    /// Sculli's normal-approximation sweep.
    Normal,
    /// Dodin's discretized bound (default bin count).
    Dodin,
}

impl EvalSpec {
    /// Builds the evaluator (default parameters — the spec pins them).
    pub fn build(&self) -> Box<dyn Evaluator> {
        match self {
            EvalSpec::PathApprox => Box::new(PathApprox::default()),
            EvalSpec::Normal => Box::new(NormalSculli),
            EvalSpec::Dodin => Box::new(Dodin::default()),
        }
    }

    /// Content fingerprint.
    pub fn fp(&self) -> u64 {
        let t = match self {
            EvalSpec::PathApprox => 1,
            EvalSpec::Normal => 2,
            EvalSpec::Dodin => 3,
        };
        Fnv1a::tagged(tag::EVALUATOR).write_word(t).finish()
    }
}

/// Monte Carlo ground-truth configuration (optional per session).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct McSpec {
    /// Simulated executions.
    pub runs: usize,
    /// Base seed (estimates are pure functions of `(seed, runs)`).
    pub seed: u64,
}

impl McSpec {
    fn fp(&self) -> u64 {
        Fnv1a::tagged(tag::MCSPEC)
            .write_usize(self.runs)
            .write_word(self.seed)
            .finish()
    }

    fn sim_config(&self, threads: usize) -> SimConfig {
        SimConfig {
            runs: self.runs,
            seed: self.seed,
            threads,
            ..SimConfig::default()
        }
    }
}

/// The complete planning inputs of one session state.
#[derive(Clone)]
pub struct Inputs {
    /// The workflow under study.
    pub workflow: WorkflowSource,
    /// Processor count.
    pub procs: usize,
    /// Stable-storage bandwidth (bytes/s).
    pub bandwidth: f64,
    /// Scheduling configuration (linearizer + seed).
    pub alloc: AllocateConfig,
    /// Failure-model specification.
    pub model: ModelSpec,
    /// Placement policy.
    pub policy: PolicySpec,
    /// Analytic evaluator.
    pub evaluator: EvalSpec,
    /// Optional Monte Carlo ground truth per answer.
    pub mc: Option<McSpec>,
}

impl Inputs {
    /// Inputs with the repo's default scheduling (RandomTopo, seed 0),
    /// the DP placement, the PathApprox evaluator, and no Monte Carlo.
    pub fn basic(workflow: WorkflowSource, procs: usize, bandwidth: f64, model: ModelSpec) -> Self {
        Inputs {
            workflow,
            procs,
            bandwidth,
            alloc: AllocateConfig::default(),
            model,
            policy: PolicySpec::DpOptimal,
            evaluator: EvalSpec::PathApprox,
            mc: None,
        }
    }

    /// Strict admission control at the what-if boundary: every
    /// parameter an inner stage or builder would otherwise `assert!`
    /// on is checked here and reported as a typed
    /// [`PlanError::InvalidInput`], so a malformed query is rejected
    /// before any stage runs or any store entry is touched.
    pub fn validate(&self) -> PlanResult<()> {
        if self.procs == 0 {
            return Err(PlanError::invalid("procs", "must be at least 1, got 0"));
        }
        require_positive("bandwidth", self.bandwidth)?;
        if let WorkflowSource::Generated { size, ccr, .. } = &self.workflow {
            if *size == 0 {
                return Err(PlanError::invalid("size", "must be at least 1, got 0"));
            }
            if let Some(c) = ccr {
                require_positive("ccr", *c)?;
            }
        }
        match self.model {
            ModelSpec::Exponential { pfail } => {
                require_pfail("pfail", pfail)?;
            }
            ModelSpec::Weibull { shape, pfail } => {
                require_positive("shape", shape)?;
                require_pfail("pfail", pfail)?;
            }
            ModelSpec::LogNormal { sigma, pfail } => {
                require_positive("sigma", sigma)?;
                require_pfail("pfail", pfail)?;
            }
            ModelSpec::Raw(_) => {}
        }
        match self.policy {
            PolicySpec::Daly { period: Some(p) } => {
                require_positive("period", p)?;
            }
            // NaN fails both comparisons, so it lands in the guard too.
            PolicySpec::Risk { max_risk } if !(max_risk > 0.0 && max_risk < 1.0) => {
                return Err(PlanError::invalid(
                    "max_risk",
                    format!("must be in (0, 1), got {max_risk}"),
                ));
            }
            _ => {}
        }
        if let Some(mc) = &self.mc {
            if mc.runs == 0 {
                return Err(PlanError::invalid("mc.runs", "must be at least 1, got 0"));
            }
        }
        Ok(())
    }
}

/// One what-if delta against the session's current inputs.
#[derive(Clone)]
pub enum WhatIf {
    /// No change — answers from the store, executing zero stages.
    Nop,
    /// Re-calibrate the failure model family to a new `pfail` (λ drift).
    SetPfail(f64),
    /// Switch the failure model entirely.
    SetModel(ModelSpec),
    /// Switch the placement policy.
    SetPolicy(PolicySpec),
    /// Switch the analytic evaluator (re-runs only the evaluate stage).
    SetEvaluator(EvalSpec),
    /// Rescale the platform to a new processor count.
    SetProcs(usize),
    /// Rescale the platform to a new storage bandwidth.
    SetBandwidth(f64),
    /// Replace the workflow wholesale.
    SetWorkflow(WorkflowSource),
    /// Edit one task's failure-free execution time (a re-profiled
    /// runtime — the canonical small workflow edit).
    SetTaskWeight {
        /// Task index.
        task: usize,
        /// New weight (seconds).
        weight: f64,
    },
}

/// The answer to one what-if query.
#[derive(Clone, Copy, Debug)]
pub struct Answer {
    /// Placement policy name.
    pub policy: &'static str,
    /// Analytic expected makespan (seconds).
    pub expected_makespan: f64,
    /// Checkpointed tasks (= segments for placement policies).
    pub n_checkpoints: usize,
    /// Coalesced segments.
    pub n_segments: usize,
    /// Files written to stable storage by the placement.
    pub ckpt_files: usize,
    /// Bytes those checkpoints write.
    pub ckpt_bytes: f64,
    /// Failure-free parallel time of the schedule.
    pub w_par: f64,
    /// Monte Carlo ground truth, if configured.
    pub mc: Option<McStats>,
    /// `true` iff the query's [`Session::deadline`] expired during the
    /// Monte Carlo stage: the analytic fields are exact and complete,
    /// but `mc` is `None` even though the session configured it.
    pub degraded: bool,
}

/// A long-lived incremental planning session (see module docs).
pub struct Session {
    store: Arc<Store>,
    tracker: Tracker,
    inputs: Inputs,
    /// Placement thread budget (speed knob; not fingerprinted).
    pub plan_threads: usize,
    /// Monte Carlo thread budget (speed knob; not fingerprinted).
    pub mc_threads: usize,
    /// Optional per-query wall-clock budget. When set, the DP hot
    /// loops cancel cooperatively ([`PlanError::Cancelled`]) and an
    /// over-deadline Monte Carlo stage degrades to the analytic-only
    /// answer ([`Answer::degraded`]). `None` (the default) compiles to
    /// zero checks in the hot loops.
    pub deadline: Option<Duration>,
}

impl Session {
    /// A session with its own private store.
    pub fn new(inputs: Inputs) -> Self {
        Self::with_store(inputs, Arc::new(Store::new()))
    }

    /// A session over a shared store (fleets of sessions pool
    /// artifacts this way).
    pub fn with_store(inputs: Inputs, store: Arc<Store>) -> Self {
        Session {
            store,
            tracker: Tracker::new(),
            inputs,
            plan_threads: 1,
            mc_threads: 1,
            deadline: None,
        }
    }

    /// The event tracker (clear it between queries to assert per-query
    /// stage sets).
    pub fn tracker(&self) -> &Tracker {
        &self.tracker
    }

    /// The shared store.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// The current inputs.
    pub fn inputs(&self) -> &Inputs {
        &self.inputs
    }

    /// Answers the current inputs (a [`WhatIf::Nop`] query).
    pub fn baseline(&self) -> Answer {
        self.query(&WhatIf::Nop)
    }

    /// Fallible [`Session::baseline`].
    pub fn try_baseline(&self) -> PlanResult<Answer> {
        self.try_query(&WhatIf::Nop)
    }

    /// Answers one what-if query **without** committing the change.
    ///
    /// Panics on a [`PlanError`]; callers that need to survive invalid
    /// parameters, deadlines, or injected faults use
    /// [`Session::try_query`].
    pub fn query(&self, whatif: &WhatIf) -> Answer {
        self.try_query(whatif)
            .unwrap_or_else(|e| panic!("what-if query failed: {e}"))
    }

    /// Answers one what-if query **without** committing the change,
    /// surfacing failures as typed [`PlanError`]s. A failed query
    /// leaves the session and store fully serviceable: the next valid
    /// query answers byte-identically to a fresh cold session.
    pub fn try_query(&self, whatif: &WhatIf) -> PlanResult<Answer> {
        self.try_query_traced(whatif, None)
    }

    /// [`Session::try_query`] under a `"query"` span. Batch members
    /// pass their batch index as `ord` and become span-tree *roots*
    /// regardless of which worker thread runs them — batch position,
    /// not scheduling, is what the trace-determinism contract pins.
    /// Single queries (`ord = None`) nest under the caller's current
    /// span (e.g. an engine cell).
    fn try_query_traced(&self, whatif: &WhatIf, ord: Option<u64>) -> PlanResult<Answer> {
        let mut span = match ord {
            Some(o) => obs::span::enter_root_ord("query", o),
            None => obs::span::enter("query"),
        };
        let out = (|| {
            let inputs = self.try_hypothetical(whatif)?;
            inputs.validate()?;
            let budget = self.deadline.map(Budget::with_deadline);
            if budget.is_some() || seedmix::faultinject::is_armed() {
                // Cancellation and injected faults unwind by design;
                // keep their panic reports off stderr.
                install_quiet_unwind_hook();
            }
            self.try_resolve(&inputs, budget.as_ref())
        })();
        match &out {
            Ok(a) if a.degraded => span.set_outcome(SpanOutcome::Degraded),
            Ok(_) => {}
            Err(_) => span.set_outcome(SpanOutcome::Failed),
        }
        out
    }

    /// Answers a batch of independent what-if queries on `threads`
    /// workers (0 = all cores). Answers land in query order and are
    /// byte-identical for every thread budget: the store only decides
    /// who computes an artifact, never what it is.
    pub fn query_batch(&self, queries: &[WhatIf], threads: usize) -> Vec<Answer> {
        parallel_slots(queries.len(), threads, |i| {
            self.try_query_traced(&queries[i], Some(i as u64))
                .unwrap_or_else(|e| panic!("what-if query failed: {e}"))
        })
    }

    /// Fallible [`Session::query_batch`]: each query fails or succeeds
    /// independently — one malformed delta never takes down its batch
    /// neighbours.
    pub fn try_query_batch(&self, queries: &[WhatIf], threads: usize) -> Vec<PlanResult<Answer>> {
        parallel_slots(queries.len(), threads, |i| {
            self.try_query_traced(&queries[i], Some(i as u64))
        })
    }

    /// Commits a what-if delta as the session's new current inputs.
    ///
    /// Panics on a [`PlanError`]; see [`Session::try_apply`].
    pub fn apply(&mut self, whatif: &WhatIf) {
        self.try_apply(whatif)
            .unwrap_or_else(|e| panic!("apply failed: {e}"));
    }

    /// Commits a what-if delta as the session's new current inputs,
    /// rejecting malformed deltas **before** the commit — a failed
    /// apply leaves the current inputs untouched.
    pub fn try_apply(&mut self, whatif: &WhatIf) -> PlanResult<()> {
        let inputs = self.try_hypothetical(whatif)?;
        inputs.validate()?;
        self.inputs = inputs;
        Ok(())
    }

    /// The inputs `whatif` describes, materializing workflow edits.
    /// Edit parameters are validated here (the edit runs eagerly);
    /// everything else is validated by [`Inputs::validate`] on the
    /// assembled result.
    fn try_hypothetical(&self, whatif: &WhatIf) -> PlanResult<Inputs> {
        let mut inputs = self.inputs.clone();
        match whatif {
            WhatIf::Nop => {}
            WhatIf::SetPfail(p) => inputs.model = inputs.model.with_pfail(*p),
            WhatIf::SetModel(spec) => inputs.model = *spec,
            WhatIf::SetPolicy(spec) => inputs.policy = *spec,
            WhatIf::SetEvaluator(spec) => inputs.evaluator = *spec,
            WhatIf::SetProcs(n) => inputs.procs = *n,
            WhatIf::SetBandwidth(bw) => inputs.bandwidth = *bw,
            WhatIf::SetWorkflow(src) => inputs.workflow = src.clone(),
            WhatIf::SetTaskWeight { task, weight } => {
                if !weight.is_finite() || *weight < 0.0 {
                    return Err(PlanError::invalid(
                        "weight",
                        format!("must be finite and non-negative, got {weight}"),
                    ));
                }
                // The edit happens outside the stage graph (it *is* the
                // new Generate-stage input); downstream stages see a
                // changed workflow fingerprint and re-run.
                let wa = self.workflow_artifact(&self.inputs)?;
                let n = wa.workflow.dag.n_tasks();
                if *task >= n {
                    return Err(PlanError::invalid(
                        "task",
                        format!("index {task} out of range for a {n}-task workflow"),
                    ));
                }
                let mut edited = wa.workflow.clone();
                edited.dag.set_weight(TaskId(*task as u32), *weight);
                inputs.workflow = WorkflowSource::provided(edited);
            }
        }
        Ok(inputs)
    }

    /// Runs the stage graph for `inputs` against the store, recording
    /// an event per stage. `inputs` must already be validated.
    fn try_resolve(&self, inputs: &Inputs, budget: Option<&Budget>) -> PlanResult<Answer> {
        let wa = self.workflow_artifact(inputs)?;
        let w = &wa.workflow;
        let fp = wa.fp;
        let model = inputs.model.build(wa.mean_weight);
        let mfp = model_fp(&model);
        let bw_bits = inputs.bandwidth.to_bits();

        // Schedule: never reads the failure model; reads file sizes
        // only through the MinVolume linearizer.
        let mut sched_parts = vec![
            fp.structure,
            inputs.procs as u64,
            allocate_config_fp(&inputs.alloc),
        ];
        if linearizer_reads_file_sizes(inputs.alloc.linearizer) {
            sched_parts.push(fp.file_sizes);
        }
        let sched_key = compose(tag::SCHEDULE, &sched_parts);
        let schedule =
            self.memo_stage(StageId::Schedule, &self.store.schedules, sched_key, || {
                schedule_stage(w, inputs.procs, &inputs.alloc)
            })?;

        // Curve: model + span statistics (weights, sizes, bandwidth).
        let curve_key = compose(tag::CURVE, &[mfp, fp.structure, fp.file_sizes, bw_bits]);
        let curve = self.memo_stage(StageId::Curve, &self.store.curves, curve_key, || {
            curve_stage(
                &w.dag,
                &Platform::with_model(inputs.procs, model, inputs.bandwidth),
            )
        })?;

        let ctx = CostCtx {
            dag: &w.dag,
            model,
            bandwidth: inputs.bandwidth,
            curve: (*curve).as_ref(),
            budget,
        };

        // Placement: everything cost-relevant.
        let place_key = compose(
            tag::PLACEMENT,
            &[fp.combined(), mfp, bw_bits, sched_key, inputs.policy.fp()],
        );
        let plan = self.memo_stage(StageId::Placement, &self.store.plans, place_key, || {
            let policy = inputs.policy.build();
            placement_stage(
                &ctx,
                &schedule,
                policy.as_ref(),
                &mut PolicyScratch::new(),
                self.plan_threads,
            )
        })?;

        // Segment graph: same inputs as placement plus the plan itself,
        // and the plan is a pure function of the placement key — so the
        // placement key closes over this stage's inputs too.
        let graph_key = compose(tag::GRAPH, &[place_key]);
        let sg = self.memo_stage(StageId::SegmentGraph, &self.store.graphs, graph_key, || {
            segment_graph_stage(&ctx, &schedule, &plan)
        })?;

        // Analytic evaluate.
        let eval_key = compose(tag::EVAL, &[graph_key, inputs.evaluator.fp()]);
        let em = self.memo_stage(StageId::EvalAnalytic, &self.store.evals, eval_key, || {
            evaluate_stage(&sg, inputs.evaluator.build().as_ref())
        })?;

        // Monte Carlo ground truth, if configured. The one stage that
        // degrades instead of failing on an expired deadline: the
        // analytic fields above are already exact, so the answer is
        // served without ground truth and flagged.
        let mut degraded = false;
        let mc = match inputs.mc.as_ref() {
            None => None,
            Some(spec) => {
                let cfg = spec.sim_config(self.mc_threads);
                let mc_key = compose(tag::MC, &[graph_key, mfp, spec.fp()]);
                let res = self.memo_stage(StageId::EvalMc, &self.store.sims, mc_key, || {
                    traced(StageId::EvalMc, || {
                        inject(StageId::EvalMc)?;
                        match budget {
                            None => Ok(montecarlo_segments_model(&sg, &model, &cfg)),
                            Some(b) => {
                                montecarlo_segments_model_abortable(&sg, &model, &cfg, &|| {
                                    b.is_exhausted()
                                })
                                .ok_or(PlanError::Cancelled)
                            }
                        }
                    })
                });
                match res {
                    Ok(stats) => Some(*stats),
                    Err(PlanError::Cancelled) => {
                        degraded = true;
                        None
                    }
                    Err(e) => return Err(e),
                }
            }
        };

        // Answer assembly: both derivations are pure functions of
        // artifacts already keyed above, memoized so a fully warm query
        // costs O(1), not O(tasks) — the batch-amortization headroom
        // lives here.
        let stats = self
            .store
            .stats
            .get_or_compute(compose(tag::STATS, &[graph_key]), || {
                sg.placement_stats(&w.dag)
            });
        let w_par = self
            .store
            .wpars
            .get_or_compute(compose(tag::WPAR, &[sched_key]), || {
                schedule.failure_free_parallel_time(&w.dag)
            });
        Ok(Answer {
            policy: inputs.policy.name(),
            expected_makespan: *em,
            n_checkpoints: stats.segments,
            n_segments: stats.segments,
            ckpt_files: stats.ckpt_files,
            ckpt_bytes: stats.ckpt_bytes,
            w_par: *w_par,
            mc,
            degraded,
        })
    }

    /// Resolves the Generate stage: memoized synthesis for generated
    /// sources, the artifact in hand for provided ones.
    fn workflow_artifact(&self, inputs: &Inputs) -> PlanResult<Arc<WorkflowArtifact>> {
        match &inputs.workflow {
            WorkflowSource::Provided(wa) => {
                let mut span =
                    obs::span::enter_key(StageId::Generate.resolve_site(), wa.fp.combined());
                span.set_outcome(SpanOutcome::Cached);
                self.tracker.record(StageId::Generate, Outcome::Cached);
                Ok(wa.clone())
            }
            WorkflowSource::Generated {
                class,
                size,
                seed,
                ccr,
            } => {
                let mut h = Fnv1a::tagged(tag::GENERATE);
                h.write_word(class_tag(*class))
                    .write_usize(*size)
                    .write_word(*seed);
                match ccr {
                    None => h.write_word(0),
                    // CCR rescaling reads the bandwidth, so it keys in.
                    Some(c) => h.write_word(1).write_f64(*c).write_f64(inputs.bandwidth),
                };
                let key = h.finish();
                self.memo_stage(StageId::Generate, &self.store.workflows, key, || {
                    traced(StageId::Generate, || {
                        inject(StageId::Generate)?;
                        let mut workflow = pegasus::generate(*class, *size, *seed);
                        if let Some(c) = ccr {
                            pegasus::ccr::scale_to_ccr(&mut workflow, *c, inputs.bandwidth);
                        }
                        Ok(WorkflowArtifact::new(workflow))
                    })
                })
            }
        }
    }

    /// Memoized stage resolution with tracker recording: the closure
    /// runs iff the store lacks the artifact (possibly more than once —
    /// the memo retries transient failures, see
    /// [`crate::store::MAX_ATTEMPTS`]). Each resolution records exactly
    /// one event — `Executed`, `Cached`, or `Failed` with its attempt
    /// count and error kind — and one `"resolve.<stage>"` span carrying
    /// the fingerprint key, the same outcome, and this caller's attempt
    /// count. Stage-execution spans (from `ckpt_core::stage::traced`
    /// inside `f`) nest under the resolution span.
    fn memo_stage<V: Send + Sync>(
        &self,
        stage: StageId,
        memo: &Memo<V>,
        key: u64,
        f: impl Fn() -> PlanResult<V>,
    ) -> PlanResult<Arc<V>> {
        let mut span = obs::span::enter_key(stage.resolve_site(), key);
        let mut how = Resolution::default();
        let res = memo.get_or_try_compute_with(key, stage, f, &mut how);
        let outcome = match &res {
            // `e.attempts()` is the memo layer's total across takeovers
            // (what the error surfaced), not just this caller's runs.
            Err(e) => Outcome::Failed {
                attempts: e.attempts(),
                kind: e.kind(),
            },
            Ok(_) if how.computed => Outcome::Executed,
            Ok(_) => Outcome::Cached,
        };
        self.tracker.record(stage, outcome);
        span.set_attempts(how.attempts);
        span.set_outcome(match outcome {
            Outcome::Executed => SpanOutcome::Executed,
            Outcome::Cached => SpanOutcome::Cached,
            Outcome::Failed { .. } => SpanOutcome::Failed,
        });
        res
    }
}
