//! Stage-execution event tracking.
//!
//! Incremental recomputation is easy to get silently wrong in both
//! directions: under-invalidation returns stale artifacts,
//! over-invalidation quietly recomputes everything and the "incremental"
//! service is incremental in name only. The [`Tracker`] makes both
//! failure modes *assertable*: every stage resolution records whether
//! the artifact was executed or served from the store, and tests pin
//! the exact set of stages a given what-if must re-run (the
//! invalidation matrix in `tests/invalidation.rs`).

use std::collections::BTreeSet;
use std::sync::Mutex;

use ckpt_core::StageId;

/// How a stage resolution was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The stage function ran and produced a fresh artifact.
    Executed,
    /// The artifact came from the store (or was already in hand, for a
    /// provided workflow).
    Cached,
}

/// One stage resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Which stage.
    pub stage: StageId,
    /// Executed or cached.
    pub outcome: Outcome,
}

/// Records stage resolutions across a session's queries.
///
/// Recording is append-only under a mutex; batch queries interleave
/// events from concurrent workers, so order-sensitive assertions should
/// run queries serially (the tests do). [`Tracker::executed`] /
/// [`Tracker::cached`] give order-free set views.
#[derive(Default)]
pub struct Tracker {
    events: Mutex<Vec<Event>>,
}

impl Tracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event.
    pub fn record(&self, stage: StageId, outcome: Outcome) {
        self.events.lock().unwrap().push(Event { stage, outcome });
    }

    /// Snapshot of all events since the last [`Tracker::clear`].
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// The set of stages that *executed* since the last clear.
    pub fn executed(&self) -> BTreeSet<StageId> {
        self.events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.outcome == Outcome::Executed)
            .map(|e| e.stage)
            .collect()
    }

    /// The set of stages served from cache since the last clear.
    pub fn cached(&self) -> BTreeSet<StageId> {
        self.events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.outcome == Outcome::Cached)
            .map(|e| e.stage)
            .collect()
    }

    /// Number of executions of one stage since the last clear.
    pub fn executed_count(&self, stage: StageId) -> usize {
        self.events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.stage == stage && e.outcome == Outcome::Executed)
            .count()
    }

    /// Forgets all events (typically called between what-if queries so
    /// each assertion sees exactly one query's stage set).
    pub fn clear(&self) {
        self.events.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_classifies() {
        let t = Tracker::new();
        t.record(StageId::Schedule, Outcome::Executed);
        t.record(StageId::Curve, Outcome::Cached);
        t.record(StageId::Placement, Outcome::Executed);
        assert_eq!(
            t.executed(),
            [StageId::Schedule, StageId::Placement]
                .into_iter()
                .collect()
        );
        assert_eq!(t.cached(), [StageId::Curve].into_iter().collect());
        assert_eq!(t.executed_count(StageId::Placement), 1);
        t.clear();
        assert!(t.events().is_empty());
    }
}
