//! Stage-execution event tracking.
//!
//! Incremental recomputation is easy to get silently wrong in both
//! directions: under-invalidation returns stale artifacts,
//! over-invalidation quietly recomputes everything and the "incremental"
//! service is incremental in name only. The [`Tracker`] makes both
//! failure modes *assertable*: every stage resolution records whether
//! the artifact was executed or served from the store, and tests pin
//! the exact set of stages a given what-if must re-run (the
//! invalidation matrix in `tests/invalidation.rs`).

use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard};

use ckpt_core::{ErrorKind, StageId};

/// How a stage resolution was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The stage function ran and produced a fresh artifact.
    Executed,
    /// The artifact came from the store (or was already in hand, for a
    /// provided workflow).
    Cached,
    /// The stage resolution surfaced a typed error instead of an
    /// artifact. Carries *how* it failed — the error kind and how many
    /// compute attempts were made — so chaos tests can assert the
    /// failure mode, not just its existence.
    Failed {
        /// Compute attempts behind the error (see
        /// `ckpt_core::PlanError::attempts`).
        attempts: u32,
        /// Coarse classification of the error.
        kind: ErrorKind,
    },
}

/// One stage resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Which stage.
    pub stage: StageId,
    /// Executed or cached.
    pub outcome: Outcome,
}

/// Records stage resolutions across a session's queries.
///
/// Recording is append-only under a mutex; batch queries interleave
/// events from concurrent workers, so order-sensitive assertions should
/// run queries serially (the tests do). [`Tracker::executed`] /
/// [`Tracker::cached`] give order-free set views.
///
/// The mutex recovers from poisoning: a batch worker that dies between
/// `record` calls (a stage panic escaping past its catch boundary)
/// leaves a fully valid event vector — `push` either appended or it
/// didn't — and the observer reading the events must not be the second
/// casualty of a worker that already reported its own failure.
#[derive(Default)]
pub struct Tracker {
    events: Mutex<Vec<Event>>,
}

impl Tracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, Vec<Event>> {
        self.events.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends one event.
    pub fn record(&self, stage: StageId, outcome: Outcome) {
        self.lock().push(Event { stage, outcome });
    }

    /// Snapshot of all events since the last [`Tracker::clear`].
    pub fn events(&self) -> Vec<Event> {
        self.lock().clone()
    }

    fn stages_with(&self, pred: impl Fn(&Outcome) -> bool) -> BTreeSet<StageId> {
        self.lock()
            .iter()
            .filter(|e| pred(&e.outcome))
            .map(|e| e.stage)
            .collect()
    }

    /// The set of stages that *executed* since the last clear.
    pub fn executed(&self) -> BTreeSet<StageId> {
        self.stages_with(|o| matches!(o, Outcome::Executed))
    }

    /// The set of stages served from cache since the last clear.
    pub fn cached(&self) -> BTreeSet<StageId> {
        self.stages_with(|o| matches!(o, Outcome::Cached))
    }

    /// The set of stages whose resolution failed since the last clear.
    pub fn failed(&self) -> BTreeSet<StageId> {
        self.stages_with(|o| matches!(o, Outcome::Failed { .. }))
    }

    /// Every failure since the last clear, with its attempt count and
    /// error kind, in record order.
    pub fn failures(&self) -> Vec<(StageId, u32, ErrorKind)> {
        self.lock()
            .iter()
            .filter_map(|e| match e.outcome {
                Outcome::Failed { attempts, kind } => Some((e.stage, attempts, kind)),
                _ => None,
            })
            .collect()
    }

    /// Number of executions of one stage since the last clear.
    pub fn executed_count(&self, stage: StageId) -> usize {
        self.lock()
            .iter()
            .filter(|e| e.stage == stage && e.outcome == Outcome::Executed)
            .count()
    }

    /// Forgets all events (typically called between what-if queries so
    /// each assertion sees exactly one query's stage set).
    pub fn clear(&self) {
        self.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_classifies() {
        let t = Tracker::new();
        t.record(StageId::Schedule, Outcome::Executed);
        t.record(StageId::Curve, Outcome::Cached);
        t.record(StageId::Placement, Outcome::Executed);
        assert_eq!(
            t.executed(),
            [StageId::Schedule, StageId::Placement]
                .into_iter()
                .collect()
        );
        assert_eq!(t.cached(), [StageId::Curve].into_iter().collect());
        assert_eq!(t.executed_count(StageId::Placement), 1);
        t.clear();
        assert!(t.events().is_empty());
    }

    #[test]
    fn failed_outcomes_classify_separately_and_carry_the_mode() {
        let t = Tracker::new();
        t.record(
            StageId::Placement,
            Outcome::Failed {
                attempts: 3,
                kind: ErrorKind::StageFailed,
            },
        );
        t.record(StageId::Schedule, Outcome::Executed);
        t.record(
            StageId::EvalMc,
            Outcome::Failed {
                attempts: 1,
                kind: ErrorKind::Cancelled,
            },
        );
        assert_eq!(
            t.failed(),
            [StageId::Placement, StageId::EvalMc].into_iter().collect()
        );
        assert_eq!(t.executed(), [StageId::Schedule].into_iter().collect());
        assert!(t.cached().is_empty());
        assert_eq!(
            t.failures(),
            vec![
                (StageId::Placement, 3, ErrorKind::StageFailed),
                (StageId::EvalMc, 1, ErrorKind::Cancelled),
            ]
        );
    }

    #[test]
    fn poisoned_tracker_keeps_observing() {
        use std::sync::Arc;
        let t = Arc::new(Tracker::new());
        t.record(StageId::Schedule, Outcome::Executed);
        let t2 = t.clone();
        // Die while holding the event lock: the vector is still valid
        // (push is atomic w.r.t. the lock), so observers must recover.
        let _ = std::thread::spawn(move || {
            let _g = t2.events.lock().unwrap();
            panic!("worker dies mid-observation");
        })
        .join();
        t.record(StageId::Curve, Outcome::Cached);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.executed_count(StageId::Schedule), 1);
    }
}
