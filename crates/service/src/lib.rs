//! # ckpt-service — incremental what-if planning sessions
//!
//! The paper's planner is a one-shot function: workflow → schedule →
//! placement → segment graph → expected makespan. A long-lived planning
//! service needs the opposite shape — "what if λ drifted overnight?",
//! "what if we switch to Daly periodic?", "what if the platform grows
//! to 32 processors?" — answered in microseconds, not by rebuilding the
//! chain from scratch per query.
//!
//! This crate provides that shape on top of `ckpt_core`'s explicit
//! stage graph (`ckpt_core::stage`):
//!
//! * [`Store`] / [`Memo`] — bounded, concurrent, fingerprint-keyed
//!   artifact caches with deterministic LRU eviction. Stages are pure,
//!   so hits are always sound and eviction only ever costs a recompute.
//! * [`Session`] — holds one set of planning [`Inputs`] and answers
//!   [`WhatIf`] queries (λ drift, model/policy swap, platform rescale,
//!   workflow edit) by re-executing exactly the stages whose input
//!   fingerprints changed. Batched queries fan out on a thread pool and
//!   stay byte-identical for every budget.
//! * [`Tracker`] — records, per stage resolution, whether the artifact
//!   was executed or served from the store, so tests can assert the
//!   invalidation matrix exactly (a λ drift re-runs curve + placement +
//!   segment-graph + evaluate and nothing else; a no-op runs nothing).
//!
//! ```
//! use ckpt_service::{Inputs, ModelSpec, Session, WhatIf, WorkflowSource};
//!
//! let source = WorkflowSource::Generated {
//!     class: pegasus::WorkflowClass::Montage,
//!     size: 50,
//!     seed: 7,
//!     ccr: Some(0.05),
//! };
//! let inputs = Inputs::basic(source, 8, 1e8, ModelSpec::Exponential { pfail: 1e-3 });
//! let mut session = Session::new(inputs);
//! let before = session.baseline();
//! // λ drifted overnight: only curve/placement/graph/evaluate re-run.
//! let after = session.query(&WhatIf::SetPfail(2e-3));
//! assert!(after.expected_makespan >= before.expected_makespan);
//! session.apply(&WhatIf::SetPfail(2e-3));
//! ```
//!
//! See `DESIGN.md` §10 for the fingerprint scheme and the soundness
//! argument.

pub mod session;
pub mod store;
pub mod tracker;

pub use ckpt_core::{Budget, ErrorKind, PlanError, PlanResult};
pub use session::{
    Answer, EvalSpec, Inputs, McSpec, ModelSpec, PolicySpec, Session, WhatIf, WorkflowSource,
};
pub use store::{Memo, MemoStats, Resolution, Store, StoreStats, WorkflowArtifact, MAX_ATTEMPTS};
pub use tracker::{Event, Outcome, Tracker};
