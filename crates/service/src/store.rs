//! Fingerprint-keyed artifact memos, hardened against dying workers.
//!
//! A [`Memo`] maps a 64-bit input fingerprint to one immutable
//! artifact. Because every pipeline stage is a *pure* function of the
//! fingerprinted inputs (see `ckpt_core::stage`), a memo hit is always
//! sound — the cached artifact is bit-identical to what a recompute
//! would produce — and eviction can never change a result, only cost a
//! recompute. That is what lets the bounded cache stay exact.
//!
//! ## Slot state machine
//!
//! The map hands out per-key `Arc<Slot>`s under a brief mutex; racing
//! workers then synchronize on the *slot*, not the map. Each slot is an
//! explicit state machine (`Idle → InFlight → Done | Failed`) driven
//! under its own mutex + condvar:
//!
//! * exactly one worker computes at a time (`InFlight`); waiters block
//!   on the condvar (with a periodic timeout re-check, so even a lost
//!   wakeup could only cost milliseconds, never a hang);
//! * the compute closure runs under `catch_unwind` — a worker that
//!   **panics** (a genuine bug or an injected fault) marks the slot
//!   `Idle` again and the next caller *takes over* with its own
//!   closure (pure-function contract: any caller's closure computes
//!   the same artifact), up to [`MAX_ATTEMPTS`] total failures;
//! * at the attempt bound the slot turns terminally `Failed` and the
//!   key is **removed from the map** — waiters already parked on the
//!   slot get the typed error, while any later query starts a fresh
//!   slot. The store self-heals: once a transient fault source clears,
//!   answers are byte-identical to a cold session's, because nothing
//!   partial or failed is ever served from the map;
//! * a **cancelled** worker (deadline unwind, see `ckpt_core::budget`)
//!   is not a failure: the slot returns to `Idle` with its failure
//!   count untouched and the canceller alone observes
//!   `PlanError::Cancelled` — one query's deadline never degrades
//!   another query's cache;
//! * deterministic errors (`InvalidInput`, `Numeric`) skip retry
//!   entirely — re-running the same pure closure cannot change them.
//!
//! Every mutex acquisition recovers from poisoning
//! (`unwrap_or_else(|e| e.into_inner())`): all state transitions are
//! whole-value assignments, so a worker dying between transitions can
//! strand no invariant, and one dying worker must never take the whole
//! store's observers down with it.
//!
//! Eviction is deterministic least-recently-used: a monotone clock
//! stamps every access under the same lock, so for a given (serial)
//! access sequence the evicted keys are a pure function of that
//! sequence — no randomness, no dependence on hash iteration order
//! (clock stamps are unique, so the LRU minimum is too).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use ckpt_core::budget::Cancelled;
use ckpt_core::{PlanError, PlanResult, StageId};

/// Total compute failures (panics or injected stage errors) tolerated
/// per slot before it turns terminally [`SlotState::Failed`]. Three
/// means: the original attempt plus two retries — enough to ride out
/// sparse injected faults, small enough that a deterministic crasher
/// fails fast.
pub const MAX_ATTEMPTS: u32 = 3;

/// How long a waiter parks on the slot condvar before re-checking the
/// state. Purely defensive: the protocol always notifies, so this
/// bounds the cost of a hypothetical lost wakeup without ever being the
/// mechanism that makes progress.
const WAIT_RECHECK: Duration = Duration::from_millis(50);

enum SlotState<V> {
    /// Nobody computing; the next caller takes over. `failures` counts
    /// compute failures accumulated across takeovers.
    Idle { failures: u32 },
    /// One worker is running the compute closure. (The worker tracks
    /// the accumulated failure count in a local — nobody else reads it
    /// until the slot leaves this state.)
    InFlight,
    /// The artifact is ready; served to every caller forever.
    Done(Arc<V>),
    /// Terminal: the error every parked waiter receives. The key is
    /// removed from the map at this transition, so fresh queries
    /// recompute on a new slot instead of inheriting the corpse.
    Failed(PlanError),
}

struct Slot<V> {
    state: Mutex<SlotState<V>>,
    cv: Condvar,
}

impl<V> Slot<V> {
    fn new() -> Self {
        Slot {
            state: Mutex::new(SlotState::Idle { failures: 0 }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SlotState<V>> {
        // Poison recovery: transitions are whole-value assignments, so
        // the state is valid even if a holder died (it cannot — no user
        // code runs under this lock — but the store must not assume).
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

struct Entry<V> {
    slot: Arc<Slot<V>>,
    last_use: u64,
}

struct Inner<V> {
    map: HashMap<u64, Entry<V>>,
    clock: u64,
}

/// Hit/miss/eviction/failure counters of one [`Memo`] (monotone; read
/// with [`Memo::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Accesses that found an existing entry (the artifact may still
    /// have been mid-computation by another worker).
    pub hits: u64,
    /// Accesses that created the entry and ran the compute closure.
    pub misses: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Compute attempts that started on a slot carrying prior failures
    /// (bounded-retry activity; see [`MAX_ATTEMPTS`]).
    pub retries: u64,
    /// Computes claimed by a caller that had first parked behind
    /// another worker (waiter takeover after a death or cancellation).
    pub takeovers: u64,
    /// Slots that turned terminally failed (and were removed).
    pub failures: u64,
}

impl MemoStats {
    /// Field-wise accumulation (the store's totals row).
    pub fn absorb(&mut self, other: MemoStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.retries += other.retries;
        self.takeovers += other.takeovers;
        self.failures += other.failures;
    }
}

impl std::fmt::Display for MemoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} evictions={} retries={} takeovers={} failures={}",
            self.hits, self.misses, self.evictions, self.retries, self.takeovers, self.failures
        )
    }
}

/// How one [`Memo::get_or_try_compute_with`] call was satisfied, from
/// the *calling session's* point of view. This is deliberately an
/// out-parameter rather than part of the value: resolution telemetry
/// must never contaminate the memoized artifact (which is shared and
/// scheduling-independent), while who-computed-what is inherently
/// per-caller and scheduling-dependent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Resolution {
    /// Whether this caller's own closure produced the final value.
    pub computed: bool,
    /// Compute attempts this caller ran (a successful one included).
    pub attempts: u32,
    /// Whether this caller parked behind another worker at least once.
    pub waited: bool,
}

/// How one compute attempt ended (internal classification of closure
/// results and caught unwinds).
enum Attempt<V> {
    Value(V),
    /// Budget unwind — not a failure, not retried here.
    Cancelled,
    /// Deterministic error: retry cannot help.
    Fatal(PlanError),
    /// Panic or injected stage error: retryable until [`MAX_ATTEMPTS`].
    Transient(String),
}

/// A bounded, concurrent, fingerprint-keyed artifact cache.
pub struct Memo<V> {
    inner: Mutex<Inner<V>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    retries: AtomicU64,
    takeovers: AtomicU64,
    failures: AtomicU64,
}

/// Cached handle for the budget-cancellation counter (resolved once;
/// inert without the `observe` feature).
fn cancellations_total() -> &'static obs::metrics::Counter {
    static C: std::sync::OnceLock<obs::metrics::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| obs::metrics::counter("ckpt_cancellations_total"))
}

/// Cached handle for the fault-injection firing counter. Injected
/// faults are recognized at the memo boundary by the `faultinject:`
/// panic/message prefix — the same marker the chaos tests key on.
fn fault_injections_total() -> &'static obs::metrics::Counter {
    static C: std::sync::OnceLock<obs::metrics::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| obs::metrics::counter("ckpt_fault_injections_total"))
}

impl<V> Memo<V> {
    /// Unbounded memo (no eviction).
    pub fn new() -> Self {
        Self::bounded(0)
    }

    /// Memo holding at most `capacity` entries (`0` = unbounded),
    /// evicting the least-recently-used entry on overflow.
    pub fn bounded(capacity: usize) -> Self {
        Memo {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            takeovers: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }

    fn lock_inner(&self) -> MutexGuard<'_, Inner<V>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The slot for `key`, creating (and LRU-evicting) as needed.
    fn slot(&self, key: u64) -> Arc<Slot<V>> {
        let mut g = self.lock_inner();
        g.clock += 1;
        let now = g.clock;
        if let Some(e) = g.map.get_mut(&key) {
            e.last_use = now;
            self.hits.fetch_add(1, Ordering::Relaxed);
            e.slot.clone()
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            let slot = Arc::new(Slot::new());
            g.map.insert(
                key,
                Entry {
                    slot: slot.clone(),
                    last_use: now,
                },
            );
            if self.capacity > 0 && g.map.len() > self.capacity {
                // Unique clock stamps make the LRU minimum unique,
                // so eviction order never depends on hash order.
                let victim = g
                    .map
                    .iter()
                    .filter(|&(&k, _)| k != key)
                    .min_by_key(|(_, e)| e.last_use)
                    .map(|(&k, _)| k);
                if let Some(k) = victim {
                    g.map.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            slot
        }
    }

    /// Removes `key` iff it still points at `slot` (a terminally failed
    /// slot must not knock out a fresh successor entry).
    fn remove_slot(&self, key: u64, slot: &Arc<Slot<V>>) {
        let mut g = self.lock_inner();
        if g.map.get(&key).is_some_and(|e| Arc::ptr_eq(&e.slot, slot)) {
            g.map.remove(&key);
        }
    }

    /// Runs one compute attempt under `catch_unwind` and classifies the
    /// outcome. `AssertUnwindSafe` is justified by the purity contract:
    /// the closure owns no state that outlives it except through the
    /// slot, whose transitions are whole-value assignments.
    fn run_attempt(f: &impl Fn() -> PlanResult<V>) -> Attempt<V> {
        let attempt = match catch_unwind(AssertUnwindSafe(f)) {
            Ok(Ok(v)) => Attempt::Value(v),
            Ok(Err(PlanError::Cancelled)) => Attempt::Cancelled,
            Ok(Err(e @ (PlanError::InvalidInput { .. } | PlanError::Numeric { .. }))) => {
                Attempt::Fatal(e)
            }
            Ok(Err(PlanError::StageFailed { message, .. })) => Attempt::Transient(message),
            Err(payload) => {
                if Cancelled::caught(payload.as_ref()) {
                    Attempt::Cancelled
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    Attempt::Transient(s.clone())
                } else if let Some(s) = payload.downcast_ref::<&str>() {
                    Attempt::Transient((*s).to_string())
                } else {
                    Attempt::Transient("panic with non-string payload".to_string())
                }
            }
        };
        // Metric classification rides on the same funnel that already
        // sees every attempt outcome; it never alters the attempt.
        match &attempt {
            Attempt::Cancelled => cancellations_total().inc(),
            Attempt::Transient(message)
                if message.starts_with(seedmix::faultinject::PANIC_PREFIX) =>
            {
                fault_injections_total().inc()
            }
            _ => {}
        }
        attempt
    }

    /// The artifact for `key`, computing it with `f` on first access.
    ///
    /// `f` must be a pure function of the content `key` fingerprints —
    /// the whole soundness story rests on that contract; it is also
    /// what makes waiter takeover sound (any caller's closure computes
    /// the same artifact) and why `f` is `Fn`, not `FnOnce`: a caller
    /// whose attempt fails retries with the same closure.
    ///
    /// At most one worker computes per slot at a time. A worker that
    /// panics or returns [`PlanError::StageFailed`] yields the slot for
    /// retry/takeover; after [`MAX_ATTEMPTS`] total failures the slot
    /// is terminally failed, every parked waiter gets the error, and
    /// the key is removed so later queries recompute fresh. A
    /// [`PlanError::Cancelled`] unwind returns the slot untouched to
    /// `Idle` and surfaces only to the cancelled caller. Nothing is
    /// ever served from a slot except a fully computed artifact.
    ///
    /// `stage` labels errors built from caught panics.
    pub fn get_or_try_compute(
        &self,
        key: u64,
        stage: StageId,
        f: impl Fn() -> PlanResult<V>,
    ) -> PlanResult<Arc<V>> {
        self.get_or_try_compute_with(key, stage, f, &mut Resolution::default())
    }

    /// [`Memo::get_or_try_compute`] that additionally reports *how*
    /// this call was satisfied through the [`Resolution`] out-param
    /// (own compute vs. store, attempts run, whether it ever waited).
    /// The session's tracker events and resolution spans are built
    /// from this — the returned artifact is identical either way.
    pub fn get_or_try_compute_with(
        &self,
        key: u64,
        stage: StageId,
        f: impl Fn() -> PlanResult<V>,
        res: &mut Resolution,
    ) -> PlanResult<Arc<V>> {
        *res = Resolution::default();
        let slot = self.slot(key);
        let mut g = slot.lock();
        loop {
            match &*g {
                SlotState::Done(v) => return Ok(v.clone()),
                SlotState::Failed(e) => return Err(e.clone()),
                SlotState::InFlight => {
                    res.waited = true;
                    // Timed re-check instead of a bare wait: progress
                    // never depends on a notification arriving.
                    let (guard, _timeout) = slot
                        .cv
                        .wait_timeout(g, WAIT_RECHECK)
                        .unwrap_or_else(|e| e.into_inner());
                    g = guard;
                }
                SlotState::Idle { failures } => {
                    let prior = *failures;
                    *g = SlotState::InFlight;
                    drop(g);
                    if prior > 0 {
                        self.retries.fetch_add(1, Ordering::Relaxed);
                    }
                    if res.waited {
                        self.takeovers.fetch_add(1, Ordering::Relaxed);
                    }
                    res.attempts += 1;
                    let outcome = Self::run_attempt(&f);
                    g = slot.lock();
                    match outcome {
                        Attempt::Value(v) => {
                            res.computed = true;
                            let v = Arc::new(v);
                            *g = SlotState::Done(v.clone());
                            slot.cv.notify_all();
                            return Ok(v);
                        }
                        Attempt::Cancelled => {
                            // Not a fault: hand the slot back untouched
                            // so a waiter with a live budget takes over.
                            *g = SlotState::Idle { failures: prior };
                            slot.cv.notify_all();
                            return Err(PlanError::Cancelled);
                        }
                        Attempt::Fatal(e) => {
                            *g = SlotState::Failed(e.clone());
                            drop(g);
                            self.failures.fetch_add(1, Ordering::Relaxed);
                            self.remove_slot(key, &slot);
                            slot.cv.notify_all();
                            return Err(e);
                        }
                        Attempt::Transient(message) => {
                            let attempts = prior + 1;
                            if attempts >= MAX_ATTEMPTS {
                                let e = PlanError::StageFailed {
                                    stage,
                                    message,
                                    attempts,
                                };
                                *g = SlotState::Failed(e.clone());
                                drop(g);
                                self.failures.fetch_add(1, Ordering::Relaxed);
                                self.remove_slot(key, &slot);
                                slot.cv.notify_all();
                                return Err(e);
                            }
                            *g = SlotState::Idle { failures: attempts };
                            slot.cv.notify_all();
                            // Loop: retry with our own closure (a
                            // waiter may beat us to the takeover, in
                            // which case we park on InFlight).
                        }
                    }
                }
            }
        }
    }

    /// Infallible-closure convenience over [`Memo::get_or_try_compute`]
    /// (the offline callers: bench caches, statistics memos).
    ///
    /// # Panics
    /// Re-raises a terminal failure as a panic — for a closure that
    /// cannot return an error, a failure here means the closure itself
    /// panicked [`MAX_ATTEMPTS`] times.
    pub fn get_or_compute(&self, key: u64, f: impl Fn() -> V) -> Arc<V> {
        self.get_or_try_compute(key, StageId::Generate, || Ok(f()))
            .unwrap_or_else(|e| panic!("memo compute failed: {e}"))
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.lock_inner().map.len()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the access counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            takeovers: self.takeovers.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
        }
    }

    /// Drops every entry (counters keep accumulating).
    pub fn clear(&self) {
        self.lock_inner().map.clear();
    }
}

impl<V> Default for Memo<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// One memo per stage artifact kind — the session's shared store.
///
/// Keys are *stage-input fingerprints* (see `ckpt_core::fingerprint`
/// and the composition scheme in [`crate::session`]); values are the
/// immutable stage artifacts. Sessions share a store via `Arc`, so a
/// fleet of sessions over the same workflow family pools artifacts.
pub struct Store {
    /// Generated (and CCR-scaled) workflows with their fingerprints.
    pub workflows: Memo<WorkflowArtifact>,
    /// Algorithm 1 schedules.
    pub schedules: Memo<ckpt_core::Schedule>,
    /// Renewal restart curves (`None` = memoryless/never-failing).
    pub curves: Memo<Option<ckpt_core::RestartCurve>>,
    /// Checkpoint plans.
    pub plans: Memo<ckpt_core::CheckpointPlan>,
    /// Coalesced 2-state segment graphs.
    pub graphs: Memo<ckpt_core::SegmentGraph>,
    /// Analytic expected-makespan estimates.
    pub evals: Memo<f64>,
    /// Monte Carlo ground-truth estimates.
    pub sims: Memo<failsim::McStats>,
    /// Failure-free parallel times (keyed by schedule key — the answer
    /// assembly must stay O(1) per warm query, not O(tasks)).
    pub wpars: Memo<f64>,
    /// Placement-statistic censuses (keyed by graph key, same reason).
    pub stats: Memo<ckpt_core::PlacementStats>,
}

/// A workflow together with its content fingerprint and summary
/// statistics (computed once, reused by every downstream key
/// derivation and model calibration).
pub struct WorkflowArtifact {
    /// The workflow itself.
    pub workflow: mspg::Workflow,
    /// Its two-part content fingerprint.
    pub fp: ckpt_core::WorkflowFp,
    /// Mean task weight (the calibrated model families read it on
    /// every query).
    pub mean_weight: f64,
}

impl WorkflowArtifact {
    /// Fingerprints and summarizes `workflow`.
    pub fn new(workflow: mspg::Workflow) -> Self {
        let fp = ckpt_core::workflow_fp(&workflow);
        let mean_weight = workflow.dag.mean_weight();
        WorkflowArtifact {
            workflow,
            fp,
            mean_weight,
        }
    }
}

/// Aggregated statistics of a whole [`Store`]: the totals row plus a
/// per-memo breakdown, in the store's declaration order. Printed by
/// `whatif --stats` and exported to the metrics registry by
/// [`Store::export_metrics`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Sum over every memo.
    pub totals: MemoStats,
    /// `(memo name, its counters)`, declaration-ordered.
    pub per_memo: Vec<(&'static str, MemoStats)>,
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "store: {}", self.totals)?;
        for (name, stats) in &self.per_memo {
            writeln!(f, "  {name}: {stats}")?;
        }
        Ok(())
    }
}

impl Store {
    /// Unbounded store.
    pub fn new() -> Self {
        Self::bounded(0)
    }

    /// Store whose memos each hold at most `capacity` entries
    /// (`0` = unbounded), evicting LRU.
    pub fn bounded(capacity: usize) -> Self {
        Store {
            workflows: Memo::bounded(capacity),
            schedules: Memo::bounded(capacity),
            curves: Memo::bounded(capacity),
            plans: Memo::bounded(capacity),
            graphs: Memo::bounded(capacity),
            evals: Memo::bounded(capacity),
            sims: Memo::bounded(capacity),
            wpars: Memo::bounded(capacity),
            stats: Memo::bounded(capacity),
        }
    }

    /// Snapshot of every memo's counters plus the totals row.
    pub fn stats(&self) -> StoreStats {
        let per_memo: Vec<(&'static str, MemoStats)> = vec![
            ("workflows", self.workflows.stats()),
            ("schedules", self.schedules.stats()),
            ("curves", self.curves.stats()),
            ("plans", self.plans.stats()),
            ("graphs", self.graphs.stats()),
            ("evals", self.evals.stats()),
            ("sims", self.sims.stats()),
            ("wpars", self.wpars.stats()),
            ("stats", self.stats.stats()),
        ];
        let mut totals = MemoStats::default();
        for (_, s) in &per_memo {
            totals.absorb(*s);
        }
        StoreStats { totals, per_memo }
    }

    /// Copies the store's counters into the global metrics registry as
    /// `ckpt_store_*_total{memo="..."}` series. The counters are
    /// monotone snapshots: call once per run, at dump time (repeated
    /// calls would double-count). Inert without the `observe` feature.
    pub fn export_metrics(&self) {
        for (name, s) in self.stats().per_memo {
            obs::metrics::labeled_counter("ckpt_store_hits_total", "memo", name).add(s.hits);
            obs::metrics::labeled_counter("ckpt_store_misses_total", "memo", name).add(s.misses);
            obs::metrics::labeled_counter("ckpt_store_evictions_total", "memo", name)
                .add(s.evictions);
            obs::metrics::labeled_counter("ckpt_store_retries_total", "memo", name).add(s.retries);
            obs::metrics::labeled_counter("ckpt_store_takeovers_total", "memo", name)
                .add(s.takeovers);
            obs::metrics::labeled_counter("ckpt_store_terminal_failures_total", "memo", name)
                .add(s.failures);
        }
    }
}

impl Default for Store {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn computes_once_per_key() {
        let memo: Memo<u64> = Memo::new();
        let calls = Cell::new(0);
        for _ in 0..3 {
            let v = memo.get_or_compute(7, || {
                calls.set(calls.get() + 1);
                42
            });
            assert_eq!(*v, 42);
        }
        assert_eq!(calls.get(), 1);
        let s = memo.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (2, 1, 0));
    }

    #[test]
    fn lru_eviction_is_deterministic() {
        let memo: Memo<u64> = Memo::bounded(2);
        memo.get_or_compute(1, || 1);
        memo.get_or_compute(2, || 2);
        memo.get_or_compute(1, || 1); // touch 1 → 2 is now LRU
        memo.get_or_compute(3, || 3); // evicts 2
        assert_eq!(memo.len(), 2);
        let recomputed = Cell::new(false);
        memo.get_or_compute(2, || {
            recomputed.set(true);
            2
        });
        assert!(recomputed.get(), "evicted key must recompute");
        let recomputed1 = Cell::new(false);
        memo.get_or_compute(1, || {
            recomputed1.set(true);
            1
        });
        // 1 was evicted when 2 was re-inserted (LRU at that point was 3?
        // no: after inserting 2 the map held {1,3,2} → evict LRU(1)).
        assert!(recomputed1.get());
        assert!(memo.stats().evictions >= 2);
    }

    #[test]
    fn eviction_never_changes_values() {
        // With capacity 1 every access but the first evicts, yet the
        // values are always what the pure closure yields.
        let memo: Memo<u64> = Memo::bounded(1);
        for round in 0..3 {
            for k in 0..4u64 {
                let v = memo.get_or_compute(k, || k * 10);
                assert_eq!(*v, k * 10, "round {round}");
            }
        }
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn concurrent_same_key_executes_once() {
        let memo: Memo<u64> = Memo::new();
        let calls = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let v = memo.get_or_compute(99, || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(5));
                        7
                    });
                    assert_eq!(*v, 7);
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let memo: Memo<u64> = Memo::new();
        memo.get_or_compute(1, || 1);
        memo.clear();
        assert!(memo.is_empty());
        assert_eq!(memo.stats().misses, 1);
    }

    #[test]
    fn panicking_closure_is_retried_then_succeeds() {
        let memo: Memo<u64> = Memo::new();
        let calls = Cell::new(0u32);
        let v = memo
            .get_or_try_compute(5, StageId::Placement, || {
                calls.set(calls.get() + 1);
                if calls.get() == 1 {
                    panic!("injected first-attempt death");
                }
                Ok(13)
            })
            .expect("retry must recover a transient panic");
        assert_eq!(*v, 13);
        assert_eq!(calls.get(), 2);
        assert_eq!(memo.stats().failures, 0, "recovered, not terminal");
    }

    #[test]
    fn persistent_panic_turns_terminal_and_self_heals() {
        let memo: Memo<u64> = Memo::new();
        let calls = Cell::new(0u32);
        let err = memo
            .get_or_try_compute(5, StageId::Curve, || -> PlanResult<u64> {
                calls.set(calls.get() + 1);
                panic!("always dies");
            })
            .unwrap_err();
        assert_eq!(calls.get(), MAX_ATTEMPTS);
        match &err {
            PlanError::StageFailed {
                stage,
                message,
                attempts,
            } => {
                assert_eq!(*stage, StageId::Curve);
                assert_eq!(*attempts, MAX_ATTEMPTS);
                assert!(message.contains("always dies"));
            }
            other => panic!("expected StageFailed, got {other}"),
        }
        assert_eq!(memo.stats().failures, 1);
        // Self-healing: the key was removed, so once the fault source
        // clears the next access recomputes fresh and succeeds.
        assert!(memo.is_empty());
        let v = memo
            .get_or_try_compute(5, StageId::Curve, || Ok(99))
            .unwrap();
        assert_eq!(*v, 99);
    }

    #[test]
    fn deterministic_errors_are_not_retried() {
        let memo: Memo<u64> = Memo::new();
        let calls = Cell::new(0u32);
        let err = memo
            .get_or_try_compute(1, StageId::Schedule, || {
                calls.set(calls.get() + 1);
                Err(PlanError::invalid("procs", "zero"))
            })
            .unwrap_err();
        assert_eq!(calls.get(), 1, "InvalidInput must not retry");
        assert!(matches!(err, PlanError::InvalidInput { .. }));
        assert!(memo.is_empty(), "failed key must not linger");
    }

    #[test]
    fn cancellation_leaves_the_slot_reusable_and_uncounted() {
        let memo: Memo<u64> = Memo::new();
        let err = memo
            .get_or_try_compute(3, StageId::Placement, || -> PlanResult<u64> {
                ckpt_core::Cancelled::throw()
            })
            .unwrap_err();
        assert_eq!(err, PlanError::Cancelled);
        assert_eq!(memo.stats().failures, 0);
        // A later caller with a live budget computes normally.
        let v = memo
            .get_or_try_compute(3, StageId::Placement, || Ok(8))
            .unwrap();
        assert_eq!(*v, 8);
    }

    #[test]
    fn waiters_take_over_after_the_first_worker_dies() {
        // The memo-slot abandonment regression (see also the
        // robustness integration suite for the full thread matrix):
        // worker 0 panics mid-compute; concurrent waiters on the same
        // key must still obtain the correct value via takeover.
        let memo: Memo<u64> = Memo::new();
        let deaths = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let r = memo.get_or_try_compute(77, StageId::EvalAnalytic, || {
                        if deaths.fetch_add(1, Ordering::SeqCst) == 0 {
                            panic!("first worker dies");
                        }
                        Ok(1234)
                    });
                    // The dying worker itself retries (its closure only
                    // panics once), so every caller ends with the value.
                    assert_eq!(*r.expect("takeover must recover"), 1234);
                });
            }
        });
    }

    #[test]
    fn resolution_reports_who_computed_and_attempt_counts() {
        let memo: Memo<u64> = Memo::new();
        let mut res = Resolution::default();
        let v = memo
            .get_or_try_compute_with(9, StageId::Curve, || Ok(5), &mut res)
            .unwrap();
        assert_eq!(*v, 5);
        assert!(res.computed);
        assert_eq!(1, res.attempts);
        assert!(!res.waited);
        // Second access: pure store hit, zero attempts.
        let mut res = Resolution::default();
        let v = memo
            .get_or_try_compute_with(9, StageId::Curve, || Ok(5), &mut res)
            .unwrap();
        assert_eq!(*v, 5);
        assert!(!res.computed);
        assert_eq!(0, res.attempts);
        assert!(!res.waited);
    }

    #[test]
    fn a_transient_death_counts_one_retry_and_two_attempts() {
        let memo: Memo<u64> = Memo::new();
        let calls = Cell::new(0u32);
        let mut res = Resolution::default();
        let v = memo
            .get_or_try_compute_with(
                5,
                StageId::Placement,
                || {
                    calls.set(calls.get() + 1);
                    if calls.get() == 1 {
                        panic!("first-attempt death");
                    }
                    Ok(13)
                },
                &mut res,
            )
            .unwrap();
        assert_eq!(*v, 13);
        assert!(res.computed);
        assert_eq!(2, res.attempts, "failed attempt + successful retry");
        let s = memo.stats();
        assert_eq!(1, s.retries);
        assert_eq!(0, s.takeovers, "same caller retried; nobody waited");
    }

    #[test]
    fn a_waiter_that_claims_the_slot_counts_as_takeover() {
        let memo: Memo<u64> = Memo::new();
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                // The closure runs strictly after the slot turns
                // InFlight, so the barrier guarantees the main thread
                // can only ever observe InFlight and park.
                let r = memo.get_or_try_compute(1, StageId::Curve, || -> PlanResult<u64> {
                    barrier.wait();
                    std::thread::sleep(Duration::from_millis(30));
                    ckpt_core::Cancelled::throw()
                });
                assert_eq!(r.unwrap_err(), PlanError::Cancelled);
            });
            barrier.wait();
            let mut res = Resolution::default();
            let v = memo
                .get_or_try_compute_with(1, StageId::Curve, || Ok(77), &mut res)
                .unwrap();
            assert_eq!(*v, 77);
            assert!(res.waited, "must have parked behind the canceller");
            assert!(res.computed, "and then claimed the compute");
        });
        assert_eq!(1, memo.stats().takeovers);
        assert_eq!(0, memo.stats().retries, "cancellation is not a failure");
    }

    #[test]
    fn store_stats_aggregates_every_memo_with_a_totals_row() {
        let store = Store::new();
        store.evals.get_or_compute(1, || 1.0);
        store.evals.get_or_compute(1, || 1.0); // hit
        store.wpars.get_or_compute(2, || 3.0);
        let s = store.stats();
        assert_eq!(9, s.per_memo.len(), "one row per memo");
        assert_eq!(1, s.totals.hits);
        assert_eq!(2, s.totals.misses);
        let text = s.to_string();
        assert!(text.starts_with("store: hits=1 misses=2"));
        assert!(text.contains("evals: hits=1 misses=1"));
        assert!(text.contains("wpars: hits=0 misses=1"));
    }

    #[test]
    fn poisoned_map_mutex_recovers() {
        // Poison the *map* mutex by panicking while holding it, then
        // verify the memo still serves. (Slot mutexes never run user
        // code under lock, but the recovery discipline covers both.)
        let memo = Arc::new(Memo::<u64>::new());
        let m = memo.clone();
        let _ = std::thread::spawn(move || {
            let _g = m.lock_inner();
            panic!("die holding the map lock");
        })
        .join();
        let v = memo.get_or_compute(1, || 11);
        assert_eq!(*v, 11);
    }
}
