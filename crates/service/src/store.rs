//! Fingerprint-keyed artifact memos.
//!
//! A [`Memo`] maps a 64-bit input fingerprint to one immutable
//! artifact. Because every pipeline stage is a *pure* function of the
//! fingerprinted inputs (see `ckpt_core::stage`), a memo hit is always
//! sound — the cached artifact is bit-identical to what a recompute
//! would produce — and eviction can never change a result, only cost a
//! recompute. That is what lets the bounded cache stay exact.
//!
//! Concurrency follows the bench engine's proven slot pattern: the map
//! hands out per-key `Arc<OnceLock<…>>` slots under a brief mutex, and
//! racing workers then block on the *slot*, not the map — exactly one
//! executes the stage, the rest wait for its artifact. An entry evicted
//! while a worker is still filling its slot detaches harmlessly: the
//! worker's `Arc` keeps the slot alive and its result is simply not
//! re-inserted.
//!
//! Eviction is deterministic least-recently-used: a monotone clock
//! stamps every access under the same lock, so for a given (serial)
//! access sequence the evicted keys are a pure function of that
//! sequence — no randomness, no dependence on hash iteration order
//! (clock stamps are unique, so the LRU minimum is too).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

type SharedSlot<V> = Arc<OnceLock<Arc<V>>>;

struct Entry<V> {
    slot: SharedSlot<V>,
    last_use: u64,
}

struct Inner<V> {
    map: HashMap<u64, Entry<V>>,
    clock: u64,
}

/// Hit/miss/eviction counters of one [`Memo`] (monotone; read with
/// [`Memo::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Accesses that found an existing entry (the artifact may still
    /// have been mid-computation by another worker).
    pub hits: u64,
    /// Accesses that created the entry and ran the compute closure.
    pub misses: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
}

/// A bounded, concurrent, fingerprint-keyed artifact cache.
pub struct Memo<V> {
    inner: Mutex<Inner<V>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V> Memo<V> {
    /// Unbounded memo (no eviction).
    pub fn new() -> Self {
        Self::bounded(0)
    }

    /// Memo holding at most `capacity` entries (`0` = unbounded),
    /// evicting the least-recently-used entry on overflow.
    pub fn bounded(capacity: usize) -> Self {
        Memo {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The artifact for `key`, computing it with `f` on first access.
    ///
    /// Exactly one caller executes `f` per live entry; concurrent
    /// callers for the same key block on the slot until the artifact is
    /// ready. `f` must be a pure function of the content `key`
    /// fingerprints — the whole soundness story rests on that contract.
    pub fn get_or_compute(&self, key: u64, f: impl FnOnce() -> V) -> Arc<V> {
        let slot = {
            let mut g = self.inner.lock().unwrap();
            g.clock += 1;
            let now = g.clock;
            if let Some(e) = g.map.get_mut(&key) {
                e.last_use = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                e.slot.clone()
            } else {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let slot: SharedSlot<V> = Arc::new(OnceLock::new());
                g.map.insert(
                    key,
                    Entry {
                        slot: slot.clone(),
                        last_use: now,
                    },
                );
                if self.capacity > 0 && g.map.len() > self.capacity {
                    // Unique clock stamps make the LRU minimum unique,
                    // so eviction order never depends on hash order.
                    let victim = g
                        .map
                        .iter()
                        .filter(|&(&k, _)| k != key)
                        .min_by_key(|(_, e)| e.last_use)
                        .map(|(&k, _)| k);
                    if let Some(k) = victim {
                        g.map.remove(&k);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                slot
            }
        };
        slot.get_or_init(|| Arc::new(f())).clone()
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the access counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Drops every entry (counters keep accumulating).
    pub fn clear(&self) {
        self.inner.lock().unwrap().map.clear();
    }
}

impl<V> Default for Memo<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// One memo per stage artifact kind — the session's shared store.
///
/// Keys are *stage-input fingerprints* (see `ckpt_core::fingerprint`
/// and the composition scheme in [`crate::session`]); values are the
/// immutable stage artifacts. Sessions share a store via `Arc`, so a
/// fleet of sessions over the same workflow family pools artifacts.
pub struct Store {
    /// Generated (and CCR-scaled) workflows with their fingerprints.
    pub workflows: Memo<WorkflowArtifact>,
    /// Algorithm 1 schedules.
    pub schedules: Memo<ckpt_core::Schedule>,
    /// Renewal restart curves (`None` = memoryless/never-failing).
    pub curves: Memo<Option<ckpt_core::RestartCurve>>,
    /// Checkpoint plans.
    pub plans: Memo<ckpt_core::CheckpointPlan>,
    /// Coalesced 2-state segment graphs.
    pub graphs: Memo<ckpt_core::SegmentGraph>,
    /// Analytic expected-makespan estimates.
    pub evals: Memo<f64>,
    /// Monte Carlo ground-truth estimates.
    pub sims: Memo<failsim::McStats>,
    /// Failure-free parallel times (keyed by schedule key — the answer
    /// assembly must stay O(1) per warm query, not O(tasks)).
    pub wpars: Memo<f64>,
    /// Placement-statistic censuses (keyed by graph key, same reason).
    pub stats: Memo<ckpt_core::PlacementStats>,
}

/// A workflow together with its content fingerprint and summary
/// statistics (computed once, reused by every downstream key
/// derivation and model calibration).
pub struct WorkflowArtifact {
    /// The workflow itself.
    pub workflow: mspg::Workflow,
    /// Its two-part content fingerprint.
    pub fp: ckpt_core::WorkflowFp,
    /// Mean task weight (the calibrated model families read it on
    /// every query).
    pub mean_weight: f64,
}

impl WorkflowArtifact {
    /// Fingerprints and summarizes `workflow`.
    pub fn new(workflow: mspg::Workflow) -> Self {
        let fp = ckpt_core::workflow_fp(&workflow);
        let mean_weight = workflow.dag.mean_weight();
        WorkflowArtifact {
            workflow,
            fp,
            mean_weight,
        }
    }
}

impl Store {
    /// Unbounded store.
    pub fn new() -> Self {
        Self::bounded(0)
    }

    /// Store whose memos each hold at most `capacity` entries
    /// (`0` = unbounded), evicting LRU.
    pub fn bounded(capacity: usize) -> Self {
        Store {
            workflows: Memo::bounded(capacity),
            schedules: Memo::bounded(capacity),
            curves: Memo::bounded(capacity),
            plans: Memo::bounded(capacity),
            graphs: Memo::bounded(capacity),
            evals: Memo::bounded(capacity),
            sims: Memo::bounded(capacity),
            wpars: Memo::bounded(capacity),
            stats: Memo::bounded(capacity),
        }
    }
}

impl Default for Store {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_once_per_key() {
        let memo: Memo<u64> = Memo::new();
        let mut calls = 0;
        for _ in 0..3 {
            let v = memo.get_or_compute(7, || {
                calls += 1;
                42
            });
            assert_eq!(*v, 42);
        }
        assert_eq!(calls, 1);
        let s = memo.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (2, 1, 0));
    }

    #[test]
    fn lru_eviction_is_deterministic() {
        let memo: Memo<u64> = Memo::bounded(2);
        memo.get_or_compute(1, || 1);
        memo.get_or_compute(2, || 2);
        memo.get_or_compute(1, || 1); // touch 1 → 2 is now LRU
        memo.get_or_compute(3, || 3); // evicts 2
        assert_eq!(memo.len(), 2);
        let mut recomputed = false;
        memo.get_or_compute(2, || {
            recomputed = true;
            2
        });
        assert!(recomputed, "evicted key must recompute");
        let mut recomputed1 = false;
        memo.get_or_compute(1, || {
            recomputed1 = true;
            1
        });
        // 1 was evicted when 2 was re-inserted (LRU at that point was 3?
        // no: after inserting 2 the map held {1,3,2} → evict LRU(1)).
        assert!(recomputed1);
        assert!(memo.stats().evictions >= 2);
    }

    #[test]
    fn eviction_never_changes_values() {
        // With capacity 1 every access but the first evicts, yet the
        // values are always what the pure closure yields.
        let memo: Memo<u64> = Memo::bounded(1);
        for round in 0..3 {
            for k in 0..4u64 {
                let v = memo.get_or_compute(k, || k * 10);
                assert_eq!(*v, k * 10, "round {round}");
            }
        }
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn concurrent_same_key_executes_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let memo: Memo<u64> = Memo::new();
        let calls = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let v = memo.get_or_compute(99, || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        7
                    });
                    assert_eq!(*v, 7);
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let memo: Memo<u64> = Memo::new();
        memo.get_or_compute(1, || 1);
        memo.clear();
        assert!(memo.is_empty());
        assert_eq!(memo.stats().misses, 1);
    }
}
