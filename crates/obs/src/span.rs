//! Structured spans: a thread-safe, allocation-light recorder for the
//! planning stack's execution tree.
//!
//! A span is opened with [`enter`] (or one of its variants), carries a
//! `&'static str` name, an optional 64-bit fingerprint `key`, an
//! optional `ord` (stable position in a batch or grid), an outcome,
//! and an attempt count. Closing the guard stamps a monotonic
//! duration and pushes the finished [`SpanRecord`] into a thread-local
//! buffer; [`drain`] collects every buffer into one id-ordered list.
//!
//! Design constraints (see DESIGN.md §12):
//!
//! * **No perturbation.** Recording never touches result values; the
//!   only shared-state writes are an id fetch-add and a push into an
//!   uncontended thread-local buffer. When the recorder is not
//!   [`arm`]ed, opening a span is a single relaxed atomic load.
//! * **Compiles out.** Without the `enabled` cargo feature every entry
//!   point here is an `#[inline(always)]` no-op stub, same discipline
//!   as `seedmix::faultinject`.
//! * **One clock.** [`timed`] is the single timing primitive; the
//!   engine's stage walls and per-cell timings are derived from the
//!   nanosecond value it returns, so profiling and tracing can never
//!   disagree.
//!
//! [`SpanRecord`] itself (and the JSONL/canonicalizer helpers in
//! [`crate::jsonl`]) compile unconditionally: they are pure data and
//! are needed by tests that assert the *disabled* build records
//! nothing.

/// Terminal state of a span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Plain timed region; no resolution semantics.
    Ok,
    /// A memoized resolution that ran the stage function.
    Executed,
    /// A memoized resolution served from the store.
    Cached,
    /// The region surfaced an error.
    Failed,
    /// The region answered, but degraded (e.g. deadline hit mid-batch).
    Degraded,
}

impl SpanOutcome {
    /// Stable lowercase wire name used by the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            SpanOutcome::Ok => "ok",
            SpanOutcome::Executed => "executed",
            SpanOutcome::Cached => "cached",
            SpanOutcome::Failed => "failed",
            SpanOutcome::Degraded => "degraded",
        }
    }

    /// Inverse of [`SpanOutcome::name`].
    pub fn parse(s: &str) -> Option<SpanOutcome> {
        Some(match s {
            "ok" => SpanOutcome::Ok,
            "executed" => SpanOutcome::Executed,
            "cached" => SpanOutcome::Cached,
            "failed" => SpanOutcome::Failed,
            "degraded" => SpanOutcome::Degraded,
            _ => return None,
        })
    }
}

/// A finished span. Ids are unique and monotone in creation order
/// within one process; `start_ns`/`dur_ns` are monotonic (not wall
/// clock) and are the only fields the trace-determinism canonicalizer
/// strips.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Unique creation-ordered id.
    pub id: u64,
    /// Enclosing span at open time, if any.
    pub parent: Option<u64>,
    /// Static site name, e.g. `"query"`, `"resolve.curve"`, `"stage.placement"`.
    pub name: &'static str,
    /// Fingerprint key of the artifact being resolved, if any.
    pub key: Option<u64>,
    /// Stable position in a batch/grid (query index, cell index).
    pub ord: Option<u64>,
    /// Terminal state.
    pub outcome: SpanOutcome,
    /// Stage-function attempts charged to this span (0 = none).
    pub attempts: u32,
    /// Monotonic open time, nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Where a new span attaches in the tree.
#[derive(Clone, Copy, Debug)]
pub enum Parent {
    /// Under the innermost open span on this thread (or a root if none).
    Current,
    /// Always a root, regardless of what is open on this thread.
    Root,
    /// Under an explicit span id (for cross-thread attachment).
    Under(u64),
}

#[cfg(feature = "enabled")]
mod live {
    use super::{Parent, SpanOutcome, SpanRecord};
    use std::cell::{Cell, OnceCell};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::Instant;

    static ARMED: AtomicBool = AtomicBool::new(false);
    static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    type Buffer = Arc<Mutex<Vec<SpanRecord>>>;

    fn sinks() -> &'static Mutex<Vec<Buffer>> {
        static SINKS: OnceLock<Mutex<Vec<Buffer>>> = OnceLock::new();
        SINKS.get_or_init(|| Mutex::new(Vec::new()))
    }

    thread_local! {
        static LOCAL: OnceCell<Buffer> = const { OnceCell::new() };
        static CURRENT: Cell<Option<u64>> = const { Cell::new(None) };
    }

    fn push(rec: SpanRecord) {
        LOCAL.with(|cell| {
            let buf = cell.get_or_init(|| {
                let buf: Buffer = Arc::new(Mutex::new(Vec::new()));
                sinks()
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(Arc::clone(&buf));
                buf
            });
            buf.lock().unwrap_or_else(|e| e.into_inner()).push(rec);
        });
    }

    /// Start recording. Clears any spans left over from a previous
    /// arm/drain cycle so traces never mix runs.
    pub fn arm() {
        for buf in sinks().lock().unwrap_or_else(|e| e.into_inner()).iter() {
            buf.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
        epoch();
        ARMED.store(true, Ordering::SeqCst);
    }

    /// Stop recording. Spans already buffered stay until [`drain`].
    pub fn disarm() {
        ARMED.store(false, Ordering::SeqCst);
    }

    /// Whether the recorder is currently armed.
    #[inline]
    pub fn armed() -> bool {
        ARMED.load(Ordering::Relaxed)
    }

    /// Collect all finished spans from every thread buffer, sorted by
    /// creation id, leaving the buffers empty.
    pub fn drain() -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for buf in sinks().lock().unwrap_or_else(|e| e.into_inner()).iter() {
            out.append(&mut buf.lock().unwrap_or_else(|e| e.into_inner()));
        }
        out.sort_by_key(|r| r.id);
        out
    }

    struct OpenSpan {
        id: u64,
        parent: Option<u64>,
        restore: Option<u64>,
        name: &'static str,
        key: Option<u64>,
        ord: Option<u64>,
        outcome: SpanOutcome,
        attempts: u32,
        opened: Instant,
        dur_override_ns: Option<u64>,
    }

    /// RAII handle for an in-flight span. Inert (zero work on drop)
    /// when the recorder was not armed at open time.
    pub struct SpanGuard {
        inner: Option<OpenSpan>,
    }

    impl SpanGuard {
        /// Id of the span, if recording.
        #[inline]
        pub fn id(&self) -> Option<u64> {
            self.inner.as_ref().map(|o| o.id)
        }

        /// Whether this guard will emit a record on drop.
        #[inline]
        pub fn active(&self) -> bool {
            self.inner.is_some()
        }

        /// Set the terminal outcome (default [`SpanOutcome::Ok`]).
        #[inline]
        pub fn set_outcome(&mut self, outcome: SpanOutcome) {
            if let Some(o) = self.inner.as_mut() {
                o.outcome = outcome;
            }
        }

        /// Set the attempt count charged to this span.
        #[inline]
        pub fn set_attempts(&mut self, attempts: u32) {
            if let Some(o) = self.inner.as_mut() {
                o.attempts = attempts;
            }
        }

        /// Set the fingerprint key after open (e.g. once computed).
        #[inline]
        pub fn set_key(&mut self, key: u64) {
            if let Some(o) = self.inner.as_mut() {
                o.key = Some(key);
            }
        }

        /// Pin the recorded duration to an externally measured value,
        /// so [`super::timed`] callers see the exact nanoseconds that
        /// land in the trace.
        #[inline]
        pub fn set_duration_ns(&mut self, nanos: u64) {
            if let Some(o) = self.inner.as_mut() {
                o.dur_override_ns = Some(nanos);
            }
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let Some(o) = self.inner.take() else { return };
            CURRENT.with(|c| c.set(o.restore));
            let dur_ns = o
                .dur_override_ns
                .unwrap_or_else(|| o.opened.elapsed().as_nanos() as u64);
            push(SpanRecord {
                id: o.id,
                parent: o.parent,
                name: o.name,
                key: o.key,
                ord: o.ord,
                outcome: o.outcome,
                attempts: o.attempts,
                start_ns: o.opened.duration_since(epoch()).as_nanos() as u64,
                dur_ns,
            });
        }
    }

    /// Full-control span constructor; prefer the `enter*` conveniences.
    pub fn open(
        name: &'static str,
        key: Option<u64>,
        ord: Option<u64>,
        parent: Parent,
    ) -> SpanGuard {
        if !armed() {
            return SpanGuard { inner: None };
        }
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let restore = CURRENT.with(|c| c.get());
        let parent_id = match parent {
            Parent::Current => restore,
            Parent::Root => None,
            Parent::Under(p) => Some(p),
        };
        CURRENT.with(|c| c.set(Some(id)));
        SpanGuard {
            inner: Some(OpenSpan {
                id,
                parent: parent_id,
                restore,
                name,
                key,
                ord,
                outcome: SpanOutcome::Ok,
                attempts: 0,
                opened: Instant::now(),
                dur_override_ns: None,
            }),
        }
    }

    /// Run `f` inside a span and return `(result, nanoseconds)`. The
    /// nanoseconds are measured even when the recorder is unarmed, so
    /// profiling consumers (stage walls, per-cell timings) always see
    /// real durations while the feature is compiled in.
    pub fn timed_full<T>(
        name: &'static str,
        key: Option<u64>,
        ord: Option<u64>,
        parent: Parent,
        f: impl FnOnce() -> T,
    ) -> (T, u64) {
        let mut guard = open(name, key, ord, parent);
        let t0 = Instant::now();
        let out = f();
        let nanos = t0.elapsed().as_nanos() as u64;
        guard.set_duration_ns(nanos);
        (out, nanos)
    }
}

#[cfg(feature = "enabled")]
pub use live::{arm, armed, disarm, drain, open, timed_full, SpanGuard};

#[cfg(not(feature = "enabled"))]
mod stub {
    use super::{Parent, SpanOutcome, SpanRecord};

    /// No-op stand-in for the live guard; every method compiles away.
    pub struct SpanGuard {
        _priv: (),
    }

    impl SpanGuard {
        #[inline(always)]
        pub fn id(&self) -> Option<u64> {
            None
        }
        #[inline(always)]
        pub fn active(&self) -> bool {
            false
        }
        #[inline(always)]
        pub fn set_outcome(&mut self, _outcome: SpanOutcome) {}
        #[inline(always)]
        pub fn set_attempts(&mut self, _attempts: u32) {}
        #[inline(always)]
        pub fn set_key(&mut self, _key: u64) {}
        #[inline(always)]
        pub fn set_duration_ns(&mut self, _nanos: u64) {}
    }

    #[inline(always)]
    pub fn arm() {}
    #[inline(always)]
    pub fn disarm() {}
    #[inline(always)]
    pub fn armed() -> bool {
        false
    }
    #[inline(always)]
    pub fn drain() -> Vec<SpanRecord> {
        Vec::new()
    }
    #[inline(always)]
    pub fn open(
        _name: &'static str,
        _key: Option<u64>,
        _ord: Option<u64>,
        _parent: Parent,
    ) -> SpanGuard {
        SpanGuard { _priv: () }
    }
    /// Disabled build: runs `f` with zero instrumentation and reports
    /// zero nanoseconds (profiling is part of the compiled-out layer).
    #[inline(always)]
    pub fn timed_full<T>(
        _name: &'static str,
        _key: Option<u64>,
        _ord: Option<u64>,
        _parent: Parent,
        f: impl FnOnce() -> T,
    ) -> (T, u64) {
        (f(), 0)
    }
}

#[cfg(not(feature = "enabled"))]
pub use stub::{arm, armed, disarm, drain, open, timed_full, SpanGuard};

/// Open a span under the current span on this thread.
#[inline(always)]
pub fn enter(name: &'static str) -> SpanGuard {
    open(name, None, None, Parent::Current)
}

/// Open a span with a batch/grid position, under the current span.
#[inline(always)]
pub fn enter_ord(name: &'static str, ord: u64) -> SpanGuard {
    open(name, None, Some(ord), Parent::Current)
}

/// Open a span carrying a fingerprint key, under the current span.
#[inline(always)]
pub fn enter_key(name: &'static str, key: u64) -> SpanGuard {
    open(name, Some(key), None, Parent::Current)
}

/// Open a root span with a batch position (batch members are roots by
/// construction, independent of which thread runs them).
#[inline(always)]
pub fn enter_root_ord(name: &'static str, ord: u64) -> SpanGuard {
    open(name, None, Some(ord), Parent::Root)
}

/// Time `f` in a span under the current span; returns `(result, ns)`.
#[inline(always)]
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, u64) {
    timed_full(name, None, None, Parent::Current, f)
}

#[cfg(all(test, feature = "enabled"))]
mod live_tests {
    use super::*;
    use std::sync::Mutex;

    // The recorder is process-global; serialize tests that arm it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_nest_under_current_and_drain_in_id_order() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        arm();
        {
            let root = enter_ord("query", 3);
            let root_id = root.id().unwrap();
            {
                let mut child = enter_key("resolve.curve", 0xfeed);
                child.set_outcome(SpanOutcome::Cached);
                assert_eq!(root_id + 1, child.id().unwrap());
            }
            let _sibling = enter("resolve.eval_analytic");
        }
        disarm();
        let spans = drain();
        assert_eq!(3, spans.len());
        assert!(spans.windows(2).all(|w| w[0].id < w[1].id));
        let root = spans.iter().find(|s| s.name == "query").unwrap();
        assert_eq!(None, root.parent);
        assert_eq!(Some(3), root.ord);
        for child in spans.iter().filter(|s| s.name != "query") {
            assert_eq!(Some(root.id), child.parent);
        }
        let cached = spans.iter().find(|s| s.name == "resolve.curve").unwrap();
        assert_eq!(SpanOutcome::Cached, cached.outcome);
        assert_eq!(Some(0xfeed), cached.key);
    }

    #[test]
    fn unarmed_spans_record_nothing_but_timed_still_measures() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disarm();
        let _ = drain();
        let g = enter("stage.curve");
        assert!(!g.active());
        drop(g);
        let (v, ns) = timed("stage.schedule", || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            7u32
        });
        assert_eq!(7, v);
        assert!(ns >= 1_000_000, "timed must measure while compiled in");
        assert!(drain().is_empty());
    }

    #[test]
    fn arm_clears_leftovers_and_roots_ignore_current() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        arm();
        drop(enter("stale"));
        arm(); // re-arm wipes the stale span
        {
            let outer = enter("cell");
            let outer_id = outer.id().unwrap();
            let (_, ns) = timed_full("query", None, Some(0), Parent::Root, || ());
            let _ = ns;
            let _under = open("mc.reduce", None, None, Parent::Under(outer_id));
        }
        disarm();
        let spans = drain();
        assert!(spans.iter().all(|s| s.name != "stale"));
        let cell = spans.iter().find(|s| s.name == "cell").unwrap();
        let query = spans.iter().find(|s| s.name == "query").unwrap();
        let mc = spans.iter().find(|s| s.name == "mc.reduce").unwrap();
        assert_eq!(None, query.parent, "batch members are roots");
        assert_eq!(Some(cell.id), mc.parent, "explicit parent attaches");
    }

    #[test]
    fn cross_thread_buffers_all_drain() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        arm();
        std::thread::scope(|scope| {
            for t in 0..3u64 {
                scope.spawn(move || {
                    drop(enter_root_ord("query", t));
                });
            }
        });
        disarm();
        let spans = drain();
        assert_eq!(3, spans.len());
        let mut ords: Vec<_> = spans.iter().map(|s| s.ord.unwrap()).collect();
        ords.sort_unstable();
        assert_eq!(vec![0, 1, 2], ords);
    }
}

#[cfg(all(test, not(feature = "enabled")))]
mod stub_tests {
    use super::*;

    #[test]
    fn disabled_layer_is_inert() {
        arm();
        assert!(!armed());
        let mut g = enter("query");
        assert!(!g.active());
        assert_eq!(None, g.id());
        g.set_outcome(SpanOutcome::Failed);
        drop(g);
        let (v, ns) = timed("stage.curve", || 41 + 1);
        assert_eq!(42, v);
        assert_eq!(0, ns, "disabled build reports zero nanoseconds");
        assert!(drain().is_empty());
        disarm();
    }
}
