//! JSONL export, schema validation, and the trace canonicalizer.
//!
//! One span per line, flat JSON object, fixed key set (the *schema*):
//!
//! ```json
//! {"id":7,"parent":3,"name":"resolve.curve","key":"0x00000000c0ffee00",
//!  "ord":null,"outcome":"cached","attempts":0,"start_ns":1200,"dur_ns":450}
//! ```
//!
//! * `id`, `attempts`, `start_ns`, `dur_ns` — unsigned integers
//! * `parent`, `ord` — unsigned integer or `null`
//! * `key` — `"0x"` + 16 lowercase hex digits, or `null`
//! * `name` — non-empty string; `outcome` — one of
//!   `ok|executed|cached|failed|degraded`
//!
//! The validator is a self-contained flat-object JSON parser (the
//! crate is zero-dependency by charter); [`write_file`] runs it on
//! every line it emits so a malformed trace can never be written.
//!
//! [`canonicalize`] renders a span list as an indented tree with ids
//! and durations stripped, batch roots sorted by `ord`, and memoized
//! resolutions normalized (`executed`/`cached` both print `resolved`,
//! with their children pruned). That is exactly the part of a trace
//! the determinism contract pins across thread budgets: *which*
//! session resolves an artifact from the store versus computes it is
//! scheduling-dependent by design (memoization decides who computes,
//! never what), but the set of queries, the artifacts each touched,
//! and every failure are not.

use crate::span::{SpanOutcome, SpanRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialize one span to its JSONL line (no trailing newline).
pub fn to_line(r: &SpanRecord) -> String {
    let parent = match r.parent {
        Some(p) => p.to_string(),
        None => "null".to_string(),
    };
    let key = match r.key {
        Some(k) => format!("\"0x{k:016x}\""),
        None => "null".to_string(),
    };
    let ord = match r.ord {
        Some(o) => o.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"key\":{},\"ord\":{},\"outcome\":\"{}\",\"attempts\":{},\"start_ns\":{},\"dur_ns\":{}}}",
        r.id,
        parent,
        escape(r.name),
        key,
        ord,
        r.outcome.name(),
        r.attempts,
        r.start_ns,
        r.dur_ns,
    )
}

/// Value of one field in a flat JSON object.
#[derive(Clone, Debug, PartialEq)]
enum Flat {
    Null,
    Uint(u64),
    Str(String),
}

/// Minimal parser for a single-line flat JSON object: string, unsigned
/// integer, and null values only (all the span schema needs).
fn parse_flat(line: &str) -> Result<BTreeMap<String, Flat>, String> {
    let bytes = line.as_bytes();
    let err = |i: usize, what: &str| format!("byte {i}: {what}");
    let skip_ws = |bytes: &[u8], mut i: usize| {
        while i < bytes.len() && (bytes[i] == b' ' || bytes[i] == b'\t') {
            i += 1;
        }
        i
    };
    fn parse_string(bytes: &[u8], mut i: usize) -> Result<(String, usize), String> {
        if i >= bytes.len() || bytes[i] != b'"' {
            return Err(format!("byte {i}: expected string"));
        }
        i += 1;
        let mut s = String::new();
        while i < bytes.len() {
            match bytes[i] {
                b'"' => return Ok((s, i + 1)),
                b'\\' => {
                    i += 1;
                    if i >= bytes.len() {
                        return Err(format!("byte {i}: dangling escape"));
                    }
                    match bytes[i] {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'u' => {
                            if i + 4 >= bytes.len() {
                                return Err(format!("byte {i}: short \\u escape"));
                            }
                            let hex = std::str::from_utf8(&bytes[i + 1..i + 5])
                                .map_err(|_| format!("byte {i}: bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("byte {i}: bad \\u escape"))?;
                            s.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| format!("byte {i}: bad codepoint"))?,
                            );
                            i += 4;
                        }
                        c => return Err(format!("byte {i}: unsupported escape \\{}", c as char)),
                    }
                    i += 1;
                }
                c => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let ch_len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (i + ch_len).min(bytes.len());
                    s.push_str(
                        std::str::from_utf8(&bytes[i..end])
                            .map_err(|_| format!("byte {i}: invalid utf-8"))?,
                    );
                    i = end;
                }
            }
        }
        Err(format!("byte {i}: unterminated string"))
    }
    if bytes.is_empty() || bytes[0] != b'{' {
        return Err(err(0, "expected `{`"));
    }
    let mut i = skip_ws(bytes, 1);
    let mut out = BTreeMap::new();
    if i < bytes.len() && bytes[i] == b'}' {
        return Ok(out);
    }
    loop {
        let (name, next) = parse_string(bytes, i)?;
        i = skip_ws(bytes, next);
        if i >= bytes.len() || bytes[i] != b':' {
            return Err(err(i, "expected `:`"));
        }
        i = skip_ws(bytes, i + 1);
        let value = if bytes[i..].starts_with(b"null") {
            i += 4;
            Flat::Null
        } else if i < bytes.len() && bytes[i] == b'"' {
            let (s, next) = parse_string(bytes, i)?;
            i = next;
            Flat::Str(s)
        } else {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i == start {
                return Err(err(i, "expected value (string, unsigned int, or null)"));
            }
            let n: u64 = std::str::from_utf8(&bytes[start..i])
                .unwrap()
                .parse()
                .map_err(|_| err(start, "integer out of range"))?;
            Flat::Uint(n)
        };
        if out.insert(name.clone(), value).is_some() {
            return Err(format!("duplicate field `{name}`"));
        }
        i = skip_ws(bytes, i);
        match bytes.get(i) {
            Some(b',') => i = skip_ws(bytes, i + 1),
            Some(b'}') => {
                i += 1;
                break;
            }
            _ => return Err(err(i, "expected `,` or `}`")),
        }
    }
    if skip_ws(bytes, i) != bytes.len() {
        return Err(err(i, "trailing bytes after object"));
    }
    Ok(out)
}

const FIELDS: [&str; 9] = [
    "id", "parent", "name", "key", "ord", "outcome", "attempts", "start_ns", "dur_ns",
];

/// Validate one JSONL line against the span schema.
pub fn validate_line(line: &str) -> Result<(), String> {
    let obj = parse_flat(line)?;
    for field in FIELDS {
        if !obj.contains_key(field) {
            return Err(format!("missing field `{field}`"));
        }
    }
    if obj.len() != FIELDS.len() {
        let extra: Vec<_> = obj
            .keys()
            .filter(|k| !FIELDS.contains(&k.as_str()))
            .cloned()
            .collect();
        return Err(format!("unknown fields: {extra:?}"));
    }
    let uint = |field: &str| match &obj[field] {
        Flat::Uint(_) => Ok(()),
        v => Err(format!(
            "field `{field}` must be an unsigned int, got {v:?}"
        )),
    };
    uint("id")?;
    uint("start_ns")?;
    uint("dur_ns")?;
    match &obj["attempts"] {
        Flat::Uint(n) if *n <= u32::MAX as u64 => {}
        v => return Err(format!("field `attempts` must fit u32, got {v:?}")),
    }
    for field in ["parent", "ord"] {
        match &obj[field] {
            Flat::Uint(_) | Flat::Null => {}
            v => return Err(format!("field `{field}` must be uint or null, got {v:?}")),
        }
    }
    match &obj["name"] {
        Flat::Str(s) if !s.is_empty() => {}
        v => {
            return Err(format!(
                "field `name` must be a non-empty string, got {v:?}"
            ))
        }
    }
    match &obj["key"] {
        Flat::Null => {}
        Flat::Str(s)
            if s.len() == 18
                && s.starts_with("0x")
                && s[2..]
                    .bytes()
                    .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()) => {}
        v => {
            return Err(format!(
                "field `key` must be `0x` + 16 lowercase hex digits or null, got {v:?}"
            ))
        }
    }
    match &obj["outcome"] {
        Flat::Str(s) if SpanOutcome::parse(s).is_some() => {}
        v => {
            return Err(format!(
                "field `outcome` must be a known outcome, got {v:?}"
            ))
        }
    }
    Ok(())
}

/// Serialize, schema-validate, and write `spans` to `path` as JSONL.
/// Creates parent directories. Errors if any line fails validation —
/// a malformed trace is a bug, not a log entry.
pub fn write_file(path: &std::path::Path, spans: &[SpanRecord]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut out = String::new();
    for span in spans {
        let line = to_line(span);
        if let Err(e) = validate_line(&line) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("span failed schema validation ({e}): {line}"),
            ));
        }
        out.push_str(&line);
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// Render a span list as a canonical indented tree, stripping
/// everything the determinism contract does not pin:
///
/// * ids and all timing fields are dropped;
/// * roots sort by `(ord, name, key)` — batch order, not thread order;
/// * memoized resolutions (`resolve.*` spans) print `resolved` for
///   both `executed` and `cached`, and their children are pruned
///   (which session computes an artifact is scheduling-dependent);
/// * `attempts` prints only on failed spans.
///
/// Two runs of the same seed + query batch must produce identical
/// canonical trees at any thread budget.
pub fn canonicalize(spans: &[SpanRecord]) -> String {
    let mut sorted: Vec<&SpanRecord> = spans.iter().collect();
    sorted.sort_by_key(|r| r.id);
    let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for r in &sorted {
        match r.parent {
            Some(p) => children.entry(p).or_default().push(r),
            None => roots.push(r),
        }
    }
    roots.sort_by_key(|r| (r.ord.unwrap_or(u64::MAX), r.name, r.key));
    let mut out = String::new();
    fn emit(
        r: &SpanRecord,
        depth: usize,
        children: &BTreeMap<u64, Vec<&SpanRecord>>,
        out: &mut String,
    ) {
        let resolved = r.name.starts_with("resolve.")
            && matches!(r.outcome, SpanOutcome::Executed | SpanOutcome::Cached);
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(r.name);
        if let Some(k) = r.key {
            let _ = write!(out, " key=0x{k:016x}");
        }
        if let Some(o) = r.ord {
            let _ = write!(out, " ord={o}");
        }
        if resolved {
            out.push_str(" outcome=resolved");
        } else if r.outcome != SpanOutcome::Ok {
            let _ = write!(out, " outcome={}", r.outcome.name());
        }
        if r.outcome == SpanOutcome::Failed {
            let _ = write!(out, " attempts={}", r.attempts);
        }
        out.push('\n');
        if !resolved {
            for c in children.get(&r.id).into_iter().flatten() {
                emit(c, depth + 1, children, out);
            }
        }
    }
    for r in roots {
        emit(r, 0, &children, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: Option<u64>, name: &'static str) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            key: None,
            ord: None,
            outcome: SpanOutcome::Ok,
            attempts: 0,
            start_ns: id * 10,
            dur_ns: 5,
        }
    }

    #[test]
    fn lines_round_trip_through_the_validator() {
        let mut r = rec(7, Some(3), "resolve.curve");
        r.key = Some(0xc0ffee00);
        r.ord = Some(12);
        r.outcome = SpanOutcome::Cached;
        let line = to_line(&r);
        assert_eq!(
            "{\"id\":7,\"parent\":3,\"name\":\"resolve.curve\",\
             \"key\":\"0x00000000c0ffee00\",\"ord\":12,\"outcome\":\"cached\",\
             \"attempts\":0,\"start_ns\":70,\"dur_ns\":5}",
            line
        );
        validate_line(&line).unwrap();
        validate_line(&to_line(&rec(1, None, "query"))).unwrap();
    }

    #[test]
    fn validator_rejects_schema_violations() {
        assert!(validate_line("not json").is_err());
        assert!(validate_line("{}").unwrap_err().contains("missing field"));
        // Wrong type.
        let bad = to_line(&rec(1, None, "q")).replace("\"id\":1", "\"id\":\"1\"");
        assert!(validate_line(&bad).unwrap_err().contains("unsigned int"));
        // Unknown outcome.
        let bad = to_line(&rec(1, None, "q")).replace("\"ok\"", "\"maybe\"");
        assert!(validate_line(&bad).unwrap_err().contains("outcome"));
        // Malformed key.
        let bad = to_line(&rec(1, None, "q")).replace("\"key\":null", "\"key\":\"0xZZ\"");
        assert!(validate_line(&bad).unwrap_err().contains("hex"));
        // Extra field.
        let bad = to_line(&rec(1, None, "q")).replace("\"dur_ns\":5}", "\"dur_ns\":5,\"x\":1}");
        assert!(validate_line(&bad).unwrap_err().contains("unknown fields"));
        // Duplicate field.
        let bad = to_line(&rec(1, None, "q")).replace("\"dur_ns\":5}", "\"dur_ns\":5,\"id\":1}");
        assert!(validate_line(&bad).unwrap_err().contains("duplicate"));
        // Negative / non-digit number.
        let bad = to_line(&rec(1, None, "q")).replace("\"id\":1", "\"id\":-1");
        assert!(validate_line(&bad).is_err());
    }

    #[test]
    fn canonicalizer_strips_scheduling_and_timing_noise() {
        // Run A: query 1 executed the curve; run B (other thread
        // budget): query 1 got it from the store, executed spans hang
        // under some other query. Canonical forms must match.
        let mut a_query = rec(1, None, "query");
        a_query.ord = Some(1);
        let mut a_res = rec(2, Some(1), "resolve.curve");
        a_res.key = Some(0xabc);
        a_res.outcome = SpanOutcome::Executed;
        a_res.attempts = 1;
        let a_exec = rec(3, Some(2), "stage.curve");

        let mut b_query = rec(10, None, "query");
        b_query.ord = Some(1);
        let mut b_res = rec(11, Some(10), "resolve.curve");
        b_res.key = Some(0xabc);
        b_res.outcome = SpanOutcome::Cached;
        b_res.start_ns = 999;
        b_res.dur_ns = 1;

        let a = canonicalize(&[a_query, a_res, a_exec]);
        let b = canonicalize(&[b_res, b_query]); // drain order irrelevant
        assert_eq!(a, b);
        assert_eq!(
            "query ord=1\n  resolve.curve key=0x0000000000000abc outcome=resolved\n",
            a
        );
    }

    #[test]
    fn canonicalizer_keeps_failures_and_batch_order() {
        let mut q1 = rec(5, None, "query");
        q1.ord = Some(1);
        let mut q0 = rec(6, None, "query");
        q0.ord = Some(0);
        let mut failed = rec(7, Some(6), "resolve.placement");
        failed.outcome = SpanOutcome::Failed;
        failed.attempts = 3;
        let text = canonicalize(&[q1, q0, failed]);
        assert_eq!(
            "query ord=0\n  resolve.placement outcome=failed attempts=3\nquery ord=1\n",
            text
        );
    }

    #[test]
    fn write_file_refuses_malformed_spans() {
        let dir = std::env::temp_dir().join("obs-jsonl-test");
        let path = dir.join("trace.jsonl");
        let ok = rec(1, None, "query");
        write_file(&path, std::slice::from_ref(&ok)).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(1, body.lines().count());
        validate_line(body.lines().next().unwrap()).unwrap();
        let bad = rec(2, None, ""); // empty name violates the schema
        let err = write_file(&path, &[bad]).unwrap_err();
        assert!(err.to_string().contains("schema"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
