//! Typed metrics registry: counters, gauges, and histograms with a
//! Prometheus-style text exposition and a machine-readable JSON
//! snapshot (consumed by the `obs` section of `BENCH_hotpath.json`).
//!
//! Naming convention (enforced by use, documented in DESIGN.md §12):
//! every metric is prefixed `ckpt_`, counters end in `_total`, and
//! duration histograms end in `_seconds`. Breakdown dimensions use a
//! single label, e.g. `ckpt_store_hits_total{memo="plans"}`.
//!
//! Handles are cheap clonable `Arc`s; hot paths resolve a handle once
//! (e.g. in a `OnceLock`) and then touch only a relaxed atomic.
//! Registration takes a global mutex and is expected to happen at
//! setup/dump time, not per-operation. Without the `enabled` feature
//! the whole registry compiles to inert stubs.

#[cfg(feature = "enabled")]
mod live {
    use std::collections::BTreeMap;
    use std::fmt::Write as _;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};

    /// Bucket upper bounds (seconds) for duration histograms: one
    /// decade per bucket from a microsecond to 100 s, plus +Inf.
    pub const SECONDS_BUCKETS: &[f64] = &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0];

    /// Monotone counter.
    #[derive(Clone)]
    pub struct Counter(Arc<AtomicU64>);

    impl Counter {
        #[inline]
        pub fn inc(&self) {
            self.add(1);
        }
        #[inline]
        pub fn add(&self, n: u64) {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
        #[inline]
        pub fn get(&self) -> u64 {
            self.0.load(Ordering::Relaxed)
        }
    }

    /// Last-write-wins gauge (unsigned; depths, sizes, capacities).
    #[derive(Clone)]
    pub struct Gauge(Arc<AtomicU64>);

    impl Gauge {
        #[inline]
        pub fn set(&self, v: u64) {
            self.0.store(v, Ordering::Relaxed);
        }
        /// Set to `v` if larger (high-water marks).
        #[inline]
        pub fn set_max(&self, v: u64) {
            self.0.fetch_max(v, Ordering::Relaxed);
        }
        #[inline]
        pub fn get(&self) -> u64 {
            self.0.load(Ordering::Relaxed)
        }
    }

    struct HistInner {
        bounds: &'static [f64],
        /// One slot per bound plus the +Inf overflow slot.
        buckets: Vec<AtomicU64>,
        count: AtomicU64,
        sum_bits: AtomicU64,
    }

    /// Fixed-bucket histogram of `f64` observations (seconds).
    #[derive(Clone)]
    pub struct Histogram(Arc<HistInner>);

    impl Histogram {
        pub fn observe(&self, v: f64) {
            let idx = self
                .0
                .bounds
                .iter()
                .position(|b| v <= *b)
                .unwrap_or(self.0.bounds.len());
            self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
            self.0.count.fetch_add(1, Ordering::Relaxed);
            let mut cur = self.0.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + v).to_bits();
                match self.0.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
        /// Observe a nanosecond duration as seconds.
        #[inline]
        pub fn observe_ns(&self, nanos: u64) {
            self.observe(nanos as f64 / 1e9);
        }
        pub fn count(&self) -> u64 {
            self.0.count.load(Ordering::Relaxed)
        }
        pub fn sum(&self) -> f64 {
            f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
        }
    }

    enum Metric {
        Counter(Counter),
        Gauge(Gauge),
        Histogram(Histogram),
    }

    type Label = Option<(&'static str, String)>;
    type Registry = BTreeMap<(&'static str, Label), Metric>;

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
    }

    fn with_entry<T>(
        name: &'static str,
        label: Label,
        make: impl FnOnce() -> Metric,
        pick: impl FnOnce(&Metric) -> Option<T>,
    ) -> T {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        let metric = reg.entry((name, label)).or_insert_with(make);
        pick(metric)
            .unwrap_or_else(|| panic!("metric `{name}` is already registered as a different type"))
    }

    /// Get or register an unlabeled counter.
    pub fn counter(name: &'static str) -> Counter {
        labeled_counter_opt(name, None)
    }

    /// Get or register a counter with one `{key="value"}` label.
    pub fn labeled_counter(name: &'static str, key: &'static str, value: &str) -> Counter {
        labeled_counter_opt(name, Some((key, value.to_string())))
    }

    fn labeled_counter_opt(name: &'static str, label: Label) -> Counter {
        with_entry(
            name,
            label,
            || Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))),
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Get or register an unlabeled gauge.
    pub fn gauge(name: &'static str) -> Gauge {
        with_entry(
            name,
            None,
            || Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0)))),
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Get or register a seconds histogram with one label.
    pub fn labeled_histogram_seconds(
        name: &'static str,
        key: &'static str,
        value: &str,
    ) -> Histogram {
        with_entry(
            name,
            Some((key, value.to_string())),
            || {
                let buckets = (0..=SECONDS_BUCKETS.len())
                    .map(|_| AtomicU64::new(0))
                    .collect();
                Metric::Histogram(Histogram(Arc::new(HistInner {
                    bounds: SECONDS_BUCKETS,
                    buckets,
                    count: AtomicU64::new(0),
                    sum_bits: AtomicU64::new(0f64.to_bits()),
                })))
            },
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    fn render_label(label: &Label) -> String {
        match label {
            None => String::new(),
            Some((k, v)) => format!("{{{k}=\"{v}\"}}"),
        }
    }

    fn type_of(metric: &Metric) -> &'static str {
        match metric {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }

    /// Prometheus text exposition of every registered metric, sorted
    /// by `(name, label)` so output is deterministic.
    pub fn exposition() -> String {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        let mut last_name: Option<&'static str> = None;
        for ((name, label), metric) in reg.iter() {
            if last_name != Some(name) {
                let _ = writeln!(out, "# TYPE {name} {}", type_of(metric));
                last_name = Some(name);
            }
            let lbl = render_label(label);
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name}{lbl} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name}{lbl} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, bound) in h.0.bounds.iter().enumerate() {
                        cum += h.0.buckets[i].load(Ordering::Relaxed);
                        let le = match label {
                            None => format!("{{le=\"{bound}\"}}"),
                            Some((k, v)) => format!("{{{k}=\"{v}\",le=\"{bound}\"}}"),
                        };
                        let _ = writeln!(out, "{name}_bucket{le} {cum}");
                    }
                    cum += h.0.buckets[h.0.bounds.len()].load(Ordering::Relaxed);
                    let inf = match label {
                        None => "{le=\"+Inf\"}".to_string(),
                        Some((k, v)) => format!("{{{k}=\"{v}\",le=\"+Inf\"}}"),
                    };
                    let _ = writeln!(out, "{name}_bucket{inf} {cum}");
                    let _ = writeln!(out, "{name}_sum{lbl} {}", h.sum());
                    let _ = writeln!(out, "{name}_count{lbl} {}", h.count());
                }
            }
        }
        out
    }

    fn json_escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out
    }

    /// Machine-readable snapshot: one flat JSON object per metric
    /// class, keyed by `name{label}`, sorted. Histograms report
    /// `{"count": n, "sum": seconds}`.
    pub fn snapshot_json() -> String {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut hists = String::new();
        for ((name, label), metric) in reg.iter() {
            let key = json_escape(&format!("{name}{}", render_label(label)));
            match metric {
                Metric::Counter(c) => {
                    if !counters.is_empty() {
                        counters.push(',');
                    }
                    let _ = write!(counters, "\"{key}\":{}", c.get());
                }
                Metric::Gauge(g) => {
                    if !gauges.is_empty() {
                        gauges.push(',');
                    }
                    let _ = write!(gauges, "\"{key}\":{}", g.get());
                }
                Metric::Histogram(h) => {
                    if !hists.is_empty() {
                        hists.push(',');
                    }
                    let _ = write!(
                        hists,
                        "\"{key}\":{{\"count\":{},\"sum\":{}}}",
                        h.count(),
                        h.sum()
                    );
                }
            }
        }
        format!(
            "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{hists}}}}}"
        )
    }

    /// Zero every registered metric in place (handles stay valid).
    /// Used by binaries at startup and by tests for isolation.
    pub fn reset() {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        for metric in reg.values() {
            match metric {
                Metric::Counter(c) => c.0.store(0, Ordering::Relaxed),
                Metric::Gauge(g) => g.0.store(0, Ordering::Relaxed),
                Metric::Histogram(h) => {
                    for b in &h.0.buckets {
                        b.store(0, Ordering::Relaxed);
                    }
                    h.0.count.store(0, Ordering::Relaxed);
                    h.0.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(feature = "enabled")]
pub use live::{
    counter, exposition, gauge, labeled_counter, labeled_histogram_seconds, reset, snapshot_json,
    Counter, Gauge, Histogram, SECONDS_BUCKETS,
};

#[cfg(not(feature = "enabled"))]
mod stub {
    /// Same bounds as the live registry, for code that references them.
    pub const SECONDS_BUCKETS: &[f64] = &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0];

    #[derive(Clone)]
    pub struct Counter;
    impl Counter {
        #[inline(always)]
        pub fn inc(&self) {}
        #[inline(always)]
        pub fn add(&self, _n: u64) {}
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }
    }

    #[derive(Clone)]
    pub struct Gauge;
    impl Gauge {
        #[inline(always)]
        pub fn set(&self, _v: u64) {}
        #[inline(always)]
        pub fn set_max(&self, _v: u64) {}
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }
    }

    #[derive(Clone)]
    pub struct Histogram;
    impl Histogram {
        #[inline(always)]
        pub fn observe(&self, _v: f64) {}
        #[inline(always)]
        pub fn observe_ns(&self, _nanos: u64) {}
        #[inline(always)]
        pub fn count(&self) -> u64 {
            0
        }
        #[inline(always)]
        pub fn sum(&self) -> f64 {
            0.0
        }
    }

    #[inline(always)]
    pub fn counter(_name: &'static str) -> Counter {
        Counter
    }
    #[inline(always)]
    pub fn labeled_counter(_name: &'static str, _key: &'static str, _value: &str) -> Counter {
        Counter
    }
    #[inline(always)]
    pub fn gauge(_name: &'static str) -> Gauge {
        Gauge
    }
    #[inline(always)]
    pub fn labeled_histogram_seconds(
        _name: &'static str,
        _key: &'static str,
        _value: &str,
    ) -> Histogram {
        Histogram
    }
    #[inline(always)]
    pub fn exposition() -> String {
        String::new()
    }
    #[inline(always)]
    pub fn snapshot_json() -> String {
        "{\"counters\":{},\"gauges\":{},\"histograms\":{}}".to_string()
    }
    #[inline(always)]
    pub fn reset() {}
}

#[cfg(not(feature = "enabled"))]
pub use stub::{
    counter, exposition, gauge, labeled_counter, labeled_histogram_seconds, reset, snapshot_json,
    Counter, Gauge, Histogram, SECONDS_BUCKETS,
};

#[cfg(all(test, feature = "enabled"))]
mod live_tests {
    use super::*;
    use std::sync::Mutex;

    // The registry is process-global; serialize tests that reset it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn counters_gauges_and_histograms_expose_deterministically() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        counter("ckpt_test_cancellations_total").add(3);
        labeled_counter("ckpt_test_hits_total", "memo", "plans").inc();
        labeled_counter("ckpt_test_hits_total", "memo", "curves").add(2);
        gauge("ckpt_test_queue_depth").set(5);
        gauge("ckpt_test_queue_depth").set_max(2); // keeps 5
        let h = labeled_histogram_seconds("ckpt_test_stage_wall_seconds", "stage", "plan");
        h.observe(0.5e-3);
        h.observe(2.0);
        let text = exposition();
        assert!(text.contains("# TYPE ckpt_test_cancellations_total counter"));
        assert!(text.contains("ckpt_test_cancellations_total 3"));
        assert!(text.contains("ckpt_test_hits_total{memo=\"curves\"} 2"));
        assert!(text.contains("ckpt_test_hits_total{memo=\"plans\"} 1"));
        assert!(text.contains("ckpt_test_queue_depth 5"));
        assert!(text.contains("ckpt_test_stage_wall_seconds_bucket{stage=\"plan\",le=\"0.001\"} 1"));
        assert!(text.contains("ckpt_test_stage_wall_seconds_bucket{stage=\"plan\",le=\"+Inf\"} 2"));
        assert!(text.contains("ckpt_test_stage_wall_seconds_count{stage=\"plan\"} 2"));
        assert_eq!(2, h.count());
        assert!((h.sum() - 2.0005).abs() < 1e-9);
        // `curves` sorts before `plans`: exposition order is fixed.
        let curves = text.find("memo=\"curves\"").unwrap();
        let plans = text.find("memo=\"plans\"").unwrap();
        assert!(curves < plans);

        let snap = snapshot_json();
        assert!(snap.contains("\"ckpt_test_cancellations_total\":3"));
        assert!(snap.contains("\"ckpt_test_stage_wall_seconds{stage=\\\"plan\\\"}\":{\"count\":2"));
        assert!(snap.starts_with("{\"counters\":{") && snap.ends_with("}}"));
    }

    #[test]
    fn reset_zeroes_in_place_and_handles_stay_valid() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        let c = counter("ckpt_test_reset_total");
        c.add(7);
        assert_eq!(7, c.get());
        reset();
        assert_eq!(0, c.get());
        c.inc();
        assert_eq!(1, c.get());
        assert_eq!(1, counter("ckpt_test_reset_total").get());
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_clash_panics_with_a_clear_message() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        counter("ckpt_test_clash");
        gauge("ckpt_test_clash");
    }
}

#[cfg(all(test, not(feature = "enabled")))]
mod stub_tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let c = counter("ckpt_anything_total");
        c.inc();
        c.add(10);
        assert_eq!(0, c.get());
        let h = labeled_histogram_seconds("ckpt_x_seconds", "stage", "plan");
        h.observe(1.0);
        assert_eq!(0, h.count());
        assert!(exposition().is_empty());
        assert!(snapshot_json().contains("\"counters\":{}"));
    }
}
