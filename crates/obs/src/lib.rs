//! `obs` — zero-dependency observability for the checkpoint planning
//! stack: structured spans, a typed metrics registry, and the single
//! timing primitive the profiling layer is built on.
//!
//! Three pillars (DESIGN.md §12):
//!
//! 1. [`span`] — a thread-safe recorder producing a creation-ordered
//!    list of [`span::SpanRecord`]s: stage executions, memo
//!    resolutions (with fingerprint keys, outcomes, and attempt
//!    counts), engine cells, and MC reductions. Exported as
//!    schema-validated JSONL ([`jsonl`]).
//! 2. [`metrics`] — counters/gauges/histograms with Prometheus-style
//!    text exposition and a JSON snapshot for `BENCH_hotpath.json`.
//! 3. Profiling — `ckpt_bench`'s stage walls and per-cell timings are
//!    derived from [`span::timed`]'s returned nanoseconds, so traces
//!    and profiles can never disagree.
//!
//! The non-negotiable contract: **observability never perturbs
//! results**. No span or metric ever feeds back into a computed
//! value, recording state lives outside all result types, and without
//! the `enabled` cargo feature the whole crate compiles to
//! `#[inline(always)]` no-op stubs (the same discipline as
//! `seedmix::faultinject`, checked the same way in CI). A dedicated
//! test pins that E1–E12 CSV outputs are byte-identical with tracing
//! fully enabled.

pub mod jsonl;
pub mod metrics;
pub mod span;

/// Whether this build carries the live recorder (`enabled` feature).
/// Binaries use this to refuse `--trace-out`/`--metrics-out` loudly
/// instead of silently writing empty files.
#[inline(always)]
pub const fn compiled_in() -> bool {
    cfg!(feature = "enabled")
}
