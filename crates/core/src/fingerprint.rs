//! Content fingerprints of planning inputs.
//!
//! Every stage of the planning pipeline (see [`crate::stage`]) is a
//! pure function of a handful of inputs: the workflow, the failure
//! model, the platform shape, the scheduling configuration, the
//! placement policy. A *fingerprint* is a 64-bit FNV-1a digest
//! ([`seedmix::digest`]) of exactly the content a stage reads — so two
//! equal fingerprints mean "this stage would compute the same artifact",
//! and the incremental `ckpt_service` may reuse a cached one.
//!
//! ## What is (and is not) hashed
//!
//! * [`workflow_fp`] splits the workflow into two digests.
//!   [`WorkflowFp::structure`] covers the task count, every task weight
//!   (exact bits), the task-kind assignment, the full file wiring
//!   (producer / consumers / workflow inputs / primary outputs), the
//!   dependence edges, and the recursive M-SPG expression — everything
//!   the scheduler and planner read *except* file sizes.
//!   [`WorkflowFp::file_sizes`] covers the per-file byte sizes alone.
//!   The split mirrors the engine's schedule-cache soundness argument:
//!   the `Structural` and `RandomTopo` linearizers never read file
//!   sizes, so a CCR rescaling (which only rewrites sizes) leaves the
//!   schedule fingerprint unchanged and the schedule reusable, while
//!   every size-reading stage (placement, coalescing, evaluation) keys
//!   on the combined digest.
//! * Task and file *names* are not hashed: no planning stage reads
//!   them, so a rename must not invalidate anything (early cutoff).
//! * [`model_fp`] hashes the failure-model variant and its exact
//!   parameter bits; [`allocate_config_fp`] the linearizer tag and
//!   seed.
//!
//! Fingerprint equality is treated as content equality (64-bit FNV-1a;
//! see DESIGN.md §10 for why that is acceptable here).

use mspg::linearize::Linearizer;
use mspg::{Mspg, Workflow};
use seedmix::digest::Fnv1a;

use crate::allocate::AllocateConfig;
use crate::failure_model::FailureModel;

/// Domain-separation tags, one per fingerprinted artifact kind. Tags
/// keep a workflow digest from ever colliding with, say, a model digest
/// that happens to fold the same words.
pub mod tag {
    /// Workflow structure (topology + weights + wiring + expression).
    pub const WORKFLOW_STRUCTURE: u64 = 0x5747_5354; // "WGST"
    /// Workflow file sizes.
    pub const WORKFLOW_SIZES: u64 = 0x5747_535A; // "WGSZ"
    /// Failure model.
    pub const MODEL: u64 = 0x4d4f_444c; // "MODL"
    /// Allocate (scheduling) configuration.
    pub const ALLOC_CFG: u64 = 0x414c_4346; // "ALCF"
    /// Generic composition of stage-input fingerprints.
    pub const COMPOSE: u64 = 0x434f_4d50; // "COMP"
}

/// The two-part workflow fingerprint (see module docs for the split).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WorkflowFp {
    /// Digest of everything except file sizes: task count, weights,
    /// kinds, file wiring, edges, and the M-SPG expression.
    pub structure: u64,
    /// Digest of the per-file sizes alone.
    pub file_sizes: u64,
}

impl WorkflowFp {
    /// The combined digest: keys any stage that reads file sizes.
    pub fn combined(&self) -> u64 {
        compose(tag::COMPOSE, &[self.structure, self.file_sizes])
    }
}

/// Fingerprints `w` — one pass over the DAG plus one walk of the
/// expression. Cost is linear in tasks + files + edges; callers cache
/// the result per workflow instance (the service does).
pub fn workflow_fp(w: &Workflow) -> WorkflowFp {
    let dag = &w.dag;
    let mut h = Fnv1a::tagged(tag::WORKFLOW_STRUCTURE);
    h.write_usize(dag.n_tasks()).write_usize(dag.n_files());
    for t in dag.task_ids() {
        h.write_f64(dag.weight(t));
        h.write_word(dag.task(t).kind.0 as u64);
        // Incoming edges identify the topology; hashing preds (not
        // succs) covers every edge exactly once.
        h.write_usize(dag.preds(t).len());
        for &(u, f) in dag.preds(t) {
            h.write_word(u.0 as u64).write_word(f.0 as u64);
        }
        h.write_usize(dag.input_files(t).len());
        for &f in dag.input_files(t) {
            h.write_word(f.0 as u64);
        }
        match dag.primary_output(t) {
            Some(f) => h.write_word(f.0 as u64 + 1),
            None => h.write_word(0),
        };
    }
    for f in dag.file_ids() {
        match dag.producer(f) {
            Some(t) => h.write_word(t.0 as u64 + 1),
            None => h.write_word(0),
        };
        // Consumer lists matter to coalescing's per-file deduplication.
        h.write_usize(dag.consumers(f).len());
        for &t in dag.consumers(f) {
            h.write_word(t.0 as u64);
        }
    }
    write_expr(&mut h, &w.root);
    let structure = h.finish();

    let mut s = Fnv1a::tagged(tag::WORKFLOW_SIZES);
    s.write_usize(dag.n_files());
    for f in dag.file_ids() {
        s.write_f64(dag.file(f).size);
    }
    WorkflowFp {
        structure,
        file_sizes: s.finish(),
    }
}

/// Folds the M-SPG expression into `h` (prefix-free: every node writes
/// a variant tag, containers write their arity). Recursion depth is the
/// expression nesting depth, which is logarithmic-ish for generated
/// workflows (a million-task chain is one flat `Series`).
fn write_expr(h: &mut Fnv1a, e: &Mspg) {
    match e {
        Mspg::Task(t) => {
            h.write_word(1).write_word(t.0 as u64);
        }
        Mspg::Series(cs) => {
            h.write_word(2).write_usize(cs.len());
            for c in cs {
                write_expr(h, c);
            }
        }
        Mspg::Parallel(cs) => {
            h.write_word(3).write_usize(cs.len());
            for c in cs {
                write_expr(h, c);
            }
        }
    }
}

/// Fingerprints a failure model: variant tag + exact parameter bits.
pub fn model_fp(m: &FailureModel) -> u64 {
    let mut h = Fnv1a::tagged(tag::MODEL);
    match *m {
        FailureModel::Exponential { lambda } => {
            h.write_word(1).write_f64(lambda);
        }
        FailureModel::Weibull { shape, scale } => {
            h.write_word(2).write_f64(shape).write_f64(scale);
        }
        FailureModel::LogNormal { mu, sigma } => {
            h.write_word(3).write_f64(mu).write_f64(sigma);
        }
    }
    h.finish()
}

/// Fingerprints a scheduling configuration: linearizer tag + seed.
pub fn allocate_config_fp(cfg: &AllocateConfig) -> u64 {
    let mut h = Fnv1a::tagged(tag::ALLOC_CFG);
    h.write_word(linearizer_tag(cfg.linearizer));
    h.write_word(cfg.seed);
    h.finish()
}

/// Stable numeric tag of a linearizer (also the engine cache key part).
pub fn linearizer_tag(l: Linearizer) -> u64 {
    match l {
        Linearizer::Structural => 0,
        Linearizer::RandomTopo => 1,
        Linearizer::MinVolume => 2,
    }
}

/// Does this linearizer read file sizes? `MinVolume` orders by live
/// data volume, so its schedules must key on the combined workflow
/// digest; the structure-driven linearizers stay CCR-invariant.
pub fn linearizer_reads_file_sizes(l: Linearizer) -> bool {
    matches!(l, Linearizer::MinVolume)
}

/// Composes part-fingerprints into one stage-input fingerprint
/// (order-sensitive, domain-tagged).
pub fn compose(tag: u64, parts: &[u64]) -> u64 {
    let mut h = Fnv1a::tagged(tag);
    h.write_usize(parts.len());
    for &p in parts {
        h.write_word(p);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegasus::{generate, WorkflowClass};

    #[test]
    fn workflow_fp_is_deterministic_and_instance_sensitive() {
        let a = workflow_fp(&generate(WorkflowClass::Genome, 50, 1));
        let a2 = workflow_fp(&generate(WorkflowClass::Genome, 50, 1));
        assert_eq!(a, a2);
        let b = workflow_fp(&generate(WorkflowClass::Genome, 50, 2));
        assert_ne!(a.structure, b.structure);
    }

    #[test]
    fn ccr_rescale_changes_only_file_sizes() {
        // The engine's schedule-cache soundness argument, as a
        // fingerprint identity: rescaling to a CCR rewrites sizes, not
        // structure.
        let base = generate(WorkflowClass::Montage, 50, 7);
        let mut scaled = base.clone();
        pegasus::ccr::scale_to_ccr(&mut scaled, 0.05, 1e8);
        let fa = workflow_fp(&base);
        let fb = workflow_fp(&scaled);
        assert_eq!(fa.structure, fb.structure);
        assert_ne!(fa.file_sizes, fb.file_sizes);
        assert_ne!(fa.combined(), fb.combined());
    }

    #[test]
    fn weight_change_flips_structure() {
        let mut w = generate(WorkflowClass::Genome, 50, 3);
        let before = workflow_fp(&w);
        let t = w.dag.task_ids().next().unwrap();
        let old = w.dag.weight(t);
        w.dag.set_weight(t, old * 2.0);
        assert_ne!(workflow_fp(&w).structure, before.structure);
        assert_eq!(workflow_fp(&w).file_sizes, before.file_sizes);
    }

    #[test]
    fn model_fp_separates_families_and_params() {
        let e1 = model_fp(&FailureModel::exponential(1e-5));
        let e2 = model_fp(&FailureModel::exponential(2e-5));
        assert_ne!(e1, e2);
        // Weibull k=1 with scale 1/λ is distribution-equal to the
        // exponential, but the fingerprint keys on representation —
        // over-invalidation is sound, under-invalidation would not be.
        let w1 = model_fp(&FailureModel::weibull(1.0, 1e5));
        assert_ne!(e1, w1);
    }

    #[test]
    fn allocate_config_fp_keys_on_linearizer_and_seed() {
        let a = allocate_config_fp(&AllocateConfig::default());
        let b = allocate_config_fp(&AllocateConfig {
            linearizer: Linearizer::Structural,
            seed: 0,
        });
        let c = allocate_config_fp(&AllocateConfig {
            linearizer: Linearizer::RandomTopo,
            seed: 1,
        });
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn compose_is_order_sensitive() {
        assert_ne!(compose(9, &[1, 2]), compose(9, &[2, 1]));
        assert_ne!(compose(9, &[]), compose(10, &[]));
    }
}
