//! Typed failure taxonomy of the planning stack.
//!
//! The serving path (`ckpt_service`) must never answer a query by
//! crashing the process or by handing back a silently-wrong number:
//! every way a stage can fail is named here, and the stage functions
//! ([`crate::stage`]) plus the session/store API return [`PlanError`]
//! instead of panicking. The offline experiment grids keep their
//! fail-fast behavior by unwrapping at a single documented funnel
//! (`Pipeline`), where inputs are valid by construction.
//!
//! The taxonomy is deliberately small — callers branch on *kind*, not
//! on message text:
//!
//! * [`PlanError::InvalidInput`] — the request itself is malformed
//!   (NaN pfail, zero processors, negative task weight, …). Never
//!   retried: the same request can only fail the same way.
//! * [`PlanError::Numeric`] — a stage produced a non-finite or
//!   otherwise meaningless number from inputs that passed validation.
//!   A bug or a model pushed outside its domain; surfaced, not served.
//! * [`PlanError::Cancelled`] — a cooperative deadline/cancellation
//!   budget ([`crate::budget::Budget`]) expired mid-stage. The partial
//!   work is discarded; nothing is cached.
//! * [`PlanError::StageFailed`] — a stage died (panicked or hit an
//!   injected fault) while computing. Carries the stage, the captured
//!   panic message, and how many attempts the memo layer made before
//!   giving up (see `ckpt_service::Memo`'s bounded retry).

use crate::stage::StageId;

/// Everything the planning stack can return instead of an answer.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanError {
    /// The request is malformed; re-running it cannot succeed.
    InvalidInput {
        /// Which input field or parameter was rejected.
        field: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// A stage produced a non-finite / meaningless value from inputs
    /// that passed validation.
    Numeric {
        /// The stage whose output was rejected.
        stage: StageId,
        /// What was wrong with the number.
        message: String,
    },
    /// A cooperative cancellation/deadline budget expired.
    Cancelled,
    /// A stage panicked (or hit an injected fault) while computing.
    StageFailed {
        /// The stage that died.
        stage: StageId,
        /// The captured panic payload (or injected-fault description).
        message: String,
        /// Attempts the memo layer made before surfacing the error.
        attempts: u32,
    },
}

/// Coarse classification of a [`PlanError`] — the part of a failure
/// that trackers, spans, and metrics carry without holding onto the
/// message. One variant per [`PlanError`] variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ErrorKind {
    /// See [`PlanError::InvalidInput`].
    InvalidInput,
    /// See [`PlanError::Numeric`].
    Numeric,
    /// See [`PlanError::Cancelled`].
    Cancelled,
    /// See [`PlanError::StageFailed`].
    StageFailed,
}

impl ErrorKind {
    /// Stable snake_case label (metric label values, trace output).
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::InvalidInput => "invalid_input",
            ErrorKind::Numeric => "numeric",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::StageFailed => "stage_failed",
        }
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl PlanError {
    /// Convenience constructor for [`PlanError::InvalidInput`].
    pub fn invalid(field: &'static str, message: impl Into<String>) -> Self {
        PlanError::InvalidInput {
            field,
            message: message.into(),
        }
    }

    /// The coarse kind of this error (what failure trackers record).
    pub fn kind(&self) -> ErrorKind {
        match self {
            PlanError::InvalidInput { .. } => ErrorKind::InvalidInput,
            PlanError::Numeric { .. } => ErrorKind::Numeric,
            PlanError::Cancelled => ErrorKind::Cancelled,
            PlanError::StageFailed { .. } => ErrorKind::StageFailed,
        }
    }

    /// How many times the failing computation was attempted. Stage
    /// deaths carry the memo layer's retry count; every other kind is
    /// deterministic, so the one run that produced it is the count.
    pub fn attempts(&self) -> u32 {
        match self {
            PlanError::StageFailed { attempts, .. } => *attempts,
            _ => 1,
        }
    }

    /// Whether retrying the exact same request could ever succeed.
    /// Deterministically-invalid requests (and deterministic numeric
    /// failures) are not retryable; cancellations and stage deaths are
    /// (the fault may have been transient).
    pub fn is_retryable(&self) -> bool {
        match self {
            PlanError::InvalidInput { .. } | PlanError::Numeric { .. } => false,
            PlanError::Cancelled | PlanError::StageFailed { .. } => true,
        }
    }
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::InvalidInput { field, message } => {
                write!(f, "invalid input `{field}`: {message}")
            }
            PlanError::Numeric { stage, message } => {
                write!(f, "numeric failure in stage `{stage}`: {message}")
            }
            PlanError::Cancelled => write!(f, "cancelled (deadline or budget expired)"),
            PlanError::StageFailed {
                stage,
                message,
                attempts,
            } => write!(
                f,
                "stage `{stage}` failed after {attempts} attempt(s): {message}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Result alias used across the fallible planning API.
pub type PlanResult<T> = Result<T, PlanError>;

/// Ensures `v` is finite, mapping violations to
/// [`PlanError::InvalidInput`] on `field`.
pub fn require_finite(field: &'static str, v: f64) -> PlanResult<f64> {
    if v.is_finite() {
        Ok(v)
    } else {
        Err(PlanError::invalid(
            field,
            format!("must be finite, got {v}"),
        ))
    }
}

/// Ensures `v` is finite and strictly positive.
pub fn require_positive(field: &'static str, v: f64) -> PlanResult<f64> {
    require_finite(field, v)?;
    if v > 0.0 {
        Ok(v)
    } else {
        Err(PlanError::invalid(
            field,
            format!("must be strictly positive, got {v}"),
        ))
    }
}

/// Ensures `v` is a valid per-task failure probability, `[0, 1)`.
pub fn require_pfail(field: &'static str, v: f64) -> PlanResult<f64> {
    require_finite(field, v)?;
    if (0.0..1.0).contains(&v) {
        Ok(v)
    } else {
        Err(PlanError::invalid(
            field,
            format!("must be in [0, 1), got {v}"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_kind_and_context() {
        let e = PlanError::invalid("pfail", "must be in [0, 1), got NaN");
        assert!(e.to_string().contains("pfail"));
        let e = PlanError::StageFailed {
            stage: StageId::Placement,
            message: "boom".into(),
            attempts: 3,
        };
        let s = e.to_string();
        assert!(s.contains("placement") && s.contains("3") && s.contains("boom"));
        assert!(PlanError::Cancelled.to_string().contains("cancelled"));
    }

    #[test]
    fn retryability_follows_the_taxonomy() {
        assert!(!PlanError::invalid("x", "bad").is_retryable());
        assert!(!PlanError::Numeric {
            stage: StageId::EvalAnalytic,
            message: "NaN".into()
        }
        .is_retryable());
        assert!(PlanError::Cancelled.is_retryable());
        assert!(PlanError::StageFailed {
            stage: StageId::Curve,
            message: "died".into(),
            attempts: 1
        }
        .is_retryable());
    }

    #[test]
    fn kinds_and_attempts_classify_every_variant() {
        assert_eq!(
            ErrorKind::InvalidInput,
            PlanError::invalid("x", "bad").kind()
        );
        assert_eq!(ErrorKind::Cancelled, PlanError::Cancelled.kind());
        let numeric = PlanError::Numeric {
            stage: StageId::EvalAnalytic,
            message: "NaN".into(),
        };
        assert_eq!(ErrorKind::Numeric, numeric.kind());
        assert_eq!(1, numeric.attempts());
        let died = PlanError::StageFailed {
            stage: StageId::Curve,
            message: "boom".into(),
            attempts: 3,
        };
        assert_eq!(ErrorKind::StageFailed, died.kind());
        assert_eq!(3, died.attempts());
        assert_eq!("stage_failed", died.kind().name());
        assert_eq!("cancelled", ErrorKind::Cancelled.to_string());
    }

    #[test]
    fn validators_accept_and_reject_boundaries() {
        assert!(require_pfail("p", 0.0).is_ok());
        assert!(require_pfail("p", 0.999).is_ok());
        assert!(require_pfail("p", 1.0).is_err());
        assert!(require_pfail("p", f64::NAN).is_err());
        assert!(require_positive("w", 1e-300).is_ok());
        assert!(require_positive("w", 0.0).is_err());
        assert!(require_positive("w", f64::INFINITY).is_err());
        assert!(require_finite("b", -3.0).is_ok());
    }
}
