//! Cooperative cancellation and deadline budgets.
//!
//! The planning hot loops (the checkpoint DP's `O(n²)` sweep, the
//! Monte Carlo replication loop) can run for seconds on large inputs; a
//! serving layer needs a way to abandon them mid-flight without leaving
//! a thread spinning or a partial artifact in a cache. A [`Budget`] is
//! the cooperative half of that contract: long loops call
//! [`Budget::check`] at coarse intervals (once per DP row, once per MC
//! replication), and an expired budget aborts the computation.
//!
//! ## Abort mechanism
//!
//! Threading `Result` through every DP inner call would contaminate a
//! deep, hot call graph whose callers (the offline experiment grids)
//! never cancel. Instead `check` unwinds with a typed [`Cancelled`]
//! payload — the same technique Salsa and similar incremental engines
//! use — and the one place that runs stages speculatively
//! (`ckpt_service`'s memo layer) catches the unwind, classifies the
//! payload, and turns it into `PlanError::Cancelled`. Nothing partial
//! is ever cached: the unwind destroys the stage's locals before the
//! memo slot is filled.
//!
//! A `Budget` is cheap to poll (`Instant::now` plus one atomic load)
//! and clone-free to share: stages receive `Option<&Budget>` via
//! `CostCtx` and check it only when present, so the offline paths pay a
//! single well-predicted branch.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The typed unwind payload of a cooperative cancellation. Catchers
/// (`ckpt_service::Memo`) downcast panic payloads to this type to
/// distinguish "budget expired" from a genuine stage death.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl Cancelled {
    /// Begins the cancellation unwind. Never returns.
    pub fn throw() -> ! {
        std::panic::panic_any(Cancelled)
    }

    /// Whether a caught panic payload is a cancellation unwind.
    pub fn caught(payload: &(dyn std::any::Any + Send)) -> bool {
        payload.downcast_ref::<Cancelled>().is_some()
    }
}

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("cancelled (deadline or budget expired)")
    }
}

/// A cooperative cancellation/deadline budget shared between a request
/// and the stages computing it.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    cancelled: Arc<AtomicBool>,
}

impl Budget {
    /// A budget that never expires on its own (but can still be
    /// [`Budget::cancel`]led).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A budget expiring `limit` from now.
    pub fn with_deadline(limit: Duration) -> Self {
        Budget {
            deadline: Some(Instant::now() + limit),
            cancelled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Marks the budget cancelled; every sharer's next [`Budget::check`]
    /// aborts.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the budget has been cancelled or its deadline passed.
    pub fn is_exhausted(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Cooperative cancellation point: unwinds with [`Cancelled`] when
    /// the budget is exhausted. Call at coarse intervals from hot loops.
    #[inline]
    pub fn check(&self) {
        if self.is_exhausted() {
            Cancelled::throw()
        }
    }

    /// [`Budget::check`] as a `Result`, for code already on a fallible
    /// path (stage boundaries rather than hot loops).
    pub fn check_ok(&self) -> Result<(), Cancelled> {
        if self.is_exhausted() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

/// Installs (once, process-wide) a panic hook that stays silent for
/// [`Cancelled`] unwinds and for `seedmix` injected-fault panics, and
/// delegates everything else to the previously installed hook.
/// Cancellation and injected faults are *control flow* on the serving
/// path — caught, classified, and retried a few frames up — so the
/// default hook's "thread panicked" stderr chatter is pure noise there.
/// Callers that arm a deadline or a fault plan invoke this lazily; the
/// offline binaries never do, so their crash diagnostics are untouched.
pub fn install_quiet_unwind_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let quiet = info.payload().downcast_ref::<Cancelled>().is_some()
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.starts_with(seedmix::faultinject::PANIC_PREFIX))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.starts_with(seedmix::faultinject::PANIC_PREFIX));
            if !quiet {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        assert!(!b.is_exhausted());
        b.check(); // must not unwind
        assert!(b.check_ok().is_ok());
    }

    #[test]
    fn cancel_trips_all_clones() {
        let b = Budget::unlimited();
        let c = b.clone();
        b.cancel();
        assert!(c.is_exhausted());
        assert!(c.check_ok().is_err());
    }

    #[test]
    fn deadline_in_the_past_trips_immediately() {
        let b = Budget::with_deadline(Duration::ZERO);
        assert!(b.is_exhausted());
    }

    #[test]
    fn check_unwinds_with_a_recognizable_payload() {
        let b = Budget::with_deadline(Duration::ZERO);
        let err = std::panic::catch_unwind(|| b.check()).unwrap_err();
        assert!(Cancelled::caught(err.as_ref()));
        // An ordinary panic payload must NOT classify as cancellation.
        let err = std::panic::catch_unwind(|| panic!("plain")).unwrap_err();
        assert!(!Cancelled::caught(err.as_ref()));
    }
}
