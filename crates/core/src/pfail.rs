//! `pfail ↔ λ` conversion (§VI-A).
//!
//! To compare across workflows with different task weights, the paper fixes
//! the probability `pfail` that an *average* task fails and derives the
//! exponential processor failure rate from `pfail = 1 - e^{-λ·w̄}`, where
//! `w̄` is the mean task weight.
//!
//! Both directions share one domain contract: `mean_weight` must be
//! **strictly positive and finite** (a zero mean weight has no average
//! task to calibrate against), `pfail ∈ [0, 1)` and `λ ∈ [0, ∞)` finite.
//! The two functions historically disagreed on the `mean_weight = 0`
//! boundary (`lambda_from_pfail` rejected it, `pfail_from_lambda`
//! silently accepted it and returned 0); the contract is now symmetric
//! and both boundaries are tested.
//!
//! The non-exponential generalization of this calibration lives on
//! [`crate::FailureModel`] (`weibull_from_pfail`, `lognormal_from_pfail`),
//! which pins any model family so that `F(w̄) = pfail`.

/// Failure rate `λ` such that a task of weight `mean_weight` fails with
/// probability `pfail`.
///
/// Accepted ranges: `pfail ∈ [0, 1)` (`pfail = 0` maps to `λ = 0`),
/// `mean_weight ∈ (0, ∞)`.
pub fn lambda_from_pfail(pfail: f64, mean_weight: f64) -> f64 {
    assert!((0.0..1.0).contains(&pfail), "pfail must be in [0, 1)");
    assert!(
        mean_weight > 0.0 && mean_weight.is_finite(),
        "mean weight must be positive and finite"
    );
    -(1.0 - pfail).ln() / mean_weight
}

/// Probability that a task of weight `mean_weight` fails at rate `lambda`.
///
/// Accepted ranges: `lambda ∈ [0, ∞)` finite, `mean_weight ∈ (0, ∞)` —
/// the same domain `lambda_from_pfail` maps onto, so the two functions
/// are mutual inverses everywhere they are defined.
pub fn pfail_from_lambda(lambda: f64, mean_weight: f64) -> f64 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "lambda must be finite and non-negative"
    );
    assert!(
        mean_weight > 0.0 && mean_weight.is_finite(),
        "mean weight must be positive and finite"
    );
    1.0 - (-lambda * mean_weight).exp()
}

/// The three `pfail` values of the paper's figures.
pub const PAPER_PFAILS: [f64; 3] = [0.01, 0.001, 0.0001];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for pfail in PAPER_PFAILS {
            for w in [0.5, 10.0, 500.0] {
                let l = lambda_from_pfail(pfail, w);
                let back = pfail_from_lambda(l, w);
                assert!((back - pfail).abs() < 1e-12, "{back} vs {pfail}");
            }
        }
    }

    #[test]
    fn small_pfail_is_linear() {
        // pfail ≈ λ·w̄ for small rates.
        let l = lambda_from_pfail(1e-4, 100.0);
        assert!((l - 1e-6).abs() < 1e-9);
    }

    #[test]
    fn zero_pfail_zero_lambda() {
        assert_eq!(lambda_from_pfail(0.0, 10.0), 0.0);
        assert_eq!(pfail_from_lambda(0.0, 10.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "pfail must be in [0, 1)")]
    fn pfail_one_rejected() {
        lambda_from_pfail(1.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "mean weight must be positive")]
    fn zero_mean_weight_rejected_forward() {
        lambda_from_pfail(0.01, 0.0);
    }

    #[test]
    #[should_panic(expected = "mean weight must be positive")]
    fn zero_mean_weight_rejected_backward() {
        // The historical asymmetry: this boundary used to be silently
        // accepted here while rejected in `lambda_from_pfail`.
        pfail_from_lambda(0.1, 0.0);
    }

    #[test]
    #[should_panic(expected = "mean weight must be positive")]
    fn infinite_mean_weight_rejected() {
        pfail_from_lambda(0.1, f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "lambda must be finite")]
    fn negative_lambda_rejected() {
        pfail_from_lambda(-1.0, 10.0);
    }
}
