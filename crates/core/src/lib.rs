//! # ckpt-core — scheduling and checkpointing M-SPG workflows for
//! fail-stop errors
//!
//! The primary contribution of *Checkpointing Workflows for Fail-Stop
//! Errors* (Han, Canon, Casanova, Robert, Vivien — IEEE CLUSTER 2017),
//! implemented in full:
//!
//! * [`allocate`] / [`propmap`] — Algorithm 1: the recursive
//!   proportional-mapping list scheduler that decomposes an M-SPG as
//!   `C ⊳ (G1 ∥ … ∥ Gn) ⊳ Gn+1` and linearizes sub-graphs into
//!   **superchains**;
//! * [`checkpoint_dp`] — Algorithm 2: the `O(n²)` dynamic program placing
//!   checkpoints inside a superchain under the extended checkpoint
//!   semantics (Eq. (2) costs, per-file deduplication), always
//!   checkpointing superchain exits to remove crossover dependencies;
//! * [`coalesce`] — §II-C: coalescing checkpoint-delimited segments into a
//!   2-state probabilistic DAG evaluable by the `probdag` estimators;
//! * [`evaluate`] — the three strategies of §VI (**CkptAll**, **CkptNone**
//!   via Theorem 1, **CkptSome**) plus the naive exit-only ablation, behind
//!   a single [`evaluate::Pipeline`];
//! * [`pfail`] / [`platform`] — the `pfail ↔ λ` normalization and platform
//!   model of §VI-A;
//! * [`failure_model`] — the pluggable failure-distribution subsystem
//!   (Exponential / Weibull / LogNormal) behind every cost path: Eq. (2)
//!   stays closed-form for the exponential case, non-memoryless models
//!   ride an exact renewal solve by deterministic quadrature;
//! * [`policy`] — the pluggable checkpoint-placement subsystem: the
//!   paper's placements as builtin [`policy::CheckpointPolicy`]s (the
//!   [`Strategy`] enum is a thin constructor over them) plus classical
//!   competitors — Young/Daly periodic, adaptive risk-threshold, and
//!   the structural crossover heuristic;
//! * [`stage`] / [`fingerprint`] — the pipeline as an explicit **stage
//!   graph**: each step a pure function from content-fingerprinted
//!   inputs to one artifact, which is what lets the `ckpt_service`
//!   crate answer what-if queries by re-executing only the stages a
//!   change touches.
//!
//! ## Quickstart
//!
//! ```
//! use ckpt_core::allocate::AllocateConfig;
//! use ckpt_core::evaluate::{Pipeline, Strategy};
//! use ckpt_core::pfail::lambda_from_pfail;
//! use ckpt_core::platform::Platform;
//! use probdag::PathApprox;
//!
//! let workflow = pegasus::generate(pegasus::WorkflowClass::Genome, 50, 42);
//! let lambda = lambda_from_pfail(0.001, workflow.dag.mean_weight());
//! let platform = Platform::new(5, lambda, 1e8);
//! let pipe = Pipeline::new(&workflow, platform, &AllocateConfig::default());
//! let some = pipe.assess(Strategy::CkptSome, &PathApprox::default());
//! let all = pipe.assess(Strategy::CkptAll, &PathApprox::default());
//! assert!(some.expected_makespan <= all.expected_makespan * 1.02);
//! ```

pub mod allocate;
pub mod budget;
pub mod checkpoint_dp;
pub mod coalesce;
pub mod error;
pub mod evaluate;
pub mod failure_model;
pub mod fingerprint;
pub mod pfail;
pub mod platform;
pub mod policy;
pub mod propmap;
pub mod schedule;
pub mod stage;

pub use allocate::{allocate, AllocateConfig};
pub use budget::{Budget, Cancelled};
pub use checkpoint_dp::{
    optimal_checkpoints, optimal_checkpoints_reusing, segment_cost, segment_cost_reusing, CostCtx,
    DpScratch, SegmentCost, SegmentCostScratch, KERNEL_MIN_LEN,
};
pub use coalesce::{coalesce, CheckpointPlan, PlacementStats, Segment, SegmentGraph};
pub use error::{ErrorKind, PlanError, PlanResult};
pub use evaluate::{theorem1, theorem1_model, Assessment, Pipeline, Strategy};
pub use failure_model::{FailureModel, RestartCurve};
pub use fingerprint::{allocate_config_fp, model_fp, workflow_fp, WorkflowFp};
pub use pfail::{lambda_from_pfail, pfail_from_lambda};
pub use platform::Platform;
pub use policy::{
    placement_expected_time, plan_with_policy, plan_with_policy_threads, CheckpointPolicy,
    CkptAllPolicy, DalyPeriodic, DpOptimalPolicy, ExitOnlyPolicy, GreedyCrossover, PolicyScratch,
    RiskThreshold,
};
pub use propmap::{propmap, PropMapResult};
pub use schedule::{Schedule, Superchain};
pub use stage::StageId;
