//! The execution platform model.

use crate::failure_model::FailureModel;

/// A homogeneous failure-prone platform (§II): `n_procs` identical
/// processors with independent fail-stop failures drawn from `model`
/// (the paper's exponential process, or any [`FailureModel`]), sharing
/// stable storage of bandwidth `bandwidth` bytes/s.
///
/// Reading or writing a file of `s` bytes takes `s / bandwidth` seconds;
/// in-memory transfers between tasks cost nothing (the paper's model —
/// only stable-storage traffic is priced).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Platform {
    /// Number of processors.
    pub n_procs: usize,
    /// Per-processor failure distribution (renewal process: each reboot
    /// or restart rejuvenates the processor).
    pub model: FailureModel,
    /// Stable-storage bandwidth (bytes/s).
    pub bandwidth: f64,
}

impl Platform {
    /// Creates the paper's exponential platform, validating the
    /// parameters.
    pub fn new(n_procs: usize, lambda: f64, bandwidth: f64) -> Self {
        Platform::with_model(n_procs, FailureModel::exponential(lambda), bandwidth)
    }

    /// Creates a platform with an arbitrary failure model.
    pub fn with_model(n_procs: usize, model: FailureModel, bandwidth: f64) -> Self {
        assert!(n_procs >= 1, "need at least one processor");
        assert!(bandwidth > 0.0 && bandwidth.is_finite(), "bad bandwidth");
        Platform {
            n_procs,
            model,
            bandwidth,
        }
    }

    /// The exponential failure rate of this platform.
    ///
    /// # Panics
    /// Panics if the platform's failure model is not exponential; paths
    /// that support arbitrary models should read [`Platform::model`]
    /// instead.
    pub fn lambda(&self) -> f64 {
        self.model
            .exponential_rate()
            .expect("platform failure model is not exponential")
    }

    /// Time to read or write `bytes` from/to stable storage.
    #[inline]
    pub fn io_time(&self, bytes: f64) -> f64 {
        bytes / self.bandwidth
    }

    /// The paper's processor counts for each workflow size (§VI, figures
    /// 5–7): 50 → {3,5,7,10}, 300 → {18,35,52,70}, 1000 → {61,123,184,245}.
    pub fn paper_proc_counts(n_tasks: usize) -> &'static [usize] {
        match n_tasks {
            0..=149 => &[3, 5, 7, 10],
            150..=649 => &[18, 35, 52, 70],
            _ => &[61, 123, 184, 245],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_time() {
        let p = Platform::new(4, 1e-6, 1e8);
        assert_eq!(p.io_time(1e8), 1.0);
        assert_eq!(p.io_time(0.0), 0.0);
    }

    #[test]
    fn lambda_accessor_roundtrips() {
        let p = Platform::new(4, 2.5e-4, 1e8);
        assert_eq!(p.lambda(), 2.5e-4);
    }

    #[test]
    #[should_panic(expected = "not exponential")]
    fn lambda_accessor_rejects_non_exponential() {
        let p = Platform::with_model(4, FailureModel::weibull(2.0, 100.0), 1e8);
        let _ = p.lambda();
    }

    #[test]
    fn paper_counts() {
        assert_eq!(Platform::paper_proc_counts(50), &[3, 5, 7, 10]);
        assert_eq!(Platform::paper_proc_counts(300), &[18, 35, 52, 70]);
        assert_eq!(Platform::paper_proc_counts(1000), &[61, 123, 184, 245]);
    }

    #[test]
    #[should_panic]
    fn zero_procs_rejected() {
        Platform::new(0, 0.0, 1.0);
    }
}
