//! `PropMap` — the proportional-mapping processor allocation
//! (Algorithm 1, lines 15–36; after Pothen & Sun's proportional mapping).

use mspg::{Dag, Mspg};

/// Result of proportionally mapping `n` parallel components onto `p`
/// processors: `k = min(n, p)` output graphs with their processor counts.
#[derive(Clone, Debug)]
pub struct PropMapResult {
    /// Output (possibly merged) sub-M-SPGs.
    pub graphs: Vec<Mspg>,
    /// Processors allocated to each output graph (sums to ≤ `p`, exactly
    /// `p` when `n < p`).
    pub proc_counts: Vec<usize>,
}

/// Allocates processors to parallel components proportionally to their
/// total task weight (stable-storage traffic is ignored here, §II-C).
///
/// * `n ≥ p`: components are sorted by non-increasing weight and greedily
///   merged (LPT-style) into `p` bins, each bin becoming one parallel
///   composition on one processor.
/// * `n < p`: each component gets one processor, then the `p - n` spare
///   processors go one at a time to the currently heaviest component,
///   whose effective weight is discounted by `1 - 1/procNum` (Line 34).
pub fn propmap(dag: &Dag, components: Vec<Mspg>, p: usize) -> PropMapResult {
    assert!(!components.is_empty() && p >= 1);
    let n = components.len();
    // Sort by non-increasing weight; tie-break on first task id for
    // determinism.
    let mut indexed: Vec<(f64, Mspg)> =
        components.into_iter().map(|g| (g.weight(dag), g)).collect();
    indexed.sort_by(|a, b| b.0.total_cmp(&a.0));
    if n >= p {
        let mut bins: Vec<Vec<Mspg>> = (0..p).map(|_| Vec::new()).collect();
        let mut weights = vec![0.0f64; p];
        for (w, g) in indexed {
            let j = argmin(&weights);
            weights[j] += w;
            bins[j].push(g);
        }
        let graphs: Vec<Mspg> = bins
            .into_iter()
            .filter(|b| !b.is_empty())
            .map(|b| Mspg::parallel(b).expect("non-empty bin"))
            .collect();
        let counts = vec![1usize; graphs.len()];
        PropMapResult {
            graphs,
            proc_counts: counts,
        }
    } else {
        let mut weights: Vec<f64> = indexed.iter().map(|(w, _)| *w).collect();
        let graphs: Vec<Mspg> = indexed.into_iter().map(|(_, g)| g).collect();
        let mut counts = vec![1usize; n];
        let mut spare = p - n;
        while spare > 0 {
            let j = argmax(&weights);
            counts[j] += 1;
            weights[j] *= 1.0 - 1.0 / counts[j] as f64;
            spare -= 1;
        }
        PropMapResult {
            graphs,
            proc_counts: counts,
        }
    }
}

fn argmin(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x < xs[best] {
            best = i;
        }
    }
    let _ = xs[best];
    best
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspg::TaskId;

    /// DAG with `weights[i]` as task i's weight; components are single
    /// tasks.
    fn setup(weights: &[f64]) -> (Dag, Vec<Mspg>) {
        let mut dag = Dag::new();
        let k = dag.add_kind("t");
        let comps = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| Mspg::Task(dag.add_task(format!("t{i}"), k, w)))
            .collect();
        (dag, comps)
    }

    #[test]
    fn more_components_than_procs_balances() {
        let (dag, comps) = setup(&[5.0, 4.0, 3.0, 3.0, 2.0, 1.0]);
        let r = propmap(&dag, comps, 2);
        assert_eq!(r.graphs.len(), 2);
        assert_eq!(r.proc_counts, vec![1, 1]);
        // LPT: bins {5,3,1}=9 and {4,3,2}=9.
        let w0 = r.graphs[0].weight(&dag);
        let w1 = r.graphs[1].weight(&dag);
        assert_eq!(w0 + w1, 18.0);
        assert!((w0 - w1).abs() <= 1.0, "bins {w0} vs {w1}");
    }

    #[test]
    fn fewer_components_than_procs_gives_spares_to_heaviest() {
        let (dag, comps) = setup(&[10.0, 1.0]);
        let r = propmap(&dag, comps, 5);
        assert_eq!(r.graphs.len(), 2);
        assert_eq!(r.proc_counts.iter().sum::<usize>(), 5);
        // The weight-10 component must take all 3 spares:
        // 10 → (×1/2) 5 → (×2/3) 3.33 → (×3/4) 2.5, still above 1.
        assert_eq!(r.proc_counts, vec![4, 1]);
    }

    #[test]
    fn equal_components_split_spares() {
        let (dag, comps) = setup(&[6.0, 6.0]);
        let r = propmap(&dag, comps, 4);
        assert_eq!(r.proc_counts, vec![2, 2]);
    }

    #[test]
    fn n_equals_p_is_identity() {
        let (dag, comps) = setup(&[3.0, 2.0, 1.0]);
        let r = propmap(&dag, comps, 3);
        assert_eq!(r.graphs.len(), 3);
        assert_eq!(r.proc_counts, vec![1, 1, 1]);
        // Sorted by non-increasing weight.
        assert_eq!(r.graphs[0].weight(&dag), 3.0);
        assert_eq!(r.graphs[2].weight(&dag), 1.0);
    }

    #[test]
    fn single_processor_merges_everything() {
        let (dag, comps) = setup(&[1.0, 2.0, 3.0]);
        let r = propmap(&dag, comps, 1);
        assert_eq!(r.graphs.len(), 1);
        assert_eq!(r.graphs[0].n_tasks(), 3);
    }

    #[test]
    fn weights_preserved_under_merge() {
        let (dag, comps) = setup(&[5.0, 4.0, 3.0, 2.0, 1.0]);
        let total: f64 = 15.0;
        let r = propmap(&dag, comps, 3);
        let sum: f64 = r.graphs.iter().map(|g| g.weight(&dag)).sum();
        assert_eq!(sum, total);
    }

    #[test]
    fn single_task_many_procs() {
        let (dag, comps) = setup(&[7.0]);
        let r = propmap(&dag, comps, 8);
        assert_eq!(r.graphs.len(), 1);
        assert_eq!(r.proc_counts, vec![8]);
        let _ = TaskId(0);
    }
}
