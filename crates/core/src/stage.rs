//! The planning pipeline as an explicit stage graph.
//!
//! [`crate::evaluate::Pipeline`] used to be a monolith: every query
//! re-ran schedule → curve → placement → coalesce → evaluate from
//! scratch. This module names each step as a **pure stage function** —
//! a deterministic map from its inputs to one artifact — so that a
//! caller holding content fingerprints of the inputs
//! ([`crate::fingerprint`]) can cache artifacts and re-execute only the
//! stages a change actually touches. `Pipeline` itself now routes
//! through these functions (bit-identical to the old monolith), and the
//! `ckpt_service` crate builds its incremental sessions on top.
//!
//! The stage graph (downstream depends on upstream):
//!
//! ```text
//! Generate ──► Schedule ──────────────► Placement ──► SegmentGraph ──► EvalAnalytic
//!     │            │                        ▲   ▲          ▲               EvalMc
//!     └────────────┼──► Curve ──────────────┘   │          │
//!                  └────────(model, platform)───┴──────────┘
//! ```
//!
//! Two fusions are deliberate. *Superchain decomposition* is not a
//! separate stage: Algorithm 1 interleaves proportional-mapping
//! decomposition with per-sub-graph linearization, so the superchains
//! are a field of the [`Schedule`] artifact (see [`crate::allocate`]).
//! And *placement* and *segment-graph* both read the failure model (the
//! coalesced 2-state probabilities depend on λ), so a model drift
//! re-runs both — the invalidation-matrix tests in `ckpt_service` pin
//! this exactly.
//!
//! Two stage ids have no function here: `Generate` (workflow synthesis
//! lives in the `pegasus` crate, upstream of this one) and `EvalMc`
//! (discrete-event simulation lives in `failsim`, downstream). The
//! service invokes those crates directly under the same stage ids.

use mspg::{Dag, Workflow};
use probdag::Evaluator;

use crate::allocate::{allocate, AllocateConfig};
use crate::checkpoint_dp::CostCtx;
use crate::coalesce::{coalesce, CheckpointPlan, SegmentGraph};
use crate::error::{require_positive, PlanError, PlanResult};
use crate::failure_model::RestartCurve;
use crate::platform::Platform;
use crate::policy::{plan_with_policy_threads, CheckpointPolicy, PolicyScratch};
use crate::schedule::Schedule;

/// Names of the pipeline stages, in dependency order. Used by the
/// incremental service's event tracker so tests can assert exactly
/// which stages a what-if query re-executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StageId {
    /// Workflow synthesis / parse (lives in `pegasus`).
    Generate,
    /// Algorithm 1: proportional mapping + superchain linearization
    /// (includes the superchain decomposition — see module docs).
    Schedule,
    /// RestartCurve tabulation for non-memoryless models.
    Curve,
    /// Checkpoint placement (Algorithm 2 DP or any policy).
    Placement,
    /// §II-C coalescing into the 2-state probabilistic DAG.
    SegmentGraph,
    /// Analytic expected-makespan estimate (a `probdag` evaluator).
    EvalAnalytic,
    /// Monte Carlo / discrete-event estimate (lives in `failsim`).
    EvalMc,
}

impl StageId {
    /// All stages, dependency-ordered.
    pub const ALL: [StageId; 7] = [
        StageId::Generate,
        StageId::Schedule,
        StageId::Curve,
        StageId::Placement,
        StageId::SegmentGraph,
        StageId::EvalAnalytic,
        StageId::EvalMc,
    ];

    /// Stable display name (also the tracker's event label).
    pub fn name(self) -> &'static str {
        match self {
            StageId::Generate => "generate",
            StageId::Schedule => "schedule",
            StageId::Curve => "curve",
            StageId::Placement => "placement",
            StageId::SegmentGraph => "segment_graph",
            StageId::EvalAnalytic => "eval_analytic",
            StageId::EvalMc => "eval_mc",
        }
    }

    /// Static site name `"stage.<name>"`, shared by the fault-injection
    /// sites ([`inject`]) and the execution spans ([`traced`]) so the
    /// two instrumentation layers can never drift apart.
    pub fn site(self) -> &'static str {
        match self {
            StageId::Generate => "stage.generate",
            StageId::Schedule => "stage.schedule",
            StageId::Curve => "stage.curve",
            StageId::Placement => "stage.placement",
            StageId::SegmentGraph => "stage.segment_graph",
            StageId::EvalAnalytic => "stage.eval_analytic",
            StageId::EvalMc => "stage.eval_mc",
        }
    }

    /// Static resolution-span name `"resolve.<name>"`, used by the
    /// incremental service when it looks a stage's artifact up in the
    /// store (see `ckpt_service::Session` and DESIGN.md §12).
    pub fn resolve_site(self) -> &'static str {
        match self {
            StageId::Generate => "resolve.generate",
            StageId::Schedule => "resolve.schedule",
            StageId::Curve => "resolve.curve",
            StageId::Placement => "resolve.placement",
            StageId::SegmentGraph => "resolve.segment_graph",
            StageId::EvalAnalytic => "resolve.eval_analytic",
            StageId::EvalMc => "resolve.eval_mc",
        }
    }
}

impl std::fmt::Display for StageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Named fault-injection site of one stage: inert in default builds,
/// and under the `faultinject` feature an armed plan may panic here
/// (caught at the memo boundary), delay, or make the stage return an
/// injected [`PlanError::StageFailed`]. Site names are
/// `"stage.<stage name>"` — see `DESIGN.md` §11.
///
/// Public so the service can fire the two sites whose stage functions
/// live outside this crate (`Generate` in `pegasus`, `EvalMc` in
/// `failsim`) under the same naming scheme.
pub fn inject(stage: StageId) -> PlanResult<()> {
    // The site string is derived from the stage name so injection sites
    // and tracker labels can never drift apart. &'static via site().
    seedmix::faultinject::fire_err(stage.site()).map_err(|message| PlanError::StageFailed {
        stage,
        message,
        attempts: 1,
    })
}

/// Run `f` inside an execution span named [`StageId::site`], marking
/// the span failed if `f` errors. This is the one wrapper every stage
/// execution goes through — the in-crate stage functions below use it,
/// and the service reuses it for the two stages whose functions live
/// outside this crate (`Generate` in `pegasus`, `EvalMc` in `failsim`).
///
/// Observability contract: the span layer only *observes* `f` — it
/// never alters the value flowing out, and without the `observe`
/// feature this compiles to a plain call of `f`.
pub fn traced<T>(stage: StageId, f: impl FnOnce() -> PlanResult<T>) -> PlanResult<T> {
    let mut span = obs::span::enter(stage.site());
    let out = f();
    if out.is_err() {
        span.set_outcome(obs::span::SpanOutcome::Failed);
    }
    out
}

/// **Schedule stage**: Algorithm 1 on `workflow` for `n_procs`
/// processors. Pure in (workflow structure [+ file sizes iff the
/// linearizer reads them], `n_procs`, `cfg`); the platform's failure
/// model is *not* an input — schedules survive model drift untouched.
///
/// Fails with [`PlanError::InvalidInput`] for a zero-processor
/// platform (the list scheduler has nowhere to place anything).
pub fn schedule_stage(
    workflow: &Workflow,
    n_procs: usize,
    cfg: &AllocateConfig,
) -> PlanResult<Schedule> {
    traced(StageId::Schedule, || {
        if n_procs == 0 {
            return Err(PlanError::invalid("procs", "must be at least 1, got 0"));
        }
        inject(StageId::Schedule)?;
        Ok(allocate(workflow, n_procs, cfg))
    })
}

/// **Curve stage**: the renewal [`RestartCurve`] backing every
/// non-memoryless cost query — `None` for memoryless or never-failing
/// platforms, which take closed-form paths. Pure in (failure model,
/// workflow span statistics, bandwidth).
///
/// The table covers every span the DP or coalescer can query on this
/// workflow: from the smallest positive task weight (no segment's
/// failure-free span is shorter than the weight of a task it contains)
/// up to the whole workflow executed serially with every file read and
/// checkpointed once. Spans outside (only reachable through zero-weight
/// dummy tasks) fall back to direct quadrature. Bounded to 12 decades.
pub fn curve_stage(dag: &Dag, platform: &Platform) -> PlanResult<Option<RestartCurve>> {
    traced(StageId::Curve, || {
        require_positive("bandwidth", platform.bandwidth)?;
        inject(StageId::Curve)?;
        if platform.model.is_memoryless() || platform.model.never_fails() {
            return Ok(None);
        }
        let b_hi = dag.total_weight() + 2.0 * dag.total_data_volume() / platform.bandwidth;
        if b_hi <= 0.0 || !b_hi.is_finite() {
            return Ok(None);
        }
        let min_weight = dag
            .task_ids()
            .map(|t| dag.weight(t))
            .filter(|&w| w > 0.0)
            .fold(f64::INFINITY, f64::min);
        let b_lo = if min_weight.is_finite() {
            min_weight.min(b_hi)
        } else {
            b_hi * 1e-6
        };
        // Bound the table (and its build cost) to 12 decades of span.
        let b_lo = b_lo.max(b_hi * 1e-12);
        Ok(Some(RestartCurve::build(platform.model, b_lo, b_hi)))
    })
}

/// **Placement stage**: the checkpoint plan `policy` induces on
/// `schedule`. Pure in (workflow, model+curve, bandwidth, schedule,
/// policy); `threads` and `scratch` are speed knobs — plans are
/// bit-identical for every budget (see
/// [`crate::policy::plan_with_policy_threads`]).
pub fn placement_stage(
    ctx: &CostCtx<'_>,
    schedule: &Schedule,
    policy: &dyn CheckpointPolicy,
    scratch: &mut PolicyScratch,
    threads: usize,
) -> PlanResult<CheckpointPlan> {
    traced(StageId::Placement, || {
        inject(StageId::Placement)?;
        Ok(plan_with_policy_threads(
            ctx, schedule, policy, scratch, threads,
        ))
    })
}

/// **Segment-graph stage**: §II-C coalescing of checkpoint-delimited
/// segments into the 2-state probabilistic DAG. Pure in (workflow,
/// model+curve, bandwidth, schedule, plan) — note the model dependence:
/// the 2-state failure probabilities are per-segment functions of the
/// failure distribution, so model drift re-runs this stage too.
pub fn segment_graph_stage(
    ctx: &CostCtx<'_>,
    schedule: &Schedule,
    plan: &CheckpointPlan,
) -> PlanResult<SegmentGraph> {
    traced(StageId::SegmentGraph, || {
        inject(StageId::SegmentGraph)?;
        Ok(coalesce(ctx, schedule, plan))
    })
}

/// **Analytic-evaluate stage**: expected makespan of the coalesced
/// graph under a `probdag` evaluator. Pure in (segment graph,
/// evaluator configuration).
///
/// Fails with [`PlanError::Numeric`] when the evaluator returns a
/// non-finite makespan — the one stage whose output is a bare number,
/// so the one place a NaN could otherwise slip into an answer.
pub fn evaluate_stage(sg: &SegmentGraph, evaluator: &dyn Evaluator) -> PlanResult<f64> {
    traced(StageId::EvalAnalytic, || {
        inject(StageId::EvalAnalytic)?;
        let em = evaluator.expected_makespan(&sg.pdag);
        if em.is_finite() {
            Ok(em)
        } else {
            Err(PlanError::Numeric {
                stage: StageId::EvalAnalytic,
                message: format!("expected makespan is {em}"),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::{Pipeline, Strategy};
    use crate::pfail::lambda_from_pfail;
    use crate::policy::DpOptimalPolicy;
    use pegasus::{generate, WorkflowClass};
    use probdag::PathApprox;

    #[test]
    fn stage_ids_are_distinct_and_ordered() {
        for w in StageId::ALL.windows(2) {
            assert!(w[0] < w[1]);
        }
        let names: std::collections::HashSet<_> = StageId::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), StageId::ALL.len());
    }

    #[test]
    fn stage_functions_compose_to_the_pipeline() {
        // Running the stage functions by hand reproduces the Pipeline
        // monolith bit for bit — the refactor is a pure factoring.
        let w = generate(WorkflowClass::Montage, 50, 11);
        let lambda = lambda_from_pfail(0.001, w.dag.mean_weight());
        let platform = Platform::new(5, lambda, 1e8);
        let pipe = Pipeline::new(&w, platform, &AllocateConfig::default());

        let schedule = schedule_stage(&w, platform.n_procs, &AllocateConfig::default()).unwrap();
        let curve = curve_stage(&w.dag, &platform).unwrap();
        let ctx = CostCtx {
            dag: &w.dag,
            model: platform.model,
            bandwidth: platform.bandwidth,
            curve: curve.as_ref(),
            budget: None,
        };
        let plan = placement_stage(
            &ctx,
            &schedule,
            &DpOptimalPolicy,
            &mut PolicyScratch::new(),
            1,
        )
        .unwrap();
        assert_eq!(plan, pipe.plan(Strategy::CkptSome));
        let sg = segment_graph_stage(&ctx, &schedule, &plan).unwrap();
        let em = evaluate_stage(&sg, &PathApprox::default()).unwrap();
        let assessed = pipe.assess(Strategy::CkptSome, &PathApprox::default());
        assert_eq!(em.to_bits(), assessed.expected_makespan.to_bits());
    }

    #[test]
    fn curve_stage_is_none_for_memoryless() {
        let w = generate(WorkflowClass::Genome, 50, 1);
        let p = Platform::new(4, 1e-5, 1e8);
        assert!(curve_stage(&w.dag, &p).unwrap().is_none());
    }

    #[test]
    fn stages_reject_malformed_inputs_with_typed_errors() {
        let w = generate(WorkflowClass::Genome, 20, 3);
        let err = schedule_stage(&w, 0, &AllocateConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            PlanError::InvalidInput { field: "procs", .. }
        ));
    }
}
