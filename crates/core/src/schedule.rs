//! Schedules: superchains mapped onto processors.

use mspg::{Dag, TaskId};

/// A superchain: a sub-M-SPG linearized onto one processor (§II-C).
///
/// Tasks execute sequentially in `tasks` order; the order is a topological
/// order of the induced sub-DAG. Entry tasks have predecessors outside the
/// superchain, exit tasks have successors outside it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Superchain {
    /// Owning processor.
    pub proc: usize,
    /// Execution order (topological within the superchain).
    pub tasks: Vec<TaskId>,
}

impl Superchain {
    /// Tasks with at least one successor outside the superchain, or the
    /// final workflow outputs (no successors at all) — the tasks whose
    /// data the superchain checkpoint must preserve.
    pub fn exit_tasks(&self, dag: &Dag) -> Vec<TaskId> {
        let member = self.membership(dag);
        self.tasks
            .iter()
            .copied()
            .filter(|&t| {
                dag.succs(t).iter().any(|&(v, _)| !member[v.index()]) || dag.succs(t).is_empty()
            })
            .collect()
    }

    /// Tasks with at least one predecessor outside the superchain (or a
    /// workflow-input file).
    pub fn entry_tasks(&self, dag: &Dag) -> Vec<TaskId> {
        let member = self.membership(dag);
        self.tasks
            .iter()
            .copied()
            .filter(|&t| {
                dag.preds(t).iter().any(|&(u, _)| !member[u.index()]) || dag.preds(t).is_empty()
            })
            .collect()
    }

    fn membership(&self, dag: &Dag) -> Vec<bool> {
        let mut member = vec![false; dag.n_tasks()];
        for &t in &self.tasks {
            member[t.index()] = true;
        }
        member
    }
}

/// A complete schedule: every task assigned to a superchain, superchains
/// ordered per processor.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Number of processors.
    pub n_procs: usize,
    /// All superchains, in creation order.
    pub superchains: Vec<Superchain>,
    /// Per processor: indices into `superchains`, in execution order.
    pub proc_chains: Vec<Vec<usize>>,
    /// Per task: owning processor.
    pub task_proc: Vec<u32>,
    /// Per task: owning superchain index.
    pub task_sc: Vec<u32>,
}

/// Error returned by [`Schedule::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// A task is scheduled zero or multiple times.
    BadCover(TaskId),
    /// A superchain's order violates an internal dependence.
    NotTopological(usize),
    /// The superchain/serialization graph has a cycle (deadlock).
    Deadlock,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::BadCover(t) => write!(f, "task {t} not scheduled exactly once"),
            ScheduleError::NotTopological(s) => {
                write!(f, "superchain {s} violates internal dependencies")
            }
            ScheduleError::Deadlock => write!(f, "schedule graph has a cycle"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// Builds a schedule from superchains (used by `allocate`).
    pub fn from_superchains(dag: &Dag, n_procs: usize, superchains: Vec<Superchain>) -> Self {
        let mut proc_chains = vec![Vec::new(); n_procs];
        let mut task_proc = vec![u32::MAX; dag.n_tasks()];
        let mut task_sc = vec![u32::MAX; dag.n_tasks()];
        for (i, sc) in superchains.iter().enumerate() {
            proc_chains[sc.proc].push(i);
            for &t in &sc.tasks {
                task_proc[t.index()] = sc.proc as u32;
                task_sc[t.index()] = i as u32;
            }
        }
        Schedule {
            n_procs,
            superchains,
            proc_chains,
            task_proc,
            task_sc,
        }
    }

    /// The full task order on processor `p` (concatenated superchains).
    pub fn proc_task_order(&self, p: usize) -> Vec<TaskId> {
        self.proc_chains[p]
            .iter()
            .flat_map(|&s| self.superchains[s].tasks.iter().copied())
            .collect()
    }

    /// Total number of scheduled tasks.
    pub fn n_tasks(&self) -> usize {
        self.superchains.iter().map(|s| s.tasks.len()).sum()
    }

    /// Failure-free parallel time `W_par`: the longest path over task
    /// weights through dependence edges *plus* same-processor serialization
    /// edges, with zero I/O cost (used by Theorem 1 for CkptNone).
    pub fn failure_free_parallel_time(&self, dag: &Dag) -> f64 {
        let n = dag.n_tasks();
        // Serialization successor: the next task on the same processor.
        let mut serial_next = vec![None; n];
        for p in 0..self.n_procs {
            let order = self.proc_task_order(p);
            for w in order.windows(2) {
                serial_next[w[0].index()] = Some(w[1]);
            }
        }
        let mut indeg = vec![0usize; n];
        for t in dag.task_ids() {
            for &(v, _) in dag.succs(t) {
                indeg[v.index()] += 1;
            }
            if let Some(v) = serial_next[t.index()] {
                indeg[v.index()] += 1;
            }
        }
        let mut ready: Vec<TaskId> = dag.task_ids().filter(|t| indeg[t.index()] == 0).collect();
        let mut finish = vec![0.0f64; n];
        let mut done = 0usize;
        let mut best = 0.0f64;
        while let Some(t) = ready.pop() {
            done += 1;
            let mut start = 0.0f64;
            for &(u, _) in dag.preds(t) {
                start = start.max(finish[u.index()]);
            }
            // Serialization predecessor contributes too; handled by the
            // indegree graph: find it by scanning is avoidable — track via
            // a reverse map.
            start = start.max(finish_serial_pred(&finish, t, self, dag));
            finish[t.index()] = start + dag.weight(t);
            best = best.max(finish[t.index()]);
            for &(v, _) in dag.succs(t) {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    ready.push(v);
                }
            }
            if let Some(v) = serial_next[t.index()] {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    ready.push(v);
                }
            }
        }
        assert_eq!(done, n, "schedule graph has a cycle");
        best
    }

    /// Validates coverage, per-superchain topological consistency, and
    /// global acyclicity of dependence + serialization edges.
    pub fn validate(&self, dag: &Dag) -> Result<(), ScheduleError> {
        let mut seen = vec![false; dag.n_tasks()];
        for sc in &self.superchains {
            for &t in &sc.tasks {
                if seen[t.index()] {
                    return Err(ScheduleError::BadCover(t));
                }
                seen[t.index()] = true;
            }
        }
        if let Some(i) = seen.iter().position(|&s| !s) {
            return Err(ScheduleError::BadCover(TaskId(i as u32)));
        }
        for (i, sc) in self.superchains.iter().enumerate() {
            if !mspg::linearize::is_topological_induced(dag, &sc.tasks) {
                return Err(ScheduleError::NotTopological(i));
            }
        }
        // Global acyclicity: reuse the longest-path routine, which panics
        // on cycles — probe cheaply instead.
        if !self.is_acyclic_with_serialization(dag) {
            return Err(ScheduleError::Deadlock);
        }
        Ok(())
    }

    fn is_acyclic_with_serialization(&self, dag: &Dag) -> bool {
        let n = dag.n_tasks();
        let mut serial_next = vec![None; n];
        for p in 0..self.n_procs {
            let order = self.proc_task_order(p);
            for w in order.windows(2) {
                serial_next[w[0].index()] = Some(w[1]);
            }
        }
        let mut indeg = vec![0usize; n];
        for t in dag.task_ids() {
            for &(v, _) in dag.succs(t) {
                indeg[v.index()] += 1;
            }
            if let Some(v) = serial_next[t.index()] {
                indeg[v.index()] += 1;
            }
        }
        let mut ready: Vec<TaskId> = dag.task_ids().filter(|t| indeg[t.index()] == 0).collect();
        let mut done = 0usize;
        while let Some(t) = ready.pop() {
            done += 1;
            for &(v, _) in dag.succs(t) {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    ready.push(v);
                }
            }
            if let Some(v) = serial_next[t.index()] {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    ready.push(v);
                }
            }
        }
        done == n
    }
}

/// Finish time of `t`'s serialization predecessor, if any.
fn finish_serial_pred(finish: &[f64], t: TaskId, sched: &Schedule, dag: &Dag) -> f64 {
    // The serialization predecessor is the previous task in t's
    // superchain, or the last task of the previous superchain on the same
    // processor.
    let sc_idx = sched.task_sc[t.index()] as usize;
    let sc = &sched.superchains[sc_idx];
    let pos = sc
        .tasks
        .iter()
        .position(|&x| x == t)
        .expect("task in its superchain");
    if pos > 0 {
        return finish[sc.tasks[pos - 1].index()];
    }
    let chain_pos = sched.proc_chains[sc.proc]
        .iter()
        .position(|&s| s == sc_idx)
        .expect("superchain on its processor");
    if chain_pos > 0 {
        let prev = &sched.superchains[sched.proc_chains[sc.proc][chain_pos - 1]];
        if let Some(&last) = prev.tasks.last() {
            return finish[last.index()];
        }
    }
    let _ = dag;
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspg::Mspg;
    use mspg::Workflow;

    /// a ⊳ (b ∥ c) ⊳ d on 2 procs: P0 = [a], [b], [d]; P1 = [c].
    fn manual_schedule() -> (Workflow, Schedule) {
        let mut dag = Dag::new();
        let k = dag.add_kind("t");
        let a = dag.add_task_with_output("a", k, 1.0, 10.0);
        let b = dag.add_task_with_output("b", k, 2.0, 10.0);
        let c = dag.add_task_with_output("c", k, 5.0, 10.0);
        let d = dag.add_task_with_output("d", k, 1.0, 10.0);
        let root = Mspg::series([
            Mspg::Task(a),
            Mspg::parallel([Mspg::Task(b), Mspg::Task(c)]).unwrap(),
            Mspg::Task(d),
        ])
        .unwrap();
        let w = Workflow::new(dag, root);
        let scs = vec![
            Superchain {
                proc: 0,
                tasks: vec![a],
            },
            Superchain {
                proc: 0,
                tasks: vec![b],
            },
            Superchain {
                proc: 1,
                tasks: vec![c],
            },
            Superchain {
                proc: 0,
                tasks: vec![d],
            },
        ];
        let sched = Schedule::from_superchains(&w.dag, 2, scs);
        (w, sched)
    }

    #[test]
    fn entry_exit_tasks() {
        let (w, sched) = manual_schedule();
        let sc_a = &sched.superchains[0];
        assert_eq!(sc_a.exit_tasks(&w.dag), vec![TaskId(0)]);
        assert!(sc_a.entry_tasks(&w.dag).is_empty() || !sc_a.entry_tasks(&w.dag).is_empty());
        let sc_d = &sched.superchains[3];
        // d has no successors: still an exit (final outputs).
        assert_eq!(sc_d.exit_tasks(&w.dag), vec![TaskId(3)]);
        assert_eq!(sc_d.entry_tasks(&w.dag), vec![TaskId(3)]);
    }

    #[test]
    fn validate_ok_and_cover_errors() {
        let (w, sched) = manual_schedule();
        assert!(sched.validate(&w.dag).is_ok());
        let mut bad = sched.clone();
        bad.superchains[1].tasks.clear();
        assert!(matches!(
            bad.validate(&w.dag),
            Err(ScheduleError::BadCover(_))
        ));
    }

    #[test]
    fn validate_rejects_bad_order() {
        let (w, mut sched) = manual_schedule();
        // Merge b and d into one superchain in the wrong order.
        sched.superchains[1] = Superchain {
            proc: 0,
            tasks: vec![TaskId(3), TaskId(1)],
        };
        sched.superchains.remove(3);
        sched = Schedule::from_superchains(&w.dag, 2, sched.superchains);
        assert!(matches!(
            sched.validate(&w.dag),
            Err(ScheduleError::NotTopological(_))
        ));
    }

    #[test]
    fn parallel_time_diamond() {
        let (w, sched) = manual_schedule();
        // P0: a(1) → b(2) → d(1); P1: c(5) after a. Critical: a + c + d = 7.
        assert_eq!(sched.failure_free_parallel_time(&w.dag), 7.0);
    }

    #[test]
    fn serialization_lengthens_parallel_time() {
        let (w, _) = manual_schedule();
        // Everything on one processor: W_par = total weight.
        let scs = vec![Superchain {
            proc: 0,
            tasks: vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3)],
        }];
        let sched = Schedule::from_superchains(&w.dag, 1, scs);
        assert_eq!(sched.failure_free_parallel_time(&w.dag), 9.0);
    }

    #[test]
    fn proc_task_order_concatenates() {
        let (_, sched) = manual_schedule();
        assert_eq!(
            sched.proc_task_order(0),
            vec![TaskId(0), TaskId(1), TaskId(3)]
        );
        assert_eq!(sched.proc_task_order(1), vec![TaskId(2)]);
    }
}
