//! The failure-distribution subsystem: parametric fail-stop models
//! beyond the paper's exponential assumption.
//!
//! The paper models failures as independent exponential (memoryless)
//! processes of rate `λ` per processor, which is what makes Eq. (2)'s
//! first-order expected segment time a closed form. Related work
//! (Sodre's restart/checkpoint asymptotics; Aupy et al.'s Weibull-class
//! processes) shows the interesting regimes are *non-memoryless*:
//! infant-mortality Weibull (`k < 1`) favors eager checkpointing much
//! more than its exponential-rate equivalent, wear-out Weibull (`k > 1`)
//! and LogNormal much less. [`FailureModel`] opens that axis:
//!
//! * **analytics** — [`FailureModel::expected_restart_time`] solves the
//!   renewal (restart) equation `E[T] = ∫₀^b S(t) dt / S(b)` for any
//!   model, exactly for the exponential and by deterministic Simpson
//!   quadrature otherwise. `CostCtx::expected_segment_time` keeps the
//!   paper's closed-form Eq. (2) path for the exponential case
//!   bit-for-bit and uses the quadrature path for everything else;
//! * **simulation** — [`FailureModel::time_to_failure`] inverts the
//!   survival function from a uniform draw, so every model shares one
//!   uniform stream discipline in `failsim` (and Weibull `k = 1`
//!   reproduces the exponential sampler's arithmetic exactly);
//! * **calibration** — the `*_from_pfail` constructors generalize
//!   `lambda_from_pfail` (§VI-A): each model is pinned so that a task of
//!   the workflow's mean weight fails with probability `pfail`, which
//!   keeps cross-model comparisons honest.
//!
//! Trace-driven failures remain a *simulation-side* concern: they have
//! no parametric survival function for the cost model, so they live
//! behind `failsim::FailureSource` (`TraceFailures`), interchangeable
//! with the model-driven sources per processor.

use probdag::{normal_cdf, normal_quantile};

use crate::pfail::lambda_from_pfail;

/// Simpson panels for the numeric renewal solve (even, fixed — the
/// quadrature must be a pure function of `(model, base)` so results are
/// deterministic and thread-count independent).
const QUAD_PANELS: usize = 128;

/// A parametric fail-stop failure distribution: the time to the first
/// failure of a freshly (re)started processor. Failures form a renewal
/// process — every reboot or checkpoint restart rejuvenates the
/// processor — which reduces to the paper's Poisson process in the
/// exponential case.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FailureModel {
    /// Memoryless failures of rate `lambda` (the paper's model).
    Exponential {
        /// Failure rate (1/s), `≥ 0` (`0` = never fails).
        lambda: f64,
    },
    /// Weibull failures: `S(t) = exp(-(t/scale)^shape)`. `shape < 1`
    /// models infant mortality (decreasing hazard), `shape > 1` wear-out
    /// (increasing hazard), `shape = 1` is exponential with rate
    /// `1/scale`.
    Weibull {
        /// Shape `k > 0`.
        shape: f64,
        /// Scale `η > 0` in seconds (`∞` = never fails).
        scale: f64,
    },
    /// LogNormal failures: `ln(time-to-failure) ~ N(mu, sigma²)`.
    /// Heavy-tailed with a non-monotone hazard; never memoryless.
    LogNormal {
        /// Mean of the log (log-seconds).
        mu: f64,
        /// Standard deviation of the log, `> 0`.
        sigma: f64,
    },
}

impl FailureModel {
    /// Exponential failures of rate `lambda`.
    pub fn exponential(lambda: f64) -> Self {
        assert!(
            lambda >= 0.0 && lambda.is_finite(),
            "exponential rate must be finite and non-negative"
        );
        FailureModel::Exponential { lambda }
    }

    /// Weibull failures with the given shape and scale.
    pub fn weibull(shape: f64, scale: f64) -> Self {
        assert!(
            shape > 0.0 && shape.is_finite(),
            "Weibull shape must be positive and finite"
        );
        assert!(scale > 0.0, "Weibull scale must be positive");
        FailureModel::Weibull { shape, scale }
    }

    /// LogNormal failures with the given log-mean and log-deviation.
    pub fn lognormal(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite(), "LogNormal mu must be finite");
        assert!(
            sigma > 0.0 && sigma.is_finite(),
            "LogNormal sigma must be positive and finite"
        );
        FailureModel::LogNormal { mu, sigma }
    }

    /// The exponential model whose average task of weight `mean_weight`
    /// fails with probability `pfail` (§VI-A's normalization).
    pub fn exponential_from_pfail(pfail: f64, mean_weight: f64) -> Self {
        FailureModel::Exponential {
            lambda: lambda_from_pfail(pfail, mean_weight),
        }
    }

    /// The Weibull model of shape `shape` whose average task fails with
    /// probability `pfail`: `(w̄/scale)^k = -ln(1-pfail)` pins the scale.
    /// `pfail ∈ [0, 1)`; `pfail = 0` yields a never-failing model.
    pub fn weibull_from_pfail(shape: f64, pfail: f64, mean_weight: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&pfail),
            "pfail must be in [0, 1), got {pfail}"
        );
        assert!(
            mean_weight > 0.0 && mean_weight.is_finite(),
            "mean weight must be positive and finite"
        );
        assert!(
            shape > 0.0 && shape.is_finite(),
            "Weibull shape must be positive and finite"
        );
        let h = -(1.0 - pfail).ln();
        let scale = if h == 0.0 {
            f64::INFINITY
        } else {
            mean_weight / h.powf(1.0 / shape)
        };
        FailureModel::Weibull { shape, scale }
    }

    /// The LogNormal model of log-deviation `sigma` whose average task
    /// fails with probability `pfail`: `Φ((ln w̄ - μ)/σ) = pfail` pins
    /// `μ`. `pfail ∈ (0, 1)` strictly (the quantile diverges at 0).
    pub fn lognormal_from_pfail(sigma: f64, pfail: f64, mean_weight: f64) -> Self {
        assert!(
            pfail > 0.0 && pfail < 1.0,
            "LogNormal calibration needs pfail in (0, 1), got {pfail}"
        );
        assert!(
            mean_weight > 0.0 && mean_weight.is_finite(),
            "mean weight must be positive and finite"
        );
        let mu = mean_weight.ln() - sigma * normal_quantile(pfail);
        FailureModel::lognormal(mu, sigma)
    }

    /// Whether this model never produces a failure (rate 0 / scale ∞).
    pub fn never_fails(&self) -> bool {
        match *self {
            FailureModel::Exponential { lambda } => lambda == 0.0,
            FailureModel::Weibull { scale, .. } => scale.is_infinite(),
            FailureModel::LogNormal { .. } => false,
        }
    }

    /// Whether this is the memoryless (exponential) model, for which the
    /// closed-form first-order cost paths apply.
    pub fn is_memoryless(&self) -> bool {
        matches!(self, FailureModel::Exponential { .. })
    }

    /// The exponential rate, if this is the exponential model.
    pub fn exponential_rate(&self) -> Option<f64> {
        match *self {
            FailureModel::Exponential { lambda } => Some(lambda),
            _ => None,
        }
    }

    /// Survival function `S(t) = P(time to failure > t)`.
    pub fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 1.0;
        }
        match *self {
            FailureModel::Exponential { lambda } => (-lambda * t).exp(),
            FailureModel::Weibull { shape, scale } => (-(t / scale).powf(shape)).exp(),
            FailureModel::LogNormal { mu, sigma } => 1.0 - normal_cdf((t.ln() - mu) / sigma),
        }
    }

    /// Cumulative distribution `F(t) = 1 - S(t)`.
    pub fn cdf(&self, t: f64) -> f64 {
        1.0 - self.survival(t)
    }

    /// Cumulative hazard `H(t) = -ln S(t)`. For the exponential model
    /// this is exactly `λ·t` (the quantity Theorem 1's first-order
    /// estimate is linear in).
    pub fn cumulative_hazard(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        match *self {
            FailureModel::Exponential { lambda } => lambda * t,
            FailureModel::Weibull { shape, scale } => (t / scale).powf(shape),
            FailureModel::LogNormal { .. } => -self.survival(t).ln(),
        }
    }

    /// Inverts the survival function at `u ∈ (0, 1)`: the time to
    /// failure whose survival probability is `u`. Feeding i.i.d. uniform
    /// draws through this is how `failsim` samples every model from one
    /// stream discipline.
    ///
    /// The exponential arm computes `-ln(u)/λ` with exactly the
    /// arithmetic the historical sampler used, and the Weibull arm
    /// special-cases `shape = 1` to `scale · (-ln u)` — so a Weibull
    /// with `scale = 1/λ` representable such that `scale·x == x/λ`
    /// (e.g. a power of two) reproduces the exponential stream
    /// bit-for-bit.
    pub fn time_to_failure(&self, u: f64) -> f64 {
        debug_assert!(u > 0.0 && u <= 1.0, "u must be in (0, 1], got {u}");
        if self.never_fails() {
            return f64::INFINITY;
        }
        match *self {
            FailureModel::Exponential { lambda } => -u.ln() / lambda,
            FailureModel::Weibull { shape, scale } => {
                let t = -u.ln();
                if shape == 1.0 {
                    scale * t
                } else {
                    scale * t.powf(1.0 / shape)
                }
            }
            FailureModel::LogNormal { mu, sigma } => {
                // S(t) = u ⇔ Φ((ln t - μ)/σ) = 1 - u.
                let z = if u == 1.0 {
                    // gen::<f64>() ∈ [0, 1) clamped to (0, 1) never hits
                    // this, but the inversion must stay total.
                    return 0.0;
                } else {
                    normal_quantile(1.0 - u)
                };
                (mu + sigma * z).exp()
            }
        }
    }

    /// Exact expected completion time of a restarted span of length
    /// `base`: attempts repeat from scratch (processor rejuvenated) until
    /// one attempt sees no failure. The renewal solution is
    /// `E[T] = ∫₀^base S(t) dt / S(base)` — closed form
    /// `(e^{λ·base} - 1)/λ` for the exponential model, composite Simpson
    /// quadrature (fixed panel count, deterministic) otherwise.
    ///
    /// Returns `∞` when `S(base)` underflows to zero (a span the model
    /// essentially never completes).
    pub fn expected_restart_time(&self, base: f64) -> f64 {
        self.expected_restart_time_ref(base, QUAD_PANELS)
    }

    /// Reference renewal solve at a chosen Simpson resolution (even
    /// panel count) — used by the `RestartCurve` validation tests to
    /// bound the curve against a finer quadrature than the production
    /// 128-panel path.
    pub fn expected_restart_time_ref(&self, base: f64, panels: usize) -> f64 {
        assert!(
            panels >= 2 && panels.is_multiple_of(2),
            "need an even panel count"
        );
        assert!(base >= 0.0, "span must be non-negative");
        if base == 0.0 {
            return 0.0;
        }
        if self.never_fails() {
            return base;
        }
        if let FailureModel::Exponential { lambda } = *self {
            return (lambda * base).exp_m1() / lambda;
        }
        let integral = simpson_survival(self, base, panels);
        let s_end = self.survival(base);
        if s_end <= 0.0 {
            f64::INFINITY
        } else {
            integral / s_end
        }
    }

    /// Short display name of the family (`exponential` / `weibull` /
    /// `lognormal`).
    pub fn family_name(&self) -> &'static str {
        match self {
            FailureModel::Exponential { .. } => "exponential",
            FailureModel::Weibull { .. } => "weibull",
            FailureModel::LogNormal { .. } => "lognormal",
        }
    }
}

/// Log-spaced grid density of a [`RestartCurve`] (points per decade of
/// span). 256 keeps the interpolation error well under
/// [`RestartCurve::REL_TOL`] for every supported family (the binding
/// constraint is the LogNormal's log-log hazard curvature; the Weibull
/// hazard is *exactly* log-log linear, so its survival interpolation is
/// error-free).
const CURVE_POINTS_PER_DECADE: f64 = 256.0;

/// Hard cap on curve grid points (a curve spanning more decades than
/// this allows falls back to direct quadrature outside its range).
const CURVE_MAX_POINTS: usize = 1 << 16;

/// Precomputed renewal curve of a **non-memoryless** [`FailureModel`]:
/// answers [`RestartCurve::expected_restart_time`] queries by monotone
/// interpolation on a fixed log-spaced grid instead of re-running the
/// 128-panel Simpson quadrature per query (~4 transcendental evaluations
/// per query instead of 129).
///
/// The restart literature (Sodre, arXiv:1802.07455) treats
/// `E[T(b)] = ∫₀^b S / S(b)` as a smooth monotone curve of the span `b`
/// — exactly the object to tabulate once per model. The curve stores, at
/// grid abscissae `t_j` covering `[b_lo, b_hi]`:
///
/// * the survival `S(t_j)` at each abscissa;
/// * the survival prefix integral `I(t_j) = ∫₀^{t_j} S`, accumulated by
///   per-cell Simpson at build time.
///
/// A query `E(b) = I(b) / S(b)` evaluates `S(b)` **exactly** (one
/// survival call) and completes the prefix integral with a trapezoid
/// over the sub-cell tail `[t_j, b]` between the stored `S(t_j)` and the
/// exact `S(b)` — so the only approximation is the tail trapezoid, whose
/// relative error is `O((Δln t)³)` and far below the documented bound.
///
/// ## Determinism and error contract
///
/// The curve is a pure function of `(model, b_lo, b_hi)` — no query
/// adapts it — so any two curves built from the same inputs answer every
/// query bit-identically, independent of thread count or query order.
/// Queries **outside** `[b_lo, b_hi]` fall back to the direct
/// [`FailureModel::expected_restart_time`] quadrature (bit-identical to
/// the uncached path). Queries inside the range satisfy two bounds,
/// property-tested across all families and span decades in
/// `crates/core/tests/proptests.rs`:
///
/// * |curve(b) − simpson₁₂₈(b)| ≤ [`RestartCurve::REL_TOL`] ·
///   simpson₁₂₈(b) against the production 128-panel Simpson solve. The
///   bound is loose because at spans far beyond the model's mass scale
///   the *reference* goes coarse (its uniform `b/128` step underresolves
///   a survival integrand concentrated near 0) while the curve's
///   log-spaced cells do not — the curve is the more accurate of the
///   two there;
/// * |curve(b) − simpson₄₀₉₆(b)| ≤ [`RestartCurve::REL_TOL_REF`] ·
///   simpson₄₀₉₆(b) against a 32×-finer reference
///   ([`FailureModel::expected_restart_time_ref`]), which bounds the
///   curve's true error.
///
/// Exponential models never build or consult a curve:
/// `CostCtx::expected_segment_time` short-circuits to the paper's closed
/// form first, which is what keeps the E1–E8 CSV outputs bit-for-bit
/// stable.
#[derive(Clone, Debug)]
pub struct RestartCurve {
    model: FailureModel,
    /// Grid abscissae (log-spaced, ascending).
    ts: Vec<f64>,
    /// Survival at each abscissa.
    sv: Vec<f64>,
    /// Prefix integral `∫₀^{t_j} S`.
    integral: Vec<f64>,
    ln_t0: f64,
    /// `1 / ln r` where `r` is the grid ratio (for O(1) cell lookup).
    inv_ln_r: f64,
}

impl RestartCurve {
    /// Documented relative-error bound of in-range queries against the
    /// production 128-panel Simpson renewal solve (loose only where the
    /// reference itself is coarse — see the type docs).
    pub const REL_TOL: f64 = 2e-2;

    /// Documented relative-error bound of in-range queries against the
    /// 4096-panel reference solve (the curve's true accuracy).
    pub const REL_TOL_REF: f64 = 2e-5;

    /// Builds the curve for spans in `[b_lo, b_hi]`.
    ///
    /// # Panics
    /// Panics for memoryless or never-failing models (which have closed
    /// forms and must not pay for a curve) and for non-positive or
    /// non-finite range endpoints.
    pub fn build(model: FailureModel, b_lo: f64, b_hi: f64) -> Self {
        assert!(
            !model.is_memoryless(),
            "exponential models keep their closed form; no curve"
        );
        assert!(!model.never_fails(), "never-failing models need no curve");
        assert!(
            b_lo > 0.0 && b_hi >= b_lo && b_hi.is_finite(),
            "bad span range [{b_lo}, {b_hi}]"
        );
        let decades = (b_hi / b_lo).log10().max(0.0);
        let cells =
            ((decades * CURVE_POINTS_PER_DECADE).ceil() as usize + 1).clamp(2, CURVE_MAX_POINTS);
        let ln_t0 = b_lo.ln();
        let ln_r = (b_hi.ln() - ln_t0) / cells as f64;
        let n = cells + 1;
        let mut ts = Vec::with_capacity(n);
        for j in 0..n {
            // exp is monotone, so the grid is strictly ascending; pin the
            // endpoints so in-range queries never fall out by rounding.
            let t = match j {
                0 => b_lo,
                _ if j == n - 1 => b_hi,
                _ => (ln_t0 + j as f64 * ln_r).exp(),
            };
            ts.push(t);
        }
        let sv: Vec<f64> = ts.iter().map(|&t| model.survival(t)).collect();
        // Head integral ∫₀^{t_0} S by the same fixed-panel Simpson the
        // direct path uses, then one 2-point Simpson per cell.
        let mut integral = Vec::with_capacity(n);
        integral.push(simpson_survival(&model, ts[0], QUAD_PANELS));
        for j in 1..n {
            let (a, b) = (ts[j - 1], ts[j]);
            let mid = model.survival(0.5 * (a + b));
            let cell = (b - a) / 6.0 * (sv[j - 1] + 4.0 * mid + sv[j]);
            integral.push(integral[j - 1] + cell);
        }
        RestartCurve {
            model,
            ts,
            sv,
            integral,
            ln_t0,
            inv_ln_r: if ln_r > 0.0 { 1.0 / ln_r } else { 0.0 },
        }
    }

    /// The model this curve tabulates.
    pub fn model(&self) -> &FailureModel {
        &self.model
    }

    /// The span range `[b_lo, b_hi]` answered from the table (queries
    /// outside fall back to direct quadrature).
    pub fn span_range(&self) -> (f64, f64) {
        (self.ts[0], *self.ts.last().unwrap())
    }

    /// Number of grid points (diagnostic).
    pub fn n_points(&self) -> usize {
        self.ts.len()
    }

    /// Expected completion time of a restarted span of length `base` —
    /// the cached equivalent of [`FailureModel::expected_restart_time`],
    /// within [`RestartCurve::REL_TOL`] of it for in-range spans and
    /// bit-identical to it outside the range.
    pub fn expected_restart_time(&self, base: f64) -> f64 {
        // Same domain contract as the direct path: a negative or NaN
        // span is an upstream bug and must fail at the fault site, not
        // flow through the DP as NaN.
        assert!(base >= 0.0, "span must be non-negative");
        if base == 0.0 {
            return 0.0;
        }
        let n = self.ts.len();
        if base < self.ts[0] || base > self.ts[n - 1] {
            return self.model.expected_restart_time(base);
        }
        // O(1) cell lookup; clamp and nudge against float slop so
        // ts[j] <= base <= ts[j+1].
        let mut j = (((base.ln() - self.ln_t0) * self.inv_ln_r) as usize).min(n - 2);
        while j > 0 && base < self.ts[j] {
            j -= 1;
        }
        while j + 2 < n && base > self.ts[j + 1] {
            j += 1;
        }
        let s_b = self.model.survival(base);
        if s_b <= 0.0 {
            return f64::INFINITY;
        }
        // Prefix integral up to ts[j] plus the trapezoid tail.
        let tail = (base - self.ts[j]) * 0.5 * (self.sv[j] + s_b);
        (self.integral[j] + tail) / s_b
    }
}

/// The direct path's composite Simpson `∫₀^b S` (the head integral of a
/// curve shares the direct quadrature's arithmetic).
fn simpson_survival(model: &FailureModel, b: f64, n: usize) -> f64 {
    let h = b / n as f64;
    let mut acc = model.survival(0.0) + model.survival(b);
    for i in 1..n {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        acc += w * model.survival(i as f64 * h);
    }
    acc * h / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pfail::pfail_from_lambda;

    #[test]
    fn survival_is_monotone_and_bounded() {
        let models = [
            FailureModel::exponential(0.3),
            FailureModel::weibull(0.7, 5.0),
            FailureModel::weibull(2.0, 5.0),
            FailureModel::lognormal(1.0, 0.8),
        ];
        for m in models {
            let mut prev = 1.0;
            assert_eq!(m.survival(0.0), 1.0);
            for i in 1..50 {
                let s = m.survival(i as f64 * 0.5);
                assert!(s <= prev + 1e-12 && (0.0..=1.0).contains(&s), "{m:?}");
                prev = s;
            }
        }
    }

    #[test]
    fn cumulative_hazard_matches_survival() {
        for m in [
            FailureModel::exponential(0.2),
            FailureModel::weibull(1.5, 3.0),
            FailureModel::lognormal(0.5, 1.0),
        ] {
            for t in [0.1, 1.0, 4.0] {
                let h = m.cumulative_hazard(t);
                assert!(((-h).exp() - m.survival(t)).abs() < 1e-9, "{m:?} at t={t}");
            }
        }
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let lambda = 0.25;
        let w = FailureModel::weibull(1.0, 1.0 / lambda);
        let e = FailureModel::exponential(lambda);
        for t in [0.0, 0.5, 2.0, 10.0] {
            assert!((w.survival(t) - e.survival(t)).abs() < 1e-12);
        }
        // Power-of-two scale: the samplers agree bit-for-bit.
        for u in [0.9, 0.5, 1e-3] {
            assert_eq!(
                w.time_to_failure(u).to_bits(),
                e.time_to_failure(u).to_bits()
            );
        }
    }

    #[test]
    fn time_to_failure_inverts_survival() {
        for m in [
            FailureModel::exponential(0.7),
            FailureModel::weibull(0.8, 2.0),
            FailureModel::weibull(2.5, 2.0),
            FailureModel::lognormal(0.3, 1.2),
        ] {
            for u in [0.95, 0.5, 0.05, 1e-3] {
                let t = m.time_to_failure(u);
                assert!(
                    (m.survival(t) - u).abs() < 1e-6,
                    "{m:?}: S({t}) = {} vs {u}",
                    m.survival(t)
                );
            }
        }
    }

    #[test]
    fn pfail_calibration_hits_the_mean_weight() {
        let w_bar = 37.0;
        for pfail in [0.01, 0.001] {
            let models = [
                FailureModel::exponential_from_pfail(pfail, w_bar),
                FailureModel::weibull_from_pfail(0.7, pfail, w_bar),
                FailureModel::weibull_from_pfail(2.0, pfail, w_bar),
                FailureModel::lognormal_from_pfail(1.0, pfail, w_bar),
            ];
            for m in models {
                // The LogNormal roundtrip is bounded by the A&S normal
                // CDF's 1.5e-7 absolute error, not the calibration's.
                assert!(
                    (m.cdf(w_bar) - pfail).abs() < 3e-7,
                    "{m:?}: F(w̄) = {} vs {pfail}",
                    m.cdf(w_bar)
                );
            }
        }
    }

    #[test]
    fn exponential_calibration_matches_pfail_roundtrip() {
        let m = FailureModel::exponential_from_pfail(0.01, 12.0);
        let lambda = m.exponential_rate().unwrap();
        assert!((pfail_from_lambda(lambda, 12.0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn zero_pfail_weibull_never_fails() {
        let m = FailureModel::weibull_from_pfail(1.5, 0.0, 10.0);
        assert!(m.never_fails());
        assert_eq!(m.survival(1e12), 1.0);
        assert_eq!(m.time_to_failure(0.5), f64::INFINITY);
        assert_eq!(m.expected_restart_time(42.0), 42.0);
    }

    #[test]
    fn restart_time_exponential_closed_form() {
        let m = FailureModel::exponential(0.1);
        let b = 3.0;
        let exact = ((0.1f64 * b).exp() - 1.0) / 0.1;
        assert!((m.expected_restart_time(b) - exact).abs() < 1e-12);
        // First order in λ·b: b + λb²/2.
        let tiny = FailureModel::exponential(1e-5);
        let e = tiny.expected_restart_time(100.0);
        assert!((e - (100.0 + 0.5 * 1e-5 * 100.0 * 100.0)).abs() < 1e-4);
    }

    #[test]
    fn quadrature_matches_exponential_closed_form() {
        // Route an exponential through the Weibull k=1 quadrature... k=1
        // short-circuits nothing in expected_restart_time (only the
        // Exponential variant does), so Weibull(1, 1/λ) exercises Simpson
        // against the closed form.
        let lambda = 0.05;
        let w = FailureModel::weibull(1.0, 1.0 / lambda);
        let e = FailureModel::exponential(lambda);
        for b in [0.5, 5.0, 20.0] {
            let num = w.expected_restart_time(b);
            let exact = e.expected_restart_time(b);
            assert!(
                (num - exact).abs() < 1e-8 * exact,
                "b={b}: {num} vs {exact}"
            );
        }
    }

    #[test]
    fn restart_time_exceeds_base_and_grows_with_hazard() {
        for m in [
            FailureModel::weibull(0.7, 50.0),
            FailureModel::weibull(2.0, 50.0),
            FailureModel::lognormal(4.0, 1.0),
        ] {
            let short = m.expected_restart_time(1.0);
            let long = m.expected_restart_time(10.0);
            assert!(short >= 1.0 && long >= 10.0, "{m:?}");
            assert!(long > short);
        }
    }

    #[test]
    fn infant_mortality_penalizes_restarts_more_than_wear_out() {
        // Same calibrated pfail: k < 1 concentrates failures early, so a
        // span longer than the mean weight restarts *less* often than
        // under k > 1 (whose hazard keeps climbing).
        let w_bar = 10.0;
        let infant = FailureModel::weibull_from_pfail(0.7, 0.01, w_bar);
        let wearout = FailureModel::weibull_from_pfail(2.0, 0.01, w_bar);
        let b = 8.0 * w_bar;
        assert!(infant.expected_restart_time(b) < wearout.expected_restart_time(b));
    }

    #[test]
    #[should_panic(expected = "pfail must be in [0, 1)")]
    fn weibull_from_pfail_rejects_one() {
        FailureModel::weibull_from_pfail(1.0, 1.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "needs pfail in (0, 1)")]
    fn lognormal_from_pfail_rejects_zero() {
        FailureModel::lognormal_from_pfail(1.0, 0.0, 10.0);
    }

    #[test]
    fn curve_matches_direct_simpson_within_tolerance() {
        let w_bar = 10.0;
        let models = [
            FailureModel::weibull_from_pfail(0.7, 0.01, w_bar),
            FailureModel::weibull_from_pfail(2.0, 0.01, w_bar),
            FailureModel::weibull_from_pfail(1.0, 0.001, w_bar),
            FailureModel::lognormal_from_pfail(1.0, 0.01, w_bar),
            FailureModel::lognormal_from_pfail(0.5, 0.001, w_bar),
        ];
        for m in models {
            let curve = RestartCurve::build(m, w_bar * 1e-3, w_bar * 1e3);
            // Sweep spans across the six covered decades, off-grid.
            for e in -29..=29 {
                let b = w_bar * 10f64.powf(e as f64 / 10.0 + 0.037);
                let direct = m.expected_restart_time(b);
                let fine = m.expected_restart_time_ref(b, 4096);
                let cached = curve.expected_restart_time(b);
                if direct.is_infinite() {
                    assert!(cached.is_infinite(), "{m:?} at b={b}");
                    continue;
                }
                assert!(
                    (cached - direct).abs() <= RestartCurve::REL_TOL * direct,
                    "{m:?} at b={b}: cached {cached} vs direct {direct} \
                     (rel {})",
                    (cached - direct).abs() / direct
                );
                assert!(
                    (cached - fine).abs() <= RestartCurve::REL_TOL_REF * fine,
                    "{m:?} at b={b}: cached {cached} vs fine {fine} \
                     (rel {})",
                    (cached - fine).abs() / fine
                );
            }
        }
    }

    #[test]
    fn curve_out_of_range_is_bitwise_direct() {
        let m = FailureModel::weibull(1.3, 25.0);
        let curve = RestartCurve::build(m, 1.0, 100.0);
        for b in [0.01, 0.5, 150.0, 1e4] {
            assert_eq!(
                curve.expected_restart_time(b).to_bits(),
                m.expected_restart_time(b).to_bits(),
                "out-of-range span {b} must take the direct path"
            );
        }
        assert_eq!(curve.expected_restart_time(0.0), 0.0);
    }

    #[test]
    fn curve_is_monotone_in_span() {
        for m in [
            FailureModel::weibull(0.7, 40.0),
            FailureModel::weibull(2.0, 40.0),
            FailureModel::lognormal(3.0, 1.0),
        ] {
            let curve = RestartCurve::build(m, 0.1, 1000.0);
            let mut prev = 0.0;
            for i in 1..400 {
                let b = 0.1 * (1000.0f64 / 0.1).powf(i as f64 / 400.0);
                let e = curve.expected_restart_time(b);
                assert!(e >= prev, "{m:?}: E({b}) = {e} < {prev}");
                prev = e;
            }
        }
    }

    #[test]
    fn curve_degenerate_range_still_answers() {
        let m = FailureModel::weibull(2.0, 40.0);
        let curve = RestartCurve::build(m, 5.0, 5.0);
        let direct = m.expected_restart_time(5.0);
        let cached = curve.expected_restart_time(5.0);
        assert!((cached - direct).abs() <= RestartCurve::REL_TOL * direct);
    }

    #[test]
    #[should_panic(expected = "no curve")]
    fn curve_rejects_exponential() {
        RestartCurve::build(FailureModel::exponential(0.1), 1.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "need no curve")]
    fn curve_rejects_never_failing() {
        RestartCurve::build(FailureModel::weibull_from_pfail(2.0, 0.0, 1.0), 1.0, 10.0);
    }

    #[test]
    fn family_names() {
        assert_eq!(FailureModel::exponential(0.0).family_name(), "exponential");
        assert_eq!(FailureModel::weibull(2.0, 1.0).family_name(), "weibull");
        assert_eq!(FailureModel::lognormal(0.0, 1.0).family_name(), "lognormal");
    }
}
