//! `Allocate` — the recursive list-scheduling algorithm
//! (Algorithm 1, lines 1–13).
//!
//! Decomposes the M-SPG as `C ⊳ (G1 ∥ … ∥ Gn) ⊳ Gn+1`, schedules the head
//! chain on the partition's first processor, splits the parallel
//! composition with [`crate::propmap`], and recurses. Every
//! `OnOneProcessor` call linearizes a sub-M-SPG into one **superchain**.

use mspg::decompose::decompose;
use mspg::linearize::{linearize, Linearizer};
use mspg::{Mspg, Workflow};

use crate::schedule::{Schedule, Superchain};

/// Configuration of the scheduler.
#[derive(Clone, Copy, Debug)]
pub struct AllocateConfig {
    /// How `OnOneProcessor` linearizes a sub-M-SPG (the paper's default is
    /// a random topological sort; `MinVolume` is the §VIII refinement).
    pub linearizer: Linearizer,
    /// Seed for the random linearizer (each superchain derives its own
    /// stream).
    pub seed: u64,
}

impl Default for AllocateConfig {
    fn default() -> Self {
        AllocateConfig {
            linearizer: Linearizer::RandomTopo,
            seed: 0,
        }
    }
}

/// Schedules workflow `w` on `n_procs` processors, returning the
/// superchain schedule (Algorithm 1 without the checkpoint placement —
/// see [`crate::checkpoint_dp`] for that).
pub fn allocate(w: &Workflow, n_procs: usize, cfg: &AllocateConfig) -> Schedule {
    assert!(n_procs >= 1);
    let mut out: Vec<Superchain> = Vec::new();
    let procs: Vec<usize> = (0..n_procs).collect();
    alloc(w, &w.root, &procs, cfg, &mut out);
    let sched = Schedule::from_superchains(&w.dag, n_procs, out);
    debug_assert!(sched.validate(&w.dag).is_ok());
    sched
}

fn alloc(
    w: &Workflow,
    expr: &Mspg,
    procs: &[usize],
    cfg: &AllocateConfig,
    out: &mut Vec<Superchain>,
) {
    debug_assert!(!procs.is_empty());
    let d = decompose(expr);
    // Line 4: the head chain C runs on P[0]. A chain is already linear.
    if !d.chain.is_empty() {
        out.push(Superchain {
            proc: procs[0],
            tasks: d.chain,
        });
    }
    if !d.parallel.is_empty() {
        if procs.len() == 1 {
            // Line 6: the whole parallel composition is linearized on P[0].
            let par = Mspg::parallel(d.parallel).expect("non-empty");
            push_linearized(w, &par, procs[0], cfg, out);
        } else {
            // Lines 8–12: proportional mapping, then recursion.
            let r = crate::propmap::propmap(&w.dag, d.parallel, procs.len());
            let mut i = 0usize;
            for (g, count) in r.graphs.into_iter().zip(r.proc_counts) {
                alloc(w, &g, &procs[i..i + count], cfg, out);
                i += count;
            }
        }
    }
    // Line 13: the remainder reuses the full partition.
    if let Some(rest) = d.rest {
        alloc(w, &rest, procs, cfg, out);
    }
}

fn push_linearized(
    w: &Workflow,
    expr: &Mspg,
    proc: usize,
    cfg: &AllocateConfig,
    out: &mut Vec<Superchain>,
) {
    let structural = expr.tasks();
    // Derive a per-superchain seed stream so schedules are deterministic
    // yet each superchain shuffles independently.
    let seed = cfg
        .seed
        .wrapping_mul(seedmix::GOLDEN_GAMMA)
        .wrapping_add(out.len() as u64);
    let order = linearize(&w.dag, structural, cfg.linearizer, seed);
    out.push(Superchain { proc, tasks: order });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspg::TaskId;
    use pegasus::{generate, WorkflowClass};

    fn cfg() -> AllocateConfig {
        AllocateConfig {
            linearizer: Linearizer::RandomTopo,
            seed: 42,
        }
    }

    #[test]
    fn chain_goes_to_first_processor() {
        let w = pegasus::generic::chain(5, 1);
        let s = allocate(&w, 4, &cfg());
        assert_eq!(s.superchains.len(), 1);
        assert_eq!(s.superchains[0].proc, 0);
        assert_eq!(s.superchains[0].tasks.len(), 5);
    }

    #[test]
    fn single_processor_single_superchain_per_block() {
        let w = pegasus::generic::fork_join(2, 3, 1);
        let s = allocate(&w, 1, &cfg());
        // Blocks: chain, level, chain, level, chain — chains merge into the
        // decomposition head each time: C ⊳ (par) ⊳ rest…
        for sc in &s.superchains {
            assert_eq!(sc.proc, 0);
        }
        assert_eq!(s.n_tasks(), w.n_tasks());
        s.validate(&w.dag).unwrap();
    }

    #[test]
    fn parallel_blocks_spread_over_processors() {
        let w = pegasus::generic::independent_chains(4, 3, 1);
        let s = allocate(&w, 4, &cfg());
        s.validate(&w.dag).unwrap();
        // Four equal chains on four processors: one superchain each.
        let used: std::collections::HashSet<usize> =
            s.superchains.iter().map(|sc| sc.proc).collect();
        assert_eq!(used.len(), 4);
        for sc in &s.superchains {
            assert_eq!(sc.tasks.len(), 3);
        }
    }

    #[test]
    fn all_paper_workflows_schedule_cleanly() {
        for class in WorkflowClass::ALL {
            for &p in &[3usize, 10, 35] {
                let w = generate(class, 300, 7);
                let s = allocate(&w, p, &cfg());
                s.validate(&w.dag).unwrap();
                assert_eq!(s.n_tasks(), w.n_tasks(), "{class} on {p} procs");
            }
        }
    }

    #[test]
    fn more_procs_reduce_parallel_time() {
        let w = generate(WorkflowClass::Genome, 300, 3);
        let t3 = allocate(&w, 3, &cfg()).failure_free_parallel_time(&w.dag);
        let t18 = allocate(&w, 18, &cfg()).failure_free_parallel_time(&w.dag);
        let t70 = allocate(&w, 70, &cfg()).failure_free_parallel_time(&w.dag);
        assert!(t18 < t3, "18 procs {t18} vs 3 procs {t3}");
        assert!(t70 <= t18 * 1.01, "70 procs {t70} vs 18 procs {t18}");
        // And never better than the critical path.
        assert!(t70 >= w.dag.critical_path() - 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let w = generate(WorkflowClass::Montage, 300, 9);
        let a = allocate(&w, 18, &cfg());
        let b = allocate(&w, 18, &cfg());
        assert_eq!(a.superchains.len(), b.superchains.len());
        for (x, y) in a.superchains.iter().zip(&b.superchains) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn superchains_are_contiguous_executions() {
        // Every superchain's task list is a topological order of its
        // induced sub-DAG (validated), and tasks of one superchain share a
        // processor.
        let w = generate(WorkflowClass::Ligo, 300, 5);
        let s = allocate(&w, 18, &cfg());
        for sc in &s.superchains {
            for &t in &sc.tasks {
                assert_eq!(s.task_proc[t.index()] as usize, sc.proc);
            }
        }
        let _ = TaskId(0);
    }

    #[test]
    fn structural_linearizer_matches_expression_order() {
        let w = pegasus::generic::fork_join(2, 4, 1);
        let c = AllocateConfig {
            linearizer: Linearizer::Structural,
            seed: 0,
        };
        let s = allocate(&w, 1, &c);
        let all: Vec<TaskId> = (0..s.n_procs).flat_map(|p| s.proc_task_order(p)).collect();
        assert!(w.dag.is_topological(&all));
    }
}
