//! Segment coalescing: from a checkpointed schedule to a 2-state
//! probabilistic DAG (§II-C).
//!
//! Once checkpoints are placed, each maximal run of tasks between
//! checkpoints on a processor — a *segment* — recovers independently, so
//! it is coalesced into a single node whose duration follows the
//! first-order 2-state law of Eq. (2). The resulting DAG (segment
//! dependence + same-processor serialization) is what the §II-B
//! evaluators compute the expected makespan of.

use mspg::{Dag, TaskId};
use probdag::{NodeDist, NodeId, ProbDag};

use crate::checkpoint_dp::{segment_cost_reusing, CostCtx, IdSet, SegmentCost, SegmentCostScratch};
use crate::schedule::Schedule;

/// Per-task checkpoint decisions (indexed by task id): `ckpt_after[t]`
/// means a checkpoint is taken right after `t` completes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointPlan {
    /// Checkpoint-after flags, one per task.
    pub ckpt_after: Vec<bool>,
}

impl CheckpointPlan {
    /// Number of checkpointed tasks.
    pub fn n_checkpoints(&self) -> usize {
        self.ckpt_after.iter().filter(|&&c| c).count()
    }
}

/// One coalesced segment.
#[derive(Clone, Debug)]
pub struct Segment {
    /// Owning superchain index in the schedule.
    pub superchain: usize,
    /// Owning processor.
    pub proc: usize,
    /// The segment's tasks, in execution order.
    pub tasks: Vec<TaskId>,
    /// Failure-free read/work/checkpoint costs.
    pub cost: SegmentCost,
}

/// The coalesced 2-state probabilistic DAG plus segment metadata.
#[derive(Clone, Debug)]
pub struct SegmentGraph {
    /// One node per segment, same indexing as `segments`.
    pub pdag: ProbDag,
    /// Segment metadata.
    pub segments: Vec<Segment>,
    /// Per task: owning segment index.
    pub task_segment: Vec<u32>,
}

/// Aggregate placement statistics of a segment graph — derived in one
/// place from the coalesced graph so every consumer (`Pipeline::assess`,
/// the experiment scenarios, the E10 CSV) agrees on the counts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlacementStats {
    /// Coalesced segments. Every segment ends in exactly one
    /// checkpoint, so this is also the checkpoint count.
    pub segments: usize,
    /// Files written to stable storage by segment checkpoints. Each
    /// file's producer lives in exactly one segment, so no file is
    /// counted twice.
    pub ckpt_files: usize,
    /// Total bytes those checkpoints write
    /// (`total_checkpoint_time() × bandwidth`).
    pub ckpt_bytes: f64,
}

impl SegmentGraph {
    /// Total checkpoint write time across segments (failure-free).
    pub fn total_checkpoint_time(&self) -> f64 {
        self.segments.iter().map(|s| s.cost.c).sum()
    }

    /// Total stable-storage read time across segments (failure-free).
    pub fn total_read_time(&self) -> f64 {
        self.segments.iter().map(|s| s.cost.r).sum()
    }

    /// Placement statistics of this graph: segment count plus the
    /// checkpointed-file census (a file counts when its producing
    /// segment has a consumer outside itself — the same "needed later"
    /// rule `segment_cost` prices).
    pub fn placement_stats(&self, dag: &Dag) -> PlacementStats {
        let mut seen = IdSet::default();
        let mut ckpt_files = 0usize;
        let mut ckpt_bytes = 0.0f64;
        for (s_idx, seg) in self.segments.iter().enumerate() {
            seen.reset(dag.n_files());
            for &t in &seg.tasks {
                for &f in dag.output_files(t) {
                    let needed_later = dag
                        .consumers(f)
                        .iter()
                        .any(|&v| self.task_segment[v.index()] != s_idx as u32);
                    if needed_later && seen.insert(f.index()) {
                        ckpt_files += 1;
                        ckpt_bytes += dag.file(f).size;
                    }
                }
            }
        }
        PlacementStats {
            segments: self.segments.len(),
            ckpt_files,
            ckpt_bytes,
        }
    }
}

/// Builds the segment graph for a schedule and checkpoint plan.
///
/// Every superchain must end in a checkpoint (the paper's
/// crossover-dependency removal); this is asserted.
pub fn coalesce(ctx: &CostCtx<'_>, sched: &Schedule, plan: &CheckpointPlan) -> SegmentGraph {
    let dag = ctx.dag;
    let mut segments: Vec<Segment> = Vec::new();
    let mut task_segment = vec![u32::MAX; dag.n_tasks()];
    let mut scratch = SegmentCostScratch::new();
    for (sc_idx, sc) in sched.superchains.iter().enumerate() {
        let last = *sc.tasks.last().expect("non-empty superchain");
        assert!(
            plan.ckpt_after[last.index()],
            "superchain {sc_idx} does not end in a checkpoint"
        );
        let mut lo = 0usize;
        for (k, &t) in sc.tasks.iter().enumerate() {
            if plan.ckpt_after[t.index()] {
                let tasks = sc.tasks[lo..=k].to_vec();
                let cost = segment_cost_reusing(ctx, &sc.tasks, lo, k, &mut scratch);
                let seg_idx = segments.len() as u32;
                for &x in &tasks {
                    task_segment[x.index()] = seg_idx;
                }
                segments.push(Segment {
                    superchain: sc_idx,
                    proc: sc.proc,
                    tasks,
                    cost,
                });
                lo = k + 1;
            }
        }
    }
    // Build the probabilistic DAG.
    let mut pdag = ProbDag::new();
    for seg in &segments {
        let base = seg.cost.base();
        let p_high = ctx.two_state_p_high(base);
        let dist = if base == 0.0 || p_high == 0.0 {
            NodeDist::Certain(base)
        } else {
            NodeDist::TwoState {
                low: base,
                high: 1.5 * base,
                p_high,
            }
        };
        pdag.add_node(dist);
    }
    // Same-processor serialization edges.
    for p in 0..sched.n_procs {
        let mut prev: Option<u32> = None;
        for &sc_idx in &sched.proc_chains[p] {
            for &t in &sched.superchains[sc_idx].tasks {
                let s = task_segment[t.index()];
                if let Some(q) = prev {
                    if q != s {
                        pdag.add_edge(NodeId(q), NodeId(s));
                    }
                }
                prev = Some(s);
            }
        }
    }
    // Data edges: a segment reading file f depends on the segment that
    // checkpointed f (the producer's segment).
    for (s_idx, seg) in segments.iter().enumerate() {
        for &t in &seg.tasks {
            for &(u, _) in dag.preds(t) {
                let us = task_segment[u.index()];
                if us != s_idx as u32 {
                    pdag.add_edge(NodeId(us), NodeId(s_idx as u32));
                }
            }
        }
    }
    SegmentGraph {
        pdag,
        segments,
        task_segment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate::{allocate, AllocateConfig};
    use crate::checkpoint_dp::optimal_checkpoints;
    use pegasus::{generate, WorkflowClass};

    fn plan_all(dag: &mspg::Dag) -> CheckpointPlan {
        CheckpointPlan {
            ckpt_after: vec![true; dag.n_tasks()],
        }
    }

    fn plan_some(ctx: &CostCtx<'_>, sched: &Schedule) -> CheckpointPlan {
        let mut ckpt_after = vec![false; ctx.dag.n_tasks()];
        for sc in &sched.superchains {
            let choice = optimal_checkpoints(ctx, &sc.tasks);
            for (k, &t) in sc.tasks.iter().enumerate() {
                ckpt_after[t.index()] = choice.ckpt_after[k];
            }
        }
        CheckpointPlan { ckpt_after }
    }

    #[test]
    fn ckptall_has_one_segment_per_task() {
        let w = generate(WorkflowClass::Genome, 50, 1);
        let sched = allocate(&w, 3, &AllocateConfig::default());
        let ctx = CostCtx::exponential(&w.dag, 1e-5, 1e7);
        let sg = coalesce(&ctx, &sched, &plan_all(&w.dag));
        assert_eq!(sg.segments.len(), w.n_tasks());
        assert_eq!(sg.pdag.n_nodes(), w.n_tasks());
    }

    #[test]
    fn segment_graph_is_acyclic_and_covers_tasks() {
        let w = generate(WorkflowClass::Montage, 300, 2);
        let sched = allocate(&w, 18, &AllocateConfig::default());
        let ctx = CostCtx::exponential(&w.dag, 1e-6, 1e7);
        let sg = coalesce(&ctx, &sched, &plan_some(&ctx, &sched));
        // Topological sort must succeed (panics on cycle).
        let order = sg.pdag.topo_order();
        assert_eq!(order.len(), sg.segments.len());
        // Every task belongs to exactly one segment.
        let covered: usize = sg.segments.iter().map(|s| s.tasks.len()).sum();
        assert_eq!(covered, w.n_tasks());
        assert!(sg.task_segment.iter().all(|&s| s != u32::MAX));
    }

    #[test]
    fn fewer_checkpoints_than_ckptall() {
        let w = generate(WorkflowClass::Ligo, 300, 3);
        let sched = allocate(&w, 18, &AllocateConfig::default());
        // Moderate failure rate, expensive I/O: CkptSome should skip many
        // checkpoints.
        let lambda = crate::pfail::lambda_from_pfail(0.001, w.dag.mean_weight());
        let ctx = CostCtx::exponential(&w.dag, lambda, 1e5);
        let some = plan_some(&ctx, &sched);
        assert!(some.n_checkpoints() < w.n_tasks());
        assert!(some.n_checkpoints() >= sched.superchains.len());
    }

    #[test]
    fn segment_distributions_follow_eq2() {
        let w = pegasus::generic::chain(4, 1);
        let sched = allocate(&w, 1, &AllocateConfig::default());
        let ctx = CostCtx::exponential(&w.dag, 1e-3, 1e7);
        let sg = coalesce(&ctx, &sched, &plan_all(&w.dag));
        for (seg, v) in sg.segments.iter().zip(sg.pdag.node_ids()) {
            let base = seg.cost.base();
            match *sg.pdag.dist(v) {
                NodeDist::TwoState { low, high, p_high } => {
                    assert!((low - base).abs() < 1e-12);
                    assert!((high - 1.5 * base).abs() < 1e-12);
                    assert!((p_high - 1e-3 * base).abs() < 1e-12);
                }
                NodeDist::Certain(x) => assert_eq!(x, base),
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not end in a checkpoint")]
    fn missing_final_checkpoint_panics() {
        let w = pegasus::generic::chain(3, 1);
        let sched = allocate(&w, 1, &AllocateConfig::default());
        let ctx = CostCtx::exponential(&w.dag, 1e-3, 1e7);
        let plan = CheckpointPlan {
            ckpt_after: vec![false; w.dag.n_tasks()],
        };
        coalesce(&ctx, &sched, &plan);
    }

    #[test]
    fn placement_stats_agree_with_segment_costs() {
        let w = generate(WorkflowClass::Montage, 300, 4);
        let sched = allocate(&w, 18, &AllocateConfig::default());
        let bw = 1e7;
        let ctx = CostCtx::exponential(&w.dag, 1e-5, bw);
        for plan in [plan_all(&w.dag), plan_some(&ctx, &sched)] {
            let sg = coalesce(&ctx, &sched, &plan);
            let stats = sg.placement_stats(&w.dag);
            assert_eq!(stats.segments, sg.segments.len());
            // The byte census prices exactly what the segment costs
            // price: C-time × bandwidth.
            let c_bytes = sg.total_checkpoint_time() * bw;
            assert!(
                (stats.ckpt_bytes - c_bytes).abs() < 1e-6 * c_bytes.max(1.0),
                "{} vs {}",
                stats.ckpt_bytes,
                c_bytes
            );
            assert!(stats.ckpt_files > 0);
        }
    }

    #[test]
    fn serialization_edges_chain_processor_segments() {
        let w = pegasus::generic::chain(5, 2);
        let sched = allocate(&w, 1, &AllocateConfig::default());
        let ctx = CostCtx::exponential(&w.dag, 0.0, 1e7);
        let sg = coalesce(&ctx, &sched, &plan_all(&w.dag));
        // 5 segments in a row: 4 serialization/data edges.
        assert_eq!(sg.pdag.n_edges(), 4);
    }
}
