//! Checkpoint placement in superchains — Algorithm 2 (§IV).
//!
//! Extends Toueg & Babaoğlu's chain algorithm to superchains with the
//! paper's *extended checkpoint semantics*: the checkpoint taken after a
//! task saves the output of **all** executed-but-uncheckpointed tasks that
//! still have unexecuted successors (all solid dependence edges crossing
//! the checkpoint time). Segments between checkpoints therefore recover
//! independently: a failure rolls back exactly to the previous checkpoint.
//!
//! `ETime(j) = min( T(a,j), min_{a≤i<j} ETime(i) + T(i+1,j) )` where
//! `T(i,j)` is the first-order expected time (Eq. (2)) to read the
//! segment's external inputs (`Rᵢʲ`), run it (`Wᵢʲ`), and checkpoint the
//! data needed later (`Cᵢʲ`). All file costs deduplicate by file — a file
//! consumed by several segment tasks is read once, a file needed by
//! several later tasks is saved once.

use mspg::{Dag, TaskId};

use crate::failure_model::{FailureModel, RestartCurve};

/// Cost context: the workflow, the processor failure model, and the
/// stable storage bandwidth — plus, for non-memoryless models, an
/// optional borrowed [`RestartCurve`] that answers renewal queries from
/// a precomputed table instead of per-query quadrature.
#[derive(Clone, Copy, Debug)]
pub struct CostCtx<'a> {
    /// The workflow DAG (weights and file sizes).
    pub dag: &'a Dag,
    /// Per-processor failure distribution.
    pub model: FailureModel,
    /// Stable-storage bandwidth (bytes/s).
    pub bandwidth: f64,
    /// Cached renewal curve for non-memoryless models (`None` falls back
    /// to direct quadrature; ignored — never consulted — for the
    /// exponential model, whose closed form short-circuits first).
    /// `Pipeline` builds one per platform and threads it through every
    /// cost path; see `DESIGN.md` §7.
    pub curve: Option<&'a RestartCurve>,
}

impl<'a> CostCtx<'a> {
    /// The paper's context: exponential failures of rate `lambda`.
    pub fn exponential(dag: &'a Dag, lambda: f64, bandwidth: f64) -> Self {
        CostCtx {
            dag,
            model: FailureModel::exponential(lambda),
            bandwidth,
            curve: None,
        }
    }

    /// A context with an arbitrary failure model (renewal queries go
    /// through direct quadrature; prefer [`CostCtx::with_curve`] on hot
    /// paths).
    pub fn with_model(dag: &'a Dag, model: FailureModel, bandwidth: f64) -> Self {
        CostCtx {
            dag,
            model,
            bandwidth,
            curve: None,
        }
    }

    /// A context with an arbitrary failure model and a prebuilt renewal
    /// curve for it.
    ///
    /// # Panics
    /// Panics if `curve` was built for a different model (a mismatched
    /// cache would silently answer the wrong renewal equation).
    pub fn with_curve(
        dag: &'a Dag,
        model: FailureModel,
        bandwidth: f64,
        curve: Option<&'a RestartCurve>,
    ) -> Self {
        if let Some(c) = curve {
            assert!(
                *c.model() == model,
                "renewal curve was built for {:?}, not {:?}",
                c.model(),
                model
            );
        }
        CostCtx {
            dag,
            model,
            bandwidth,
            curve,
        }
    }

    /// Expected time to execute a segment whose failure-free span is
    /// `base = R + W + C`.
    ///
    /// * Exponential model — Eq. (2)'s closed first-order form
    ///   `(1-λ·base)·base + λ·base·(3/2·base) = base + λ·base²/2`
    ///   (bit-for-bit the paper's path, never touching the curve);
    /// * any other model — the exact renewal (restart) solve, answered
    ///   from the [`RestartCurve`] when one is attached (within its
    ///   documented tolerance) or by the direct deterministic quadrature
    ///   of [`FailureModel::expected_restart_time`] otherwise, with the
    ///   discrete-event simulator as ground truth.
    #[inline]
    pub fn expected_segment_time(&self, base: f64) -> f64 {
        match self.model {
            FailureModel::Exponential { lambda } => base + 0.5 * lambda * base * base,
            model => match self.curve {
                Some(curve) => curve.expected_restart_time(base),
                None => model.expected_restart_time(base),
            },
        }
    }

    /// The two-state surrogate's failure-branch probability for a
    /// segment of span `base`: the `p_high` of the coalesced node whose
    /// mean `(1 + p/2)·base` matches [`CostCtx::expected_segment_time`].
    /// For the exponential model this is the paper's `λ·base` exactly.
    #[inline]
    pub fn two_state_p_high(&self, base: f64) -> f64 {
        match self.model {
            FailureModel::Exponential { lambda } => (lambda * base).min(1.0),
            _ => {
                if base == 0.0 {
                    0.0
                } else {
                    (2.0 * (self.expected_segment_time(base) / base - 1.0)).clamp(0.0, 1.0)
                }
            }
        }
    }
}

/// Failure-free costs of one segment: stable-storage read time `r`,
/// compute time `w`, checkpoint write time `c` (seconds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SegmentCost {
    /// `Rᵢʲ` — external inputs (files produced outside the segment,
    /// including workflow inputs), deduplicated by file.
    pub r: f64,
    /// `Wᵢʲ` — sum of task weights.
    pub w: f64,
    /// `Cᵢʲ` — files produced in the segment and consumed after it,
    /// deduplicated by file.
    pub c: f64,
}

impl SegmentCost {
    /// Failure-free span `R + W + C`.
    #[inline]
    pub fn base(&self) -> f64 {
        self.r + self.w + self.c
    }
}

/// An epoch-stamped id set: O(1) insert/contains keyed by a dense id
/// (`TaskId`/`FileId` index), with O(1) clearing between uses — the
/// reusable-bitset replacement for the `Vec::contains` scans that made
/// [`segment_cost`] quadratic in segment width. Shared crate-wide by the
/// segment-cost sweeps, the policy subsystem's membership tests, and the
/// placement-stats accounting.
#[derive(Clone, Debug, Default)]
pub(crate) struct IdSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl IdSet {
    /// Clears the set and ensures capacity for ids `< n`.
    pub(crate) fn reset(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Inserts `i`; returns `true` if it was not already present.
    #[inline]
    pub(crate) fn insert(&mut self, i: usize) -> bool {
        if self.stamp[i] == self.epoch {
            false
        } else {
            self.stamp[i] = self.epoch;
            true
        }
    }

    #[inline]
    pub(crate) fn contains(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }
}

/// Reusable scratch buffers for [`segment_cost_reusing`]: one allocation
/// amortized across every segment of a coalescing pass (or across the
/// simulator's cross-checks) instead of three fresh ones per call.
#[derive(Clone, Debug, Default)]
pub struct SegmentCostScratch {
    tasks: IdSet,
    read: IdSet,
    ckpt: IdSet,
}

impl SegmentCostScratch {
    /// An empty scratch; buffers grow to fit the DAG on first use.
    pub fn new() -> Self {
        SegmentCostScratch::default()
    }
}

/// Computes the cost of the segment `chain[lo..=hi]` directly (used by the
/// simulator and as a cross-check for the DP's incremental sweep).
pub fn segment_cost(ctx: &CostCtx<'_>, chain: &[TaskId], lo: usize, hi: usize) -> SegmentCost {
    segment_cost_reusing(ctx, chain, lo, hi, &mut SegmentCostScratch::new())
}

/// [`segment_cost`] with caller-owned scratch buffers. File and task
/// dedup is O(1) per check via epoch-stamped id sets, so the cost of a
/// segment of `k` tasks touching `m` files is `O(k + m)` rather than the
/// `O(m²)` of the former `Vec::contains` scans.
pub fn segment_cost_reusing(
    ctx: &CostCtx<'_>,
    chain: &[TaskId],
    lo: usize,
    hi: usize,
    scratch: &mut SegmentCostScratch,
) -> SegmentCost {
    assert!(lo <= hi && hi < chain.len());
    let dag = ctx.dag;
    scratch.tasks.reset(dag.n_tasks());
    scratch.read.reset(dag.n_files());
    scratch.ckpt.reset(dag.n_files());
    for &t in &chain[lo..=hi] {
        scratch.tasks.insert(t.index());
    }
    let mut w = 0.0;
    let mut r_bytes = 0.0;
    let mut c_bytes = 0.0;
    for &t in &chain[lo..=hi] {
        w += dag.weight(t);
        for &(u, f) in dag.preds(t) {
            if !scratch.tasks.contains(u.index()) && scratch.read.insert(f.index()) {
                r_bytes += dag.file(f).size;
            }
        }
        // Workflow inputs and transitive reads (GSPG support): read from
        // storage unless the producer is inside the segment.
        for &f in dag.input_files(t) {
            let produced_inside = dag
                .producer(f)
                .is_some_and(|u| scratch.tasks.contains(u.index()));
            if !produced_inside && scratch.read.insert(f.index()) {
                r_bytes += dag.file(f).size;
            }
        }
        for &f in dag.output_files(t) {
            let needed_later = dag
                .consumers(f)
                .iter()
                .any(|&v| !scratch.tasks.contains(v.index()));
            if needed_later && scratch.ckpt.insert(f.index()) {
                c_bytes += dag.file(f).size;
            }
        }
    }
    SegmentCost {
        r: r_bytes / ctx.bandwidth,
        w,
        c: c_bytes / ctx.bandwidth,
    }
}

/// Result of the checkpoint DP on one superchain.
#[derive(Clone, Debug)]
pub struct CheckpointChoice {
    /// `ckpt_after[k]` — take a checkpoint after `chain[k]`. The final
    /// position is always checkpointed (crossover-dependency removal,
    /// §IV-B).
    pub ckpt_after: Vec<bool>,
    /// The DP's optimal expected time to execute the superchain.
    pub expected_time: f64,
}

/// Optimal checkpoint positions for a superchain (Algorithm 2), `O(n²)`
/// DP over all segment splits with incrementally computed `T(i,j)`.
///
/// Allocates fresh buffers per call; steady-state loops over many
/// superchains should hold a [`DpScratch`] and call
/// [`optimal_checkpoints_reusing`] instead.
pub fn optimal_checkpoints(ctx: &CostCtx<'_>, chain: &[TaskId]) -> CheckpointChoice {
    let mut scratch = DpScratch::new();
    let expected_time = optimal_checkpoints_reusing(ctx, chain, &mut scratch);
    CheckpointChoice {
        ckpt_after: scratch.ckpt_after().to_vec(),
        expected_time,
    }
}

/// [`optimal_checkpoints`] with caller-owned scratch buffers: runs the
/// DP with zero heap allocations once the scratch has grown to the
/// workload's high-water mark. The chosen positions are left in
/// [`DpScratch::ckpt_after`]; the optimal expected time is returned.
pub fn optimal_checkpoints_reusing(
    ctx: &CostCtx<'_>,
    chain: &[TaskId],
    scratch: &mut DpScratch,
) -> f64 {
    let n = chain.len();
    assert!(n > 0, "empty superchain");
    scratch.fill_segment_bases(ctx, chain);
    grow(&mut scratch.etime, n, 0.0);
    grow(&mut scratch.last, n, usize::MAX);
    grow(&mut scratch.ckpt, n, false);
    let DpScratch {
        base,
        etime,
        last,
        ckpt,
        ..
    } = scratch;
    for j in 0..n {
        etime[j] = ctx.expected_segment_time(base[j]);
        last[j] = usize::MAX;
        for i in 0..j {
            let cand = etime[i] + ctx.expected_segment_time(base[(i + 1) * n + j]);
            if cand < etime[j] {
                etime[j] = cand;
                last[j] = i;
            }
        }
    }
    ckpt[..n].fill(false);
    ckpt[n - 1] = true;
    let mut cur = n - 1;
    while last[cur] != usize::MAX {
        cur = last[cur];
        ckpt[cur] = true;
    }
    scratch.n_last = n;
    scratch.etime[n - 1]
}

/// Grows `v` to at least `n` elements (never shrinks — the point is to
/// keep the high-water allocation across calls).
fn grow<T: Clone>(v: &mut Vec<T>, n: usize, fill: T) {
    if v.len() < n {
        v.resize(n, fill);
    }
}

/// The naive coalescing of §II-C (ablation E7): checkpoint only at the end
/// of the superchain (the extended semantics then saves every exit file).
pub fn exit_only(chain: &[TaskId]) -> Vec<bool> {
    let mut v = vec![false; chain.len()];
    if let Some(lastpos) = v.last_mut() {
        *lastpos = true;
    }
    v
}

/// Checkpoint after every task (the CkptAll baseline restricted to this
/// superchain).
pub fn all_tasks(chain: &[TaskId]) -> Vec<bool> {
    vec![true; chain.len()]
}

/// Reusable buffers for the checkpoint DP ([`optimal_checkpoints_reusing`]):
/// the dense `base(i, j)` segment table, the per-file sweep stamps, and
/// the DP's `etime`/`last`/`ckpt_after` arrays. One scratch amortizes
/// every allocation across all superchains of a plan (and across plans),
/// which is what makes the steady-state assess loop allocation-free.
#[derive(Clone, Debug, Default)]
pub struct DpScratch {
    /// `base[i * n + j]` = `R + W + C` of segment `[i..=j]` (seconds).
    base: Vec<f64>,
    /// Position of each task within the current chain (`usize::MAX` =
    /// outside); entries are restored to `MAX` after each fill.
    pos: Vec<usize>,
    /// Per-file "produced inside the current sweep" stamp.
    stamp: Vec<u64>,
    /// Per-file "already counted as read in the current sweep" stamp.
    read_stamp: Vec<u64>,
    /// Outside-consumer counts of files stamped in the current sweep.
    outside_consumers: Vec<usize>,
    /// First stamp value of the next fill (stamp arrays are zero-valid,
    /// so marks start at 1 and advance by `n` per fill instead of being
    /// cleared).
    next_mark: u64,
    /// DP expected-time table.
    etime: Vec<f64>,
    /// DP back-pointers.
    last: Vec<usize>,
    /// Chosen checkpoint positions of the last run.
    ckpt: Vec<bool>,
    /// Chain length of the last run (prefix of `ckpt` that is valid).
    n_last: usize,
}

impl DpScratch {
    /// An empty scratch; buffers grow to the workload's high-water mark
    /// on use and are never shrunk.
    pub fn new() -> Self {
        DpScratch::default()
    }

    /// Checkpoint positions chosen by the most recent
    /// [`optimal_checkpoints_reusing`] call (`ckpt_after[k]` = take a
    /// checkpoint after `chain[k]`).
    pub fn ckpt_after(&self) -> &[bool] {
        &self.ckpt[..self.n_last]
    }

    /// Fills the dense `base(i, j)` table for `chain` with the
    /// incremental `O(n·(E+n))` sweep: for each start `i`, extend `j`
    /// rightward maintaining R/W/C with per-file counters. Bit-identical
    /// arithmetic to the historical per-call `SegmentTable`; only the
    /// buffer lifetimes changed.
    fn fill_segment_bases(&mut self, ctx: &CostCtx<'_>, chain: &[TaskId]) {
        let dag = ctx.dag;
        let n = chain.len();
        let nf = dag.n_files();
        grow(&mut self.pos, dag.n_tasks(), usize::MAX);
        grow(&mut self.base, n * n, 0.0);
        grow(&mut self.stamp, nf, 0);
        grow(&mut self.read_stamp, nf, 0);
        grow(&mut self.outside_consumers, nf, 0);
        // Stamps are compared against `mark0 + i`; advancing the mark
        // base by `n` per fill is an O(1) clear of both stamp arrays.
        if self.next_mark > u64::MAX - (n as u64 + 1) {
            self.stamp.fill(0);
            self.read_stamp.fill(0);
            self.next_mark = 1;
        }
        let mark0 = self.next_mark.max(1);
        self.next_mark = mark0 + n as u64;
        for (k, &t) in chain.iter().enumerate() {
            self.pos[t.index()] = k;
        }
        let pos = &self.pos;
        let (stamp, read_stamp) = (&mut self.stamp, &mut self.read_stamp);
        let outside_consumers = &mut self.outside_consumers;
        for i in 0..n {
            let mark = mark0 + i as u64;
            let mut r_bytes = 0.0f64;
            let mut w = 0.0f64;
            let mut c_bytes = 0.0f64;
            for (j, &t) in chain.iter().enumerate().skip(i) {
                w += dag.weight(t);
                // External inputs: producer outside [i..=j]. Producers
                // precede consumers, so "outside" is fixed for fixed i.
                for &(u, f) in dag.preds(t) {
                    let fp = f.index();
                    let u_inside = pos[u.index()] != usize::MAX && pos[u.index()] >= i;
                    if u_inside {
                        // A producer inside the segment: this consumer
                        // leaves the file's outside-consumer set.
                        if stamp[fp] == mark && outside_consumers[fp] > 0 {
                            outside_consumers[fp] -= 1;
                            if outside_consumers[fp] == 0 {
                                c_bytes -= dag.file(f).size;
                            }
                        }
                    } else if read_stamp[fp] != mark {
                        read_stamp[fp] = mark;
                        r_bytes += dag.file(f).size;
                    }
                }
                // Workflow inputs and transitive reads (GSPG support).
                for &f in dag.input_files(t) {
                    let fp = f.index();
                    let u_inside = dag
                        .producer(f)
                        .is_some_and(|u| pos[u.index()] != usize::MAX && pos[u.index()] >= i);
                    if u_inside {
                        if stamp[fp] == mark && outside_consumers[fp] > 0 {
                            outside_consumers[fp] -= 1;
                            if outside_consumers[fp] == 0 {
                                c_bytes -= dag.file(f).size;
                            }
                        }
                    } else if read_stamp[fp] != mark {
                        read_stamp[fp] = mark;
                        r_bytes += dag.file(f).size;
                    }
                }
                // Outputs: initially every consumer is outside (consumers
                // are topologically after the producer).
                for &f in dag.output_files(t) {
                    let fp = f.index();
                    let consumers = dag.consumers(f).len();
                    stamp[fp] = mark;
                    outside_consumers[fp] = consumers;
                    if consumers > 0 {
                        c_bytes += dag.file(f).size;
                    }
                }
                self.base[i * n + j] = (r_bytes + c_bytes) / ctx.bandwidth + w;
            }
        }
        // Restore the position map for the next chain.
        for &t in chain {
            self.pos[t.index()] = usize::MAX;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspg::{Mspg, Workflow};

    /// A chain of n unit tasks, each with a 1-byte output consumed by the
    /// next (plus a final dangling output with no consumer).
    fn unit_chain(n: usize, out_bytes: f64) -> (Workflow, Vec<TaskId>) {
        let mut dag = Dag::new();
        let k = dag.add_kind("t");
        let ids: Vec<TaskId> = (0..n)
            .map(|i| dag.add_task_with_output(&format!("t{i}"), k, 1.0, out_bytes))
            .collect();
        let root = Mspg::chain(ids.iter().copied()).unwrap();
        let w = Workflow::new(dag, root);
        (w, ids)
    }

    /// Brute-force optimum: enumerate all checkpoint subsets (the last
    /// position is forced) and minimize the sum of segment expected times.
    fn brute_force(ctx: &CostCtx<'_>, chain: &[TaskId]) -> (f64, Vec<bool>) {
        let n = chain.len();
        assert!(n <= 16);
        let mut best = f64::INFINITY;
        let mut best_mask = vec![false; n];
        for mask in 0u32..(1 << (n - 1)) {
            let mut ck = vec![false; n];
            for (b, flag) in ck.iter_mut().enumerate().take(n - 1) {
                *flag = mask >> b & 1 == 1;
            }
            ck[n - 1] = true;
            let mut total = 0.0;
            let mut lo = 0usize;
            for (hi, &flag) in ck.iter().enumerate() {
                if flag {
                    let cost = segment_cost(ctx, chain, lo, hi);
                    total += ctx.expected_segment_time(cost.base());
                    lo = hi + 1;
                }
            }
            if total < best {
                best = total;
                best_mask = ck;
            }
        }
        (best, best_mask)
    }

    #[test]
    fn dp_matches_brute_force_on_chains() {
        for n in [1usize, 2, 3, 5, 8] {
            for lambda in [1e-4, 1e-2, 0.1] {
                let (w, ids) = unit_chain(n, 5.0);
                let ctx = CostCtx::exponential(&w.dag, lambda, 10.0);
                let dp = optimal_checkpoints(&ctx, &ids);
                let (bf_time, _) = brute_force(&ctx, &ids);
                assert!(
                    (dp.expected_time - bf_time).abs() < 1e-9,
                    "n={n} λ={lambda}: dp {} vs bf {bf_time}",
                    dp.expected_time
                );
            }
        }
    }

    #[test]
    fn dp_matches_brute_force_on_linearized_fork_join() {
        let w = pegasus::generic::fork_join(2, 4, 3);
        let sched = crate::allocate::allocate(&w, 1, &crate::allocate::AllocateConfig::default());
        for lambda in [1e-3, 0.05] {
            let ctx = CostCtx::exponential(&w.dag, lambda, 1e6);
            for sc in &sched.superchains {
                if sc.tasks.len() > 14 {
                    continue;
                }
                let dp = optimal_checkpoints(&ctx, &sc.tasks);
                let (bf_time, _) = brute_force(&ctx, &sc.tasks);
                assert!(
                    (dp.expected_time - bf_time).abs() < 1e-9,
                    "λ={lambda}: dp {} vs bf {bf_time}",
                    dp.expected_time
                );
            }
        }
    }

    #[test]
    fn free_checkpoints_mean_checkpoint_everywhere() {
        // Zero-size files: splitting is free and λ > 0 makes smaller
        // segments strictly better.
        let (w, ids) = unit_chain(6, 0.0);
        let ctx = CostCtx::exponential(&w.dag, 0.1, 1.0);
        let dp = optimal_checkpoints(&ctx, &ids);
        assert!(dp.ckpt_after.iter().all(|&c| c), "{:?}", dp.ckpt_after);
    }

    #[test]
    fn expensive_checkpoints_and_rare_failures_mean_exit_only() {
        // Huge files, tiny λ: any interior checkpoint costs more than the
        // re-execution risk it saves.
        let (w, ids) = unit_chain(6, 1e9);
        let ctx = CostCtx::exponential(&w.dag, 1e-9, 1e6);
        let dp = optimal_checkpoints(&ctx, &ids);
        let interior: usize = dp.ckpt_after[..5].iter().filter(|&&c| c).count();
        assert_eq!(interior, 0, "{:?}", dp.ckpt_after);
        assert!(dp.ckpt_after[5]);
    }

    #[test]
    fn last_task_always_checkpointed() {
        for lambda in [0.0, 1e-3, 0.5] {
            let (w, ids) = unit_chain(4, 3.0);
            let ctx = CostCtx::exponential(&w.dag, lambda, 1.0);
            let dp = optimal_checkpoints(&ctx, &ids);
            assert!(dp.ckpt_after[3]);
        }
    }

    #[test]
    fn segment_cost_dedups_shared_files() {
        // Figure 4 shape: T1 → T2 → {T3, T4}; T3 → T5; T2 → T4… build the
        // example where one file feeds two tasks in the same segment.
        let mut dag = Dag::new();
        let k = dag.add_kind("t");
        let a = dag.add_task_with_output("a", k, 1.0, 100.0);
        let b = dag.add_task("b", k, 1.0);
        let c = dag.add_task("c", k, 1.0);
        let fa = dag.primary_output(a).unwrap();
        dag.add_edge(b, fa);
        dag.add_edge(c, fa);
        let chain = [b, c];
        let ctx = CostCtx::exponential(&dag, 0.0, 1.0);
        let cost = segment_cost(&ctx, &chain, 0, 1);
        // fa read once, not twice.
        assert_eq!(cost.r, 100.0);
        assert_eq!(cost.c, 0.0);
        assert_eq!(cost.w, 2.0);
    }

    #[test]
    fn extended_checkpoint_covers_live_outputs() {
        // Figure 4 of the paper: T1 → T2 → T3 → T4 → T5 → T6 linearized;
        // extra edges T2→T4 (via its file) and T3→T5. A checkpoint after
        // T4 must also save T3's output (needed by T5).
        let mut dag = Dag::new();
        let k = dag.add_kind("t");
        let t: Vec<TaskId> = (1..=6)
            .map(|i| dag.add_task_with_output(&format!("T{i}"), k, 1.0, 10.0))
            .collect();
        let edges = [(0, 1), (1, 2), (1, 3), (2, 4), (3, 4), (4, 5)];
        for &(u, v) in &edges {
            let file = dag.primary_output(t[u]).unwrap();
            dag.add_edge(t[v], file);
        }
        let ctx = CostCtx::exponential(&dag, 0.0, 1.0);
        // Segment [T3, T4] (indices 2..=3): checkpoint must save T3's
        // output (needed by T5) and T4's output (needed by T5): C = 20.
        let cost = segment_cost(&ctx, &t, 2, 3);
        assert_eq!(cost.c, 20.0);
        // It reads T2's output only (T2 outside), deduplicated: R = 10.
        assert_eq!(cost.r, 10.0);
    }

    #[test]
    fn incremental_table_matches_direct_costs() {
        let w = pegasus::generate(pegasus::WorkflowClass::Montage, 60, 5);
        let sched = crate::allocate::allocate(&w, 3, &crate::allocate::AllocateConfig::default());
        let ctx = CostCtx::exponential(&w.dag, 1e-4, 1e7);
        // One scratch across all superchains: reuse must not leak state
        // between chains (stamps, positions, stale base cells).
        let mut scratch = DpScratch::new();
        for sc in &sched.superchains {
            scratch.fill_segment_bases(&ctx, &sc.tasks);
            let n = sc.tasks.len();
            for i in 0..n {
                for j in i..n {
                    let direct = segment_cost(&ctx, &sc.tasks, i, j);
                    let got = scratch.base[i * n + j];
                    assert!(
                        (got - direct.base()).abs() < 1e-9 * direct.base().max(1.0),
                        "segment [{i},{j}]: table {got} vs direct {}",
                        direct.base()
                    );
                }
            }
        }
    }

    #[test]
    fn reused_scratch_is_bitwise_identical_to_fresh() {
        let w = pegasus::generate(pegasus::WorkflowClass::Genome, 120, 9);
        let sched = crate::allocate::allocate(&w, 4, &crate::allocate::AllocateConfig::default());
        let ctx = CostCtx::exponential(&w.dag, 3e-4, 1e7);
        let mut scratch = DpScratch::new();
        // Two passes over all superchains with one scratch (the second
        // pass hits fully-grown, stale-valued buffers) against fresh
        // per-chain allocation.
        for _ in 0..2 {
            for sc in &sched.superchains {
                let et = optimal_checkpoints_reusing(&ctx, &sc.tasks, &mut scratch);
                let fresh = optimal_checkpoints(&ctx, &sc.tasks);
                assert_eq!(et.to_bits(), fresh.expected_time.to_bits());
                assert_eq!(scratch.ckpt_after(), &fresh.ckpt_after[..]);
            }
        }
    }

    #[test]
    fn zero_failure_rate_still_checkpoints_last_only() {
        // λ = 0: interior checkpoints only add cost.
        let (w, ids) = unit_chain(5, 10.0);
        let ctx = CostCtx::exponential(&w.dag, 0.0, 1.0);
        let dp = optimal_checkpoints(&ctx, &ids);
        let interior: usize = dp.ckpt_after[..4].iter().filter(|&&c| c).count();
        assert_eq!(interior, 0);
    }
}
