//! Checkpoint placement in superchains — Algorithm 2 (§IV).
//!
//! Extends Toueg & Babaoğlu's chain algorithm to superchains with the
//! paper's *extended checkpoint semantics*: the checkpoint taken after a
//! task saves the output of **all** executed-but-uncheckpointed tasks that
//! still have unexecuted successors (all solid dependence edges crossing
//! the checkpoint time). Segments between checkpoints therefore recover
//! independently: a failure rolls back exactly to the previous checkpoint.
//!
//! `ETime(j) = min( T(a,j), min_{a≤i<j} ETime(i) + T(i+1,j) )` where
//! `T(i,j)` is the first-order expected time (Eq. (2)) to read the
//! segment's external inputs (`Rᵢʲ`), run it (`Wᵢʲ`), and checkpoint the
//! data needed later (`Cᵢʲ`). All file costs deduplicate by file — a file
//! consumed by several segment tasks is read once, a file needed by
//! several later tasks is saved once.
//!
//! ## Complexity
//!
//! The general DP is quadratic in the superchain length:
//! [`DpScratch`]'s incremental sweep builds the dense `base(i, j)` table
//! in `O(n·(E + n))` and the minimization scans `O(n²)` candidate
//! splits. Long chains (`n ≥` [`KERNEL_MIN_LEN`]) first attempt the
//! subquadratic **candidate-queue kernel** — `O(n log n)` cost probes
//! and `O(n)` memory, never building the dense table — which applies
//! when three preconditions hold:
//!
//! 1. the chain's segment costs decompose **additively**,
//!    `base(i, j) = A[j] − B[i]` (detected in `O(n + E)` by classifying
//!    every file touched by the chain — see
//!    `DpScratch::fill_additive_profile`);
//! 2. both profiles `A` and `B` are **nondecreasing** (high
//!    communication-to-computation ratios can break this);
//! 3. the model's expected segment time is **convex** in the span
//!    (exponential always; Weibull `shape ≥ 1`; LogNormal never — see
//!    `convex_segment_time`).
//!
//! Any chain failing the gate falls back to the exact quadratic path
//! **bit-for-bit** (it is the same historical code), so the experiment
//! CSVs — whose superchains are far below the length threshold — are
//! unaffected. See `DESIGN.md` §9 for the crossing argument and the
//! fallback contract.

use mspg::{Dag, FileId, TaskId};

use crate::budget::Budget;
use crate::failure_model::{FailureModel, RestartCurve};

/// Cost context: the workflow, the processor failure model, and the
/// stable storage bandwidth — plus, for non-memoryless models, an
/// optional borrowed [`RestartCurve`] that answers renewal queries from
/// a precomputed table instead of per-query quadrature.
#[derive(Clone, Copy, Debug)]
pub struct CostCtx<'a> {
    /// The workflow DAG (weights and file sizes).
    pub dag: &'a Dag,
    /// Per-processor failure distribution.
    pub model: FailureModel,
    /// Stable-storage bandwidth (bytes/s).
    pub bandwidth: f64,
    /// Cached renewal curve for non-memoryless models (`None` falls back
    /// to direct quadrature; ignored — never consulted — for the
    /// exponential model, whose closed form short-circuits first).
    /// `Pipeline` builds one per platform and threads it through every
    /// cost path; see `DESIGN.md` §7.
    pub curve: Option<&'a RestartCurve>,
    /// Cooperative cancellation/deadline budget. `None` (every offline
    /// path) costs one branch per DP row; when present, the DP sweeps
    /// poll it once per outer iteration and abandon the computation by
    /// unwinding with [`crate::budget::Cancelled`] — see the module
    /// docs of [`crate::budget`] for the abort contract.
    pub budget: Option<&'a Budget>,
}

impl<'a> CostCtx<'a> {
    /// The paper's context: exponential failures of rate `lambda`.
    pub fn exponential(dag: &'a Dag, lambda: f64, bandwidth: f64) -> Self {
        CostCtx {
            dag,
            model: FailureModel::exponential(lambda),
            bandwidth,
            curve: None,
            budget: None,
        }
    }

    /// A context with an arbitrary failure model (renewal queries go
    /// through direct quadrature; prefer [`CostCtx::with_curve`] on hot
    /// paths).
    pub fn with_model(dag: &'a Dag, model: FailureModel, bandwidth: f64) -> Self {
        CostCtx {
            dag,
            model,
            bandwidth,
            curve: None,
            budget: None,
        }
    }

    /// A context with an arbitrary failure model and a prebuilt renewal
    /// curve for it.
    ///
    /// # Panics
    /// Panics if `curve` was built for a different model (a mismatched
    /// cache would silently answer the wrong renewal equation).
    pub fn with_curve(
        dag: &'a Dag,
        model: FailureModel,
        bandwidth: f64,
        curve: Option<&'a RestartCurve>,
    ) -> Self {
        if let Some(c) = curve {
            assert!(
                *c.model() == model,
                "renewal curve was built for {:?}, not {:?}",
                c.model(),
                model
            );
        }
        CostCtx {
            dag,
            model,
            bandwidth,
            curve,
            budget: None,
        }
    }

    /// The same context with a cancellation budget attached (builder
    /// style, for the serving layer).
    pub fn with_budget(mut self, budget: Option<&'a Budget>) -> Self {
        self.budget = budget;
        self
    }

    /// Cooperative cancellation point for the DP hot loops: no-op
    /// without a budget, unwinds with [`crate::budget::Cancelled`] when
    /// the attached budget is exhausted.
    #[inline]
    pub fn check_budget(&self) {
        if let Some(b) = self.budget {
            b.check();
        }
    }

    /// Expected time to execute a segment whose failure-free span is
    /// `base = R + W + C`.
    ///
    /// * Exponential model — Eq. (2)'s closed first-order form
    ///   `(1-λ·base)·base + λ·base·(3/2·base) = base + λ·base²/2`
    ///   (bit-for-bit the paper's path, never touching the curve);
    /// * any other model — the exact renewal (restart) solve, answered
    ///   from the [`RestartCurve`] when one is attached (within its
    ///   documented tolerance) or by the direct deterministic quadrature
    ///   of [`FailureModel::expected_restart_time`] otherwise, with the
    ///   discrete-event simulator as ground truth.
    #[inline]
    pub fn expected_segment_time(&self, base: f64) -> f64 {
        match self.model {
            FailureModel::Exponential { lambda } => base + 0.5 * lambda * base * base,
            model => match self.curve {
                Some(curve) => curve.expected_restart_time(base),
                None => model.expected_restart_time(base),
            },
        }
    }

    /// The two-state surrogate's failure-branch probability for a
    /// segment of span `base`: the `p_high` of the coalesced node whose
    /// mean `(1 + p/2)·base` matches [`CostCtx::expected_segment_time`].
    /// For the exponential model this is the paper's `λ·base` exactly.
    #[inline]
    pub fn two_state_p_high(&self, base: f64) -> f64 {
        match self.model {
            FailureModel::Exponential { lambda } => (lambda * base).min(1.0),
            _ => {
                if base == 0.0 {
                    0.0
                } else {
                    (2.0 * (self.expected_segment_time(base) / base - 1.0)).clamp(0.0, 1.0)
                }
            }
        }
    }
}

/// Failure-free costs of one segment: stable-storage read time `r`,
/// compute time `w`, checkpoint write time `c` (seconds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SegmentCost {
    /// `Rᵢʲ` — external inputs (files produced outside the segment,
    /// including workflow inputs), deduplicated by file.
    pub r: f64,
    /// `Wᵢʲ` — sum of task weights.
    pub w: f64,
    /// `Cᵢʲ` — files produced in the segment and consumed after it,
    /// deduplicated by file.
    pub c: f64,
}

impl SegmentCost {
    /// Failure-free span `R + W + C`.
    #[inline]
    pub fn base(&self) -> f64 {
        self.r + self.w + self.c
    }
}

/// An epoch-stamped id set: O(1) insert/contains keyed by a dense id
/// (`TaskId`/`FileId` index), with O(1) clearing between uses — the
/// reusable-bitset replacement for the `Vec::contains` scans that made
/// [`segment_cost`] quadratic in segment width. Shared crate-wide by the
/// segment-cost sweeps, the policy subsystem's membership tests, and the
/// placement-stats accounting.
#[derive(Clone, Debug, Default)]
pub(crate) struct IdSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl IdSet {
    /// Clears the set and ensures capacity for ids `< n`.
    pub(crate) fn reset(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Inserts `i`; returns `true` if it was not already present.
    #[inline]
    pub(crate) fn insert(&mut self, i: usize) -> bool {
        if self.stamp[i] == self.epoch {
            false
        } else {
            self.stamp[i] = self.epoch;
            true
        }
    }

    #[inline]
    pub(crate) fn contains(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }
}

/// Reusable scratch buffers for [`segment_cost_reusing`]: one allocation
/// amortized across every segment of a coalescing pass (or across the
/// simulator's cross-checks) instead of three fresh ones per call.
#[derive(Clone, Debug, Default)]
pub struct SegmentCostScratch {
    tasks: IdSet,
    read: IdSet,
    ckpt: IdSet,
}

impl SegmentCostScratch {
    /// An empty scratch; buffers grow to fit the DAG on first use.
    pub fn new() -> Self {
        SegmentCostScratch::default()
    }
}

/// Computes the cost of the segment `chain[lo..=hi]` directly (used by the
/// simulator and as a cross-check for the DP's incremental sweep).
pub fn segment_cost(ctx: &CostCtx<'_>, chain: &[TaskId], lo: usize, hi: usize) -> SegmentCost {
    segment_cost_reusing(ctx, chain, lo, hi, &mut SegmentCostScratch::new())
}

/// [`segment_cost`] with caller-owned scratch buffers. File and task
/// dedup is O(1) per check via epoch-stamped id sets, so the cost of a
/// segment of `k` tasks touching `m` files is `O(k + m)` rather than the
/// `O(m²)` of the former `Vec::contains` scans.
pub fn segment_cost_reusing(
    ctx: &CostCtx<'_>,
    chain: &[TaskId],
    lo: usize,
    hi: usize,
    scratch: &mut SegmentCostScratch,
) -> SegmentCost {
    assert!(lo <= hi && hi < chain.len());
    let dag = ctx.dag;
    scratch.tasks.reset(dag.n_tasks());
    scratch.read.reset(dag.n_files());
    scratch.ckpt.reset(dag.n_files());
    for &t in &chain[lo..=hi] {
        scratch.tasks.insert(t.index());
    }
    let mut w = 0.0;
    let mut r_bytes = 0.0;
    let mut c_bytes = 0.0;
    for &t in &chain[lo..=hi] {
        w += dag.weight(t);
        for &(u, f) in dag.preds(t) {
            if !scratch.tasks.contains(u.index()) && scratch.read.insert(f.index()) {
                r_bytes += dag.file(f).size;
            }
        }
        // Workflow inputs and transitive reads (GSPG support): read from
        // storage unless the producer is inside the segment.
        for &f in dag.input_files(t) {
            let produced_inside = dag
                .producer(f)
                .is_some_and(|u| scratch.tasks.contains(u.index()));
            if !produced_inside && scratch.read.insert(f.index()) {
                r_bytes += dag.file(f).size;
            }
        }
        for &f in dag.output_files(t) {
            let needed_later = dag
                .consumers(f)
                .iter()
                .any(|&v| !scratch.tasks.contains(v.index()));
            if needed_later && scratch.ckpt.insert(f.index()) {
                c_bytes += dag.file(f).size;
            }
        }
    }
    SegmentCost {
        r: r_bytes / ctx.bandwidth,
        w,
        c: c_bytes / ctx.bandwidth,
    }
}

/// Result of the checkpoint DP on one superchain.
#[derive(Clone, Debug)]
pub struct CheckpointChoice {
    /// `ckpt_after[k]` — take a checkpoint after `chain[k]`. The final
    /// position is always checkpointed (crossover-dependency removal,
    /// §IV-B).
    pub ckpt_after: Vec<bool>,
    /// The DP's optimal expected time to execute the superchain.
    pub expected_time: f64,
}

/// Optimal checkpoint positions for a superchain (Algorithm 2): the
/// exact `O(n²)` DP over all segment splits, with the subquadratic
/// candidate-queue kernel engaging automatically on long qualifying
/// chains (see the module docs). An empty chain yields an empty
/// placement with expected time `0.0` (a documented skip — degenerate
/// schedules must not panic the planner mid-grid).
///
/// Allocates fresh buffers per call; steady-state loops over many
/// superchains should hold a [`DpScratch`] and call
/// [`optimal_checkpoints_reusing`] instead.
pub fn optimal_checkpoints(ctx: &CostCtx<'_>, chain: &[TaskId]) -> CheckpointChoice {
    let mut scratch = DpScratch::new();
    let expected_time = optimal_checkpoints_reusing(ctx, chain, &mut scratch);
    CheckpointChoice {
        ckpt_after: scratch.ckpt_after().to_vec(),
        expected_time,
    }
}

/// Chains at least this long attempt the subquadratic candidate-queue
/// kernel before the exact quadratic DP; shorter chains always run the
/// historical quadratic path, whose arithmetic the experiment CSVs pin
/// bit-for-bit. 512 keeps every superchain of the paper grids (≤ ~350
/// tasks at their sizes and processor counts — pinned by the
/// `paper_workflows_stay_on_the_exact_path` test) on the exact path
/// while engaging the kernel well before the dense `base(i, j)` table
/// becomes the dominant planning cost.
pub const KERNEL_MIN_LEN: usize = 512;

/// [`optimal_checkpoints`] with caller-owned scratch buffers: runs the
/// DP with zero heap allocations once the scratch has grown to the
/// workload's high-water mark. The chosen positions are left in
/// [`DpScratch::ckpt_after`]; the optimal expected time is returned.
/// An empty chain is a documented skip: expected time `0.0`, empty
/// [`DpScratch::ckpt_after`].
pub fn optimal_checkpoints_reusing(
    ctx: &CostCtx<'_>,
    chain: &[TaskId],
    scratch: &mut DpScratch,
) -> f64 {
    optimal_checkpoints_tuned(ctx, chain, scratch, KERNEL_MIN_LEN)
}

/// [`optimal_checkpoints_reusing`] with an explicit kernel length
/// threshold, so tests can force the kernel onto short chains (or force
/// it off entirely with `usize::MAX`). Test-only surface.
#[doc(hidden)]
pub fn optimal_checkpoints_tuned(
    ctx: &CostCtx<'_>,
    chain: &[TaskId],
    scratch: &mut DpScratch,
    kernel_min_len: usize,
) -> f64 {
    scratch.kernel_used = false;
    let n = chain.len();
    if n == 0 {
        // Documented skip, not a panic: a degenerate schedule may hand
        // the planner an empty superchain; it plans as "no tasks, no
        // checkpoints, zero expected time" — `ckpt_after()` is empty,
        // matching `plan_with_policy`'s tolerance of empty chains.
        scratch.n_last = 0;
        return 0.0;
    }
    if n >= kernel_min_len && convex_segment_time(&ctx.model) {
        if let Some(t) = kernel_attempt(ctx, chain, scratch) {
            scratch.kernel_used = true;
            return t;
        }
    }
    optimal_checkpoints_exact_quadratic(ctx, chain, scratch)
}

/// The exact `O(n²)` DP — the historical path whose arithmetic every
/// experiment CSV pins bit-for-bit. Production code reaches it through
/// [`optimal_checkpoints_reusing`], which dispatches here whenever the
/// kernel's gate rejects the chain; it is public so the equivalence
/// tests can compare the kernel against it directly.
#[doc(hidden)]
pub fn optimal_checkpoints_exact_quadratic(
    ctx: &CostCtx<'_>,
    chain: &[TaskId],
    scratch: &mut DpScratch,
) -> f64 {
    let n = chain.len();
    assert!(n > 0, "empty superchain");
    scratch.fill_segment_bases(ctx, chain);
    grow(&mut scratch.etime, n, 0.0);
    grow(&mut scratch.last, n, usize::MAX);
    grow(&mut scratch.ckpt, n, false);
    {
        let DpScratch {
            base, etime, last, ..
        } = scratch;
        for j in 0..n {
            // One budget poll per DP row: O(n) polls against O(n²)
            // work, cheap enough to never show in profiles yet tight
            // enough that a deadline abandons the sweep within one row.
            ctx.check_budget();
            etime[j] = ctx.expected_segment_time(base[j]);
            last[j] = usize::MAX;
            for i in 0..j {
                let cand = etime[i] + ctx.expected_segment_time(base[(i + 1) * n + j]);
                if cand < etime[j] {
                    etime[j] = cand;
                    last[j] = i;
                }
            }
        }
    }
    scratch.traceback(n);
    scratch.etime[n - 1]
}

/// Whether [`CostCtx::expected_segment_time`] is convex in the span for
/// this model — the analytic precondition of the candidate-queue
/// kernel's once-crossing pruning rule. Exponential: `b + λb²/2` is
/// convex for any `λ ≥ 0`. Weibull `shape ≥ 1`: the renewal solve
/// `E(b) = ∫₀ᵇ S / S(b)` satisfies `E″ = h + h²E + h′E ≥ 0` for a
/// nondecreasing hazard `h`. A decreasing hazard (Weibull `shape < 1`)
/// or a non-monotone one (LogNormal) carries no such guarantee, so
/// those models always take the exact quadratic path.
fn convex_segment_time(model: &FailureModel) -> bool {
    match *model {
        FailureModel::Exponential { .. } => true,
        FailureModel::Weibull { shape, .. } => shape >= 1.0,
        FailureModel::LogNormal { .. } => false,
    }
}

/// The kernel's cost probe: the expected segment time of the additive
/// span `A[j] − B[s]`, clamped at zero (the subtraction can round a
/// mathematically nonnegative span to a tiny negative, which the
/// curve-backed path rejects). The additive reference DP uses the *same*
/// expression, which is what makes kernel-vs-reference comparisons
/// bit-exact.
#[inline]
fn probe(ctx: &CostCtx<'_>, span: f64) -> f64 {
    ctx.expected_segment_time(if span > 0.0 { span } else { 0.0 })
}

/// The candidate-queue kernel (convex least-weight-subsequence):
/// `O(n log n)` cost probes and `O(n)` memory when the chain's segment
/// costs decompose additively and both profiles are monotone. Returns
/// `None` (the caller falls back to the exact quadratic DP) when either
/// structural precondition fails; the model-convexity gate is the
/// caller's responsibility.
///
/// Candidate `s` is a segment start: `val(s, j) = prev(s) + f(A[j] −
/// B[s])` with `prev(0) = 0` and `prev(s) = etime[s−1]`. Convexity of
/// `f` plus monotone profiles make any two candidate curves cross at
/// most once in `j`, so a queue of `(start, takeover-position)` pairs —
/// each optimal from its takeover until the next entry's — represents
/// the full lower envelope. Every comparison uses strict `<` with the
/// *older* (smaller `s`) candidate winning ties, reproducing the
/// quadratic path's leftmost-argmin tie-break exactly.
fn kernel_attempt(ctx: &CostCtx<'_>, chain: &[TaskId], scratch: &mut DpScratch) -> Option<f64> {
    let n = chain.len();
    if !scratch.fill_additive_profile(ctx, chain) {
        return None;
    }
    {
        let a = &scratch.prof_a[..n];
        let b = &scratch.prof_b[..n];
        if !a[0].is_finite() || !b[0].is_finite() {
            return None;
        }
        for j in 1..n {
            // Monotone profiles are what make candidate curves cross at
            // most once; a single violation (possible at high CCR, where
            // an adjacent-edge read outweighs a task) forfeits the
            // pruning argument for the whole chain.
            if !(a[j] >= a[j - 1] && b[j] >= b[j - 1] && a[j].is_finite() && b[j].is_finite()) {
                return None;
            }
        }
    }
    grow(&mut scratch.etime, n, 0.0);
    grow(&mut scratch.last, n, usize::MAX);
    grow(&mut scratch.ckpt, n, false);
    grow(&mut scratch.kq_s, 2 * n + 2, 0);
    grow(&mut scratch.kq_from, 2 * n + 2, 0);
    {
        let DpScratch {
            prof_a,
            prof_b,
            etime,
            last,
            kq_s,
            kq_from,
            ..
        } = scratch;
        let a = &prof_a[..n];
        let b = &prof_b[..n];
        // The queue lives in kq_s/kq_from[head .. head + len]; the head
        // only advances and each candidate is pushed at most once, so
        // slot indices stay below 2n + 2.
        let mut head = 0usize;
        let mut len = 1usize;
        kq_s[0] = 0;
        kq_from[0] = 0;
        for j in 0..n {
            // Same per-row cancellation cadence as the quadratic path.
            ctx.check_budget();
            if j > 0 {
                // Insert candidate s = j (its prefix cost etime[j−1] is
                // final). Pop back entries it dominates from their
                // earliest still-relevant position; convexity says a win
                // there is a win everywhere later.
                let pj = etime[j - 1];
                let mut takeover = None;
                while len > 0 {
                    let bs = kq_s[head + len - 1];
                    let bf = kq_from[head + len - 1].max(j);
                    let pb = if bs == 0 { 0.0 } else { etime[bs - 1] };
                    if pj + probe(ctx, a[bf] - b[j]) < pb + probe(ctx, a[bf] - b[bs]) {
                        len -= 1;
                        continue;
                    }
                    // The newcomer loses at bf: binary-search the first
                    // position where it strictly wins (hi = n ⇒ never).
                    let (mut lo, mut hi) = (bf, n);
                    while lo + 1 < hi {
                        let mid = (lo + hi) / 2;
                        if pj + probe(ctx, a[mid] - b[j]) < pb + probe(ctx, a[mid] - b[bs]) {
                            hi = mid;
                        } else {
                            lo = mid;
                        }
                    }
                    takeover = Some(hi);
                    break;
                }
                if len == 0 {
                    // The newcomer dominated the whole queue: it is the
                    // leftmost argmin from j on.
                    kq_s[head] = j;
                    kq_from[head] = j;
                    len = 1;
                } else if let Some(t) = takeover {
                    if t < n {
                        kq_s[head + len] = j;
                        kq_from[head + len] = t;
                        len += 1;
                    }
                }
            }
            while len > 1 && kq_from[head + 1] <= j {
                head += 1;
                len -= 1;
            }
            let s = kq_s[head];
            let prev = if s == 0 { 0.0 } else { etime[s - 1] };
            etime[j] = prev + probe(ctx, a[j] - b[s]);
            last[j] = if s == 0 { usize::MAX } else { s - 1 };
        }
    }
    scratch.traceback(n);
    Some(scratch.etime[n - 1])
}

/// The `O(n²)` reference DP over the *additive* cost probes — identical
/// arithmetic (`prev + f(A[j] − B[s])`, strict-`<` leftmost tie-break)
/// to the candidate-queue kernel but with an exhaustive scan, so
/// kernel-vs-reference equality is exact rather than
/// tolerance-bounded. `None` when the chain has no additive
/// decomposition. Test-only surface; production code never calls this.
#[doc(hidden)]
pub fn optimal_checkpoints_additive_reference(
    ctx: &CostCtx<'_>,
    chain: &[TaskId],
    scratch: &mut DpScratch,
) -> Option<f64> {
    let n = chain.len();
    if n == 0 || !scratch.fill_additive_profile(ctx, chain) {
        return None;
    }
    grow(&mut scratch.etime, n, 0.0);
    grow(&mut scratch.last, n, usize::MAX);
    grow(&mut scratch.ckpt, n, false);
    {
        let DpScratch {
            prof_a,
            prof_b,
            etime,
            last,
            ..
        } = scratch;
        let a = &prof_a[..n];
        let b = &prof_b[..n];
        for j in 0..n {
            etime[j] = probe(ctx, a[j] - b[0]);
            last[j] = usize::MAX;
            for s in 1..=j {
                let cand = etime[s - 1] + probe(ctx, a[j] - b[s]);
                if cand < etime[j] {
                    etime[j] = cand;
                    last[j] = s - 1;
                }
            }
        }
    }
    scratch.traceback(n);
    Some(scratch.etime[n - 1])
}

/// The candidate-queue kernel with no length threshold — `None` when
/// the gate (model convexity, additive decomposition, monotone
/// profiles) rejects the chain. Test-only surface for the equivalence
/// proptests.
#[doc(hidden)]
pub fn optimal_checkpoints_kernel_forced(
    ctx: &CostCtx<'_>,
    chain: &[TaskId],
    scratch: &mut DpScratch,
) -> Option<f64> {
    scratch.kernel_used = false;
    if chain.is_empty() || !convex_segment_time(&ctx.model) {
        return None;
    }
    let t = kernel_attempt(ctx, chain, scratch)?;
    scratch.kernel_used = true;
    Some(t)
}

/// Grows `v` to at least `n` elements (never shrinks — the point is to
/// keep the high-water allocation across calls).
fn grow<T: Clone>(v: &mut Vec<T>, n: usize, fill: T) {
    if v.len() < n {
        v.resize(n, fill);
    }
}

/// The naive coalescing of §II-C (ablation E7): checkpoint only at the end
/// of the superchain (the extended semantics then saves every exit file).
pub fn exit_only(chain: &[TaskId]) -> Vec<bool> {
    let mut v = vec![false; chain.len()];
    if let Some(lastpos) = v.last_mut() {
        *lastpos = true;
    }
    v
}

/// Checkpoint after every task (the CkptAll baseline restricted to this
/// superchain).
pub fn all_tasks(chain: &[TaskId]) -> Vec<bool> {
    vec![true; chain.len()]
}

/// Reusable buffers for the checkpoint DP ([`optimal_checkpoints_reusing`]):
/// the dense `base(i, j)` segment table, the per-file sweep stamps, and
/// the DP's `etime`/`last`/`ckpt_after` arrays. One scratch amortizes
/// every allocation across all superchains of a plan (and across plans),
/// which is what makes the steady-state assess loop allocation-free.
#[derive(Clone, Debug, Default)]
pub struct DpScratch {
    /// `base[i * n + j]` = `R + W + C` of segment `[i..=j]` (seconds).
    base: Vec<f64>,
    /// Position of each task within the current chain (`usize::MAX` =
    /// outside); entries are restored to `MAX` after each fill.
    pos: Vec<usize>,
    /// Per-file "produced inside the current sweep" stamp.
    stamp: Vec<u64>,
    /// Per-file "already counted as read in the current sweep" stamp.
    read_stamp: Vec<u64>,
    /// Outside-consumer counts of files stamped in the current sweep.
    outside_consumers: Vec<usize>,
    /// First stamp value of the next fill (stamp arrays are zero-valid,
    /// so marks start at 1 and advance by `n` per fill instead of being
    /// cleared).
    next_mark: u64,
    /// DP expected-time table.
    etime: Vec<f64>,
    /// DP back-pointers.
    last: Vec<usize>,
    /// Chosen checkpoint positions of the last run.
    ckpt: Vec<bool>,
    /// Chain length of the last run (prefix of `ckpt` that is valid).
    n_last: usize,
    /// Additive profile of the subquadratic kernel: `base(i, j) =
    /// prof_a[j] − prof_b[i]` when the chain qualifies (see
    /// `fill_additive_profile`).
    prof_a: Vec<f64>,
    prof_b: Vec<f64>,
    /// Per-position byte accumulators of the profile build:
    /// always-checkpointed + single-consumer-read bytes, and the
    /// adjacent-edge read/checkpoint bytes.
    prof_bytes: Vec<f64>,
    prof_edge_r: Vec<f64>,
    prof_edge_c: Vec<f64>,
    /// Profile-build file dedup (an external file reachable from several
    /// chain tasks is classified once).
    prof_seen: IdSet,
    /// Candidate queue of the kernel (`(start, takeover)` pairs).
    kq_s: Vec<usize>,
    kq_from: Vec<usize>,
    /// Whether the most recent run used the subquadratic kernel (`false`
    /// = the exact quadratic path, the one the experiment CSVs pin).
    kernel_used: bool,
}

impl DpScratch {
    /// An empty scratch; buffers grow to the workload's high-water mark
    /// on use and are never shrunk.
    pub fn new() -> Self {
        DpScratch::default()
    }

    /// Checkpoint positions chosen by the most recent
    /// [`optimal_checkpoints_reusing`] call (`ckpt_after[k]` = take a
    /// checkpoint after `chain[k]`).
    pub fn ckpt_after(&self) -> &[bool] {
        &self.ckpt[..self.n_last]
    }

    /// Whether the most recent [`optimal_checkpoints_reusing`] call ran
    /// the subquadratic kernel (`false` = the exact quadratic path — the
    /// arithmetic every experiment CSV pins). Introspection for the
    /// kernel-engagement tests.
    pub fn last_run_used_kernel(&self) -> bool {
        self.kernel_used
    }

    /// Marks the checkpoint positions implied by the `last[]`
    /// back-pointers (the final position is always checkpointed) and
    /// records the valid prefix length.
    fn traceback(&mut self, n: usize) {
        self.ckpt[..n].fill(false);
        self.ckpt[n - 1] = true;
        let mut cur = n - 1;
        while self.last[cur] != usize::MAX {
            cur = self.last[cur];
            self.ckpt[cur] = true;
        }
        self.n_last = n;
    }

    /// Attempts the additive decomposition `base(i, j) = A[j] − B[i]` of
    /// the chain's segment costs, filling `prof_a`/`prof_b`. Returns
    /// `false` (kernel ineligible) as soon as a file's consumption
    /// pattern breaks additivity:
    ///
    /// * an in-chain-produced file whose in-chain consumers are anything
    ///   but the producer's immediate successor position (the read's
    ///   activation then depends on both segment ends);
    /// * an externally produced (or workflow-input) file read by some
    ///   but not all chain positions, unless by exactly one.
    ///
    /// The additive classes, with `bw` the bandwidth and prefix sums
    /// `Σw` / `Σbytes` over positions:
    ///
    /// * always-checkpointed bytes (an output some out-of-chain task
    ///   consumes) and single-position external reads activate exactly
    ///   when their position is inside the segment → prefix terms in
    ///   both profiles;
    /// * an output consumed only by the next position is read iff the
    ///   segment *starts* there (`− edge_r[i]` in `B`) and, when no
    ///   out-of-chain consumer keeps it checkpointed, saved iff the
    ///   segment *ends* at the producer (`+ edge_c[j]` in `A`);
    /// * an external file read by **every** chain position costs every
    ///   segment the same read → a constant folded into `A`.
    ///
    /// So `A[j] = Σw[..=j] + (Σbytes[..=j] + edge_c[j] + K) / bw` and
    /// `B[i] = Σw[..i] + (Σbytes[..i] − edge_r[i]) / bw`, giving
    /// `A[j] − B[i]` = the sweep's `R + W + C` for segment `[i..=j]` up
    /// to floating-point association.
    fn fill_additive_profile(&mut self, ctx: &CostCtx<'_>, chain: &[TaskId]) -> bool {
        let dag = ctx.dag;
        let n = chain.len();
        grow(&mut self.pos, dag.n_tasks(), usize::MAX);
        grow(&mut self.prof_a, n, 0.0);
        grow(&mut self.prof_b, n, 0.0);
        grow(&mut self.prof_bytes, n, 0.0);
        grow(&mut self.prof_edge_r, n, 0.0);
        grow(&mut self.prof_edge_c, n, 0.0);
        self.prof_bytes[..n].fill(0.0);
        self.prof_edge_r[..n].fill(0.0);
        self.prof_edge_c[..n].fill(0.0);
        self.prof_seen.reset(dag.n_files());
        for (k, &t) in chain.iter().enumerate() {
            self.pos[t.index()] = k;
        }
        let mut k_bytes = 0.0f64;
        let mut ok = true;
        'classify: for (q, &t) in chain.iter().enumerate() {
            for &f in dag.output_files(t) {
                // In-chain producer at position q: classify its
                // consumer set.
                let mut in_count = 0usize;
                let mut in_pos = 0usize;
                let mut out_count = 0usize;
                for &v in dag.consumers(f) {
                    let pv = self.pos[v.index()];
                    if pv == usize::MAX {
                        out_count += 1;
                    } else {
                        in_count += 1;
                        in_pos = pv;
                    }
                }
                let adjacent_only = in_count == 1 && in_pos == q + 1;
                let size = dag.file(f).size;
                if out_count > 0 {
                    // Checkpointed whenever q is inside the segment.
                    self.prof_bytes[q] += size;
                    if in_count > 0 {
                        if !adjacent_only {
                            ok = false;
                            break 'classify;
                        }
                        self.prof_edge_r[q + 1] += size;
                    }
                } else if in_count > 0 {
                    if !adjacent_only {
                        ok = false;
                        break 'classify;
                    }
                    // Read iff the segment starts at q + 1; checkpointed
                    // iff the segment ends at q.
                    self.prof_edge_r[q + 1] += size;
                    self.prof_edge_c[q] += size;
                }
                // A file nobody consumes is never read nor checkpointed.
            }
            for &(u, f) in dag.preds(t) {
                if self.pos[u.index()] != usize::MAX {
                    continue;
                }
                if !self.classify_external(dag, f, n, &mut k_bytes) {
                    ok = false;
                    break 'classify;
                }
            }
            for &f in dag.input_files(t) {
                if dag
                    .producer(f)
                    .is_some_and(|u| self.pos[u.index()] != usize::MAX)
                {
                    continue;
                }
                if !self.classify_external(dag, f, n, &mut k_bytes) {
                    ok = false;
                    break 'classify;
                }
            }
        }
        if ok {
            let bw = ctx.bandwidth;
            let mut wsum = 0.0f64;
            let mut bytes = 0.0f64;
            for (j, &t) in chain.iter().enumerate() {
                self.prof_b[j] = wsum + (bytes - self.prof_edge_r[j]) / bw;
                wsum += dag.weight(t);
                bytes += self.prof_bytes[j];
                self.prof_a[j] = wsum + (bytes + self.prof_edge_c[j] + k_bytes) / bw;
            }
        }
        for &t in chain {
            self.pos[t.index()] = usize::MAX;
        }
        ok
    }

    /// Classifies one externally produced (or workflow-input) file for
    /// [`DpScratch::fill_additive_profile`]; returns `false` when its
    /// consumption pattern breaks additivity.
    fn classify_external(&mut self, dag: &Dag, f: FileId, n: usize, k_bytes: &mut f64) -> bool {
        if !self.prof_seen.insert(f.index()) {
            return true;
        }
        let mut in_count = 0usize;
        let mut in_pos = 0usize;
        for &v in dag.consumers(f) {
            let pv = self.pos[v.index()];
            if pv != usize::MAX {
                in_count += 1;
                in_pos = pv;
            }
        }
        let size = dag.file(f).size;
        if in_count == n {
            // Every segment contains a consumer: a constant read (the
            // fork-join case — all width tasks load the entry's output).
            *k_bytes += size;
            true
        } else if in_count == 1 {
            self.prof_bytes[in_pos] += size;
            true
        } else {
            false
        }
    }

    /// Fills the dense `base(i, j)` table for `chain` with the
    /// incremental `O(n·(E+n))` sweep: for each start `i`, extend `j`
    /// rightward maintaining R/W/C with per-file counters. Bit-identical
    /// arithmetic to the historical per-call `SegmentTable`; only the
    /// buffer lifetimes changed.
    fn fill_segment_bases(&mut self, ctx: &CostCtx<'_>, chain: &[TaskId]) {
        let dag = ctx.dag;
        let n = chain.len();
        let nf = dag.n_files();
        grow(&mut self.pos, dag.n_tasks(), usize::MAX);
        grow(&mut self.base, n * n, 0.0);
        grow(&mut self.stamp, nf, 0);
        grow(&mut self.read_stamp, nf, 0);
        grow(&mut self.outside_consumers, nf, 0);
        // Stamps are compared against `mark0 + i`; advancing the mark
        // base by `n` per fill is an O(1) clear of both stamp arrays.
        if self.next_mark > u64::MAX - (n as u64 + 1) {
            self.stamp.fill(0);
            self.read_stamp.fill(0);
            self.next_mark = 1;
        }
        let mark0 = self.next_mark.max(1);
        self.next_mark = mark0 + n as u64;
        for (k, &t) in chain.iter().enumerate() {
            self.pos[t.index()] = k;
        }
        let pos = &self.pos;
        let (stamp, read_stamp) = (&mut self.stamp, &mut self.read_stamp);
        let outside_consumers = &mut self.outside_consumers;
        for i in 0..n {
            let mark = mark0 + i as u64;
            let mut r_bytes = 0.0f64;
            let mut w = 0.0f64;
            let mut c_bytes = 0.0f64;
            for (j, &t) in chain.iter().enumerate().skip(i) {
                w += dag.weight(t);
                // External inputs: producer outside [i..=j]. Producers
                // precede consumers, so "outside" is fixed for fixed i.
                for &(u, f) in dag.preds(t) {
                    let fp = f.index();
                    let u_inside = pos[u.index()] != usize::MAX && pos[u.index()] >= i;
                    if u_inside {
                        // A producer inside the segment: this consumer
                        // leaves the file's outside-consumer set.
                        if stamp[fp] == mark && outside_consumers[fp] > 0 {
                            outside_consumers[fp] -= 1;
                            if outside_consumers[fp] == 0 {
                                c_bytes -= dag.file(f).size;
                            }
                        }
                    } else if read_stamp[fp] != mark {
                        read_stamp[fp] = mark;
                        r_bytes += dag.file(f).size;
                    }
                }
                // Workflow inputs and transitive reads (GSPG support).
                for &f in dag.input_files(t) {
                    let fp = f.index();
                    let u_inside = dag
                        .producer(f)
                        .is_some_and(|u| pos[u.index()] != usize::MAX && pos[u.index()] >= i);
                    if u_inside {
                        if stamp[fp] == mark && outside_consumers[fp] > 0 {
                            outside_consumers[fp] -= 1;
                            if outside_consumers[fp] == 0 {
                                c_bytes -= dag.file(f).size;
                            }
                        }
                    } else if read_stamp[fp] != mark {
                        read_stamp[fp] = mark;
                        r_bytes += dag.file(f).size;
                    }
                }
                // Outputs: initially every consumer is outside (consumers
                // are topologically after the producer).
                for &f in dag.output_files(t) {
                    let fp = f.index();
                    let consumers = dag.consumers(f).len();
                    stamp[fp] = mark;
                    outside_consumers[fp] = consumers;
                    if consumers > 0 {
                        c_bytes += dag.file(f).size;
                    }
                }
                self.base[i * n + j] = (r_bytes + c_bytes) / ctx.bandwidth + w;
            }
        }
        // Restore the position map for the next chain.
        for &t in chain {
            self.pos[t.index()] = usize::MAX;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspg::{Mspg, Workflow};

    /// A chain of n unit tasks, each with a 1-byte output consumed by the
    /// next (plus a final dangling output with no consumer).
    fn unit_chain(n: usize, out_bytes: f64) -> (Workflow, Vec<TaskId>) {
        let mut dag = Dag::new();
        let k = dag.add_kind("t");
        let ids: Vec<TaskId> = (0..n)
            .map(|i| dag.add_task_with_output(&format!("t{i}"), k, 1.0, out_bytes))
            .collect();
        let root = Mspg::chain(ids.iter().copied()).unwrap();
        let w = Workflow::new(dag, root);
        (w, ids)
    }

    /// Brute-force optimum: enumerate all checkpoint subsets (the last
    /// position is forced) and minimize the sum of segment expected times.
    fn brute_force(ctx: &CostCtx<'_>, chain: &[TaskId]) -> (f64, Vec<bool>) {
        let n = chain.len();
        assert!(n <= 16);
        let mut best = f64::INFINITY;
        let mut best_mask = vec![false; n];
        for mask in 0u32..(1 << (n - 1)) {
            let mut ck = vec![false; n];
            for (b, flag) in ck.iter_mut().enumerate().take(n - 1) {
                *flag = mask >> b & 1 == 1;
            }
            ck[n - 1] = true;
            let mut total = 0.0;
            let mut lo = 0usize;
            for (hi, &flag) in ck.iter().enumerate() {
                if flag {
                    let cost = segment_cost(ctx, chain, lo, hi);
                    total += ctx.expected_segment_time(cost.base());
                    lo = hi + 1;
                }
            }
            if total < best {
                best = total;
                best_mask = ck;
            }
        }
        (best, best_mask)
    }

    #[test]
    fn dp_matches_brute_force_on_chains() {
        for n in [1usize, 2, 3, 5, 8] {
            for lambda in [1e-4, 1e-2, 0.1] {
                let (w, ids) = unit_chain(n, 5.0);
                let ctx = CostCtx::exponential(&w.dag, lambda, 10.0);
                let dp = optimal_checkpoints(&ctx, &ids);
                let (bf_time, _) = brute_force(&ctx, &ids);
                assert!(
                    (dp.expected_time - bf_time).abs() < 1e-9,
                    "n={n} λ={lambda}: dp {} vs bf {bf_time}",
                    dp.expected_time
                );
            }
        }
    }

    #[test]
    fn dp_matches_brute_force_on_linearized_fork_join() {
        let w = pegasus::generic::fork_join(2, 4, 3);
        let sched = crate::allocate::allocate(&w, 1, &crate::allocate::AllocateConfig::default());
        for lambda in [1e-3, 0.05] {
            let ctx = CostCtx::exponential(&w.dag, lambda, 1e6);
            for sc in &sched.superchains {
                if sc.tasks.len() > 14 {
                    continue;
                }
                let dp = optimal_checkpoints(&ctx, &sc.tasks);
                let (bf_time, _) = brute_force(&ctx, &sc.tasks);
                assert!(
                    (dp.expected_time - bf_time).abs() < 1e-9,
                    "λ={lambda}: dp {} vs bf {bf_time}",
                    dp.expected_time
                );
            }
        }
    }

    #[test]
    fn free_checkpoints_mean_checkpoint_everywhere() {
        // Zero-size files: splitting is free and λ > 0 makes smaller
        // segments strictly better.
        let (w, ids) = unit_chain(6, 0.0);
        let ctx = CostCtx::exponential(&w.dag, 0.1, 1.0);
        let dp = optimal_checkpoints(&ctx, &ids);
        assert!(dp.ckpt_after.iter().all(|&c| c), "{:?}", dp.ckpt_after);
    }

    #[test]
    fn expensive_checkpoints_and_rare_failures_mean_exit_only() {
        // Huge files, tiny λ: any interior checkpoint costs more than the
        // re-execution risk it saves.
        let (w, ids) = unit_chain(6, 1e9);
        let ctx = CostCtx::exponential(&w.dag, 1e-9, 1e6);
        let dp = optimal_checkpoints(&ctx, &ids);
        let interior: usize = dp.ckpt_after[..5].iter().filter(|&&c| c).count();
        assert_eq!(interior, 0, "{:?}", dp.ckpt_after);
        assert!(dp.ckpt_after[5]);
    }

    #[test]
    fn last_task_always_checkpointed() {
        for lambda in [0.0, 1e-3, 0.5] {
            let (w, ids) = unit_chain(4, 3.0);
            let ctx = CostCtx::exponential(&w.dag, lambda, 1.0);
            let dp = optimal_checkpoints(&ctx, &ids);
            assert!(dp.ckpt_after[3]);
        }
    }

    #[test]
    fn segment_cost_dedups_shared_files() {
        // Figure 4 shape: T1 → T2 → {T3, T4}; T3 → T5; T2 → T4… build the
        // example where one file feeds two tasks in the same segment.
        let mut dag = Dag::new();
        let k = dag.add_kind("t");
        let a = dag.add_task_with_output("a", k, 1.0, 100.0);
        let b = dag.add_task("b", k, 1.0);
        let c = dag.add_task("c", k, 1.0);
        let fa = dag.primary_output(a).unwrap();
        dag.add_edge(b, fa);
        dag.add_edge(c, fa);
        let chain = [b, c];
        let ctx = CostCtx::exponential(&dag, 0.0, 1.0);
        let cost = segment_cost(&ctx, &chain, 0, 1);
        // fa read once, not twice.
        assert_eq!(cost.r, 100.0);
        assert_eq!(cost.c, 0.0);
        assert_eq!(cost.w, 2.0);
    }

    #[test]
    fn extended_checkpoint_covers_live_outputs() {
        // Figure 4 of the paper: T1 → T2 → T3 → T4 → T5 → T6 linearized;
        // extra edges T2→T4 (via its file) and T3→T5. A checkpoint after
        // T4 must also save T3's output (needed by T5).
        let mut dag = Dag::new();
        let k = dag.add_kind("t");
        let t: Vec<TaskId> = (1..=6)
            .map(|i| dag.add_task_with_output(&format!("T{i}"), k, 1.0, 10.0))
            .collect();
        let edges = [(0, 1), (1, 2), (1, 3), (2, 4), (3, 4), (4, 5)];
        for &(u, v) in &edges {
            let file = dag.primary_output(t[u]).unwrap();
            dag.add_edge(t[v], file);
        }
        let ctx = CostCtx::exponential(&dag, 0.0, 1.0);
        // Segment [T3, T4] (indices 2..=3): checkpoint must save T3's
        // output (needed by T5) and T4's output (needed by T5): C = 20.
        let cost = segment_cost(&ctx, &t, 2, 3);
        assert_eq!(cost.c, 20.0);
        // It reads T2's output only (T2 outside), deduplicated: R = 10.
        assert_eq!(cost.r, 10.0);
    }

    #[test]
    fn incremental_table_matches_direct_costs() {
        let w = pegasus::generate(pegasus::WorkflowClass::Montage, 60, 5);
        let sched = crate::allocate::allocate(&w, 3, &crate::allocate::AllocateConfig::default());
        let ctx = CostCtx::exponential(&w.dag, 1e-4, 1e7);
        // One scratch across all superchains: reuse must not leak state
        // between chains (stamps, positions, stale base cells).
        let mut scratch = DpScratch::new();
        for sc in &sched.superchains {
            scratch.fill_segment_bases(&ctx, &sc.tasks);
            let n = sc.tasks.len();
            for i in 0..n {
                for j in i..n {
                    let direct = segment_cost(&ctx, &sc.tasks, i, j);
                    let got = scratch.base[i * n + j];
                    assert!(
                        (got - direct.base()).abs() < 1e-9 * direct.base().max(1.0),
                        "segment [{i},{j}]: table {got} vs direct {}",
                        direct.base()
                    );
                }
            }
        }
    }

    #[test]
    fn reused_scratch_is_bitwise_identical_to_fresh() {
        let w = pegasus::generate(pegasus::WorkflowClass::Genome, 120, 9);
        let sched = crate::allocate::allocate(&w, 4, &crate::allocate::AllocateConfig::default());
        let ctx = CostCtx::exponential(&w.dag, 3e-4, 1e7);
        let mut scratch = DpScratch::new();
        // Two passes over all superchains with one scratch (the second
        // pass hits fully-grown, stale-valued buffers) against fresh
        // per-chain allocation.
        for _ in 0..2 {
            for sc in &sched.superchains {
                let et = optimal_checkpoints_reusing(&ctx, &sc.tasks, &mut scratch);
                let fresh = optimal_checkpoints(&ctx, &sc.tasks);
                assert_eq!(et.to_bits(), fresh.expected_time.to_bits());
                assert_eq!(scratch.ckpt_after(), &fresh.ckpt_after[..]);
            }
        }
    }

    #[test]
    fn zero_failure_rate_still_checkpoints_last_only() {
        // λ = 0: interior checkpoints only add cost.
        let (w, ids) = unit_chain(5, 10.0);
        let ctx = CostCtx::exponential(&w.dag, 0.0, 1.0);
        let dp = optimal_checkpoints(&ctx, &ids);
        let interior: usize = dp.ckpt_after[..4].iter().filter(|&&c| c).count();
        assert_eq!(interior, 0);
    }

    #[test]
    fn empty_chain_is_a_documented_skip() {
        let (w, _) = unit_chain(3, 1.0);
        let ctx = CostCtx::exponential(&w.dag, 1e-3, 10.0);
        let choice = optimal_checkpoints(&ctx, &[]);
        assert_eq!(choice.expected_time, 0.0);
        assert!(choice.ckpt_after.is_empty());
        let mut scratch = DpScratch::new();
        assert_eq!(optimal_checkpoints_reusing(&ctx, &[], &mut scratch), 0.0);
        assert!(scratch.ckpt_after().is_empty());
        assert!(!scratch.last_run_used_kernel());
    }

    #[test]
    fn kernel_is_bit_identical_to_additive_reference_on_chains() {
        // The kernel and the additive-probe quadratic reference share
        // every arithmetic expression, so agreement is exact.
        for n in [1usize, 2, 3, 7, 40, 130] {
            for lambda in [0.0, 1e-4, 1e-2, 0.1] {
                let (w, ids) = unit_chain(n, 5.0);
                let ctx = CostCtx::exponential(&w.dag, lambda, 10.0);
                let mut sk = DpScratch::new();
                let kt = optimal_checkpoints_kernel_forced(&ctx, &ids, &mut sk)
                    .expect("unit chains are kernel-eligible");
                assert!(sk.last_run_used_kernel());
                let kp: Vec<bool> = sk.ckpt_after().to_vec();
                let mut sr = DpScratch::new();
                let rt = optimal_checkpoints_additive_reference(&ctx, &ids, &mut sr)
                    .expect("unit chains decompose additively");
                assert_eq!(kt.to_bits(), rt.to_bits(), "n={n} λ={lambda}");
                assert_eq!(kp, sr.ckpt_after(), "n={n} λ={lambda}");
            }
        }
    }

    #[test]
    fn kernel_matches_exact_quadratic_on_chains() {
        // Against the historical sweep-based DP the agreement is up to
        // floating-point association (the sweep accumulates bytes in
        // segment order, the profile by prefix subtraction).
        for n in [2usize, 9, 60, 200] {
            for lambda in [1e-4, 1e-2] {
                let (w, ids) = unit_chain(n, 5.0);
                let ctx = CostCtx::exponential(&w.dag, lambda, 10.0);
                let mut sk = DpScratch::new();
                let kt = optimal_checkpoints_kernel_forced(&ctx, &ids, &mut sk).unwrap();
                let kp: Vec<bool> = sk.ckpt_after().to_vec();
                let mut sq = DpScratch::new();
                let qt = optimal_checkpoints_exact_quadratic(&ctx, &ids, &mut sq);
                assert!(
                    (kt - qt).abs() <= 1e-9 * qt.max(1.0),
                    "n={n} λ={lambda}: kernel {kt} vs quadratic {qt}"
                );
                assert_eq!(kp, sq.ckpt_after(), "n={n} λ={lambda}");
            }
        }
    }

    #[test]
    fn long_chains_engage_the_kernel_and_match_the_quadratic_dp() {
        let (w, ids) = unit_chain(600, 5.0);
        let ctx = CostCtx::exponential(&w.dag, 1e-2, 10.0);
        let mut scratch = DpScratch::new();
        let t = optimal_checkpoints_reusing(&ctx, &ids, &mut scratch);
        assert!(
            scratch.last_run_used_kernel(),
            "600-task unit chain must engage the kernel"
        );
        let kp: Vec<bool> = scratch.ckpt_after().to_vec();
        let mut sq = DpScratch::new();
        let qt = optimal_checkpoints_exact_quadratic(&ctx, &ids, &mut sq);
        assert!((t - qt).abs() <= 1e-9 * qt, "kernel {t} vs quadratic {qt}");
        assert_eq!(kp, sq.ckpt_after());
        assert!(
            kp.iter().filter(|&&c| c).count() > 1,
            "expected interior checkpoints"
        );
    }

    #[test]
    fn short_chains_stay_on_the_exact_path() {
        let (w, ids) = unit_chain(100, 5.0);
        let ctx = CostCtx::exponential(&w.dag, 1e-2, 10.0);
        let mut scratch = DpScratch::new();
        optimal_checkpoints_reusing(&ctx, &ids, &mut scratch);
        assert!(!scratch.last_run_used_kernel());
    }

    #[test]
    fn kernel_gate_rejects_nonmonotone_profiles() {
        // Adjacent-edge reads larger than the task weight make B
        // decrease (B[1] − B[0] = w₀ − size/bw < 0): the once-crossing
        // argument is void, so the gate must fall back.
        let (w, ids) = unit_chain(8, 100.0);
        let ctx = CostCtx::exponential(&w.dag, 1e-2, 1.0);
        let mut scratch = DpScratch::new();
        assert!(optimal_checkpoints_kernel_forced(&ctx, &ids, &mut scratch).is_none());
    }

    #[test]
    fn kernel_gate_rejects_non_adjacent_consumers() {
        // A skip edge (t0's output also read by t2) breaks additivity:
        // the read activates only when t0 and t2 fall in different
        // segments, which depends on both ends.
        let mut dag = Dag::new();
        let k = dag.add_kind("t");
        let ids: Vec<TaskId> = (0..5)
            .map(|i| dag.add_task_with_output(&format!("t{i}"), k, 1.0, 2.0))
            .collect();
        let f0 = dag.primary_output(ids[0]).unwrap();
        let root = Mspg::chain(ids.iter().copied()).unwrap();
        let mut w = Workflow::new(dag, root);
        w.dag.add_transitive_read(ids[2], f0);
        let ctx = CostCtx::exponential(&w.dag, 1e-2, 10.0);
        let mut scratch = DpScratch::new();
        assert!(optimal_checkpoints_kernel_forced(&ctx, &ids, &mut scratch).is_none());
        // And the dispatch still agrees with the brute force.
        let dp = optimal_checkpoints(&ctx, &ids);
        let (bf_time, _) = brute_force(&ctx, &ids);
        assert!((dp.expected_time - bf_time).abs() < 1e-9);
    }

    #[test]
    fn kernel_gate_rejects_non_convex_models() {
        let (w, ids) = unit_chain(20, 5.0);
        for model in [
            FailureModel::weibull(0.7, 1e4),
            FailureModel::lognormal(8.0, 1.0),
        ] {
            let ctx = CostCtx::with_model(&w.dag, model, 10.0);
            let mut scratch = DpScratch::new();
            assert!(
                optimal_checkpoints_kernel_forced(&ctx, &ids, &mut scratch).is_none(),
                "{model:?} must not pass the convexity gate"
            );
        }
    }

    #[test]
    fn shared_entry_file_is_kernel_eligible_as_a_constant_read() {
        // The fork-join shape: every chain task reads the (external)
        // entry's output and writes a file consumed out-of-chain. The
        // shared read costs every segment the same → the K constant.
        let mut dag = Dag::new();
        let k = dag.add_kind("t");
        let entry = dag.add_task_with_output("entry", k, 1.0, 7.0);
        let entry_f = dag.primary_output(entry).unwrap();
        let width: Vec<TaskId> = (0..40)
            .map(|i| dag.add_task_with_output(&format!("w{i}"), k, 1.0, 3.0))
            .collect();
        let join = dag.add_task_with_output("join", k, 1.0, 1.0);
        for &t in &width {
            dag.add_edge(t, entry_f);
            let f = dag.primary_output(t).unwrap();
            dag.add_edge(join, f);
        }
        let ctx = CostCtx::exponential(&dag, 1e-2, 10.0);
        let mut sk = DpScratch::new();
        let kt = optimal_checkpoints_kernel_forced(&ctx, &width, &mut sk)
            .expect("width superchain with a shared entry read is kernel-eligible");
        let kp: Vec<bool> = sk.ckpt_after().to_vec();
        let mut sq = DpScratch::new();
        let qt = optimal_checkpoints_exact_quadratic(&ctx, &width, &mut sq);
        assert!(
            (kt - qt).abs() <= 1e-9 * qt,
            "kernel {kt} vs quadratic {qt}"
        );
        assert_eq!(kp, sq.ckpt_after());
    }
}
