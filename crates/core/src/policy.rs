//! Pluggable checkpoint-placement policies.
//!
//! The paper compares exactly four placements (CkptAll / CkptNone /
//! CkptSome / ExitOnly), which the stack used to hard-wire as a closed
//! enum. [`CheckpointPolicy`] opens that axis: a policy maps one
//! superchain (plus the cost context — workflow, failure model,
//! bandwidth, renewal curve) to per-task checkpoint decisions, and the
//! whole pipeline (`Pipeline::{plan,segment_graph,assess}`, `coalesce`,
//! the simulators, the experiment harness) consumes the resulting
//! [`CheckpointPlan`] without knowing which policy produced it.
//!
//! Builtin policies:
//!
//! * [`CkptAllPolicy`] / [`ExitOnlyPolicy`] / [`DpOptimalPolicy`] — the
//!   paper's placements, re-expressed as policies. `Strategy` routes
//!   through these (see `Strategy::policy`), with unchanged float
//!   arithmetic, so every legacy experiment output is byte-identical.
//! * [`DalyPeriodic`] — classical Young/Daly periodic checkpointing
//!   (arXiv:1802.07455's restart asymptotics): checkpoint every
//!   `sqrt(2·C̄/λ)` seconds of accumulated work, generalized to
//!   non-memoryless models through the renewal solve's *effective rate*
//!   (the `λ` an exponential model would need to show the same
//!   first-order overhead on the candidate span).
//! * [`RiskThreshold`] — the adaptive-scheme analogue
//!   (arXiv:0711.3949): checkpoint as soon as the accumulated
//!   uncheckpointed span's failure probability `F(base)` crosses a
//!   bound.
//! * [`GreedyCrossover`] — the cheap structural heuristic: checkpoint
//!   only tasks feeding crossover dependencies (successors outside the
//!   superchain), i.e. exactly the data another processor waits for.
//!
//! ## Determinism contract
//!
//! `place` must be a pure function of `(policy parameters, ctx, chain)`
//! — no ambient randomness, no query-adaptive state — so that plans are
//! reproducible and the experiment engine's byte-identity guarantee
//! extends to the policy axis. Scratch buffers ([`PolicyScratch`])
//! carry no information between calls, only capacity.

use mspg::TaskId;

use crate::checkpoint_dp::{
    optimal_checkpoints_reusing, segment_cost_reusing, CostCtx, DpScratch, IdSet,
    SegmentCostScratch,
};
use crate::coalesce::CheckpointPlan;
use crate::failure_model::FailureModel;
use crate::schedule::Schedule;

/// A checkpoint-placement policy: decides, per superchain, after which
/// tasks to take a checkpoint.
pub trait CheckpointPolicy: Sync {
    /// Display name (stable — used as the CSV label of the E10
    /// `strategies` experiment).
    fn name(&self) -> &'static str;

    /// Fills the checkpoint decisions for one superchain: `out[k]`
    /// means "checkpoint after `chain[k]`". `out` arrives all-`false`
    /// with `out.len() == chain.len()`; the policy **must** set the
    /// final position (superchain exits are always checkpointed — the
    /// paper's crossover-dependency removal, §IV-B). `scratch` carries
    /// reusable capacity only, never data.
    fn place(
        &self,
        ctx: &CostCtx<'_>,
        chain: &[TaskId],
        scratch: &mut PolicyScratch,
        out: &mut [bool],
    );
}

/// Reusable buffers threaded through a planning pass: one scratch
/// amortizes the DP tables, segment-cost sweeps, and membership stamps
/// across every superchain of a plan (and across plans).
#[derive(Default)]
pub struct PolicyScratch {
    /// The checkpoint DP's tables ([`DpOptimalPolicy`]).
    pub dp: DpScratch,
    /// Segment-cost sweep buffers (period / risk / expected-time
    /// computations).
    pub seg: SegmentCostScratch,
    /// Superchain-membership stamps ([`GreedyCrossover`]).
    member: IdSet,
    /// Per-chain decision buffer of [`plan_with_policy`].
    buf: Vec<bool>,
}

impl PolicyScratch {
    /// An empty scratch; buffers grow to the workload's high-water mark
    /// on use and never shrink.
    pub fn new() -> Self {
        PolicyScratch::default()
    }
}

/// Runs `policy` over every superchain of `schedule` and assembles the
/// per-task [`CheckpointPlan`] the rest of the stack consumes.
///
/// # Panics
/// Panics if the policy violates its contract and leaves a superchain
/// without a final checkpoint.
pub fn plan_with_policy(
    ctx: &CostCtx<'_>,
    schedule: &Schedule,
    policy: &dyn CheckpointPolicy,
    scratch: &mut PolicyScratch,
) -> CheckpointPlan {
    let mut ckpt_after = vec![false; ctx.dag.n_tasks()];
    let mut buf = std::mem::take(&mut scratch.buf);
    for sc in &schedule.superchains {
        // Per-superchain cancellation point; the DP inside `place` also
        // polls per row, so a deadline aborts within one row either way.
        ctx.check_budget();
        let n = sc.tasks.len();
        buf.clear();
        buf.resize(n, false);
        policy.place(ctx, &sc.tasks, scratch, &mut buf);
        assert!(
            n == 0 || buf[n - 1],
            "policy {} left a superchain without a final checkpoint",
            policy.name()
        );
        for (k, &t) in sc.tasks.iter().enumerate() {
            ckpt_after[t.index()] = buf[k];
        }
    }
    scratch.buf = buf;
    CheckpointPlan { ckpt_after }
}

/// [`plan_with_policy`] with a thread budget: superchains are placed on
/// a deterministic work-queue (`seedmix::parallel_slots_with` — workers
/// claim chain indices off a shared counter and every placement lands
/// in its canonical slot), then scattered into the per-task plan in
/// canonical superchain order. Because [`CheckpointPolicy::place`] is a
/// pure function of `(ctx, chain)` (the trait's purity contract), the
/// plan is **bit-identical for every thread budget**; `threads` is a
/// pure speed knob. `threads ≤ 1` (or a schedule with at most one
/// superchain) runs the exact serial loop of [`plan_with_policy`] on
/// the caller's scratch, spawning nothing.
///
/// # Panics
/// Panics if the policy violates its contract and leaves a superchain
/// without a final checkpoint.
pub fn plan_with_policy_threads(
    ctx: &CostCtx<'_>,
    schedule: &Schedule,
    policy: &dyn CheckpointPolicy,
    scratch: &mut PolicyScratch,
    threads: usize,
) -> CheckpointPlan {
    let n_chains = schedule.superchains.len();
    if n_chains <= 1 || seedmix::resolve_threads(threads) <= 1 {
        return plan_with_policy(ctx, schedule, policy, scratch);
    }
    let placements: Vec<Vec<bool>> = seedmix::parallel_slots_with(
        n_chains,
        threads,
        1,
        PolicyScratch::new,
        |worker_scratch, i| {
            // Workers poll per claimed chain; `parallel_slots_with`
            // re-raises the `Cancelled` unwind with its payload intact.
            ctx.check_budget();
            let sc = &schedule.superchains[i];
            let mut buf = vec![false; sc.tasks.len()];
            policy.place(ctx, &sc.tasks, worker_scratch, &mut buf);
            buf
        },
    );
    let mut ckpt_after = vec![false; ctx.dag.n_tasks()];
    for (sc, buf) in schedule.superchains.iter().zip(&placements) {
        let n = sc.tasks.len();
        assert!(
            n == 0 || buf[n - 1],
            "policy {} left a superchain without a final checkpoint",
            policy.name()
        );
        for (k, &t) in sc.tasks.iter().enumerate() {
            ckpt_after[t.index()] = buf[k];
        }
    }
    CheckpointPlan { ckpt_after }
}

/// Total expected execution time of one superchain under a placement:
/// the sum of expected segment times over the checkpoint-delimited
/// segments — the objective the DP minimizes, usable to rank any two
/// placements on the same chain.
///
/// # Panics
/// Panics if the placement does not end in a checkpoint.
pub fn placement_expected_time(
    ctx: &CostCtx<'_>,
    chain: &[TaskId],
    ckpt_after: &[bool],
    scratch: &mut SegmentCostScratch,
) -> f64 {
    assert_eq!(chain.len(), ckpt_after.len());
    assert!(
        ckpt_after.last().copied().unwrap_or(true),
        "placement must end in a checkpoint"
    );
    let mut total = 0.0;
    let mut lo = 0usize;
    for (hi, &ck) in ckpt_after.iter().enumerate() {
        if ck {
            let cost = segment_cost_reusing(ctx, chain, lo, hi, scratch);
            total += ctx.expected_segment_time(cost.base());
            lo = hi + 1;
        }
    }
    total
}

/// Checkpoint after every task (the paper's CkptAll baseline).
#[derive(Clone, Copy, Debug, Default)]
pub struct CkptAllPolicy;

impl CheckpointPolicy for CkptAllPolicy {
    fn name(&self) -> &'static str {
        "CkptAll"
    }

    fn place(
        &self,
        _ctx: &CostCtx<'_>,
        _chain: &[TaskId],
        _scratch: &mut PolicyScratch,
        out: &mut [bool],
    ) {
        out.fill(true);
    }
}

/// Checkpoint only superchain exits (the §II-C naive solution).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExitOnlyPolicy;

impl CheckpointPolicy for ExitOnlyPolicy {
    fn name(&self) -> &'static str {
        "ExitOnly"
    }

    fn place(
        &self,
        _ctx: &CostCtx<'_>,
        _chain: &[TaskId],
        _scratch: &mut PolicyScratch,
        out: &mut [bool],
    ) {
        if let Some(last) = out.last_mut() {
            *last = true;
        }
    }
}

/// The paper's contribution: the `O(n²)` dynamic program of Algorithm 2
/// (optimal under the first-order segment cost model).
#[derive(Clone, Copy, Debug, Default)]
pub struct DpOptimalPolicy;

impl CheckpointPolicy for DpOptimalPolicy {
    fn name(&self) -> &'static str {
        "CkptSome"
    }

    fn place(
        &self,
        ctx: &CostCtx<'_>,
        chain: &[TaskId],
        scratch: &mut PolicyScratch,
        out: &mut [bool],
    ) {
        optimal_checkpoints_reusing(ctx, chain, &mut scratch.dp);
        out.copy_from_slice(scratch.dp.ckpt_after());
    }
}

/// Young/Daly periodic checkpointing: checkpoint once the accumulated
/// work since the last checkpoint reaches a fixed period.
///
/// With `period: None` the period is derived per superchain as
/// `sqrt(2·C̄/λ_eff)`, where `C̄` is the chain's mean per-task checkpoint
/// write time and `λ_eff` the model's *effective rate*: `λ` itself for
/// the exponential model, and otherwise the rate an exponential model
/// would need to reproduce the renewal solve's first-order overhead on
/// the candidate span, `λ_eff(b) = 2·(E[T(b)] − b)/b²` (answered from
/// the pipeline's [`crate::failure_model::RestartCurve`] when one is
/// attached), fixed-point iterated `period ↦ sqrt(2·C̄/λ_eff(period))` a
/// fixed number of rounds so the result stays a pure function of
/// `(model, chain)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct DalyPeriodic {
    /// Fixed work period in seconds, or `None` to derive the Young/Daly
    /// period from the failure model.
    pub period: Option<f64>,
}

/// Fixed-point rounds of the effective-rate iteration (deterministic).
const DALY_ITERS: usize = 8;

impl DalyPeriodic {
    /// Derive the period from the failure model (the default).
    pub fn auto() -> Self {
        DalyPeriodic { period: None }
    }

    /// Checkpoint every `period` seconds of accumulated work.
    ///
    /// # Panics
    /// Panics on a non-positive or NaN period (`f64::INFINITY` is valid
    /// and means "final checkpoint only").
    pub fn with_period(period: f64) -> Self {
        assert!(period > 0.0, "period must be positive, got {period}");
        DalyPeriodic {
            period: Some(period),
        }
    }

    /// The per-superchain Young/Daly period (see the type docs).
    /// `0` means "checkpoint after every task", `∞` "final only".
    fn derived_period(
        &self,
        ctx: &CostCtx<'_>,
        chain: &[TaskId],
        scratch: &mut SegmentCostScratch,
    ) -> f64 {
        if ctx.model.never_fails() {
            return f64::INFINITY;
        }
        let n = chain.len();
        // Mean per-task checkpoint write time: the cost a checkpoint
        // would add at each position, averaged over the chain.
        let mut c_sum = 0.0;
        for k in 0..n {
            c_sum += segment_cost_reusing(ctx, chain, k, k, scratch).c;
        }
        let c_bar = c_sum / n as f64;
        if c_bar <= 0.0 {
            // Free checkpoints: any failure risk makes splitting a win.
            return 0.0;
        }
        if let FailureModel::Exponential { lambda } = ctx.model {
            // λ_eff is span-independent: the closed Young/Daly period.
            return (2.0 * c_bar / lambda).sqrt();
        }
        // Non-memoryless: iterate the effective rate at the candidate
        // span, seeded with the whole-chain span (the largest segment a
        // placement could produce). For an increasing (wear-out) hazard
        // `period ↦ sqrt(2·C̄/λ_eff(period))` is a *decreasing* map, so
        // the raw iteration oscillates between extremes; the
        // geometric-mean damping contracts it while staying a pure
        // function of `(model, chain)`.
        let span_hi = segment_cost_reusing(ctx, chain, 0, n - 1, scratch).base();
        if span_hi <= 0.0 {
            return f64::INFINITY;
        }
        let span_lo = span_hi * 1e-9;
        let mut b = span_hi;
        for _ in 0..DALY_ITERS {
            let next = match daly_candidate(ctx, c_bar, b) {
                // A span the model essentially never completes: probe
                // far shorter spans.
                None => span_lo,
                Some(period) => period.clamp(span_lo, span_hi),
            };
            b = (b * next).sqrt();
        }
        // A still-hopeless converged span (None) means checkpoint as
        // eagerly as possible.
        daly_candidate(ctx, c_bar, b).unwrap_or(0.0)
    }
}

/// One step of the Young/Daly fixed point: the period
/// `sqrt(2·C̄/λ_eff(b))` implied by the effective rate at span `b`, or
/// `None` when the model essentially never completes a span of `b`
/// (`E[T(b)] = ∞`). A vanishing effective rate (no failure mass at this
/// span) yields `∞`.
fn daly_candidate(ctx: &CostCtx<'_>, c_bar: f64, b: f64) -> Option<f64> {
    let e = ctx.expected_segment_time(b);
    if !e.is_finite() {
        return None;
    }
    let lambda_eff = 2.0 * (e - b) / (b * b);
    if lambda_eff <= 0.0 {
        Some(f64::INFINITY)
    } else {
        Some((2.0 * c_bar / lambda_eff).sqrt())
    }
}

impl CheckpointPolicy for DalyPeriodic {
    fn name(&self) -> &'static str {
        "DalyPeriodic"
    }

    fn place(
        &self,
        ctx: &CostCtx<'_>,
        chain: &[TaskId],
        scratch: &mut PolicyScratch,
        out: &mut [bool],
    ) {
        debug_assert!(
            self.period.is_none_or(|p| p > 0.0),
            "period must be positive (use DalyPeriodic::with_period)"
        );
        let n = chain.len();
        if n == 0 {
            // plan_with_policy tolerates empty superchains; so do we.
            return;
        }
        let period = self
            .period
            .unwrap_or_else(|| self.derived_period(ctx, chain, &mut scratch.seg));
        let mut acc = 0.0;
        for (k, &t) in chain.iter().enumerate() {
            acc += ctx.dag.weight(t);
            if acc >= period {
                out[k] = true;
                acc = 0.0;
            }
        }
        out[n - 1] = true;
    }
}

/// Adaptive risk-bounded checkpointing: extend the current segment
/// until its failure probability `F(R + W + C)` would cross `max_risk`,
/// then checkpoint (the volunteer-computing adaptive-scheme analogue).
#[derive(Clone, Copy, Debug)]
pub struct RiskThreshold {
    /// Per-segment failure-probability bound, in `(0, 1)`.
    pub max_risk: f64,
}

impl RiskThreshold {
    /// A policy bounding each segment's failure probability by
    /// `max_risk`.
    ///
    /// # Panics
    /// Panics unless `max_risk ∈ (0, 1)`.
    pub fn new(max_risk: f64) -> Self {
        assert!(
            max_risk > 0.0 && max_risk < 1.0,
            "max_risk must be in (0, 1), got {max_risk}"
        );
        RiskThreshold { max_risk }
    }
}

impl Default for RiskThreshold {
    /// The default 10% bound: segments stay an order of magnitude away
    /// from certain re-execution while tolerating the occasional
    /// restart.
    fn default() -> Self {
        RiskThreshold::new(0.1)
    }
}

impl CheckpointPolicy for RiskThreshold {
    fn name(&self) -> &'static str {
        "RiskThreshold"
    }

    fn place(
        &self,
        ctx: &CostCtx<'_>,
        chain: &[TaskId],
        scratch: &mut PolicyScratch,
        out: &mut [bool],
    ) {
        debug_assert!(
            self.max_risk > 0.0 && self.max_risk < 1.0,
            "max_risk must be in (0, 1) (use RiskThreshold::new)"
        );
        let n = chain.len();
        if n == 0 {
            return;
        }
        let mut lo = 0usize;
        for (k, slot) in out.iter_mut().enumerate() {
            let base = segment_cost_reusing(ctx, chain, lo, k, &mut scratch.seg).base();
            if ctx.model.cdf(base) >= self.max_risk {
                *slot = true;
                lo = k + 1;
            }
        }
        out[n - 1] = true;
    }
}

/// The cheap structural heuristic: checkpoint exactly the tasks with a
/// successor outside the superchain (crossover dependencies — the data
/// another processor waits for), plus the mandatory final checkpoint.
/// Ignores costs and the failure model entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyCrossover;

impl CheckpointPolicy for GreedyCrossover {
    fn name(&self) -> &'static str {
        "GreedyCrossover"
    }

    fn place(
        &self,
        ctx: &CostCtx<'_>,
        chain: &[TaskId],
        scratch: &mut PolicyScratch,
        out: &mut [bool],
    ) {
        if chain.is_empty() {
            return;
        }
        let dag = ctx.dag;
        scratch.member.reset(dag.n_tasks());
        for &t in chain {
            scratch.member.insert(t.index());
        }
        for (k, &t) in chain.iter().enumerate() {
            if dag
                .succs(t)
                .iter()
                .any(|&(v, _)| !scratch.member.contains(v.index()))
            {
                out[k] = true;
            }
        }
        out[chain.len() - 1] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate::{allocate, AllocateConfig};
    use mspg::{Dag, Mspg, Workflow};

    /// A chain of n unit tasks, each with an `out_bytes` output consumed
    /// by the next task.
    fn unit_chain(n: usize, out_bytes: f64) -> (Workflow, Vec<TaskId>) {
        let mut dag = Dag::new();
        let k = dag.add_kind("t");
        let ids: Vec<TaskId> = (0..n)
            .map(|i| dag.add_task_with_output(&format!("t{i}"), k, 1.0, out_bytes))
            .collect();
        for w in ids.windows(2) {
            let f = dag.primary_output(w[0]).unwrap();
            dag.add_edge(w[1], f);
        }
        let root = Mspg::chain(ids.iter().copied()).unwrap();
        (Workflow::new(dag, root), ids)
    }

    fn run(policy: &dyn CheckpointPolicy, ctx: &CostCtx<'_>, chain: &[TaskId]) -> Vec<bool> {
        let mut scratch = PolicyScratch::new();
        let mut out = vec![false; chain.len()];
        policy.place(ctx, chain, &mut scratch, &mut out);
        out
    }

    #[test]
    fn builtin_legacy_policies_match_their_definitions() {
        let (w, ids) = unit_chain(6, 5.0);
        let ctx = CostCtx::exponential(&w.dag, 1e-3, 10.0);
        assert!(run(&CkptAllPolicy, &ctx, &ids).iter().all(|&c| c));
        let exit = run(&ExitOnlyPolicy, &ctx, &ids);
        assert_eq!(exit.iter().filter(|&&c| c).count(), 1);
        assert!(exit[5]);
        let dp = run(&DpOptimalPolicy, &ctx, &ids);
        let direct = crate::checkpoint_dp::optimal_checkpoints(&ctx, &ids);
        assert_eq!(dp, direct.ckpt_after);
    }

    #[test]
    fn daly_fixed_period_places_periodically() {
        let (w, ids) = unit_chain(10, 1.0);
        let ctx = CostCtx::exponential(&w.dag, 1e-3, 1e6);
        // Unit weights, period 3: checkpoints after tasks 2, 5, 8 and
        // the mandatory final one.
        let got = run(&DalyPeriodic::with_period(3.0), &ctx, &ids);
        let expect: Vec<bool> = (0..10).map(|k| k % 3 == 2 || k == 9).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn daly_auto_matches_young_daly_for_exponential() {
        // C̄ = 1 byte / 1 B/s... use out_bytes so c̄ = out/bw; interior
        // positions all checkpoint `out_bytes` (next task consumes it),
        // final output has no consumer → c = 0 there.
        let n = 40;
        let out_bytes = 50.0;
        let bw = 10.0;
        let lambda = 1e-3;
        let (w, ids) = unit_chain(n, out_bytes);
        let ctx = CostCtx::exponential(&w.dag, lambda, bw);
        let c_bar = (out_bytes / bw) * (n as f64 - 1.0) / n as f64;
        let period = (2.0 * c_bar / lambda).sqrt();
        let got = run(&DalyPeriodic::auto(), &ctx, &ids);
        let expect = run(&DalyPeriodic::with_period(period), &ctx, &ids);
        assert_eq!(got, expect);
    }

    #[test]
    fn daly_never_failing_checkpoints_final_only() {
        let (w, ids) = unit_chain(8, 5.0);
        let ctx = CostCtx::exponential(&w.dag, 0.0, 10.0);
        let got = run(&DalyPeriodic::auto(), &ctx, &ids);
        assert_eq!(got.iter().filter(|&&c| c).count(), 1);
        assert!(got[7]);
    }

    #[test]
    fn daly_free_checkpoints_go_everywhere() {
        let (w, ids) = unit_chain(8, 0.0);
        let ctx = CostCtx::exponential(&w.dag, 1e-3, 10.0);
        assert!(run(&DalyPeriodic::auto(), &ctx, &ids).iter().all(|&c| c));
    }

    #[test]
    fn daly_wearout_checkpoints_more_than_infant_mortality() {
        // Same calibrated pfail: an increasing hazard concentrates
        // failure mass on long spans, so the effective rate at the
        // candidate period is higher and the period shorter.
        let (w, ids) = unit_chain(60, 20.0);
        let bw = 10.0;
        let w_bar = w.dag.mean_weight();
        let wear = CostCtx::with_model(
            &w.dag,
            FailureModel::weibull_from_pfail(2.0, 0.01, w_bar),
            bw,
        );
        let infant = CostCtx::with_model(
            &w.dag,
            FailureModel::weibull_from_pfail(0.7, 0.01, w_bar),
            bw,
        );
        let n_wear = run(&DalyPeriodic::auto(), &wear, &ids)
            .iter()
            .filter(|&&c| c)
            .count();
        let n_infant = run(&DalyPeriodic::auto(), &infant, &ids)
            .iter()
            .filter(|&&c| c)
            .count();
        assert!(n_wear > n_infant, "wear-out {n_wear} vs infant {n_infant}");
    }

    #[test]
    fn daly_effective_rate_beats_memoryless_tuned_period_under_wearout() {
        // The ISSUE-5 claim: a Young/Daly period tuned with the
        // memoryless rate of the same calibrated pfail visibly loses
        // under wear-out — the increasing hazard makes its 3×-longer
        // segments restart far more than the exponential math predicts.
        let (w, ids) = unit_chain(60, 20.0);
        let bw = 10.0;
        let w_bar = w.dag.mean_weight();
        let pfail = 0.01;
        let ctx = CostCtx::with_model(
            &w.dag,
            FailureModel::weibull_from_pfail(2.0, pfail, w_bar),
            bw,
        );
        let lambda_memoryless = crate::pfail::lambda_from_pfail(pfail, w_bar);
        let c_bar = (20.0 / bw) * 59.0 / 60.0;
        let memoryless_period = (2.0 * c_bar / lambda_memoryless).sqrt();
        let auto = run(&DalyPeriodic::auto(), &ctx, &ids);
        let tuned = run(&DalyPeriodic::with_period(memoryless_period), &ctx, &ids);
        let mut scratch = SegmentCostScratch::new();
        let t_auto = placement_expected_time(&ctx, &ids, &auto, &mut scratch);
        let t_tuned = placement_expected_time(&ctx, &ids, &tuned, &mut scratch);
        assert!(
            t_auto * 1.05 < t_tuned,
            "effective-rate {t_auto} vs memoryless-tuned {t_tuned}"
        );
    }

    #[test]
    fn risk_threshold_bounds_segment_failure_probability() {
        let (w, ids) = unit_chain(30, 2.0);
        let lambda = 0.02;
        let ctx = CostCtx::exponential(&w.dag, lambda, 10.0);
        let bound = 0.25;
        let got = run(&RiskThreshold::new(bound), &ctx, &ids);
        assert!(got[29]);
        // Every segment *without* its closing task stays under the
        // bound (the closing task is what pushed it over).
        let mut scratch = SegmentCostScratch::new();
        let mut lo = 0usize;
        for (hi, &ck) in got.iter().enumerate() {
            if ck {
                if hi > lo {
                    let base = segment_cost_reusing(&ctx, &ids, lo, hi - 1, &mut scratch).base();
                    assert!(
                        ctx.model.cdf(base) < bound,
                        "segment [{lo},{}] already over the bound",
                        hi - 1
                    );
                }
                lo = hi + 1;
            }
        }
        // And the bound binds: interior checkpoints exist.
        assert!(got.iter().filter(|&&c| c).count() > 1);
    }

    #[test]
    fn risk_threshold_rare_failures_reduce_to_exit_only() {
        let (w, ids) = unit_chain(10, 2.0);
        let ctx = CostCtx::exponential(&w.dag, 1e-9, 10.0);
        let got = run(&RiskThreshold::default(), &ctx, &ids);
        assert_eq!(got, run(&ExitOnlyPolicy, &ctx, &ids));
    }

    #[test]
    fn greedy_crossover_checkpoints_exactly_crossing_tasks() {
        // a ⊳ (b ∥ c) ⊳ d scheduled on 2 procs: superchain [a] feeds b
        // and c (crossover to c's processor), [b] feeds d on the same
        // proc... build via allocate and check against succ membership.
        let w = pegasus::generic::fork_join(2, 3, 7);
        let sched = allocate(&w, 2, &AllocateConfig::default());
        let ctx = CostCtx::exponential(&w.dag, 1e-3, 1e6);
        let mut scratch = PolicyScratch::new();
        let plan = plan_with_policy(&ctx, &sched, &GreedyCrossover, &mut scratch);
        for sc in &sched.superchains {
            let member: Vec<bool> = {
                let mut m = vec![false; w.dag.n_tasks()];
                for &t in &sc.tasks {
                    m[t.index()] = true;
                }
                m
            };
            for (k, &t) in sc.tasks.iter().enumerate() {
                let crossing = w.dag.succs(t).iter().any(|&(v, _)| !member[v.index()]);
                let expect = crossing || k == sc.tasks.len() - 1;
                assert_eq!(plan.ckpt_after[t.index()], expect, "task {t}");
            }
        }
    }

    #[test]
    fn empty_superchains_are_tolerated() {
        // plan_with_policy's contract tolerates empty superchains
        // (`n == 0 || buf[n-1]`); every non-DP builtin must too.
        let (w, _) = unit_chain(3, 1.0);
        let ctx = CostCtx::exponential(&w.dag, 1e-3, 10.0);
        let mut scratch = PolicyScratch::new();
        let daly = DalyPeriodic::auto();
        let risk = RiskThreshold::default();
        let policies: [&dyn CheckpointPolicy; 5] = [
            &CkptAllPolicy,
            &ExitOnlyPolicy,
            &daly,
            &risk,
            &GreedyCrossover,
        ];
        for p in policies {
            let mut out: Vec<bool> = Vec::new();
            p.place(&ctx, &[], &mut scratch, &mut out);
            assert!(out.is_empty(), "{}", p.name());
        }
    }

    #[test]
    fn placement_expected_time_matches_dp_objective() {
        let (w, ids) = unit_chain(12, 5.0);
        let ctx = CostCtx::exponential(&w.dag, 1e-2, 10.0);
        let dp = crate::checkpoint_dp::optimal_checkpoints(&ctx, &ids);
        let mut scratch = SegmentCostScratch::new();
        let t = placement_expected_time(&ctx, &ids, &dp.ckpt_after, &mut scratch);
        assert!((t - dp.expected_time).abs() < 1e-9 * dp.expected_time);
    }

    #[test]
    #[should_panic(expected = "without a final checkpoint")]
    fn plan_with_policy_enforces_final_checkpoint() {
        struct Broken;
        impl CheckpointPolicy for Broken {
            fn name(&self) -> &'static str {
                "Broken"
            }
            fn place(&self, _: &CostCtx<'_>, _: &[TaskId], _: &mut PolicyScratch, _: &mut [bool]) {}
        }
        let (w, _) = unit_chain(3, 1.0);
        let sched = allocate(&w, 1, &AllocateConfig::default());
        let ctx = CostCtx::exponential(&w.dag, 1e-3, 10.0);
        plan_with_policy(&ctx, &sched, &Broken, &mut PolicyScratch::new());
    }
}
