//! End-to-end evaluation pipeline: schedule → checkpoint → expected
//! makespan, for all strategies of the paper — and, since the policy
//! subsystem, for any [`CheckpointPolicy`].

use mspg::Workflow;
use probdag::Evaluator;

use crate::allocate::{allocate, AllocateConfig};
use crate::checkpoint_dp::CostCtx;
use crate::coalesce::{CheckpointPlan, SegmentGraph};
use crate::failure_model::{FailureModel, RestartCurve};
use crate::platform::Platform;
use crate::policy::{
    CheckpointPolicy, CkptAllPolicy, DpOptimalPolicy, ExitOnlyPolicy, PolicyScratch,
};
use crate::schedule::Schedule;
use crate::stage;

/// The checkpointing strategies compared in §VI.
///
/// Since the policy subsystem this enum is a thin constructor over the
/// builtin [`CheckpointPolicy`] implementations ([`Strategy::policy`]);
/// it remains the stable axis of the legacy experiments (E1–E9).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Checkpoint every task's output (the production default).
    CkptAll,
    /// Checkpoint nothing; expected makespan estimated by Theorem 1.
    CkptNone,
    /// The paper's contribution: superchain scheduling + optimal DP
    /// checkpoint placement.
    CkptSome,
    /// Ablation (§II-C "naive solution"): checkpoint only superchain
    /// exits.
    ExitOnly,
}

impl Strategy {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::CkptAll => "CkptAll",
            Strategy::CkptNone => "CkptNone",
            Strategy::CkptSome => "CkptSome",
            Strategy::ExitOnly => "ExitOnly",
        }
    }

    /// The builtin placement policy this strategy routes through, or
    /// `None` for [`Strategy::CkptNone`] (which has no placement — it
    /// is assessed by Theorem 1 and simulated by the crossover-cascade
    /// executor).
    pub fn policy(self) -> Option<&'static dyn CheckpointPolicy> {
        static ALL: CkptAllPolicy = CkptAllPolicy;
        static DP: DpOptimalPolicy = DpOptimalPolicy;
        static EXIT: ExitOnlyPolicy = ExitOnlyPolicy;
        match self {
            Strategy::CkptAll => Some(&ALL),
            Strategy::CkptSome => Some(&DP),
            Strategy::ExitOnly => Some(&EXIT),
            Strategy::CkptNone => None,
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Theorem 1: estimated expected makespan of a no-checkpoint execution
/// with failure-free parallel time `w_par` on `n_procs` processors of
/// failure rate `lambda`:
/// `EM = (1 - pλW)·W + pλW·(3/2·W) = W·(1 + pλW/2)`.
pub fn theorem1(w_par: f64, n_procs: usize, lambda: f64) -> f64 {
    let q = n_procs as f64 * lambda * w_par;
    (1.0 - q) * w_par + q * 1.5 * w_par
}

/// Theorem 1 generalized to any failure model: the first-order failure
/// mass `λW` becomes the cumulative hazard `H(W) = -ln S(W)` of one
/// processor over the failure-free span (for the exponential model
/// `H(W) = λW` exactly, so this delegates to [`theorem1`] bit-for-bit).
pub fn theorem1_model(w_par: f64, n_procs: usize, model: &FailureModel) -> f64 {
    match *model {
        FailureModel::Exponential { lambda } => theorem1(w_par, n_procs, lambda),
        ref m => {
            let q = n_procs as f64 * m.cumulative_hazard(w_par);
            (1.0 - q) * w_par + q * 1.5 * w_par
        }
    }
}

/// Outcome of assessing one policy (or legacy strategy) on one
/// scheduled workflow.
#[derive(Clone, Debug)]
pub struct Assessment {
    /// Display name of the policy assessed (a [`Strategy::name`] for
    /// the legacy strategies).
    pub policy: &'static str,
    /// Estimated expected makespan (seconds).
    pub expected_makespan: f64,
    /// Number of checkpointed tasks (0 for CkptNone). Derived from the
    /// segment graph — every segment ends in exactly one checkpoint —
    /// so this always equals [`Assessment::n_segments`] for placement
    /// policies.
    pub n_checkpoints: usize,
    /// Number of coalesced segments (tasks for CkptAll; 0 for CkptNone).
    pub n_segments: usize,
    /// Files written to stable storage by the placement's checkpoints.
    pub ckpt_files: usize,
    /// Bytes those checkpoints write.
    pub ckpt_bytes: f64,
    /// Failure-free parallel time of the schedule *without* storage I/O.
    pub w_par: f64,
}

/// A scheduled workflow ready for strategy assessment.
///
/// Scheduling (the expensive, strategy-independent step) happens once in
/// [`Pipeline::new`]; each [`Pipeline::assess`] call then derives
/// checkpoint decisions and evaluates the expected makespan — exactly how
/// the paper compares the three strategies on a common schedule.
pub struct Pipeline<'a> {
    /// The workflow under evaluation.
    pub workflow: &'a Workflow,
    /// The platform (processor count, failure rate, storage bandwidth).
    pub platform: Platform,
    /// The superchain schedule produced by `Allocate`.
    pub schedule: Schedule,
    /// Cached renewal curve for non-memoryless platforms, built once per
    /// pipeline over the workflow's span range and threaded through
    /// every [`CostCtx`] this pipeline hands out (`None` for exponential
    /// or never-failing models). See `DESIGN.md` §7.
    curve: Option<RestartCurve>,
    /// Thread budget for per-superchain checkpoint placement (a pure
    /// speed knob — placements are bit-identical for every budget; see
    /// [`crate::policy::plan_with_policy_threads`]). Default 1 (serial).
    plan_threads: usize,
}

impl<'a> Pipeline<'a> {
    /// Schedules `workflow` on `platform` with `Allocate`.
    pub fn new(workflow: &'a Workflow, platform: Platform, cfg: &AllocateConfig) -> Self {
        let schedule = allocate(workflow, platform.n_procs, cfg);
        Pipeline {
            workflow,
            platform,
            schedule,
            curve: stage::curve_stage(&workflow.dag, &platform)
                .expect("Pipeline inputs are valid by construction"),
            plan_threads: 1,
        }
    }

    /// Builds a pipeline around a schedule computed elsewhere.
    ///
    /// `Allocate` is the expensive strategy-independent step, and for the
    /// structure-driven linearizers (`Structural`, `RandomTopo`) it does
    /// not read file sizes at all — so a schedule computed once per
    /// workflow instance can be re-used across every CCR rescaling of that
    /// instance (the experiment engine's schedule cache relies on this).
    ///
    /// # Panics
    /// Panics if `schedule` does not cover `workflow` on
    /// `platform.n_procs` processors (e.g. it was computed for a different
    /// instance or processor count).
    pub fn with_schedule(workflow: &'a Workflow, platform: Platform, schedule: Schedule) -> Self {
        assert_eq!(
            schedule.n_procs, platform.n_procs,
            "schedule was computed for a different processor count"
        );
        schedule
            .validate(&workflow.dag)
            .expect("schedule does not fit this workflow");
        Pipeline {
            workflow,
            platform,
            schedule,
            curve: stage::curve_stage(&workflow.dag, &platform)
                .expect("Pipeline inputs are valid by construction"),
            plan_threads: 1,
        }
    }

    /// Sets the thread budget for per-superchain checkpoint placement
    /// (0 = all cores, 1 = serial, the default). A pure speed knob:
    /// placements land in canonical superchain order and are
    /// bit-identical for every budget.
    pub fn with_plan_threads(mut self, threads: usize) -> Self {
        self.plan_threads = threads;
        self
    }

    /// The renewal curve backing this pipeline's cost paths, if any
    /// (`None` for memoryless or never-failing platforms).
    pub fn restart_curve(&self) -> Option<&RestartCurve> {
        self.curve.as_ref()
    }

    fn ctx(&self) -> CostCtx<'_> {
        CostCtx {
            dag: &self.workflow.dag,
            model: self.platform.model,
            bandwidth: self.platform.bandwidth,
            curve: self.curve.as_ref(),
            budget: None,
        }
    }

    /// The checkpoint plan a strategy induces on this schedule.
    ///
    /// # Panics
    /// Panics for [`Strategy::CkptNone`], which has no checkpoint plan —
    /// use [`Pipeline::assess`].
    pub fn plan(&self, strategy: Strategy) -> CheckpointPlan {
        let policy = strategy.policy().expect("CkptNone has no checkpoint plan");
        self.plan_policy(policy)
    }

    /// The checkpoint plan a placement policy induces on this schedule
    /// (one [`PolicyScratch`] threaded across every superchain: the DP
    /// tables and sweep buffers are allocated once at the largest chain
    /// and reused).
    pub fn plan_policy(&self, policy: &dyn CheckpointPolicy) -> CheckpointPlan {
        self.plan_policy_reusing(policy, &mut PolicyScratch::new())
    }

    /// [`Pipeline::plan_policy`] with caller-owned scratch buffers
    /// (steady-state loops over many plans amortize every allocation).
    pub fn plan_policy_reusing(
        &self,
        policy: &dyn CheckpointPolicy,
        scratch: &mut PolicyScratch,
    ) -> CheckpointPlan {
        // Pipeline is the documented unwrap funnel for the fallible
        // stage API: offline grids build their inputs by construction
        // and never arm fault injection, so stage errors here are bugs.
        stage::placement_stage(
            &self.ctx(),
            &self.schedule,
            policy,
            scratch,
            self.plan_threads,
        )
        .expect("Pipeline inputs are valid by construction")
    }

    /// The coalesced 2-state segment graph for a checkpointing strategy.
    pub fn segment_graph(&self, strategy: Strategy) -> SegmentGraph {
        let policy = strategy.policy().expect("CkptNone has no segment graph");
        self.segment_graph_policy(policy)
    }

    /// The coalesced 2-state segment graph for a placement policy.
    pub fn segment_graph_policy(&self, policy: &dyn CheckpointPolicy) -> SegmentGraph {
        let plan = self.plan_policy(policy);
        stage::segment_graph_stage(&self.ctx(), &self.schedule, &plan)
            .expect("Pipeline inputs are valid by construction")
    }

    /// Assesses a strategy with the given 2-state DAG evaluator
    /// (irrelevant for CkptNone, which uses the Theorem 1 closed form).
    pub fn assess(&self, strategy: Strategy, evaluator: &dyn Evaluator) -> Assessment {
        match strategy.policy() {
            None => {
                let w_par = self.schedule.failure_free_parallel_time(&self.workflow.dag);
                Assessment {
                    policy: strategy.name(),
                    expected_makespan: theorem1_model(
                        w_par,
                        self.platform.n_procs,
                        &self.platform.model,
                    ),
                    n_checkpoints: 0,
                    n_segments: 0,
                    ckpt_files: 0,
                    ckpt_bytes: 0.0,
                    w_par,
                }
            }
            Some(policy) => self.assess_policy(policy, evaluator),
        }
    }

    /// Assesses a placement policy: plan → coalesce → evaluate, with
    /// all placement statistics derived from the segment graph in one
    /// place.
    pub fn assess_policy(
        &self,
        policy: &dyn CheckpointPolicy,
        evaluator: &dyn Evaluator,
    ) -> Assessment {
        let sg = self.segment_graph_policy(policy);
        self.assess_graph(policy.name(), &sg, evaluator)
    }

    /// Assessment of an already-built segment graph — the shared path
    /// when one graph serves both an analytic column and a simulation
    /// column (see the validate/distributions/strategies scenarios).
    pub fn assess_graph(
        &self,
        policy: &'static str,
        sg: &SegmentGraph,
        evaluator: &dyn Evaluator,
    ) -> Assessment {
        let w_par = self.schedule.failure_free_parallel_time(&self.workflow.dag);
        let stats = sg.placement_stats(&self.workflow.dag);
        Assessment {
            policy,
            expected_makespan: stage::evaluate_stage(sg, evaluator)
                .expect("Pipeline inputs are valid by construction"),
            n_checkpoints: stats.segments,
            n_segments: stats.segments,
            ckpt_files: stats.ckpt_files,
            ckpt_bytes: stats.ckpt_bytes,
            w_par,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pfail::lambda_from_pfail;
    use pegasus::ccr::scale_to_ccr;
    use pegasus::{generate, WorkflowClass};
    use probdag::PathApprox;

    fn platform(w: &Workflow, n_procs: usize, pfail: f64, bw: f64) -> Platform {
        Platform::new(n_procs, lambda_from_pfail(pfail, w.dag.mean_weight()), bw)
    }

    #[test]
    fn theorem1_formula() {
        // q = pλW; EM = W(1 + q/2).
        let em = theorem1(100.0, 4, 1e-4);
        let q: f64 = 4.0 * 1e-4 * 100.0;
        assert!((em - 100.0 * (1.0 + q / 2.0)).abs() < 1e-9);
    }

    #[test]
    fn theorem1_zero_lambda_is_wpar() {
        assert_eq!(theorem1(123.0, 8, 0.0), 123.0);
    }

    #[test]
    fn theorem1_model_reduces_to_theorem1_for_exponential() {
        let m = FailureModel::exponential(1e-4);
        assert_eq!(
            theorem1_model(100.0, 4, &m).to_bits(),
            theorem1(100.0, 4, 1e-4).to_bits()
        );
    }

    #[test]
    fn theorem1_model_weibull_tracks_calibrated_hazard() {
        // Weibull k=1 calibrated to the same pfail has the same
        // cumulative hazard as the exponential, so Theorem 1 agrees (up
        // to the scale representation); k≠1 bends the estimate.
        let w_bar = 10.0;
        let exp = FailureModel::exponential_from_pfail(0.001, w_bar);
        let wei1 = FailureModel::weibull_from_pfail(1.0, 0.001, w_bar);
        let a = theorem1_model(200.0, 6, &exp);
        let b = theorem1_model(200.0, 6, &wei1);
        assert!((a - b).abs() < 1e-9 * a, "{a} vs {b}");
        let wearout = FailureModel::weibull_from_pfail(2.0, 0.001, w_bar);
        // Over a span 20× the mean weight, an increasing hazard has
        // accumulated much more failure mass.
        assert!(theorem1_model(200.0, 6, &wearout) > a);
    }

    #[test]
    fn non_memoryless_pipeline_end_to_end() {
        // The full pipeline accepts a Weibull platform: the DP runs on
        // the quadrature cost path and CkptSome still dominates CkptAll.
        let mut w = generate(WorkflowClass::Genome, 50, 5);
        let bw = 1e7;
        scale_to_ccr(&mut w, 0.01, bw);
        let model = FailureModel::weibull_from_pfail(0.7, 0.01, w.dag.mean_weight());
        let p = Platform::with_model(5, model, bw);
        let pipe = Pipeline::new(&w, p, &AllocateConfig::default());
        let some = pipe.assess(Strategy::CkptSome, &PathApprox::default());
        let all = pipe.assess(Strategy::CkptAll, &PathApprox::default());
        let none = pipe.assess(Strategy::CkptNone, &PathApprox::default());
        assert!(some.expected_makespan > 0.0 && none.expected_makespan > 0.0);
        assert!(
            some.expected_makespan <= all.expected_makespan * 1.02,
            "some {} vs all {}",
            some.expected_makespan,
            all.expected_makespan
        );
        assert!(some.n_checkpoints <= all.n_checkpoints);
    }

    #[test]
    fn ckptsome_never_worse_than_ckptall() {
        // The DP contains CkptAll's solution (checkpoint everywhere) in
        // its search space, so segment-DAG expected makespans should obey
        // CkptSome ≤ CkptAll up to evaluator noise.
        for class in WorkflowClass::ALL {
            let mut w = generate(class, 50, 5);
            let bw = 1e7;
            scale_to_ccr(&mut w, 0.01, bw);
            let p = platform(&w, 5, 0.001, bw);
            let pipe = Pipeline::new(&w, p, &AllocateConfig::default());
            let some = pipe.assess(Strategy::CkptSome, &PathApprox::default());
            let all = pipe.assess(Strategy::CkptAll, &PathApprox::default());
            assert!(
                some.expected_makespan <= all.expected_makespan * 1.02,
                "{class}: some {} vs all {}",
                some.expected_makespan,
                all.expected_makespan
            );
            assert!(some.n_checkpoints <= all.n_checkpoints);
        }
    }

    #[test]
    fn cheap_checkpoints_make_ckptsome_equal_ckptall() {
        // §VI-C: as the CCR → 0, CkptSome checkpoints every task. The
        // crossover is where interface I/O (write + later read) matches
        // the re-execution gain λ·b1·b2 — for sub-second Genome tasks at
        // pfail = 0.01 that is around CCR ~ 1e-6, so 1e-9 is firmly in the
        // checkpoint-everything regime.
        let mut w = generate(WorkflowClass::Genome, 50, 3);
        let bw = 1e7;
        scale_to_ccr(&mut w, 1e-9, bw);
        let p = platform(&w, 5, 0.01, bw);
        let pipe = Pipeline::new(&w, p, &AllocateConfig::default());
        let some = pipe.plan(Strategy::CkptSome);
        assert_eq!(some.n_checkpoints(), w.n_tasks());
    }

    #[test]
    fn expensive_checkpoints_reduce_to_exits() {
        // Very expensive storage + rare failures: only superchain exits
        // remain checkpointed.
        let mut w = generate(WorkflowClass::Genome, 50, 3);
        let bw = 1e7;
        scale_to_ccr(&mut w, 10.0, bw);
        let p = platform(&w, 5, 0.0001, bw);
        let pipe = Pipeline::new(&w, p, &AllocateConfig::default());
        let some = pipe.plan(Strategy::CkptSome);
        let exits = pipe.plan(Strategy::ExitOnly);
        assert_eq!(some, exits);
    }

    #[test]
    fn exitonly_bounds_ckptsome_from_search_space() {
        let mut w = generate(WorkflowClass::Ligo, 50, 4);
        let bw = 1e7;
        scale_to_ccr(&mut w, 0.1, bw);
        let p = platform(&w, 5, 0.001, bw);
        let pipe = Pipeline::new(&w, p, &AllocateConfig::default());
        let some = pipe.assess(Strategy::CkptSome, &PathApprox::default());
        let exit = pipe.assess(Strategy::ExitOnly, &PathApprox::default());
        assert!(some.expected_makespan <= exit.expected_makespan * 1.02);
    }

    #[test]
    fn with_schedule_reuses_a_ccr_invariant_schedule() {
        // RandomTopo scheduling never reads file sizes, so the schedule of
        // the unscaled instance drives a rescaled clone to bit-identical
        // assessments.
        let base = generate(WorkflowClass::Montage, 50, 9);
        let cfg = AllocateConfig::default();
        let mut scaled = base.clone();
        let bw = 1e7;
        scale_to_ccr(&mut scaled, 0.05, bw);
        let p = platform(&scaled, 5, 0.001, bw);
        let from_scratch = Pipeline::new(&scaled, p, &cfg);
        let cached = allocate(&base, p.n_procs, &cfg);
        let reused = Pipeline::with_schedule(&scaled, p, cached);
        for strategy in [Strategy::CkptAll, Strategy::CkptSome, Strategy::ExitOnly] {
            let a = from_scratch.assess(strategy, &PathApprox::default());
            let b = reused.assess(strategy, &PathApprox::default());
            assert_eq!(
                a.expected_makespan.to_bits(),
                b.expected_makespan.to_bits(),
                "{strategy}"
            );
            assert_eq!(a.n_checkpoints, b.n_checkpoints);
        }
    }

    #[test]
    #[should_panic(expected = "different processor count")]
    fn with_schedule_rejects_mismatched_platform() {
        let w = generate(WorkflowClass::Genome, 50, 1);
        let p5 = platform(&w, 5, 0.001, 1e7);
        let sched = allocate(&w, 3, &AllocateConfig::default());
        let _ = Pipeline::with_schedule(&w, p5, sched);
    }

    #[test]
    fn assessments_report_consistent_counts() {
        let w = generate(WorkflowClass::Montage, 50, 6);
        let p = platform(&w, 5, 0.001, 1e7);
        let pipe = Pipeline::new(&w, p, &AllocateConfig::default());
        let all = pipe.assess(Strategy::CkptAll, &PathApprox::default());
        assert_eq!(all.n_checkpoints, w.n_tasks());
        assert_eq!(all.n_segments, w.n_tasks());
        let none = pipe.assess(Strategy::CkptNone, &PathApprox::default());
        assert_eq!(none.n_checkpoints, 0);
        assert!(none.w_par > 0.0);
    }

    #[test]
    fn ckptnone_beats_ckptall_when_io_dominates_and_failures_rare() {
        // §VI-C: CkptNone wins when checkpoints are expensive and failures
        // rare.
        let mut w = generate(WorkflowClass::Montage, 50, 7);
        let bw = 1e7;
        scale_to_ccr(&mut w, 1.0, bw);
        let p = platform(&w, 5, 0.0001, bw);
        let pipe = Pipeline::new(&w, p, &AllocateConfig::default());
        let none = pipe.assess(Strategy::CkptNone, &PathApprox::default());
        let all = pipe.assess(Strategy::CkptAll, &PathApprox::default());
        assert!(
            none.expected_makespan < all.expected_makespan,
            "none {} vs all {}",
            none.expected_makespan,
            all.expected_makespan
        );
    }

    #[test]
    fn ckptsome_beats_ckptnone_under_frequent_failures() {
        // §VI-C: CkptNone loses when failures are frequent and
        // checkpoints cheap.
        let mut w = generate(WorkflowClass::Genome, 300, 8);
        let bw = 1e7;
        scale_to_ccr(&mut w, 1e-4, bw);
        let p = platform(&w, 18, 0.01, bw);
        let pipe = Pipeline::new(&w, p, &AllocateConfig::default());
        let none = pipe.assess(Strategy::CkptNone, &PathApprox::default());
        let some = pipe.assess(Strategy::CkptSome, &PathApprox::default());
        assert!(
            some.expected_makespan < none.expected_makespan,
            "some {} vs none {}",
            some.expected_makespan,
            none.expected_makespan
        );
    }
}
