//! Property tests for the checkpoint-policy subsystem: the DP's
//! optimality pin against every other builtin policy, the Daly
//! collapse on uniform chains, placement validity (segment-graph
//! invariants) for every builtin policy, and byte-identity of the
//! legacy strategies' segment graphs to their pre-refactor
//! construction on seeded Pegasus instances.

use ckpt_core::policy::{
    placement_expected_time, CheckpointPolicy, CkptAllPolicy, DalyPeriodic, DpOptimalPolicy,
    ExitOnlyPolicy, GreedyCrossover, PolicyScratch, RiskThreshold,
};
use ckpt_core::{
    allocate, coalesce, optimal_checkpoints, AllocateConfig, CheckpointPlan, CostCtx, FailureModel,
    Pipeline, Platform, SegmentCostScratch, SegmentGraph, Strategy,
};
use mspg::gen::{random_workflow, GenConfig};
use mspg::linearize::Linearizer;
use mspg::{Dag, Mspg, TaskId, Workflow};
use probdag::NodeDist;
use proptest::prelude::*;

fn wf(n: usize, seed: u64) -> Workflow {
    random_workflow(&GenConfig {
        n_tasks: n,
        max_branch: 4,
        weight_range: (0.5, 60.0),
        size_range: (1.0, 5e7),
        seed,
    })
}

/// Every builtin policy, boxed (default knobs).
fn builtin_policies() -> Vec<Box<dyn CheckpointPolicy>> {
    vec![
        Box::new(CkptAllPolicy),
        Box::new(ExitOnlyPolicy),
        Box::new(DpOptimalPolicy),
        Box::new(DalyPeriodic::auto()),
        Box::new(RiskThreshold::default()),
        Box::new(GreedyCrossover),
    ]
}

/// A chain of `n` tasks of identical weight whose identical-size output
/// feeds the next task (the "uniform tasks" limit of the Daly-collapse
/// satellite).
fn uniform_chain(n: usize, weight: f64, out_bytes: f64) -> (Workflow, Vec<TaskId>) {
    let mut dag = Dag::new();
    let k = dag.add_kind("t");
    let ids: Vec<TaskId> = (0..n)
        .map(|i| dag.add_task_with_output(&format!("t{i}"), k, weight, out_bytes))
        .collect();
    for w in ids.windows(2) {
        let f = dag.primary_output(w[0]).unwrap();
        dag.add_edge(w[1], f);
    }
    let root = Mspg::chain(ids.iter().copied()).unwrap();
    (Workflow::new(dag, root), ids)
}

/// Bitwise comparison of two segment graphs: same segments (tasks,
/// processors, cost bits) and the same 2-state node laws bit-for-bit.
fn assert_segment_graphs_bitwise_eq(a: &SegmentGraph, b: &SegmentGraph, label: &str) {
    assert_eq!(a.segments.len(), b.segments.len(), "{label}: segment count");
    for (i, (x, y)) in a.segments.iter().zip(&b.segments).enumerate() {
        assert_eq!(x.tasks, y.tasks, "{label}: segment {i} tasks");
        assert_eq!(x.proc, y.proc, "{label}: segment {i} proc");
        assert_eq!(x.superchain, y.superchain, "{label}: segment {i} chain");
        assert_eq!(x.cost.r.to_bits(), y.cost.r.to_bits(), "{label}: r");
        assert_eq!(x.cost.w.to_bits(), y.cost.w.to_bits(), "{label}: w");
        assert_eq!(x.cost.c.to_bits(), y.cost.c.to_bits(), "{label}: c");
    }
    assert_eq!(a.task_segment, b.task_segment, "{label}: task map");
    assert_eq!(a.pdag.n_edges(), b.pdag.n_edges(), "{label}: edges");
    for v in a.pdag.node_ids() {
        match (a.pdag.dist(v), b.pdag.dist(v)) {
            (NodeDist::Certain(p), NodeDist::Certain(q)) => {
                assert_eq!(p.to_bits(), q.to_bits(), "{label}: node {v:?}")
            }
            (
                NodeDist::TwoState {
                    low: l1,
                    high: h1,
                    p_high: p1,
                },
                NodeDist::TwoState {
                    low: l2,
                    high: h2,
                    p_high: p2,
                },
            ) => {
                assert_eq!(l1.to_bits(), l2.to_bits(), "{label}: node {v:?} low");
                assert_eq!(h1.to_bits(), h2.to_bits(), "{label}: node {v:?} high");
                assert_eq!(p1.to_bits(), p2.to_bits(), "{label}: node {v:?} p");
            }
            (x, y) => panic!("{label}: node {v:?} law mismatch: {x:?} vs {y:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Optimality pin: on every superchain, the DP's expected execution
    /// time (the objective all placement policies are scored by) is no
    /// worse than any other builtin policy's.
    #[test]
    fn dp_is_optimal_among_all_policies(n in 2usize..60, seed: u64,
                                        lambda in 1e-6f64..0.02) {
        let w = wf(n, seed);
        let sched = allocate(&w, 1, &AllocateConfig { linearizer: Linearizer::RandomTopo, seed });
        let ctx = CostCtx::exponential(&w.dag, lambda, 1e7);
        let mut scratch = PolicyScratch::new();
        let mut seg_scratch = SegmentCostScratch::new();
        for sc in &sched.superchains {
            let len = sc.tasks.len();
            let mut dp_out = vec![false; len];
            DpOptimalPolicy.place(&ctx, &sc.tasks, &mut scratch, &mut dp_out);
            let dp_time = placement_expected_time(&ctx, &sc.tasks, &dp_out, &mut seg_scratch);
            for policy in builtin_policies() {
                let mut out = vec![false; len];
                policy.place(&ctx, &sc.tasks, &mut scratch, &mut out);
                let time = placement_expected_time(&ctx, &sc.tasks, &out, &mut seg_scratch);
                prop_assert!(
                    dp_time <= time * (1.0 + 1e-9),
                    "{}: dp {dp_time} vs {time}", policy.name()
                );
            }
        }
    }

    /// Daly collapse: on a uniform chain, DalyPeriodic driven by the
    /// DP's own checkpoint count (period = total work / count) places
    /// near-evenly and lands within a few percent of the DP's optimal
    /// expected time, with at most one extra segment.
    #[test]
    fn daly_with_dp_count_collapses_toward_dp_on_uniform_chains(
        n in 4usize..60,
        weight in 0.5f64..5.0,
        out_bytes in 0.0f64..2.0,   // bandwidth 1: c ≤ 2, comparable to w
        lambda in 1e-4f64..0.02,
    ) {
        let (w, ids) = uniform_chain(n, weight, out_bytes);
        let ctx = CostCtx::exponential(&w.dag, lambda, 1.0);
        let dp = optimal_checkpoints(&ctx, &ids);
        let m = dp.ckpt_after.iter().filter(|&&c| c).count();
        let period = weight * n as f64 / m as f64;
        let daly = DalyPeriodic::with_period(period);
        let mut scratch = PolicyScratch::new();
        let mut out = vec![false; n];
        daly.place(&ctx, &ids, &mut scratch, &mut out);
        let daly_count = out.iter().filter(|&&c| c).count();
        prop_assert!(daly_count <= m + 1, "daly {daly_count} vs dp {m}");
        let mut seg_scratch = SegmentCostScratch::new();
        let daly_time = placement_expected_time(&ctx, &ids, &out, &mut seg_scratch);
        prop_assert!(
            daly_time <= dp.expected_time * 1.05,
            "daly {daly_time} vs dp {} (count {m}, period {period})", dp.expected_time
        );
    }

    /// Every builtin policy produces a valid placement on arbitrary
    /// M-SPGs, processor counts, and failure-model families: every
    /// superchain ends in a checkpoint (asserted by `plan_with_policy`
    /// and `coalesce`), the checkpointed-file set is closed under the
    /// segment-graph invariants (acyclic, every task in exactly one
    /// segment), and the coalesced node count matches the plan's
    /// checkpoint count.
    #[test]
    fn every_builtin_policy_yields_a_valid_placement(
        n in 1usize..100, p in 1usize..8, seed: u64, family in 0usize..2,
    ) {
        let w = wf(n, seed);
        let w_bar = w.dag.mean_weight();
        let model = if family == 0 {
            FailureModel::exponential_from_pfail(0.01, w_bar)
        } else {
            FailureModel::weibull_from_pfail(2.0, 0.01, w_bar)
        };
        let platform = Platform::with_model(p, model, 1e7);
        let cfg = AllocateConfig { linearizer: Linearizer::RandomTopo, seed };
        let pipe = Pipeline::new(&w, platform, &cfg);
        for policy in builtin_policies() {
            let plan = pipe.plan_policy(policy.as_ref());
            prop_assert_eq!(plan.ckpt_after.len(), n);
            for sc in &pipe.schedule.superchains {
                prop_assert!(
                    plan.ckpt_after[sc.tasks.last().unwrap().index()],
                    "{}: superchain exit not checkpointed", policy.name()
                );
            }
            let sg = pipe.segment_graph_policy(policy.as_ref());
            prop_assert_eq!(sg.segments.len(), plan.n_checkpoints());
            // Acyclic (topo_order panics on cycles) and a full cover.
            let order = sg.pdag.topo_order();
            prop_assert_eq!(order.len(), sg.segments.len());
            let covered: usize = sg.segments.iter().map(|s| s.tasks.len()).sum();
            prop_assert_eq!(covered, n);
            prop_assert!(sg.task_segment.iter().all(|&s| s != u32::MAX));
            // The placement census prices exactly what the segment
            // costs price.
            let stats = sg.placement_stats(&w.dag);
            let c_bytes = sg.total_checkpoint_time() * 1e7;
            prop_assert!(
                (stats.ckpt_bytes - c_bytes).abs() <= 1e-6 * c_bytes.max(1.0),
                "{}: census {} vs priced {}", policy.name(), stats.ckpt_bytes, c_bytes
            );
        }
    }
}

/// The legacy strategies routed through the policy trait reproduce the
/// pre-refactor segment graphs bit-for-bit on seeded Pegasus instances:
/// CkptAll against the all-true plan, ExitOnly against the
/// last-task-per-superchain plan, CkptSome against fresh per-superchain
/// `optimal_checkpoints` calls.
#[test]
fn legacy_strategies_are_bitwise_identical_to_pre_refactor_graphs() {
    for class in pegasus::WorkflowClass::ALL {
        for seed in [1u64, 7] {
            let w = pegasus::generate(class, 50, seed);
            let lambda = ckpt_core::lambda_from_pfail(0.001, w.dag.mean_weight());
            let platform = Platform::new(5, lambda, 1e7);
            let cfg = AllocateConfig {
                linearizer: Linearizer::RandomTopo,
                seed,
            };
            let pipe = Pipeline::new(&w, platform, &cfg);
            let ctx = CostCtx::exponential(&w.dag, lambda, 1e7);
            // Pre-refactor constructions of the three placements.
            let all = CheckpointPlan {
                ckpt_after: vec![true; w.dag.n_tasks()],
            };
            let mut exit = CheckpointPlan {
                ckpt_after: vec![false; w.dag.n_tasks()],
            };
            let mut some = CheckpointPlan {
                ckpt_after: vec![false; w.dag.n_tasks()],
            };
            for sc in &pipe.schedule.superchains {
                exit.ckpt_after[sc.tasks.last().unwrap().index()] = true;
                let choice = optimal_checkpoints(&ctx, &sc.tasks);
                for (k, &t) in sc.tasks.iter().enumerate() {
                    some.ckpt_after[t.index()] = choice.ckpt_after[k];
                }
            }
            for (strategy, reference) in [
                (Strategy::CkptAll, &all),
                (Strategy::ExitOnly, &exit),
                (Strategy::CkptSome, &some),
            ] {
                assert_eq!(
                    &pipe.plan(strategy),
                    reference,
                    "{class} seed {seed}: {strategy} plan"
                );
                let via_policy = pipe.segment_graph(strategy);
                let pre_refactor = coalesce(&ctx, &pipe.schedule, reference);
                assert_segment_graphs_bitwise_eq(
                    &via_policy,
                    &pre_refactor,
                    &format!("{class} seed {seed}: {strategy}"),
                );
            }
        }
    }
}

/// `plan_with_policy` and `Pipeline::plan_policy_reusing` agree with
/// the one-shot path when a scratch is reused across many plans (the
/// steady-state loop of the E10 scenario and the policy bench).
#[test]
fn reused_policy_scratch_is_bitwise_identical_to_fresh() {
    let w = pegasus::generate(pegasus::WorkflowClass::Montage, 120, 3);
    let lambda = ckpt_core::lambda_from_pfail(0.01, w.dag.mean_weight());
    let platform = Platform::new(18, lambda, 1e7);
    let pipe = Pipeline::new(&w, platform, &AllocateConfig::default());
    let mut scratch = PolicyScratch::new();
    for _ in 0..2 {
        for policy in builtin_policies() {
            let reused = pipe.plan_policy_reusing(policy.as_ref(), &mut scratch);
            let fresh = pipe.plan_policy(policy.as_ref());
            assert_eq!(reused, fresh, "{}", policy.name());
        }
    }
}
