//! Million-task planning guarantees (ISSUE 7): the subquadratic
//! candidate-queue kernel is equivalent to the exact quadratic DP
//! wherever its gate lets it run, the paper's own grids never leave the
//! historical exact path, and parallel per-superchain placement is a
//! pure speed knob (bit-identical plans for every thread budget).

use ckpt_core::checkpoint_dp::{
    optimal_checkpoints_additive_reference, optimal_checkpoints_exact_quadratic,
    optimal_checkpoints_kernel_forced, optimal_checkpoints_tuned,
};
use ckpt_core::{
    allocate, optimal_checkpoints_reusing, plan_with_policy, plan_with_policy_threads,
    AllocateConfig, CostCtx, DpOptimalPolicy, DpScratch, FailureModel, GreedyCrossover, Platform,
    PolicyScratch, RestartCurve, Schedule, Superchain, KERNEL_MIN_LEN,
};
use mspg::gen::{random_workflow, GenConfig};
use mspg::linearize::Linearizer;
use mspg::TaskId;
use pegasus::WorkflowClass;
use proptest::prelude::*;

fn wf(n: usize, seed: u64) -> mspg::Workflow {
    random_workflow(&GenConfig {
        n_tasks: n,
        max_branch: 4,
        weight_range: (0.5, 60.0),
        size_range: (1.0, 5e7),
        seed,
    })
}

/// The CSV byte-stability bar: every superchain of the paper grids
/// (three classes × the paper's sizes × their per-size processor
/// counts) is shorter than [`KERNEL_MIN_LEN`], so production dispatch
/// runs the historical exact quadratic DP — bit-for-bit, pinned here
/// against a forced-off-kernel run.
#[test]
fn paper_workflows_stay_on_the_exact_path() {
    let mut scratch = DpScratch::new();
    let mut exact = DpScratch::new();
    for class in WorkflowClass::ALL {
        for &size in &[50usize, 300, 1000] {
            let w = pegasus::generate(class, size, 42);
            let ctx = CostCtx::exponential(&w.dag, 1e-5, 1e8);
            for &p in Platform::paper_proc_counts(size) {
                let s = allocate(&w, p, &AllocateConfig::default());
                for sc in &s.superchains {
                    if sc.tasks.is_empty() {
                        continue;
                    }
                    assert!(
                        sc.tasks.len() < KERNEL_MIN_LEN,
                        "{class} n={size} p={p}: superchain of {} tasks reaches \
                         the kernel threshold",
                        sc.tasks.len()
                    );
                    let t = optimal_checkpoints_reusing(&ctx, &sc.tasks, &mut scratch);
                    assert!(!scratch.last_run_used_kernel(), "{class} n={size} p={p}");
                    let tq = optimal_checkpoints_exact_quadratic(&ctx, &sc.tasks, &mut exact);
                    assert_eq!(t.to_bits(), tq.to_bits(), "{class} n={size} p={p}");
                    assert_eq!(scratch.ckpt_after(), exact.ckpt_after());
                }
            }
        }
    }
}

/// A long chain satisfies every gate, so production dispatch rides the
/// kernel — and the kernel's answer is bit-identical to the exhaustive
/// additive-reference DP and within float-roundoff of the exact
/// quadratic DP's optimum.
#[test]
fn long_chain_rides_the_kernel_and_matches_the_reference() {
    let w = pegasus::generic::chain(2048, 3);
    let chain: Vec<TaskId> = w.dag.task_ids().collect();
    let ctx = CostCtx::exponential(&w.dag, 1e-4, 1e8);
    let mut scratch = DpScratch::new();
    let t = optimal_checkpoints_reusing(&ctx, &chain, &mut scratch);
    assert!(scratch.last_run_used_kernel());
    let kernel_positions = scratch.ckpt_after().to_vec();
    assert!(kernel_positions[chain.len() - 1], "final task checkpointed");

    let mut reference = DpScratch::new();
    let tr = optimal_checkpoints_additive_reference(&ctx, &chain, &mut reference)
        .expect("chain costs decompose additively");
    assert_eq!(t.to_bits(), tr.to_bits());
    assert_eq!(kernel_positions, reference.ckpt_after());

    let mut exact = DpScratch::new();
    let tq = optimal_checkpoints_exact_quadratic(&ctx, &chain, &mut exact);
    assert!(
        (t - tq).abs() <= 1e-9 * tq,
        "kernel {t} vs exact quadratic {tq}"
    );
}

/// An empty superchain in a schedule is a documented skip for both the
/// serial and the threaded planner, and the two agree bit-for-bit.
#[test]
fn planning_tolerates_empty_superchains() {
    let w = wf(40, 9);
    let mut s: Schedule = allocate(&w, 3, &AllocateConfig::default());
    s.superchains.insert(
        1,
        Superchain {
            proc: 0,
            tasks: Vec::new(),
        },
    );
    let ctx = CostCtx::exponential(&w.dag, 1e-4, 1e7);
    let mut scratch = PolicyScratch::new();
    let serial = plan_with_policy(&ctx, &s, &DpOptimalPolicy, &mut scratch);
    let threaded = plan_with_policy_threads(&ctx, &s, &DpOptimalPolicy, &mut scratch, 4);
    assert_eq!(serial.ckpt_after, threaded.ckpt_after);
    assert_eq!(serial.ckpt_after.len(), w.dag.n_tasks());
}

/// ISSUE 7 acceptance bar at the policy layer: the thread budget is a
/// pure speed knob — placements are bit-identical across budgets for
/// both the DP policy and a structural policy.
#[test]
fn parallel_placement_is_bit_identical_across_budgets() {
    let w = pegasus::generate(WorkflowClass::Montage, 300, 7);
    let s = allocate(&w, 18, &AllocateConfig::default());
    assert!(s.superchains.len() > 1, "need a multi-superchain schedule");
    let ctx = CostCtx::exponential(&w.dag, 1e-5, 1e8);
    let mut scratch = PolicyScratch::new();
    for policy in [
        &DpOptimalPolicy as &dyn ckpt_core::CheckpointPolicy,
        &GreedyCrossover,
    ] {
        let baseline = plan_with_policy_threads(&ctx, &s, policy, &mut scratch, 1);
        for threads in [2usize, 4, 8, 0] {
            let plan = plan_with_policy_threads(&ctx, &s, policy, &mut scratch, threads);
            assert_eq!(
                baseline.ckpt_after,
                plan.ckpt_after,
                "policy {} threads {threads}",
                policy.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Exponential model: wherever the kernel's gate admits a chain, its
    /// answer is **bit-identical** to the exhaustive additive-reference
    /// DP (same probe arithmetic, same leftmost tie-break) and within
    /// float-roundoff of the exact quadratic DP's optimum.
    #[test]
    fn kernel_matches_quadratic_exponential(
        n in 2usize..150, p in 1usize..6, seed: u64,
        lambda in 1e-6f64..0.05, bw in 1e5f64..1e9,
    ) {
        let w = wf(n, seed);
        let s = allocate(&w, p, &AllocateConfig { linearizer: Linearizer::RandomTopo, seed });
        let ctx = CostCtx::exponential(&w.dag, lambda, bw);
        let mut kernel = DpScratch::new();
        let mut reference = DpScratch::new();
        let mut exact = DpScratch::new();
        for sc in &s.superchains {
            if sc.tasks.is_empty() {
                continue;
            }
            // The gate may reject (non-monotone profiles at high CCR);
            // equivalence is only claimed where the kernel runs.
            let Some(t) = optimal_checkpoints_kernel_forced(&ctx, &sc.tasks, &mut kernel) else {
                continue;
            };
            let tr = optimal_checkpoints_additive_reference(&ctx, &sc.tasks, &mut reference)
                .expect("kernel ran, so the additive decomposition exists");
            prop_assert_eq!(t.to_bits(), tr.to_bits());
            prop_assert_eq!(kernel.ckpt_after(), reference.ckpt_after());
            let tq = optimal_checkpoints_exact_quadratic(&ctx, &sc.tasks, &mut exact);
            prop_assert!(
                (t - tq).abs() <= 1e-9 * tq.max(1.0),
                "kernel {} vs exact quadratic {}", t, tq
            );
        }
    }

    /// Non-memoryless curve-backed path (the production configuration
    /// for Weibull `shape ≥ 1`): the kernel's optimum tracks the exact
    /// quadratic DP through the same [`RestartCurve`] within a few ×
    /// the curve's interpolation tolerance.
    #[test]
    fn kernel_matches_quadratic_weibull_curve_backed(
        n in 2usize..60, p in 1usize..4, seed: u64, shape_pct in 100u32..300,
    ) {
        let w = wf(n, seed);
        let w_bar = w.dag.mean_weight();
        let shape = shape_pct as f64 / 100.0;
        let model = FailureModel::weibull_from_pfail(shape, 0.01, w_bar);
        let curve = RestartCurve::build(model, w_bar * 1e-3, w_bar * 1e3);
        let ctx = CostCtx::with_curve(&w.dag, model, 1e7, Some(&curve));
        let s = allocate(&w, p, &AllocateConfig { linearizer: Linearizer::RandomTopo, seed });
        let mut kernel = DpScratch::new();
        let mut exact = DpScratch::new();
        for sc in &s.superchains {
            if sc.tasks.is_empty() {
                continue;
            }
            let Some(t) = optimal_checkpoints_kernel_forced(&ctx, &sc.tasks, &mut kernel) else {
                continue;
            };
            let tq = optimal_checkpoints_exact_quadratic(&ctx, &sc.tasks, &mut exact);
            // The tabulated curve is only convex up to its REL_TOL, so
            // the kernel's pruning may keep a candidate the exhaustive
            // scan beats by an interpolation-sized sliver.
            prop_assert!(
                (t - tq).abs() <= 1e-6 * tq.max(1.0),
                "kernel {} vs exact quadratic {} (shape {})", t, tq, shape
            );
        }
    }

    /// Models without the convexity guarantee (Weibull `shape < 1`,
    /// LogNormal) never enter the kernel: the forced entry point refuses
    /// them, and production dispatch with a zero threshold still takes
    /// the exact quadratic path, bit-for-bit.
    #[test]
    fn kernel_gate_rejects_nonconvex_models(
        n in 2usize..60, seed: u64, family in 0usize..2,
    ) {
        let w = wf(n, seed);
        let w_bar = w.dag.mean_weight();
        let model = if family == 0 {
            FailureModel::weibull_from_pfail(0.7, 0.01, w_bar)
        } else {
            FailureModel::lognormal_from_pfail(1.0, 0.01, w_bar)
        };
        let ctx = CostCtx::with_model(&w.dag, model, 1e7);
        let s = allocate(&w, 2, &AllocateConfig::default());
        let mut scratch = DpScratch::new();
        let mut exact = DpScratch::new();
        for sc in &s.superchains {
            if sc.tasks.is_empty() {
                continue;
            }
            prop_assert!(
                optimal_checkpoints_kernel_forced(&ctx, &sc.tasks, &mut scratch).is_none()
            );
            let t = optimal_checkpoints_tuned(&ctx, &sc.tasks, &mut scratch, 1);
            prop_assert!(!scratch.last_run_used_kernel());
            let tq = optimal_checkpoints_exact_quadratic(&ctx, &sc.tasks, &mut exact);
            prop_assert_eq!(t.to_bits(), tq.to_bits());
            prop_assert_eq!(scratch.ckpt_after(), exact.ckpt_after());
        }
    }

    /// The threaded planner is bit-identical to the serial planner on
    /// arbitrary M-SPGs, processor counts, and thread budgets.
    #[test]
    fn plan_with_policy_threads_matches_serial(
        n in 2usize..100, p in 2usize..8, seed: u64, threads in 2usize..9,
    ) {
        let w = wf(n, seed);
        let s = allocate(&w, p, &AllocateConfig { linearizer: Linearizer::RandomTopo, seed });
        let ctx = CostCtx::exponential(&w.dag, 1e-4, 1e7);
        let mut scratch = PolicyScratch::new();
        let serial = plan_with_policy(&ctx, &s, &DpOptimalPolicy, &mut scratch);
        let threaded = plan_with_policy_threads(&ctx, &s, &DpOptimalPolicy, &mut scratch, threads);
        prop_assert_eq!(serial.ckpt_after, threaded.ckpt_after);
    }
}
