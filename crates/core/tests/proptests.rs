//! Property-based tests for the scheduling and checkpointing algorithms.

use ckpt_core::{
    allocate, optimal_checkpoints, segment_cost, AllocateConfig, CostCtx, FailureModel, Pipeline,
    Platform, RestartCurve, Strategy,
};
use mspg::gen::{random_workflow, GenConfig};
use mspg::linearize::Linearizer;
use probdag::{Evaluator, PathApprox};
use proptest::prelude::*;

fn wf(n: usize, seed: u64) -> mspg::Workflow {
    random_workflow(&GenConfig {
        n_tasks: n,
        max_branch: 4,
        weight_range: (0.5, 60.0),
        size_range: (1.0, 5e7),
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Allocate produces a valid schedule (full cover, topological
    /// superchains, deadlock-free) on arbitrary M-SPGs and processor
    /// counts.
    #[test]
    fn allocate_is_always_valid(n in 1usize..150, p in 1usize..24, seed: u64) {
        let w = wf(n, seed);
        let cfg = AllocateConfig { linearizer: Linearizer::RandomTopo, seed };
        let s = allocate(&w, p, &cfg);
        prop_assert!(s.validate(&w.dag).is_ok());
        prop_assert_eq!(s.n_tasks(), n);
        // Every superchain sits on a valid processor.
        for sc in &s.superchains {
            prop_assert!(sc.proc < p);
        }
    }

    /// The failure-free parallel time is bracketed by the critical path
    /// and the sequential time, and never improves with fewer processors.
    #[test]
    fn parallel_time_brackets(n in 2usize..120, seed: u64) {
        let w = wf(n, seed);
        let cfg = AllocateConfig::default();
        let t1 = allocate(&w, 1, &cfg).failure_free_parallel_time(&w.dag);
        let t8 = allocate(&w, 8, &cfg).failure_free_parallel_time(&w.dag);
        let cp = w.dag.critical_path();
        let total = w.dag.total_weight();
        prop_assert!((t1 - total).abs() < 1e-6 * total, "t1 {t1} vs total {total}");
        prop_assert!(t8 >= cp - 1e-9);
        prop_assert!(t8 <= t1 + 1e-9);
    }

    /// The checkpoint DP is optimal: on small superchains it matches
    /// exhaustive enumeration over all checkpoint subsets.
    #[test]
    fn dp_matches_exhaustive(n in 1usize..40, p in 1usize..4, seed: u64,
                             lambda in 1e-6f64..0.05, bw in 1e5f64..1e9) {
        let w = wf(n, seed);
        let s = allocate(&w, p, &AllocateConfig { linearizer: Linearizer::RandomTopo, seed });
        let ctx = CostCtx::exponential(&w.dag, lambda, bw);
        for sc in &s.superchains {
            let len = sc.tasks.len();
            if len > 12 {
                continue;
            }
            let dp = optimal_checkpoints(&ctx, &sc.tasks);
            // Exhaustive enumeration.
            let mut best = f64::INFINITY;
            for mask in 0u32..(1 << (len - 1)) {
                let mut total = 0.0;
                let mut lo = 0usize;
                for hi in 0..len {
                    let is_ckpt = hi == len - 1 || mask >> hi & 1 == 1;
                    if is_ckpt {
                        let c = segment_cost(&ctx, &sc.tasks, lo, hi);
                        total += ctx.expected_segment_time(c.base());
                        lo = hi + 1;
                    }
                }
                best = best.min(total);
            }
            prop_assert!(
                (dp.expected_time - best).abs() <= 1e-9 * best.max(1.0),
                "dp {} vs exhaustive {best}", dp.expected_time
            );
        }
    }

    /// Segment costs are superadditive-consistent: splitting a segment
    /// never reduces total I/O below the merged I/O minus the interface
    /// data (reads/writes only move, they don't vanish).
    #[test]
    fn segment_cost_monotonicity(n in 2usize..60, seed: u64) {
        let w = wf(n, seed);
        let s = allocate(&w, 1, &AllocateConfig::default());
        let ctx = CostCtx::exponential(&w.dag, 0.0, 1e6);
        for sc in &s.superchains {
            let len = sc.tasks.len();
            if len < 2 {
                continue;
            }
            let whole = segment_cost(&ctx, &sc.tasks, 0, len - 1);
            let mid = len / 2;
            let left = segment_cost(&ctx, &sc.tasks, 0, mid - 1);
            let right = segment_cost(&ctx, &sc.tasks, mid, len - 1);
            // Work is conserved exactly.
            prop_assert!((left.w + right.w - whole.w).abs() < 1e-9 * whole.w.max(1.0));
            // Splitting can only add I/O (the interface files get written
            // and re-read).
            let merged_io = whole.r + whole.c;
            let split_io = left.r + left.c + right.r + right.c;
            prop_assert!(split_io >= merged_io - 1e-9 * merged_io.max(1.0),
                "split {split_io} < merged {merged_io}");
        }
    }

    /// End-to-end: CkptSome's evaluated makespan never exceeds ExitOnly's
    /// (the DP dominates the naive solution on the same schedule), and
    /// all strategies respect the failure-free lower bound.
    #[test]
    fn strategy_dominance(n in 2usize..80, p in 1usize..8, seed: u64) {
        let w = wf(n, seed);
        let lambda = ckpt_core::lambda_from_pfail(0.001, w.dag.mean_weight());
        let platform = Platform::new(p, lambda, 1e7);
        let pipe = Pipeline::new(&w, platform, &AllocateConfig { linearizer: Linearizer::RandomTopo, seed });
        let some = pipe.assess(Strategy::CkptSome, &PathApprox::default());
        let exit = pipe.assess(Strategy::ExitOnly, &PathApprox::default());
        prop_assert!(
            some.expected_makespan <= exit.expected_makespan * 1.03,
            "some {} vs exit {}", some.expected_makespan, exit.expected_makespan
        );
        prop_assert!(some.expected_makespan >= some.w_par * 0.99);
    }

    /// Theorem 1 is monotone in every argument.
    #[test]
    fn theorem1_monotone(w1 in 1.0f64..1e5, p in 1usize..512, l in 0.0f64..1e-3) {
        let base = ckpt_core::theorem1(w1, p, l);
        prop_assert!(ckpt_core::theorem1(w1 * 1.5, p, l) >= base);
        prop_assert!(ckpt_core::theorem1(w1, p + 1, l) >= base);
        prop_assert!(ckpt_core::theorem1(w1, p, l + 1e-6) >= base);
    }

    /// The RestartCurve honors its documented error contract for every
    /// family, shape, calibration, and span decade: within
    /// [`RestartCurve::REL_TOL`] of the production 128-panel Simpson
    /// solve and within [`RestartCurve::REL_TOL_REF`] of the 4096-panel
    /// reference, across the curve's full tabulated range.
    #[test]
    fn restart_curve_matches_direct_simpson(
        family in 0usize..3,
        shape_pct in 40u32..250,       // Weibull k / LogNormal σ × 100
        pfail_exp in 2u32..5,          // pfail ∈ {1e-2 .. 1e-4}
        w_bar in 0.5f64..500.0,
        span_log10 in -300i32..300,    // b = w̄ · 10^(log10/100) ± jitter
        jitter in 0.0f64..0.01,
    ) {
        let shape = shape_pct as f64 / 100.0;
        let pfail = 10f64.powi(-(pfail_exp as i32));
        let model = match family {
            0 => FailureModel::weibull_from_pfail(shape, pfail, w_bar),
            1 => FailureModel::weibull_from_pfail(1.0, pfail, w_bar),
            _ => FailureModel::lognormal_from_pfail(shape, pfail, w_bar),
        };
        let curve = RestartCurve::build(model, w_bar * 1e-3, w_bar * 1e3);
        let b = w_bar * 10f64.powf(span_log10 as f64 / 100.0 + jitter);
        let (lo, hi) = curve.span_range();
        // Out-of-range queries are bit-identical to the direct path by
        // construction; the interesting contract is in-range.
        let b = b.clamp(lo, hi);
        let cached = curve.expected_restart_time(b);
        let direct = model.expected_restart_time(b);
        if !direct.is_finite() {
            prop_assert!(!cached.is_finite(), "{model:?} at b={b}: cached {cached}");
            return;
        }
        prop_assert!(
            (cached - direct).abs() <= RestartCurve::REL_TOL * direct,
            "{model:?} at b={b}: cached {cached} vs direct {direct}"
        );
        let fine = model.expected_restart_time_ref(b, 4096);
        prop_assert!(
            (cached - fine).abs() <= RestartCurve::REL_TOL_REF * fine,
            "{model:?} at b={b}: cached {cached} vs fine {fine} (rel {})",
            (cached - fine).abs() / fine
        );
    }

    /// Exponential cost queries never touch an attached curve: with the
    /// closed form short-circuiting first, an exponential `CostCtx`
    /// must produce bit-identical segment times and two-state
    /// probabilities whether or not a (foreign-model) curve is wired in
    /// — this is the E1–E8 byte-stability guarantee at the unit level.
    #[test]
    fn exponential_queries_never_touch_the_curve(
        lambda in 1e-7f64..0.1,
        base in 1e-3f64..1e4,
    ) {
        let dag = mspg::Dag::new();
        let foreign = FailureModel::weibull(2.0, 42.0);
        let curve = RestartCurve::build(foreign, 1e-3, 1e4);
        let model = FailureModel::exponential(lambda);
        let bare = CostCtx::with_model(&dag, model, 1e7);
        // Deliberately wire a foreign-model curve past the constructor's
        // mismatch guard: if the exponential arm ever consulted it, the
        // bit-equality below would break loudly.
        let wired = CostCtx {
            curve: Some(&curve),
            ..bare
        };
        prop_assert_eq!(
            bare.expected_segment_time(base).to_bits(),
            wired.expected_segment_time(base).to_bits()
        );
        prop_assert_eq!(
            bare.two_state_p_high(base).to_bits(),
            wired.two_state_p_high(base).to_bits()
        );
        // And both equal the paper's closed form exactly.
        prop_assert_eq!(
            bare.expected_segment_time(base).to_bits(),
            (base + 0.5 * lambda * base * base).to_bits()
        );
    }

    /// The curve-backed pipeline agrees with the quadrature-backed
    /// pipeline within the documented tolerance at the end-to-end level:
    /// same plans, and expected makespans within a few × REL_TOL_REF
    /// (the evaluator composes ~n segment queries).
    #[test]
    fn curve_backed_pipeline_tracks_direct_quadrature(
        n in 2usize..50, p in 1usize..6, seed: u64, family in 0usize..2,
    ) {
        let w = wf(n, seed);
        let w_bar = w.dag.mean_weight();
        let model = if family == 0 {
            FailureModel::weibull_from_pfail(0.7, 0.01, w_bar)
        } else {
            FailureModel::lognormal_from_pfail(1.0, 0.01, w_bar)
        };
        let platform = Platform::with_model(p, model, 1e7);
        let cfg = AllocateConfig { linearizer: Linearizer::RandomTopo, seed };
        let pipe = Pipeline::new(&w, platform, &cfg);
        prop_assert!(pipe.restart_curve().is_some());
        // Direct-quadrature reference: the same schedule, costs through
        // CostCtx::with_model (no curve).
        let direct_ctx = CostCtx::with_model(&w.dag, model, 1e7);
        let plan = pipe.plan(Strategy::CkptSome);
        let sg_curve = pipe.segment_graph(Strategy::CkptSome);
        let sg_direct = ckpt_core::coalesce(&direct_ctx, &pipe.schedule, &plan);
        prop_assert_eq!(sg_curve.segments.len(), sg_direct.segments.len());
        let ev = PathApprox::default();
        let em_curve = ev.expected_makespan(&sg_curve.pdag);
        let em_direct = ev.expected_makespan(&sg_direct.pdag);
        prop_assert!(
            (em_curve - em_direct).abs() <= 1e-3 * em_direct,
            "curve {em_curve} vs direct {em_direct}"
        );
    }
}
