//! Property-based tests for the scheduling and checkpointing algorithms.

use ckpt_core::{
    allocate, optimal_checkpoints, segment_cost, AllocateConfig, CostCtx, Pipeline, Platform,
    Strategy,
};
use mspg::gen::{random_workflow, GenConfig};
use mspg::linearize::Linearizer;
use probdag::PathApprox;
use proptest::prelude::*;

fn wf(n: usize, seed: u64) -> mspg::Workflow {
    random_workflow(&GenConfig {
        n_tasks: n,
        max_branch: 4,
        weight_range: (0.5, 60.0),
        size_range: (1.0, 5e7),
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Allocate produces a valid schedule (full cover, topological
    /// superchains, deadlock-free) on arbitrary M-SPGs and processor
    /// counts.
    #[test]
    fn allocate_is_always_valid(n in 1usize..150, p in 1usize..24, seed: u64) {
        let w = wf(n, seed);
        let cfg = AllocateConfig { linearizer: Linearizer::RandomTopo, seed };
        let s = allocate(&w, p, &cfg);
        prop_assert!(s.validate(&w.dag).is_ok());
        prop_assert_eq!(s.n_tasks(), n);
        // Every superchain sits on a valid processor.
        for sc in &s.superchains {
            prop_assert!(sc.proc < p);
        }
    }

    /// The failure-free parallel time is bracketed by the critical path
    /// and the sequential time, and never improves with fewer processors.
    #[test]
    fn parallel_time_brackets(n in 2usize..120, seed: u64) {
        let w = wf(n, seed);
        let cfg = AllocateConfig::default();
        let t1 = allocate(&w, 1, &cfg).failure_free_parallel_time(&w.dag);
        let t8 = allocate(&w, 8, &cfg).failure_free_parallel_time(&w.dag);
        let cp = w.dag.critical_path();
        let total = w.dag.total_weight();
        prop_assert!((t1 - total).abs() < 1e-6 * total, "t1 {t1} vs total {total}");
        prop_assert!(t8 >= cp - 1e-9);
        prop_assert!(t8 <= t1 + 1e-9);
    }

    /// The checkpoint DP is optimal: on small superchains it matches
    /// exhaustive enumeration over all checkpoint subsets.
    #[test]
    fn dp_matches_exhaustive(n in 1usize..40, p in 1usize..4, seed: u64,
                             lambda in 1e-6f64..0.05, bw in 1e5f64..1e9) {
        let w = wf(n, seed);
        let s = allocate(&w, p, &AllocateConfig { linearizer: Linearizer::RandomTopo, seed });
        let ctx = CostCtx::exponential(&w.dag, lambda, bw);
        for sc in &s.superchains {
            let len = sc.tasks.len();
            if len > 12 {
                continue;
            }
            let dp = optimal_checkpoints(&ctx, &sc.tasks);
            // Exhaustive enumeration.
            let mut best = f64::INFINITY;
            for mask in 0u32..(1 << (len - 1)) {
                let mut total = 0.0;
                let mut lo = 0usize;
                for hi in 0..len {
                    let is_ckpt = hi == len - 1 || mask >> hi & 1 == 1;
                    if is_ckpt {
                        let c = segment_cost(&ctx, &sc.tasks, lo, hi);
                        total += ctx.expected_segment_time(c.base());
                        lo = hi + 1;
                    }
                }
                best = best.min(total);
            }
            prop_assert!(
                (dp.expected_time - best).abs() <= 1e-9 * best.max(1.0),
                "dp {} vs exhaustive {best}", dp.expected_time
            );
        }
    }

    /// Segment costs are superadditive-consistent: splitting a segment
    /// never reduces total I/O below the merged I/O minus the interface
    /// data (reads/writes only move, they don't vanish).
    #[test]
    fn segment_cost_monotonicity(n in 2usize..60, seed: u64) {
        let w = wf(n, seed);
        let s = allocate(&w, 1, &AllocateConfig::default());
        let ctx = CostCtx::exponential(&w.dag, 0.0, 1e6);
        for sc in &s.superchains {
            let len = sc.tasks.len();
            if len < 2 {
                continue;
            }
            let whole = segment_cost(&ctx, &sc.tasks, 0, len - 1);
            let mid = len / 2;
            let left = segment_cost(&ctx, &sc.tasks, 0, mid - 1);
            let right = segment_cost(&ctx, &sc.tasks, mid, len - 1);
            // Work is conserved exactly.
            prop_assert!((left.w + right.w - whole.w).abs() < 1e-9 * whole.w.max(1.0));
            // Splitting can only add I/O (the interface files get written
            // and re-read).
            let merged_io = whole.r + whole.c;
            let split_io = left.r + left.c + right.r + right.c;
            prop_assert!(split_io >= merged_io - 1e-9 * merged_io.max(1.0),
                "split {split_io} < merged {merged_io}");
        }
    }

    /// End-to-end: CkptSome's evaluated makespan never exceeds ExitOnly's
    /// (the DP dominates the naive solution on the same schedule), and
    /// all strategies respect the failure-free lower bound.
    #[test]
    fn strategy_dominance(n in 2usize..80, p in 1usize..8, seed: u64) {
        let w = wf(n, seed);
        let lambda = ckpt_core::lambda_from_pfail(0.001, w.dag.mean_weight());
        let platform = Platform::new(p, lambda, 1e7);
        let pipe = Pipeline::new(&w, platform, &AllocateConfig { linearizer: Linearizer::RandomTopo, seed });
        let some = pipe.assess(Strategy::CkptSome, &PathApprox::default());
        let exit = pipe.assess(Strategy::ExitOnly, &PathApprox::default());
        prop_assert!(
            some.expected_makespan <= exit.expected_makespan * 1.03,
            "some {} vs exit {}", some.expected_makespan, exit.expected_makespan
        );
        prop_assert!(some.expected_makespan >= some.w_par * 0.99);
    }

    /// Theorem 1 is monotone in every argument.
    #[test]
    fn theorem1_monotone(w1 in 1.0f64..1e5, p in 1usize..512, l in 0.0f64..1e-3) {
        let base = ckpt_core::theorem1(w1, p, l);
        prop_assert!(ckpt_core::theorem1(w1 * 1.5, p, l) >= base);
        prop_assert!(ckpt_core::theorem1(w1, p + 1, l) >= base);
        prop_assert!(ckpt_core::theorem1(w1, p, l + 1e-6) >= base);
    }
}
