//! Failure injection: exponential processes and deterministic traces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A source of fail-stop failure times, one stream per processor.
pub trait FailureSource {
    /// The next failure on `proc` strictly after time `after`, or
    /// `f64::INFINITY` if the processor never fails again.
    fn next_failure(&mut self, proc: usize, after: f64) -> f64;
}

/// Independent Poisson failures of rate `lambda` per processor (the
/// paper's model). Memoryless, so each query draws a fresh exponential
/// inter-arrival from `after`.
pub struct ExpFailures {
    lambda: f64,
    rng: StdRng,
}

impl ExpFailures {
    /// Creates the process with the given rate and seed.
    pub fn new(lambda: f64, seed: u64) -> Self {
        assert!(lambda >= 0.0 && lambda.is_finite());
        ExpFailures {
            lambda,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws one exponential inter-arrival time.
    pub fn sample_interarrival(&mut self) -> f64 {
        if self.lambda == 0.0 {
            return f64::INFINITY;
        }
        let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        -u.ln() / self.lambda
    }
}

impl FailureSource for ExpFailures {
    fn next_failure(&mut self, _proc: usize, after: f64) -> f64 {
        after + self.sample_interarrival()
    }
}

/// Deterministic failure trace: explicit failure times per processor
/// (used by tests to script crossover-dependency scenarios).
pub struct TraceFailures {
    /// Sorted failure times per processor.
    traces: Vec<Vec<f64>>,
}

impl TraceFailures {
    /// Creates a trace source; each inner vector is sorted ascending.
    pub fn new(mut traces: Vec<Vec<f64>>) -> Self {
        for t in &mut traces {
            t.sort_by(f64::total_cmp);
        }
        TraceFailures { traces }
    }
}

impl FailureSource for TraceFailures {
    fn next_failure(&mut self, proc: usize, after: f64) -> f64 {
        match self.traces.get(proc) {
            Some(ts) => ts
                .iter()
                .copied()
                .find(|&t| t > after)
                .unwrap_or(f64::INFINITY),
            None => f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_mean_matches_rate() {
        let mut src = ExpFailures::new(0.5, 1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| src.sample_interarrival()).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn zero_rate_never_fails() {
        let mut src = ExpFailures::new(0.0, 2);
        assert_eq!(src.next_failure(0, 10.0), f64::INFINITY);
    }

    #[test]
    fn trace_returns_next_strictly_after() {
        let mut src = TraceFailures::new(vec![vec![5.0, 1.0, 9.0]]);
        assert_eq!(src.next_failure(0, 0.0), 1.0);
        assert_eq!(src.next_failure(0, 1.0), 5.0);
        assert_eq!(src.next_failure(0, 7.0), 9.0);
        assert_eq!(src.next_failure(0, 9.0), f64::INFINITY);
        assert_eq!(src.next_failure(1, 0.0), f64::INFINITY);
    }

    #[test]
    fn exp_failures_are_seeded() {
        let a: Vec<f64> = {
            let mut s = ExpFailures::new(1.0, 7);
            (0..10).map(|_| s.sample_interarrival()).collect()
        };
        let b: Vec<f64> = {
            let mut s = ExpFailures::new(1.0, 7);
            (0..10).map(|_| s.sample_interarrival()).collect()
        };
        assert_eq!(a, b);
    }
}
