//! Failure injection: model-driven renewal processes and deterministic
//! traces, one independent stream per processor.

use ckpt_core::FailureModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A source of fail-stop failure times, one stream per processor.
///
/// Contract: `next_failure(proc, after)` is only queried at *renewal
/// points* of `proc` — time 0 and the instant of a reboot — so sources
/// backed by a parametric [`FailureModel`] may draw a fresh
/// time-to-failure (the processor is rejuvenated), which reduces to the
/// paper's Poisson process in the exponential case.
pub trait FailureSource {
    /// The next failure on `proc` strictly after time `after`, or
    /// `f64::INFINITY` if the processor never fails again.
    fn next_failure(&mut self, proc: usize, after: f64) -> f64;
}

/// A single-stream sampler of times-to-failure from one [`FailureModel`]
/// (used by the segment simulator, where every attempt is an independent
/// renewal and processor identity carries no state).
///
/// For the exponential model this consumes its stream exactly as the
/// historical `ExpFailures::sample_interarrival` did, keeping seeded
/// exponential segment simulations bit-for-bit stable across the
/// failure-model refactor.
pub struct ModelSampler {
    model: FailureModel,
    rng: StdRng,
}

impl ModelSampler {
    /// Creates the sampler with the given model and seed.
    pub fn new(model: FailureModel, seed: u64) -> Self {
        ModelSampler {
            model,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws one time-to-failure of a freshly started processor.
    pub fn sample_ttf(&mut self) -> f64 {
        if self.model.never_fails() {
            return f64::INFINITY;
        }
        let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        self.model.time_to_failure(u)
    }
}

/// Model-driven failures with an **independent splitmix-derived
/// substream per processor** (`seedmix::substream(seed, proc)`), so the
/// draws a processor sees are a pure function of `(model, seed, proc)` —
/// never of the order in which processors happen to be queried.
///
/// This is the fix for the original `ExpFailures`, whose single shared
/// stream made per-processor failure times depend on query interleaving:
/// any change in event ordering (or in another processor's workload)
/// silently reshuffled everyone's failures. With per-processor
/// substreams, model-driven sources and [`TraceFailures`] are truly
/// interchangeable behind [`FailureSource`].
pub struct ModelFailures {
    model: FailureModel,
    seed: u64,
    streams: Vec<Option<StdRng>>,
}

impl ModelFailures {
    /// Creates the source with the given model and base seed.
    pub fn new(model: FailureModel, seed: u64) -> Self {
        ModelFailures {
            model,
            seed,
            streams: Vec::new(),
        }
    }

    /// The model failures are drawn from.
    pub fn model(&self) -> &FailureModel {
        &self.model
    }

    /// Draws one time-to-failure on `proc`'s own substream.
    pub fn sample_interarrival(&mut self, proc: usize) -> f64 {
        if self.model.never_fails() {
            return f64::INFINITY;
        }
        let model = self.model;
        let rng = self.stream(proc);
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        model.time_to_failure(u)
    }

    fn stream(&mut self, proc: usize) -> &mut StdRng {
        if proc >= self.streams.len() {
            self.streams.resize_with(proc + 1, || None);
        }
        // Mix the substream seed only on first touch of a processor —
        // this runs once per (run, proc), not once per draw (the CkptNone
        // divergence regime draws millions of times per grid cell).
        let slot = &mut self.streams[proc];
        if slot.is_none() {
            *slot = Some(StdRng::seed_from_u64(seedmix::substream(
                self.seed,
                proc as u64,
            )));
        }
        slot.as_mut().expect("just initialized")
    }
}

impl FailureSource for ModelFailures {
    fn next_failure(&mut self, proc: usize, after: f64) -> f64 {
        after + self.sample_interarrival(proc)
    }
}

/// Independent exponential failures of rate `lambda` per processor (the
/// paper's model): [`ModelFailures`] specialized to
/// [`FailureModel::Exponential`]. Memoryless, so each query draws a
/// fresh exponential inter-arrival from `after` on the processor's own
/// substream.
pub struct ExpFailures(ModelFailures);

impl ExpFailures {
    /// Creates the process with the given rate and seed.
    pub fn new(lambda: f64, seed: u64) -> Self {
        ExpFailures(ModelFailures::new(FailureModel::exponential(lambda), seed))
    }

    /// Draws one exponential inter-arrival time on `proc`'s substream.
    pub fn sample_interarrival(&mut self, proc: usize) -> f64 {
        self.0.sample_interarrival(proc)
    }
}

impl FailureSource for ExpFailures {
    fn next_failure(&mut self, proc: usize, after: f64) -> f64 {
        self.0.next_failure(proc, after)
    }
}

/// Deterministic failure trace: explicit failure times per processor
/// (used by tests to script crossover-dependency scenarios).
pub struct TraceFailures {
    /// Sorted failure times per processor.
    traces: Vec<Vec<f64>>,
}

impl TraceFailures {
    /// Creates a trace source; each inner vector is sorted ascending.
    pub fn new(mut traces: Vec<Vec<f64>>) -> Self {
        for t in &mut traces {
            t.sort_by(f64::total_cmp);
        }
        TraceFailures { traces }
    }
}

impl FailureSource for TraceFailures {
    fn next_failure(&mut self, proc: usize, after: f64) -> f64 {
        match self.traces.get(proc) {
            Some(ts) => ts
                .iter()
                .copied()
                .find(|&t| t > after)
                .unwrap_or(f64::INFINITY),
            None => f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_mean_matches_rate() {
        let mut src = ExpFailures::new(0.5, 1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| src.sample_interarrival(0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn weibull_mean_matches_gamma_moment() {
        // E[Weibull(k=2, η)] = η·Γ(1.5) = η·√π/2.
        let mut src = ModelSampler::new(FailureModel::weibull(2.0, 4.0), 3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| src.sample_ttf()).sum::<f64>() / n as f64;
        let expect = 4.0 * std::f64::consts::PI.sqrt() / 2.0;
        assert!((mean - expect).abs() < 0.05, "mean {mean} vs {expect}");
    }

    #[test]
    fn lognormal_median_matches_mu() {
        // The LogNormal median is e^μ.
        let mut src = ModelSampler::new(FailureModel::lognormal(2.0, 1.0), 4);
        let n = 100_001;
        let mut xs: Vec<f64> = (0..n).map(|_| src.sample_ttf()).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[n / 2];
        let expect = 2.0f64.exp();
        assert!(
            (median - expect).abs() < 0.05 * expect,
            "median {median} vs {expect}"
        );
    }

    #[test]
    fn zero_rate_never_fails() {
        let mut src = ExpFailures::new(0.0, 2);
        assert_eq!(src.next_failure(0, 10.0), f64::INFINITY);
    }

    #[test]
    fn exp_failures_are_seeded() {
        let a: Vec<f64> = {
            let mut s = ExpFailures::new(1.0, 7);
            (0..10).map(|_| s.sample_interarrival(0)).collect()
        };
        let b: Vec<f64> = {
            let mut s = ExpFailures::new(1.0, 7);
            (0..10).map(|_| s.sample_interarrival(0)).collect()
        };
        assert_eq!(a, b);
    }

    /// The satellite regression for the shared-stream bug: per-processor
    /// draws must be invariant under any permutation of the query order
    /// across processors.
    #[test]
    fn per_processor_draws_survive_query_reordering() {
        let draws = |order: &[usize]| -> Vec<Vec<f64>> {
            let mut src = ExpFailures::new(1.0, 7);
            let mut out = vec![Vec::new(); 3];
            for &p in order {
                out[p].push(src.sample_interarrival(p));
            }
            out
        };
        // Same per-processor query counts, maximally different
        // interleavings.
        let a = draws(&[0, 0, 0, 1, 1, 1, 2, 2, 2]);
        let b = draws(&[2, 1, 0, 0, 1, 2, 1, 0, 2]);
        assert_eq!(a, b, "per-proc streams must not depend on interleaving");
        // And the three processors see genuinely distinct streams.
        assert_ne!(a[0], a[1]);
        assert_ne!(a[1], a[2]);
    }

    #[test]
    fn model_failures_reordering_holds_for_all_families() {
        for model in [
            FailureModel::weibull(0.7, 10.0),
            FailureModel::lognormal(1.0, 0.5),
        ] {
            let draws = |order: &[usize]| -> Vec<Vec<f64>> {
                let mut src = ModelFailures::new(model, 11);
                let mut out = vec![Vec::new(); 2];
                for &p in order {
                    out[p].push(src.next_failure(p, 0.0));
                }
                out
            };
            assert_eq!(draws(&[0, 0, 1, 1]), draws(&[1, 0, 1, 0]), "{model:?}");
        }
    }

    /// Behind `&mut dyn FailureSource`, trace-driven and model-driven
    /// sources are interchangeable per processor.
    #[test]
    fn sources_are_interchangeable_behind_the_trait() {
        let mut exp = ExpFailures::new(0.5, 9);
        let mut trace = TraceFailures::new(vec![vec![5.0, 1.0, 9.0]]);
        let sources: [&mut dyn FailureSource; 2] = [&mut exp, &mut trace];
        for src in sources {
            let t0 = src.next_failure(0, 0.0);
            let t1 = src.next_failure(0, t0);
            assert!(t1 > t0);
            // A processor with no trace / its own substream still answers.
            assert!(src.next_failure(7, 0.0) > 0.0);
        }
    }

    #[test]
    fn trace_returns_next_strictly_after() {
        let mut src = TraceFailures::new(vec![vec![5.0, 1.0, 9.0]]);
        assert_eq!(src.next_failure(0, 0.0), 1.0);
        assert_eq!(src.next_failure(0, 1.0), 5.0);
        assert_eq!(src.next_failure(0, 7.0), 9.0);
        assert_eq!(src.next_failure(0, 9.0), f64::INFINITY);
        assert_eq!(src.next_failure(1, 0.0), f64::INFINITY);
    }
}
