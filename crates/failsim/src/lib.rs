//! # failsim — discrete-event simulation of fail-stop workflow execution
//!
//! Ground-truth substrate for *Checkpointing Workflows for Fail-Stop
//! Errors* (Han et al., CLUSTER 2017). Where `probdag` evaluates the
//! paper's *first-order model* (Eq. (1)/(2)), this crate simulates the
//! *actual execution processes*, validating the model (experiment E5):
//!
//! * [`segment_exec`] — checkpointed executions (CkptAll / CkptSome /
//!   ExitOnly): segments restart from stable storage, so per-segment
//!   renewal sampling is exact for the execution model;
//! * [`none_exec`] — the CkptNone strategy with full crossover-dependency
//!   cascades: processor failures lose in-memory outputs, consumers demand
//!   transitive producer re-execution (the process whose expectation the
//!   paper proves #P-complete to compute);
//! * [`failure`] — pluggable failure injection: parametric
//!   [`FailureModel`]s (exponential / Weibull / LogNormal) and
//!   deterministic traces, each processor on an independent
//!   splitmix-derived substream;
//! * [`montecarlo`] — seeded, thread-parallel aggregation.

pub mod failure;
pub mod metrics;
pub mod montecarlo;
pub mod none_exec;
pub mod segment_exec;

pub use ckpt_core::FailureModel;
pub use failure::{ExpFailures, FailureSource, ModelFailures, ModelSampler, TraceFailures};
pub use metrics::{ExecStats, McStats};
pub use montecarlo::{
    montecarlo_none, montecarlo_none_model, montecarlo_segments, montecarlo_segments_model,
    montecarlo_segments_model_abortable, Estimator, NoneMcStats, SimConfig, SplitConfig,
};
pub use none_exec::{simulate_none, simulate_none_reference, Diverged};
pub use segment_exec::{
    simulate_segments, simulate_segments_downtime, simulate_segments_model,
    simulate_segments_model_downtime,
};
