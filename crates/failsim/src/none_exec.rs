//! Event-driven simulation of the CkptNone strategy, including
//! crossover-dependency cascades (§I of the paper).
//!
//! No data is ever checkpointed: a task's outputs live only in its
//! processor's memory. When a processor fails it instantly reboots but
//! loses everything — the task it was running *and* the outputs of every
//! completed task still resident. Consumers that later need a lost datum
//! force the producer to re-execute on its original processor, which may
//! transitively require re-executing *its* producers ("a few crashes can
//! thus lead to many task re-executions"). The paper proves computing the
//! expected makespan of this process is #P-complete; this engine samples
//! it instead.
//!
//! Model choices (documented in DESIGN.md): instant reboot (no downtime),
//! zero-cost in-memory transfer, consumers copy their inputs at start (a
//! running task is immune to later producer failures), workflow inputs
//! live on stable storage and are always recoverable, and re-executions
//! keep the original task→processor mapping.
//!
//! The engine is split into [`NoneStatic`] (immutable per-schedule
//! tables) and [`NoneState`] (the cloneable dynamic state of one
//! trajectory). A trajectory can be **paused** just before it injects
//! its `next_split`-th failure and resumed — or cloned and resumed many
//! times — which is what the multilevel-splitting rare-event estimator
//! in [`crate::montecarlo`] builds on. With `next_split == 0` (the
//! default) the pause branch never triggers and the engine is the plain
//! one-shot simulator.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ckpt_core::Schedule;
use mspg::{Dag, TaskId};

use crate::failure::FailureSource;
use crate::metrics::ExecStats;

/// Simulation failed to converge within the failure budget (the expected
/// number of failures per execution explodes for high `λ·W` products —
/// exactly the regime where the paper's plots clip CkptNone).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Diverged {
    /// Failures injected before giving up.
    pub n_failures: usize,
}

impl std::fmt::Display for Diverged {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CkptNone simulation exceeded {} failures",
            self.n_failures
        )
    }
}

impl std::error::Error for Diverged {}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    /// Waiting in its processor's queue (never run, or demanded again).
    Queued,
    /// Currently executing.
    Running,
    /// Completed with output data live in processor memory.
    DoneLive,
    /// Completed but output data lost to a failure.
    DoneLost,
}

#[derive(Clone, Copy, Debug)]
enum Event {
    /// Fail-stop failure on a processor.
    Fail(usize),
    /// Completion of the task running on a processor; stale epochs are
    /// dropped.
    Done(usize, u64),
}

/// Total-ordered event key (time, tie-break sequence).
#[derive(Clone, Copy, Debug, PartialEq)]
struct Key(f64, u64);

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// One simulated CkptNone execution of `sched` under `failures`.
///
/// `max_failures` bounds the simulation (see [`Diverged`]).
pub fn simulate_none(
    dag: &Dag,
    sched: &Schedule,
    failures: &mut dyn FailureSource,
    max_failures: usize,
) -> Result<ExecStats, Diverged> {
    simulate_none_impl(dag, sched, failures, max_failures, true)
}

/// [`simulate_none`] with the hot-path machinery disabled: every failure
/// event takes the full heap round-trip through the dispatcher, and
/// `start_ready` exhaustively rescans every processor after every event.
/// Bit-identical to [`simulate_none`] by construction; exists so the
/// equivalence is *pinned by test*
/// (`sim_properties::fail_restart_fast_path_is_bitwise_equivalent`)
/// rather than argued once and silently regressed later.
#[doc(hidden)]
pub fn simulate_none_reference(
    dag: &Dag,
    sched: &Schedule,
    failures: &mut dyn FailureSource,
    max_failures: usize,
) -> Result<ExecStats, Diverged> {
    simulate_none_impl(dag, sched, failures, max_failures, false)
}

fn simulate_none_impl(
    dag: &Dag,
    sched: &Schedule,
    failures: &mut dyn FailureSource,
    max_failures: usize,
    inline_fail_cycles: bool,
) -> Result<ExecStats, Diverged> {
    let st = NoneStatic::new(dag, sched, inline_fail_cycles);
    let mut state = NoneState::new(&st, failures);
    match state.run(&st, failures, max_failures) {
        RunOutcome::Done(s) => Ok(s),
        RunOutcome::Diverged(d) => Err(d),
        RunOutcome::Split => unreachable!("splitting disabled (next_split = 0)"),
    }
}

/// Immutable per-`(dag, schedule)` tables, shared by every trajectory
/// over the same mapping (including every clone the splitting estimator
/// spawns).
pub(crate) struct NoneStatic {
    p: usize,
    /// Task weights indexed by task id.
    weights: Vec<f64>,
    /// Owning processor of each task.
    proc_of: Vec<usize>,
    /// Rank of each task in its processor's schedule order.
    pos_of: Vec<u32>,
    /// Per-processor schedule order (queue initialization).
    proc_orders: Vec<Vec<TaskId>>,
    // Flat (CSR) adjacency for the event loop's hottest scans: the
    // dependence-edge tuples of `Dag` carry file ids the simulator never
    // reads, and a task's consumers collapse to at most `p` distinct
    // processors for dirty-marking.
    pred_off: Vec<u32>,
    pred_tasks: Vec<u32>,
    cons_off: Vec<u32>,
    cons_procs: Vec<u32>,
    is_sink: Vec<bool>,
    n_sinks: usize,
    /// Enables two hot-path mechanisms, both of which leave the
    /// processed event sequence — and therefore every draw, state
    /// transition, and statistic — bit-identical:
    ///
    /// * **inline fail cycles** — when the failure event a handler is
    ///   about to push is *strictly below* every key in the event heap
    ///   (the steady state of a diverging run: one processor fails,
    ///   restarts its task, and fails again before anything else
    ///   happens), the event is processed in place instead of doing a
    ///   push + pop + dispatch round trip. Event keys `(time, seq)` are
    ///   unique and totally ordered, and the fast path *reserves* the
    ///   failure's `seq` exactly where the slow path pushes it, so every
    ///   later event's tie-break key is unchanged and the elision fires
    ///   only when that key would be the next pop anyway;
    /// * **dirty-processor tracking** — `start_ready` checks only
    ///   processors whose startability could have changed since their
    ///   last unsuccessful check. Unsuccessful checks have no side
    ///   effects, so skipping provably-unprogressable processors
    ///   preserves the exact sequence of starts and demands.
    inline_fail_cycles: bool,
}

impl NoneStatic {
    pub(crate) fn new(dag: &Dag, sched: &Schedule, inline_fail_cycles: bool) -> NoneStatic {
        let n = dag.n_tasks();
        let p = sched.n_procs;
        let mut weights = vec![0.0f64; n];
        for t in dag.task_ids() {
            weights[t.index()] = dag.weight(t);
        }
        let mut proc_of = vec![usize::MAX; n];
        let mut pos_of = vec![u32::MAX; n];
        let mut proc_orders: Vec<Vec<TaskId>> = Vec::with_capacity(p);
        for q in 0..p {
            let order = sched.proc_task_order(q);
            for (i, &t) in order.iter().enumerate() {
                proc_of[t.index()] = q;
                pos_of[t.index()] = i as u32;
            }
            proc_orders.push(order);
        }
        let mut pred_off = Vec::with_capacity(n + 1);
        let mut pred_tasks: Vec<u32> = Vec::new();
        let mut cons_off = Vec::with_capacity(n + 1);
        let mut cons_procs: Vec<u32> = Vec::new();
        {
            let mut proc_seen = vec![u32::MAX; p];
            pred_off.push(0u32);
            cons_off.push(0u32);
            for t in dag.task_ids() {
                for &(u, _) in dag.preds(t) {
                    pred_tasks.push(u.0);
                }
                pred_off.push(pred_tasks.len() as u32);
                for &(v, _) in dag.succs(t) {
                    let r = proc_of[v.index()];
                    if proc_seen[r] != t.0 {
                        proc_seen[r] = t.0;
                        cons_procs.push(r as u32);
                    }
                }
                cons_off.push(cons_procs.len() as u32);
            }
        }
        // The workflow completes when every *sink* has completed once:
        // sinks have no consumers, so their first completion is final,
        // and all other tasks are ancestors of some sink. Re-execution
        // demands still pending at that instant are irrelevant.
        let mut is_sink = vec![false; n];
        let mut n_sinks = 0usize;
        for t in dag.task_ids() {
            if dag.succs(t).is_empty() {
                is_sink[t.index()] = true;
                n_sinks += 1;
            }
        }
        NoneStatic {
            p,
            weights,
            proc_of,
            pos_of,
            proc_orders,
            pred_off,
            pred_tasks,
            cons_off,
            cons_procs,
            is_sink,
            n_sinks,
            inline_fail_cycles,
        }
    }

    fn preds_of(&self, t: TaskId) -> &[u32] {
        &self.pred_tasks[self.pred_off[t.index()] as usize..self.pred_off[t.index() + 1] as usize]
    }

    fn cons_procs_of(&self, t: TaskId) -> &[u32] {
        &self.cons_procs[self.cons_off[t.index()] as usize..self.cons_off[t.index() + 1] as usize]
    }
}

/// Result of driving a [`NoneState`] until it finishes, diverges, or
/// pauses at its split level.
#[derive(Clone, Copy, Debug)]
pub(crate) enum RunOutcome {
    /// All sinks completed; the trajectory's final statistics.
    Done(ExecStats),
    /// The failure budget was exhausted.
    Diverged(Diverged),
    /// Paused just *before* injecting failure number `next_split`. The
    /// pending failure event is back in the heap with its original key,
    /// so cloning the state and resuming (with any failure source for
    /// the not-yet-drawn future) continues bit-exactly from this point.
    Split,
}

/// The dynamic state of one CkptNone trajectory. `Clone` is the
/// splitting estimator's trajectory-cloning primitive: a clone shares
/// the already-drawn pending events (they are part of the state being
/// conditioned on) and diverges only through future failure draws.
#[derive(Clone)]
pub(crate) struct NoneState {
    state: Vec<TState>,
    ever_done: Vec<bool>,
    /// Tasks whose output is live in each processor's memory (exactly
    /// the tasks of that processor in state DoneLive) — a failure drains
    /// this list instead of sweeping the processor's whole task order.
    live: Vec<Vec<TaskId>>,
    queues: Vec<BinaryHeap<Reverse<(u32, u32)>>>,
    current: Vec<Option<(TaskId, f64)>>,
    epoch: Vec<u64>,
    events: BinaryHeap<Reverse<(Key, EventBox)>>,
    seq: u64,
    stats: ExecStats,
    remaining_sinks: usize,
    /// Dirty-processor worklist for `start_ready`: a processor is
    /// checked only if something that could change its startability
    /// happened since its last unsuccessful check — it became idle, its
    /// queue changed, or a predecessor of (potentially) its front task
    /// transitioned to DoneLive / DoneLost. Checking a clean processor
    /// provably cannot progress, and an unsuccessful check has no side
    /// effects, so skipping clean processors leaves the exact sequence
    /// of successful starts/demands — and therefore every event
    /// sequence number — identical to the exhaustive rescan (pinned by
    /// `sim_properties::fail_restart_fast_path_is_bitwise_equivalent`).
    dirty: Vec<bool>,
    /// Pause threshold: [`NoneState::run`] returns [`RunOutcome::Split`]
    /// immediately before injecting failure number `next_split`
    /// (1-indexed). `0` disables pausing; the engine is then bitwise
    /// the classic one-shot simulator.
    pub(crate) next_split: usize,
}

impl NoneState {
    /// Fresh trajectory at time 0: initial failure arrivals drawn from
    /// `failures` (one per processor), source tasks started.
    pub(crate) fn new(st: &NoneStatic, failures: &mut dyn FailureSource) -> NoneState {
        let n = st.weights.len();
        let p = st.p;
        let mut queues: Vec<BinaryHeap<Reverse<(u32, u32)>>> =
            (0..p).map(|_| BinaryHeap::new()).collect();
        for (q, queue) in queues.iter_mut().enumerate() {
            for &t in &st.proc_orders[q] {
                queue.push(Reverse((st.pos_of[t.index()], t.0)));
            }
        }
        let mut s = NoneState {
            state: vec![TState::Queued; n],
            ever_done: vec![false; n],
            live: vec![Vec::new(); p],
            queues,
            current: vec![None; p],
            epoch: vec![0u64; p],
            events: BinaryHeap::new(),
            seq: 0,
            stats: ExecStats::default(),
            remaining_sinks: st.n_sinks,
            dirty: vec![true; p],
            next_split: 0,
        };
        for q in 0..p {
            let t = failures.next_failure(q, 0.0);
            if t.is_finite() {
                s.push_event(t, Event::Fail(q));
            }
        }
        s.start_ready(st, 0.0);
        s
    }

    /// Failures injected so far (monotone across resumes).
    #[cfg(test)]
    pub(crate) fn n_failures(&self) -> usize {
        self.stats.n_failures
    }

    fn push_event(&mut self, time: f64, ev: Event) {
        self.seq += 1;
        self.events
            .push(Reverse((Key(time, self.seq), EventBox(ev))));
    }

    /// Starts the front task of every idle processor whose predecessors
    /// are all DoneLive; lost predecessors are demanded for re-execution
    /// on their own processors. Loops until no processor can start (a
    /// fresh re-execution demand may itself be immediately startable).
    fn start_ready(&mut self, st: &NoneStatic, now: f64) {
        loop {
            let mut progressed = false;
            for q in 0..st.p {
                if st.inline_fail_cycles {
                    // Fast engine: skip provably-unprogressable procs.
                    if !self.dirty[q] {
                        continue;
                    }
                    self.dirty[q] = false;
                }
                if self.current[q].is_some() {
                    continue;
                }
                let Some(&Reverse((_, tid))) = self.queues[q].peek() else {
                    continue;
                };
                let t = TaskId(tid);
                let mut ready = true;
                for &u in st.preds_of(t) {
                    let ui = u as usize;
                    match self.state[ui] {
                        TState::DoneLive => {}
                        TState::DoneLost => {
                            // Demand re-execution of the producer on its
                            // own processor; re-scan so that an idle
                            // processor picks the demand up in this same
                            // instant.
                            self.state[ui] = TState::Queued;
                            self.stats.n_reexecs += 1;
                            let r = st.proc_of[ui];
                            self.queues[r].push(Reverse((st.pos_of[ui], u)));
                            // r's queue (and possibly its front) changed.
                            self.dirty[r] = true;
                            ready = false;
                            progressed = true;
                        }
                        _ => ready = false,
                    }
                }
                if ready {
                    self.queues[q].pop();
                    self.current[q] = Some((t, now));
                    self.state[t.index()] = TState::Running;
                    self.epoch[q] += 1;
                    self.seq += 1;
                    self.events.push(Reverse((
                        Key(now + st.weights[t.index()], self.seq),
                        EventBox(Event::Done(q, self.epoch[q])),
                    )));
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// Drives the trajectory until it completes, exhausts
    /// `max_failures`, or reaches its `next_split` pause point. Future
    /// failure arrivals are drawn from `failures`; a resumed clone may
    /// pass a *different* source than its parent (the pending events in
    /// the heap were already drawn and are shared).
    pub(crate) fn run(
        &mut self,
        st: &NoneStatic,
        failures: &mut dyn FailureSource,
        max_failures: usize,
    ) -> RunOutcome {
        if self.remaining_sinks == 0 {
            return RunOutcome::Done(self.stats);
        }
        while let Some(Reverse((key, EventBox(ev)))) = self.events.pop() {
            let Key(now, _) = key;
            match ev {
                Event::Done(q, e) => {
                    if e != self.epoch[q] {
                        continue; // aborted by a failure
                    }
                    let (t, _) = self.current[q].take().expect("done on idle proc");
                    self.state[t.index()] = TState::DoneLive;
                    self.live[q].push(t);
                    // q idles, and t's consumers may have become
                    // startable.
                    self.dirty[q] = true;
                    for &r in st.cons_procs_of(t) {
                        self.dirty[r as usize] = true;
                    }
                    if !self.ever_done[t.index()] {
                        self.ever_done[t.index()] = true;
                        if st.is_sink[t.index()] {
                            self.remaining_sinks -= 1;
                            self.stats.makespan = self.stats.makespan.max(now);
                            if self.remaining_sinks == 0 {
                                return RunOutcome::Done(self.stats);
                            }
                        }
                    }
                    self.start_ready(st, now);
                }
                Event::Fail(q) => {
                    if self.next_split != 0 && self.stats.n_failures + 1 >= self.next_split {
                        // Pause *before* injecting this failure: push the
                        // event back under its original key, so the heap
                        // (and every future tie-break) is exactly the
                        // pre-pop state.
                        self.events.push(Reverse((key, EventBox(ev))));
                        return RunOutcome::Split;
                    }
                    let mut now = now;
                    loop {
                        self.stats.n_failures += 1;
                        if self.stats.n_failures > max_failures {
                            return RunOutcome::Diverged(Diverged {
                                n_failures: self.stats.n_failures,
                            });
                        }
                        // Abort the running task.
                        if let Some((t, started)) = self.current[q].take() {
                            self.stats.wasted_time += now - started;
                            self.state[t.index()] = TState::Queued;
                            self.queues[q].push(Reverse((st.pos_of[t.index()], t.0)));
                            self.epoch[q] += 1;
                            // q idles with a changed queue.
                            self.dirty[q] = true;
                        }
                        // All live outputs on q are lost; consumers
                        // blocked on a lost output can now issue a
                        // re-execution demand.
                        let mut lost = std::mem::take(&mut self.live[q]);
                        for t in lost.drain(..) {
                            if self.state[t.index()] == TState::DoneLive {
                                self.state[t.index()] = TState::DoneLost;
                                for &r in st.cons_procs_of(t) {
                                    self.dirty[r as usize] = true;
                                }
                            }
                        }
                        self.live[q] = lost;
                        let next = failures.next_failure(q, now);
                        // Reserve the next Fail(q)'s sequence number
                        // *here* — where the slow path pushes it — so
                        // every later event's tie-break key is identical
                        // whether or not the fast path below elides the
                        // heap transit.
                        let fail_seq = if next.is_finite() {
                            self.seq += 1;
                            Some(self.seq)
                        } else {
                            None
                        };
                        self.start_ready(st, now);
                        let Some(fs) = fail_seq else {
                            break;
                        };
                        let key = Key(next, fs);
                        let is_next_event = st.inline_fail_cycles
                            && match self.events.peek() {
                                None => true,
                                Some(&Reverse((top, _))) => key < top,
                            };
                        if is_next_event {
                            if self.next_split != 0 && self.stats.n_failures + 1 >= self.next_split
                            {
                                // Same pause point as the dispatcher's:
                                // materialize the elided event and stop
                                // before injecting it.
                                self.events.push(Reverse((key, EventBox(Event::Fail(q)))));
                                return RunOutcome::Split;
                            }
                            // Fail(q) at `next` is strictly the earliest
                            // pending event: process it in place.
                            now = next;
                            continue;
                        }
                        self.events.push(Reverse((key, EventBox(Event::Fail(q)))));
                        break;
                    }
                }
            }
        }
        // Event queue drained: with no more failures scheduled everything
        // still queued would have started; reaching here with sinks
        // pending means a blocked demand was never satisfied — a bug.
        assert_eq!(
            self.remaining_sinks, 0,
            "simulation stalled with {} sinks left",
            self.remaining_sinks
        );
        RunOutcome::Done(self.stats)
    }
}

/// Boxed event to keep the heap element `Ord` (events themselves are not
/// ordered; the key is).
#[derive(Clone, Copy, Debug)]
struct EventBox(Event);

impl PartialEq for EventBox {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for EventBox {}

impl PartialOrd for EventBox {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventBox {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{ExpFailures, TraceFailures};
    use ckpt_core::{allocate, AllocateConfig};
    use mspg::{Mspg, Workflow};

    /// a → b with a on P0, b on P1; weights 2 and 3.
    fn cross_proc_chain() -> (Workflow, Schedule) {
        let mut dag = Dag::new();
        let k = dag.add_kind("t");
        let a = dag.add_task_with_output("a", k, 2.0, 1.0);
        let b = dag.add_task_with_output("b", k, 3.0, 1.0);
        let root = Mspg::chain([a, b]).unwrap();
        let w = Workflow::new(dag, root);
        let scs = vec![
            ckpt_core::Superchain {
                proc: 0,
                tasks: vec![a],
            },
            ckpt_core::Superchain {
                proc: 1,
                tasks: vec![b],
            },
        ];
        let sched = ckpt_core::Schedule::from_superchains(&w.dag, 2, scs);
        (w, sched)
    }

    #[test]
    fn no_failures_gives_parallel_time() {
        let (w, sched) = cross_proc_chain();
        let mut src = TraceFailures::new(vec![]);
        let stats = simulate_none(&w.dag, &sched, &mut src, 1000).unwrap();
        assert_eq!(stats.makespan, 5.0);
        assert_eq!(stats.n_failures, 0);
    }

    #[test]
    fn crossover_dependency_forces_producer_reexecution() {
        // a (P0, weight 2) completes at t=2; b (P1, weight 3) starts at 2.
        // P1 fails at t=4 (b aborted, its input copy lost). By then P0
        // failed at t=3, losing a's output. b's restart demands a's
        // re-execution: a reruns 4→6, b reruns 6→9.
        let (w, sched) = cross_proc_chain();
        let mut src = TraceFailures::new(vec![vec![3.0], vec![4.0]]);
        let stats = simulate_none(&w.dag, &sched, &mut src, 1000).unwrap();
        assert_eq!(stats.makespan, 9.0);
        assert_eq!(stats.n_failures, 2);
        assert_eq!(stats.n_reexecs, 1, "a must be demanded once");
    }

    #[test]
    fn producer_failure_during_consumer_run_is_harmless() {
        // b starts at 2 holding a copy of a's output; P0 fails at t=3 but
        // b completes at t=5 unaffected.
        let (w, sched) = cross_proc_chain();
        let mut src = TraceFailures::new(vec![vec![3.0], vec![]]);
        let stats = simulate_none(&w.dag, &sched, &mut src, 1000).unwrap();
        assert_eq!(stats.makespan, 5.0);
        assert_eq!(stats.n_reexecs, 0);
    }

    #[test]
    fn failure_of_running_task_restarts_it() {
        let (w, sched) = cross_proc_chain();
        // P0 fails at t=1 (a half done): a reruns 1→3, b runs 3→6.
        let mut src = TraceFailures::new(vec![vec![1.0], vec![]]);
        let stats = simulate_none(&w.dag, &sched, &mut src, 1000).unwrap();
        assert_eq!(stats.makespan, 6.0);
        assert!((stats.wasted_time - 1.0).abs() < 1e-12);
    }

    #[test]
    fn divergence_is_reported() {
        let (w, sched) = cross_proc_chain();
        // Both processors fail every 0.5 s: nothing of weight ≥ 2 can ever
        // finish.
        let times: Vec<f64> = (1..100_000).map(|i| i as f64 * 0.5).collect();
        let mut src = TraceFailures::new(vec![times.clone(), times]);
        let r = simulate_none(&w.dag, &sched, &mut src, 500);
        assert!(matches!(r, Err(Diverged { .. })));
    }

    #[test]
    fn matches_wpar_for_scheduled_workflows_without_failures() {
        for class in pegasus::WorkflowClass::ALL {
            let w = pegasus::generate(class, 50, 3);
            let sched = allocate(&w, 5, &AllocateConfig::default());
            let wpar = sched.failure_free_parallel_time(&w.dag);
            let mut src = ExpFailures::new(0.0, 1);
            let stats = simulate_none(&w.dag, &sched, &mut src, 10).unwrap();
            assert!(
                (stats.makespan - wpar).abs() < 1e-6 * wpar,
                "{class}: sim {} vs wpar {wpar}",
                stats.makespan
            );
        }
    }

    #[test]
    fn failures_increase_expected_makespan() {
        let w = pegasus::generate(pegasus::WorkflowClass::Genome, 50, 7);
        let sched = allocate(&w, 5, &AllocateConfig::default());
        let wpar = sched.failure_free_parallel_time(&w.dag);
        let lambda = ckpt_core::lambda_from_pfail(0.01, w.dag.mean_weight());
        let runs = 100;
        let mean: f64 = (0..runs)
            .map(|s| {
                let mut src = ExpFailures::new(lambda, s);
                simulate_none(&w.dag, &sched, &mut src, 100_000)
                    .unwrap()
                    .makespan
            })
            .sum::<f64>()
            / runs as f64;
        assert!(mean > wpar, "mean {mean} vs wpar {wpar}");
    }

    #[test]
    fn paused_and_resumed_run_is_bitwise_the_oneshot_run() {
        // Pausing at every single failure level and resuming (same
        // source, no cloning) must leave the trajectory bit-identical
        // to the one-shot run: the pause only parks the pending event.
        let w = pegasus::generate(pegasus::WorkflowClass::Genome, 40, 5);
        let sched = allocate(&w, 3, &AllocateConfig::default());
        let lambda = ckpt_core::lambda_from_pfail(0.2, w.dag.mean_weight());
        let mut one = ExpFailures::new(lambda, 9);
        let oneshot = simulate_none(&w.dag, &sched, &mut one, 100_000).unwrap();
        let st = NoneStatic::new(&w.dag, &sched, true);
        let mut src = ExpFailures::new(lambda, 9);
        let mut state = NoneState::new(&st, &mut src);
        let mut k = 1;
        loop {
            state.next_split = k;
            match state.run(&st, &mut src, 100_000) {
                RunOutcome::Split => {
                    assert_eq!(state.n_failures(), k - 1);
                    k += 1;
                }
                RunOutcome::Done(s) => {
                    assert_eq!(s, oneshot);
                    break;
                }
                RunOutcome::Diverged(d) => panic!("unexpected divergence: {d}"),
            }
        }
        assert!(k > 1, "seed must produce at least one failure");
        assert_eq!(k - 1, oneshot.n_failures, "one pause per failure");
    }
}
