//! Event-driven simulation of the CkptNone strategy, including
//! crossover-dependency cascades (§I of the paper).
//!
//! No data is ever checkpointed: a task's outputs live only in its
//! processor's memory. When a processor fails it instantly reboots but
//! loses everything — the task it was running *and* the outputs of every
//! completed task still resident. Consumers that later need a lost datum
//! force the producer to re-execute on its original processor, which may
//! transitively require re-executing *its* producers ("a few crashes can
//! thus lead to many task re-executions"). The paper proves computing the
//! expected makespan of this process is #P-complete; this engine samples
//! it instead.
//!
//! Model choices (documented in DESIGN.md): instant reboot (no downtime),
//! zero-cost in-memory transfer, consumers copy their inputs at start (a
//! running task is immune to later producer failures), workflow inputs
//! live on stable storage and are always recoverable, and re-executions
//! keep the original task→processor mapping.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ckpt_core::Schedule;
use mspg::{Dag, TaskId};

use crate::failure::FailureSource;
use crate::metrics::ExecStats;

/// Simulation failed to converge within the failure budget (the expected
/// number of failures per execution explodes for high `λ·W` products —
/// exactly the regime where the paper's plots clip CkptNone).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Diverged {
    /// Failures injected before giving up.
    pub n_failures: usize,
}

impl std::fmt::Display for Diverged {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CkptNone simulation exceeded {} failures",
            self.n_failures
        )
    }
}

impl std::error::Error for Diverged {}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    /// Waiting in its processor's queue (never run, or demanded again).
    Queued,
    /// Currently executing.
    Running,
    /// Completed with output data live in processor memory.
    DoneLive,
    /// Completed but output data lost to a failure.
    DoneLost,
}

#[derive(Clone, Copy, Debug)]
enum Event {
    /// Fail-stop failure on a processor.
    Fail(usize),
    /// Completion of the task running on a processor; stale epochs are
    /// dropped.
    Done(usize, u64),
}

/// Total-ordered event key (time, tie-break sequence).
#[derive(Clone, Copy, Debug, PartialEq)]
struct Key(f64, u64);

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// One simulated CkptNone execution of `sched` under `failures`.
///
/// `max_failures` bounds the simulation (see [`Diverged`]).
pub fn simulate_none(
    dag: &Dag,
    sched: &Schedule,
    failures: &mut dyn FailureSource,
    max_failures: usize,
) -> Result<ExecStats, Diverged> {
    simulate_none_impl(dag, sched, failures, max_failures, true)
}

/// [`simulate_none`] with the hot-path machinery disabled: every failure
/// event takes the full heap round-trip through the dispatcher, and
/// `start_ready` exhaustively rescans every processor after every event.
/// Bit-identical to [`simulate_none`] by construction; exists so the
/// equivalence is *pinned by test*
/// (`sim_properties::fail_restart_fast_path_is_bitwise_equivalent`)
/// rather than argued once and silently regressed later.
#[doc(hidden)]
pub fn simulate_none_reference(
    dag: &Dag,
    sched: &Schedule,
    failures: &mut dyn FailureSource,
    max_failures: usize,
) -> Result<ExecStats, Diverged> {
    simulate_none_impl(dag, sched, failures, max_failures, false)
}

/// The engine. `inline_fail_cycles` enables two hot-path mechanisms,
/// both of which leave the processed event sequence — and therefore
/// every draw, state transition, and statistic — bit-identical:
///
/// * **inline fail cycles** — when the failure event a handler is about
///   to push is *strictly below* every key in the event heap (the
///   steady state of a diverging run: one processor fails, restarts its
///   task, and fails again before anything else happens), the event is
///   processed in place instead of doing a push + pop + dispatch round
///   trip. Event keys `(time, seq)` are unique and totally ordered, and
///   the fast path *reserves* the failure's `seq` exactly where the
///   slow path pushes it, so every later event's tie-break key is
///   unchanged and the elision fires only when that key would be the
///   next pop anyway;
/// * **dirty-processor tracking** — `start_ready` checks only
///   processors whose startability could have changed since their last
///   unsuccessful check (see the `dirty` worklist below). Unsuccessful
///   checks have no side effects, so skipping provably-unprogressable
///   processors preserves the exact sequence of starts and demands.
fn simulate_none_impl(
    dag: &Dag,
    sched: &Schedule,
    failures: &mut dyn FailureSource,
    max_failures: usize,
    inline_fail_cycles: bool,
) -> Result<ExecStats, Diverged> {
    let n = dag.n_tasks();
    let p = sched.n_procs;
    // Static maps.
    let mut proc_of = vec![usize::MAX; n];
    let mut pos_of = vec![u32::MAX; n];
    let mut proc_orders: Vec<Vec<TaskId>> = Vec::with_capacity(p);
    for q in 0..p {
        let order = sched.proc_task_order(q);
        for (i, &t) in order.iter().enumerate() {
            proc_of[t.index()] = q;
            pos_of[t.index()] = i as u32;
        }
        proc_orders.push(order);
    }
    // Flat (CSR) adjacency for the event loop's hottest scans: the
    // dependence-edge tuples of `Dag` carry file ids the simulator never
    // reads, and a task's consumers collapse to at most `p` distinct
    // processors for dirty-marking.
    let mut pred_off = Vec::with_capacity(n + 1);
    let mut pred_tasks: Vec<u32> = Vec::new();
    let mut cons_off = Vec::with_capacity(n + 1);
    let mut cons_procs: Vec<u32> = Vec::new();
    {
        let mut proc_seen = vec![u32::MAX; p];
        pred_off.push(0u32);
        cons_off.push(0u32);
        for t in dag.task_ids() {
            for &(u, _) in dag.preds(t) {
                pred_tasks.push(u.0);
            }
            pred_off.push(pred_tasks.len() as u32);
            for &(v, _) in dag.succs(t) {
                let r = proc_of[v.index()];
                if proc_seen[r] != t.0 {
                    proc_seen[r] = t.0;
                    cons_procs.push(r as u32);
                }
            }
            cons_off.push(cons_procs.len() as u32);
        }
    }
    let preds_of = |t: TaskId| -> &[u32] {
        &pred_tasks[pred_off[t.index()] as usize..pred_off[t.index() + 1] as usize]
    };
    let cons_procs_of = |t: TaskId| -> &[u32] {
        &cons_procs[cons_off[t.index()] as usize..cons_off[t.index() + 1] as usize]
    };
    // Dynamic state.
    let mut state = vec![TState::Queued; n];
    let mut ever_done = vec![false; n];
    // Tasks whose output is live in each processor's memory (exactly the
    // tasks of that processor in state DoneLive) — a failure drains this
    // list instead of sweeping the processor's whole task order.
    let mut live: Vec<Vec<TaskId>> = vec![Vec::new(); p];
    let mut queues: Vec<BinaryHeap<Reverse<(u32, u32)>>> =
        (0..p).map(|_| BinaryHeap::new()).collect();
    for q in 0..p {
        for &t in &proc_orders[q] {
            queues[q].push(Reverse((pos_of[t.index()], t.0)));
        }
    }
    let mut current: Vec<Option<(TaskId, f64)>> = vec![None; p];
    let mut epoch = vec![0u64; p];
    let mut events: BinaryHeap<Reverse<(Key, EventBox)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push =
        |events: &mut BinaryHeap<Reverse<(Key, EventBox)>>, seq: &mut u64, time: f64, ev: Event| {
            *seq += 1;
            events.push(Reverse((Key(time, *seq), EventBox(ev))));
        };
    for q in 0..p {
        let t = failures.next_failure(q, 0.0);
        if t.is_finite() {
            push(&mut events, &mut seq, t, Event::Fail(q));
        }
    }
    let mut stats = ExecStats::default();
    // The workflow completes when every *sink* has completed once: sinks
    // have no consumers, so their first completion is final, and all
    // other tasks are ancestors of some sink. Re-execution demands still
    // pending at that instant are irrelevant.
    let mut is_sink = vec![false; n];
    let mut remaining_sinks = 0usize;
    for t in dag.task_ids() {
        if dag.succs(t).is_empty() {
            is_sink[t.index()] = true;
            remaining_sinks += 1;
        }
    }

    // Dirty-processor worklist for `start_ready`: a processor is checked
    // only if something that could change its startability happened since
    // its last unsuccessful check — it became idle, its queue changed, or
    // a predecessor of (potentially) its front task transitioned to
    // DoneLive / DoneLost. Checking a clean processor provably cannot
    // progress, and an unsuccessful check has no side effects, so
    // skipping clean processors leaves the exact sequence of successful
    // starts/demands — and therefore every event sequence number —
    // identical to the exhaustive rescan (pinned by
    // `sim_properties::fail_restart_fast_path_is_bitwise_equivalent`).
    let mut dirty = vec![true; p];

    // Starts the front task of every idle processor whose predecessors are
    // all DoneLive; lost predecessors are demanded for re-execution on
    // their own processors. Loops until no processor can start (a fresh
    // re-execution demand may itself be immediately startable).
    macro_rules! start_ready {
        ($now:expr) => {{
            loop {
                let mut progressed = false;
                for q in 0..p {
                    if inline_fail_cycles {
                        // Fast engine: skip provably-unprogressable procs.
                        if !dirty[q] {
                            continue;
                        }
                        dirty[q] = false;
                    }
                    if current[q].is_some() {
                        continue;
                    }
                    let Some(&Reverse((_, tid))) = queues[q].peek() else {
                        continue;
                    };
                    let t = TaskId(tid);
                    let mut ready = true;
                    for &u in preds_of(t) {
                        let ui = u as usize;
                        match state[ui] {
                            TState::DoneLive => {}
                            TState::DoneLost => {
                                // Demand re-execution of the producer on
                                // its own processor; re-scan so that an
                                // idle processor picks the demand up in
                                // this same instant.
                                state[ui] = TState::Queued;
                                stats.n_reexecs += 1;
                                let r = proc_of[ui];
                                queues[r].push(Reverse((pos_of[ui], u)));
                                // r's queue (and possibly its front)
                                // changed.
                                dirty[r] = true;
                                ready = false;
                                progressed = true;
                            }
                            _ => ready = false,
                        }
                    }
                    if ready {
                        queues[q].pop();
                        current[q] = Some((t, $now));
                        state[t.index()] = TState::Running;
                        epoch[q] += 1;
                        seq += 1;
                        events.push(Reverse((
                            Key($now + dag.weight(t), seq),
                            EventBox(Event::Done(q, epoch[q])),
                        )));
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
        }};
    }

    start_ready!(0.0);
    while let Some(Reverse((Key(now, _), EventBox(ev)))) = events.pop() {
        match ev {
            Event::Done(q, e) => {
                if e != epoch[q] {
                    continue; // aborted by a failure
                }
                let (t, _) = current[q].take().expect("done on idle proc");
                state[t.index()] = TState::DoneLive;
                live[q].push(t);
                // q idles, and t's consumers may have become startable.
                dirty[q] = true;
                for &r in cons_procs_of(t) {
                    dirty[r as usize] = true;
                }
                if !ever_done[t.index()] {
                    ever_done[t.index()] = true;
                    if is_sink[t.index()] {
                        remaining_sinks -= 1;
                        stats.makespan = stats.makespan.max(now);
                        if remaining_sinks == 0 {
                            return Ok(stats);
                        }
                    }
                }
                start_ready!(now);
            }
            Event::Fail(q) => {
                let mut now = now;
                loop {
                    stats.n_failures += 1;
                    if stats.n_failures > max_failures {
                        return Err(Diverged {
                            n_failures: stats.n_failures,
                        });
                    }
                    // Abort the running task.
                    if let Some((t, started)) = current[q].take() {
                        stats.wasted_time += now - started;
                        state[t.index()] = TState::Queued;
                        queues[q].push(Reverse((pos_of[t.index()], t.0)));
                        epoch[q] += 1;
                        // q idles with a changed queue.
                        dirty[q] = true;
                    }
                    // All live outputs on q are lost; consumers blocked on
                    // a lost output can now issue a re-execution demand.
                    for t in live[q].drain(..) {
                        if state[t.index()] == TState::DoneLive {
                            state[t.index()] = TState::DoneLost;
                            for &r in cons_procs_of(t) {
                                dirty[r as usize] = true;
                            }
                        }
                    }
                    let next = failures.next_failure(q, now);
                    // Reserve the next Fail(q)'s sequence number *here* —
                    // where the slow path pushes it — so every later
                    // event's tie-break key is identical whether or not
                    // the fast path below elides the heap transit.
                    let fail_seq = if next.is_finite() {
                        seq += 1;
                        Some(seq)
                    } else {
                        None
                    };
                    start_ready!(now);
                    let Some(fs) = fail_seq else {
                        break;
                    };
                    let key = Key(next, fs);
                    let is_next_event = inline_fail_cycles
                        && match events.peek() {
                            None => true,
                            Some(&Reverse((top, _))) => key < top,
                        };
                    if is_next_event {
                        // Fail(q) at `next` is strictly the earliest
                        // pending event: process it in place.
                        now = next;
                        continue;
                    }
                    events.push(Reverse((key, EventBox(Event::Fail(q)))));
                    break;
                }
            }
        }
    }
    // Event queue drained: with no more failures scheduled everything
    // still queued would have started; reaching here with sinks pending
    // means a blocked demand was never satisfied — a bug.
    assert_eq!(
        remaining_sinks, 0,
        "simulation stalled with {remaining_sinks} sinks left"
    );
    Ok(stats)
}

/// Boxed event to keep the heap element `Ord` (events themselves are not
/// ordered; the key is).
#[derive(Clone, Copy, Debug)]
struct EventBox(Event);

impl PartialEq for EventBox {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for EventBox {}

impl PartialOrd for EventBox {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventBox {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{ExpFailures, TraceFailures};
    use ckpt_core::{allocate, AllocateConfig};
    use mspg::{Mspg, Workflow};

    /// a → b with a on P0, b on P1; weights 2 and 3.
    fn cross_proc_chain() -> (Workflow, Schedule) {
        let mut dag = Dag::new();
        let k = dag.add_kind("t");
        let a = dag.add_task_with_output("a", k, 2.0, 1.0);
        let b = dag.add_task_with_output("b", k, 3.0, 1.0);
        let root = Mspg::chain([a, b]).unwrap();
        let w = Workflow::new(dag, root);
        let scs = vec![
            ckpt_core::Superchain {
                proc: 0,
                tasks: vec![a],
            },
            ckpt_core::Superchain {
                proc: 1,
                tasks: vec![b],
            },
        ];
        let sched = ckpt_core::Schedule::from_superchains(&w.dag, 2, scs);
        (w, sched)
    }

    #[test]
    fn no_failures_gives_parallel_time() {
        let (w, sched) = cross_proc_chain();
        let mut src = TraceFailures::new(vec![]);
        let stats = simulate_none(&w.dag, &sched, &mut src, 1000).unwrap();
        assert_eq!(stats.makespan, 5.0);
        assert_eq!(stats.n_failures, 0);
    }

    #[test]
    fn crossover_dependency_forces_producer_reexecution() {
        // a (P0, weight 2) completes at t=2; b (P1, weight 3) starts at 2.
        // P1 fails at t=4 (b aborted, its input copy lost). By then P0
        // failed at t=3, losing a's output. b's restart demands a's
        // re-execution: a reruns 4→6, b reruns 6→9.
        let (w, sched) = cross_proc_chain();
        let mut src = TraceFailures::new(vec![vec![3.0], vec![4.0]]);
        let stats = simulate_none(&w.dag, &sched, &mut src, 1000).unwrap();
        assert_eq!(stats.makespan, 9.0);
        assert_eq!(stats.n_failures, 2);
        assert_eq!(stats.n_reexecs, 1, "a must be demanded once");
    }

    #[test]
    fn producer_failure_during_consumer_run_is_harmless() {
        // b starts at 2 holding a copy of a's output; P0 fails at t=3 but
        // b completes at t=5 unaffected.
        let (w, sched) = cross_proc_chain();
        let mut src = TraceFailures::new(vec![vec![3.0], vec![]]);
        let stats = simulate_none(&w.dag, &sched, &mut src, 1000).unwrap();
        assert_eq!(stats.makespan, 5.0);
        assert_eq!(stats.n_reexecs, 0);
    }

    #[test]
    fn failure_of_running_task_restarts_it() {
        let (w, sched) = cross_proc_chain();
        // P0 fails at t=1 (a half done): a reruns 1→3, b runs 3→6.
        let mut src = TraceFailures::new(vec![vec![1.0], vec![]]);
        let stats = simulate_none(&w.dag, &sched, &mut src, 1000).unwrap();
        assert_eq!(stats.makespan, 6.0);
        assert!((stats.wasted_time - 1.0).abs() < 1e-12);
    }

    #[test]
    fn divergence_is_reported() {
        let (w, sched) = cross_proc_chain();
        // Both processors fail every 0.5 s: nothing of weight ≥ 2 can ever
        // finish.
        let times: Vec<f64> = (1..100_000).map(|i| i as f64 * 0.5).collect();
        let mut src = TraceFailures::new(vec![times.clone(), times]);
        let r = simulate_none(&w.dag, &sched, &mut src, 500);
        assert!(matches!(r, Err(Diverged { .. })));
    }

    #[test]
    fn matches_wpar_for_scheduled_workflows_without_failures() {
        for class in pegasus::WorkflowClass::ALL {
            let w = pegasus::generate(class, 50, 3);
            let sched = allocate(&w, 5, &AllocateConfig::default());
            let wpar = sched.failure_free_parallel_time(&w.dag);
            let mut src = ExpFailures::new(0.0, 1);
            let stats = simulate_none(&w.dag, &sched, &mut src, 10).unwrap();
            assert!(
                (stats.makespan - wpar).abs() < 1e-6 * wpar,
                "{class}: sim {} vs wpar {wpar}",
                stats.makespan
            );
        }
    }

    #[test]
    fn failures_increase_expected_makespan() {
        let w = pegasus::generate(pegasus::WorkflowClass::Genome, 50, 7);
        let sched = allocate(&w, 5, &AllocateConfig::default());
        let wpar = sched.failure_free_parallel_time(&w.dag);
        let lambda = ckpt_core::lambda_from_pfail(0.01, w.dag.mean_weight());
        let runs = 100;
        let mean: f64 = (0..runs)
            .map(|s| {
                let mut src = ExpFailures::new(lambda, s);
                simulate_none(&w.dag, &sched, &mut src, 100_000)
                    .unwrap()
                    .makespan
            })
            .sum::<f64>()
            / runs as f64;
        assert!(mean > wpar, "mean {mean} vs wpar {wpar}");
    }
}
