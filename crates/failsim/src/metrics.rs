//! Execution statistics collected by the simulators.

/// Outcome of one simulated execution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExecStats {
    /// Wall-clock completion time (seconds).
    pub makespan: f64,
    /// Number of fail-stop failures that struck busy or stateful
    /// processors (idle failures with no live data are still counted by
    /// the CkptNone engine, since they may invalidate data).
    pub n_failures: usize,
    /// Time spent on work that was lost to failures (partial attempts).
    pub wasted_time: f64,
    /// Number of task or segment re-executions.
    pub n_reexecs: usize,
}

/// Aggregate over many simulated executions.
#[derive(Clone, Copy, Debug, Default)]
pub struct McStats {
    /// Mean makespan.
    pub mean_makespan: f64,
    /// Standard error of the mean makespan.
    pub stderr: f64,
    /// Mean number of failures per run.
    pub mean_failures: f64,
    /// Mean wasted time per run.
    pub mean_wasted: f64,
    /// Number of runs aggregated.
    pub runs: usize,
}

impl McStats {
    /// Aggregates per-run statistics.
    ///
    /// Contract:
    /// * `runs.is_empty()` → every statistic is `NaN` with `runs == 0`
    ///   (there is no sample; callers that can distinguish "no data"
    ///   from "censored" should do so before aggregating — see
    ///   [`crate::montecarlo::NoneMcStats`]);
    /// * `runs.len() == 1` → the mean columns are the single run's
    ///   values and `stderr` is `NaN` (the unbiased sample variance is
    ///   undefined for n = 1);
    /// * otherwise `stderr` is the standard error of the mean using the
    ///   *unbiased* (`n − 1`) sample variance. The folds run in slice
    ///   order, so the result is bit-identical for a fixed input order.
    pub fn from_runs(runs: &[ExecStats]) -> McStats {
        if runs.is_empty() {
            return McStats {
                mean_makespan: f64::NAN,
                stderr: f64::NAN,
                mean_failures: f64::NAN,
                mean_wasted: f64::NAN,
                runs: 0,
            };
        }
        let n = runs.len() as f64;
        let mean = runs.iter().map(|r| r.makespan).sum::<f64>() / n;
        let stderr = if runs.len() < 2 {
            f64::NAN
        } else {
            let var = runs
                .iter()
                .map(|r| (r.makespan - mean) * (r.makespan - mean))
                .sum::<f64>()
                / (n - 1.0);
            (var / n).sqrt()
        };
        McStats {
            mean_makespan: mean,
            stderr,
            mean_failures: runs.iter().map(|r| r.n_failures as f64).sum::<f64>() / n,
            mean_wasted: runs.iter().map(|r| r.wasted_time).sum::<f64>() / n,
            runs: runs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation() {
        let runs = [
            ExecStats {
                makespan: 10.0,
                n_failures: 1,
                wasted_time: 2.0,
                n_reexecs: 1,
            },
            ExecStats {
                makespan: 14.0,
                n_failures: 3,
                wasted_time: 6.0,
                n_reexecs: 2,
            },
        ];
        let agg = McStats::from_runs(&runs);
        assert_eq!(agg.mean_makespan, 12.0);
        assert_eq!(agg.mean_failures, 2.0);
        assert_eq!(agg.mean_wasted, 4.0);
        assert_eq!(agg.runs, 2);
        // Unbiased sample variance: ((10−12)² + (14−12)²)/(2−1) = 8;
        // stderr = sqrt(8/2) = 2.
        assert!((agg.stderr - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_run_has_undefined_stderr() {
        let runs = [ExecStats {
            makespan: 10.0,
            n_failures: 1,
            wasted_time: 2.0,
            n_reexecs: 1,
        }];
        let agg = McStats::from_runs(&runs);
        assert_eq!(agg.mean_makespan, 10.0);
        assert_eq!(agg.runs, 1);
        assert!(agg.stderr.is_nan());
    }

    #[test]
    fn empty_input_is_all_nan_not_a_panic() {
        let agg = McStats::from_runs(&[]);
        assert_eq!(agg.runs, 0);
        assert!(agg.mean_makespan.is_nan());
        assert!(agg.stderr.is_nan());
        assert!(agg.mean_failures.is_nan());
        assert!(agg.mean_wasted.is_nan());
    }
}
