//! Execution statistics collected by the simulators.

/// Outcome of one simulated execution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExecStats {
    /// Wall-clock completion time (seconds).
    pub makespan: f64,
    /// Number of fail-stop failures that struck busy or stateful
    /// processors (idle failures with no live data are still counted by
    /// the CkptNone engine, since they may invalidate data).
    pub n_failures: usize,
    /// Time spent on work that was lost to failures (partial attempts).
    pub wasted_time: f64,
    /// Number of task or segment re-executions.
    pub n_reexecs: usize,
}

/// Aggregate over many simulated executions.
#[derive(Clone, Copy, Debug, Default)]
pub struct McStats {
    /// Mean makespan.
    pub mean_makespan: f64,
    /// Standard error of the mean makespan.
    pub stderr: f64,
    /// Mean number of failures per run.
    pub mean_failures: f64,
    /// Mean wasted time per run.
    pub mean_wasted: f64,
    /// Number of runs aggregated.
    pub runs: usize,
}

impl McStats {
    /// Aggregates per-run statistics.
    pub fn from_runs(runs: &[ExecStats]) -> McStats {
        assert!(!runs.is_empty());
        let n = runs.len() as f64;
        let mean = runs.iter().map(|r| r.makespan).sum::<f64>() / n;
        let var = runs
            .iter()
            .map(|r| (r.makespan - mean) * (r.makespan - mean))
            .sum::<f64>()
            / n;
        McStats {
            mean_makespan: mean,
            stderr: (var / n).sqrt(),
            mean_failures: runs.iter().map(|r| r.n_failures as f64).sum::<f64>() / n,
            mean_wasted: runs.iter().map(|r| r.wasted_time).sum::<f64>() / n,
            runs: runs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation() {
        let runs = [
            ExecStats {
                makespan: 10.0,
                n_failures: 1,
                wasted_time: 2.0,
                n_reexecs: 1,
            },
            ExecStats {
                makespan: 14.0,
                n_failures: 3,
                wasted_time: 6.0,
                n_reexecs: 2,
            },
        ];
        let agg = McStats::from_runs(&runs);
        assert_eq!(agg.mean_makespan, 12.0);
        assert_eq!(agg.mean_failures, 2.0);
        assert_eq!(agg.mean_wasted, 4.0);
        assert_eq!(agg.runs, 2);
        assert!((agg.stderr - (4.0f64 / 2.0).sqrt()).abs() < 1e-12);
    }
}
